/**
 * @file
 * Quickstart: assemble a tiny program, run it on the functional VM, then
 * on the out-of-order core in all three modes (SIE, DIE, DIE-IRB), and
 * print the IPCs — the 60-second tour of the public API.
 *
 * Usage: quickstart [key=value ...]
 * e.g.   quickstart fu.intalu=8 irb.entries=2048
 */

#include <cstdio>
#include <vector>

#include "asm/assembler.hh"
#include "harness/runner.hh"
#include "vm/vm.hh"

using namespace direb;

namespace
{

// Sum of squares 1..100, printed, then a small reuse-friendly loop.
const char *demoProgram = R"(
.text
start:
        li   s0, 0          # i
        li   s1, 0          # sum
        li   s2, 100
loop:
        addi s0, s0, 1
        mul  t0, s0, s0
        add  s1, s1, t0
        blt  s0, s2, loop
        putint s1
        halt
)";

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> overrides(argv + 1, argv + argc);

    // 1. Assemble.
    const Program prog = assemble(demoProgram, "quickstart");
    std::printf("assembled %zu instructions\n\n%s\n", prog.size(),
                prog.listing().c_str());

    // 2. Golden run on the functional VM.
    Vm vm(prog);
    vm.run();
    std::printf("VM: %llu instructions, output: %s\n",
                static_cast<unsigned long long>(vm.instCount()),
                vm.state().out.c_str());

    // 3. Timing runs in the paper's three modes.
    for (const char *mode : {"sie", "die", "die-irb"}) {
        Config cfg = harness::baseConfig(mode);
        cfg.parseAll(overrides);
        const harness::SimResult r = harness::run(prog, cfg);
        std::printf("%-8s cycles=%-8llu IPC=%.3f  output=%s", mode,
                    static_cast<unsigned long long>(r.core.cycles),
                    r.ipc(), r.output.c_str());
    }

    std::printf("\nTry: quickstart fu.intalu=8   (watch DIE close the "
                "gap)\n");
    return 0;
}
