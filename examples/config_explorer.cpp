/**
 * @file
 * Config explorer: sweep one machine parameter over a list of values for
 * a chosen workload and execution mode, printing an IPC curve — the
 * "what if" tool for sizing studies beyond the canned benches.
 *
 * Usage: config_explorer <workload> <mode> <key> <v1> [v2 ...]
 *   e.g. config_explorer compress die-irb irb.entries 128 512 1024 4096
 *        config_explorer neural die fu.fpadd 1 2 4
 *        config_explorer pointer sie mem.lat 50 100 200 400
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 5) {
        std::fprintf(stderr,
                     "usage: %s <workload> <sie|die|die-irb> <config.key> "
                     "<value> [value ...]\n",
                     argv[0]);
        std::fprintf(stderr, "workloads:");
        for (const auto &w : workloads::list())
            std::fprintf(stderr, " %s", w.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    const std::string workload = argv[1];
    const std::string mode = argv[2];
    const std::string key = argv[3];

    if (!workloads::exists(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        return 1;
    }

    const Program prog = workloads::build(workload, 1);

    harness::Table t({key, "cycles", "IPC", "vs first"});
    double first_ipc = 0.0;
    for (int i = 4; i < argc; ++i) {
        Config cfg = harness::baseConfig(mode);
        cfg.set(key, argv[i]);
        const auto r = harness::run(prog, cfg);
        if (first_ipc == 0.0)
            first_ipc = r.ipc();
        t.row()
            .cell(argv[i])
            .num(static_cast<double>(r.core.cycles), 0)
            .num(r.ipc(), 3)
            .pct(r.ipc() / first_ipc - 1.0, 1);
    }

    std::printf("%s x %s, sweeping %s:\n\n%s", workload.c_str(),
                mode.c_str(), key.c_str(), t.render().c_str());
    return 0;
}
