/**
 * @file
 * Custom-workload walkthrough: write a program in the mini-ISA assembly,
 * assemble it, inspect the listing, validate it on the functional VM, and
 * measure how much of its duplicate stream the IRB can absorb — the
 * end-to-end flow a user follows to bring their own kernel to the
 * simulator.
 *
 * The kernel is a string-search (memchr-like) scanning a fixed haystack
 * for several needles: the haystack bytes repeat across needles, so the
 * duplicate stream reuses heavily — a good IRB showcase.
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/runner.hh"
#include "vm/vm.hh"

using namespace direb;

namespace
{

const char *searchKernel = R"(
# count occurrences of 16 needle bytes in a 2KB haystack
.data
hay:    .space 2048
.text
start:
        la   s1, hay
        li   s2, 2048
        li   s3, 424242          # LCG seed
        li   s4, 1103515245
        li   s0, 0
fill:
        mul  s3, s3, s4
        addi s3, s3, 4057
        srli t0, s3, 16
        andi t0, t0, 31
        addi t0, t0, 97
        add  t1, s1, s0
        sb   t0, 0(t1)
        addi s0, s0, 1
        blt  s0, s2, fill

        li   s5, 97              # needle
        li   s6, 0               # total matches
needle:
        li   s0, 0
scan:
        la   a2, hay             # rematerialised base (reuses)
        add  t0, a2, s0
        lbu  t1, 0(t0)
        bne  t1, s5, miss
        addi s6, s6, 1
miss:
        addi s0, s0, 1
        li   t6, 2048            # rematerialised bound (reuses)
        blt  s0, t6, scan
        addi s5, s5, 1
        li   t6, 113             # 16 needles: 'a'..'p'
        blt  s5, t6, needle

        putint s6
        halt
)";

} // namespace

int
main()
{
    setQuiet(true);

    // 1. Assemble and show a snippet of the listing.
    const Program prog = assemble(searchKernel, "search");
    std::printf("assembled %zu instructions; first lines:\n", prog.size());
    const std::string listing = prog.listing();
    std::printf("%s...\n\n", listing.substr(0, 400).c_str());

    // 2. Functional validation on the golden-model VM.
    Vm vm(prog);
    vm.run();
    std::printf("VM: %llu instructions, matches found: %s\n",
                static_cast<unsigned long long>(vm.instCount()),
                vm.state().out.c_str());

    // 3. Cross-check the timing core against the VM in every mode.
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const std::string err =
            harness::goldenCheck(prog, harness::baseConfig(mode));
        std::printf("golden check [%s]: %s\n", mode,
                    err.empty() ? "ok" : err.c_str());
    }

    // 4. Measure the three modes.
    std::printf("\n%-8s %10s %8s %12s %12s\n", "mode", "cycles", "IPC",
                "reuse rate", "ALU bypasses");
    for (const char *mode : {"sie", "die", "die-irb"}) {
        const auto r = harness::run(prog, harness::baseConfig(mode));
        const double tests = r.stat("core.irb.reuse_hits") +
                             r.stat("core.irb.reuse_misses");
        std::printf("%-8s %10llu %8.3f %11.1f%% %12.0f\n", mode,
                    static_cast<unsigned long long>(r.core.cycles), r.ipc(),
                    tests > 0
                        ? 100.0 * r.stat("core.irb.reuse_hits") / tests
                        : 0.0,
                    r.stat("core.bypassed_alu"));
    }
    return 0;
}
