/**
 * @file
 * Reliability demo: runs a workload under DIE-IRB while injecting
 * transient faults into functional-unit results, and shows the Sphere of
 * Replication doing its job — every fault is either squashed with the
 * wrong path or caught by the commit-time check and repaired by an
 * instruction rewind, and the program output stays bit-exact.
 *
 * Usage: reliability_demo [workload] [fault_rate] [site]
 *   e.g. reliability_demo route 0.001 fu
 *        reliability_demo parse 0.002 fwd_both   (the one escape case)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

using namespace direb;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string workload = argc > 1 ? argv[1] : "route";
    const double rate = argc > 2 ? std::atof(argv[2]) : 0.001;
    const std::string site = argc > 3 ? argv[3] : "fu";

    if (!workloads::exists(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        return 1;
    }

    const Program prog = workloads::build(workload, 1);

    std::printf("running '%s' under DIE-IRB, %s faults at rate %g...\n\n",
                workload.c_str(), site.c_str(), rate);

    const harness::SimResult clean =
        harness::run(prog, harness::baseConfig("die-irb"));

    Config cfg = harness::baseConfig("die-irb");
    cfg.set("fault.site", site);
    cfg.setDouble("fault.rate", rate);
    cfg.setInt("fault.seed", 1234);
    const harness::SimResult faulty = harness::run(prog, cfg);

    std::printf("  faults injected : %8.0f\n",
                faulty.stat("core.fault.injected"));
    std::printf("  detected        : %8.0f  (checker mismatch -> rewind)\n",
                faulty.stat("core.fault.detected"));
    std::printf("  squashed        : %8.0f  (died on the wrong path)\n",
                faulty.stat("core.fault.squashed"));
    std::printf("  escaped         : %8.0f\n",
                faulty.stat("core.fault.escaped"));
    std::printf("  rewinds         : %8.0f\n", faulty.stat("core.rewinds"));
    std::printf("\n  clean run : %8llu cycles, output '%s'\n",
                static_cast<unsigned long long>(clean.core.cycles),
                clean.output.substr(0, 24).c_str());
    std::printf("  faulty run: %8llu cycles (+%.2f%%), output '%s'\n",
                static_cast<unsigned long long>(faulty.core.cycles),
                100.0 * (static_cast<double>(faulty.core.cycles) /
                             clean.core.cycles - 1.0),
                faulty.output.substr(0, 24).c_str());

    const bool intact = faulty.output == clean.output;
    std::printf("\n  program output %s\n",
                intact ? "INTACT — redundancy held"
                       : "CORRUPTED — (expected only for fwd_both, the "
                         "shared-bus case of Figure 6(c))");
    return intact || site == "fwd_both" ? 0 : 1;
}
