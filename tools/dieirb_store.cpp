/**
 * @file
 * dieirb-store — pack, inspect and query compressed columnar
 * sweep-result artifacts (src/store/).
 *
 * Usage:
 *   dieirb-store pack   <dir> <artifact>     pack a sweep.cache (or any
 *                                            report directory) into one
 *                                            compressed artifact
 *   dieirb-store unpack <artifact> <dir>     restore the directory
 *                                            byte-identically
 *   dieirb-store ls     <artifact>           list the packed contents
 *   dieirb-store verify <artifact> [<dir>]   decode + checksum-check the
 *                                            artifact; with <dir>, also
 *                                            prove every file round-trips
 *                                            byte-identically
 *   dieirb-store query  <artifact> <json>    run a /v1/query-shaped
 *                                            aggregation (see
 *                                            src/store/query.hh) and
 *                                            print the response
 *
 * pack prints the compression summary (files, raw vs packed bytes,
 * ratio); verify exits non-zero on any mismatch or corruption.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "store/query.hh"
#include "store/store.hh"

using namespace direb;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <command> ...\n"
                 "  pack   <dir> <artifact>   pack a directory\n"
                 "  unpack <artifact> <dir>   restore it byte-identically\n"
                 "  ls     <artifact>         list packed contents\n"
                 "  verify <artifact> [<dir>] checksum (+ round-trip) "
                 "check\n"
                 "  query  <artifact> <json>  run an aggregation query\n",
                 argv0);
}

std::uint64_t
directoryBytes(const std::string &dir)
{
    std::uint64_t total = 0;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        if (de.is_regular_file())
            total += de.file_size();
    }
    return total;
}

int
cmdPack(const std::string &dir, const std::string &artifact)
{
    const store::Artifact art = store::packDirectory(dir);
    store::writeArtifact(artifact, art);
    const std::uint64_t raw = directoryBytes(dir);
    const std::uint64_t packed = std::filesystem::file_size(artifact);
    std::printf("packed %zu columnar entries + %zu raw files\n",
                art.entries.size(), art.rawFiles.size());
    std::printf("%llu bytes -> %llu bytes (%.2fx)\n",
                static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(packed),
                packed ? static_cast<double>(raw) /
                             static_cast<double>(packed)
                       : 0.0);
    return 0;
}

int
cmdUnpack(const std::string &artifact, const std::string &dir)
{
    const store::Artifact art = store::readArtifact(artifact);
    store::unpackArtifact(art, dir);
    std::printf("restored %zu files into %s\n", art.size(), dir.c_str());
    return 0;
}

int
cmdLs(const std::string &artifact)
{
    const store::Artifact art = store::readArtifact(artifact);
    for (const store::StoredEntry &e : art.entries) {
        std::printf("%-20s %-9s ipc=%-8.4f %12llu insts  %s\n",
                    e.filename.c_str(),
                    harness::pointStatusName(e.result.status),
                    e.result.sim.core.ipc,
                    static_cast<unsigned long long>(
                        e.result.sim.core.archInsts),
                    e.result.name.c_str());
    }
    for (const store::RawFile &f : art.rawFiles) {
        std::printf("%-20s raw       %zu bytes\n", f.filename.c_str(),
                    f.bytes.size());
    }
    return 0;
}

int
cmdVerify(const std::string &artifact, const std::string &dir)
{
    // readArtifact already checksums every section; reaching this line
    // means the artifact itself is sound.
    const store::Artifact art = store::readArtifact(artifact);
    if (dir.empty()) {
        std::printf("ok: %zu entries + %zu raw files, checksums good\n",
                    art.entries.size(), art.rawFiles.size());
        return 0;
    }

    std::size_t checked = 0, mismatched = 0;
    const auto check = [&](const std::string &name,
                           const std::string &want) {
        std::ifstream in(dir + "/" + name, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "MISSING: %s\n", name.c_str());
            ++mismatched;
            return;
        }
        std::ostringstream body;
        body << in.rdbuf();
        ++checked;
        if (body.str() != want) {
            std::fprintf(stderr, "MISMATCH: %s\n", name.c_str());
            ++mismatched;
        }
    };
    for (const store::StoredEntry &e : art.entries)
        check(e.filename, store::renderEntryBytes(e));
    for (const store::RawFile &f : art.rawFiles)
        check(f.filename, f.bytes);
    if (mismatched) {
        std::fprintf(stderr, "%zu of %zu files diverge from %s\n",
                     mismatched, art.size(), dir.c_str());
        return 1;
    }
    std::printf("ok: %zu files byte-identical to %s\n", checked,
                dir.c_str());
    return 0;
}

int
cmdQuery(const std::string &artifact, const std::string &body)
{
    const store::Artifact art = store::readArtifact(artifact);
    const store::QueryRequest req =
        store::parseQuery(harness::Json::parse(body));
    const std::vector<const store::Artifact *> stores{&art};
    std::printf("%s\n",
                store::runQuery(stores, req)
                    .dump(2, /*full_precision=*/false)
                    .c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "pack" && argc == 4)
            return cmdPack(argv[2], argv[3]);
        if (cmd == "unpack" && argc == 4)
            return cmdUnpack(argv[2], argv[3]);
        if (cmd == "ls" && argc == 3)
            return cmdLs(argv[2]);
        if (cmd == "verify" && (argc == 3 || argc == 4))
            return cmdVerify(argv[2], argc == 4 ? argv[3] : "");
        if (cmd == "query" && argc == 4)
            return cmdQuery(argv[2], argv[3]);
        usage(argv[0]);
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
