#!/usr/bin/env python3
"""CI perf-floor gate for the simulator throughput bench.

Compares the ready_list cycles/sec rates in a freshly produced
BENCH_throughput.json against the checked-in per-workload floors
(bench/perf_floors.json) and fails the build on a real regression:

  * The floors were recorded on a specific host class, identified by its
    hardware-thread count. When the current run's hw_threads differs,
    absolute rates are not comparable — the check degrades to warn-only
    (report printed, exit 0) instead of failing on machine noise.
  * On a matching host, a geomean(current/floor) below 1 - slack
    (default slack 10%) is a hard failure. Individual workloads below
    their floor are listed as warnings either way; single-workload noise
    does not gate.

The full comparison is also written as a JSON report (--report) so CI
can upload it as an artifact next to the bench output.

Usage:
  check_perf_floor.py BENCH_throughput.json bench/perf_floors.json \
      [--report perf_floor_report.json] [--slack 0.10] \
      [--cmp-bench BENCH_cmp.json] [--store-bench BENCH_store.json]

--cmp-bench attaches the CMP scaling series (bench_cmp's aggregate IPC
and IRB reuse rate per core count) to the printed summary and the JSON
report. It is report-only: CMP numbers are simulated-machine results,
not host throughput, so they never gate the build.

--store-bench attaches the columnar store summary (bench_store's
compression ratio and pack/unpack/query throughput) the same way. Also
report-only: the interesting invariants (byte identity, ratio >= 3x)
are enforced inside bench_store itself, and MB/s numbers are
host-dependent.

To refresh the floors after an intentional perf change, run
bench_throughput on the reference host and regenerate with:
  check_perf_floor.py --update BENCH_throughput.json bench/perf_floors.json
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def bench_rates(bench):
    """workload -> ready_list cycles/sec from a bench_throughput report."""
    rates = {}
    for row in bench["workloads"]:
        rates[row["workload"]] = row["ready_list"]["cycles_per_sec"]
    if not rates:
        sys.exit("error: bench report contains no workloads")
    return rates


def bench_hw_threads(bench):
    return int(bench["sweep"]["hardware_threads"])


def update_floors(bench_path, floors_path):
    bench = load(bench_path)
    floors = {
        "comment": "ready_list cycles/sec floors for check_perf_floor.py; "
                   "regenerate with --update on the reference host",
        "hw_threads": bench_hw_threads(bench),
        "geomean_slack": 0.10,
        "floors": bench_rates(bench),
    }
    with open(floors_path, "w") as f:
        json.dump(floors, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {floors_path} ({len(floors['floors'])} workloads, "
          f"hw_threads={floors['hw_threads']})")


def cmp_series(path):
    """Report-only rows from a bench_cmp BENCH_cmp.json."""
    cmp_bench = load(path)
    rows = []
    for p in cmp_bench["points"]:
        rows.append({
            "mode": p["mode"],
            "cores": p["cores"],
            "bundle": p.get("bundle", ""),
            "ipc": p["ipc"],
            "irb_reuse_rate": p["irb_reuse_rate"],
            "l2_miss_rate": p.get("l2_miss_rate"),
            "dram_accesses": p.get("dram_accesses"),
        })
    return rows


def print_cmp_series(rows):
    print("CMP scaling series (report-only, from bench_cmp):")
    for r in rows:
        bundle = f" bundle={r['bundle']}" if r["bundle"] else ""
        print(f"  {r['mode']:<8} x{r['cores']}{bundle}: "
              f"IPC {r['ipc']:.3f} "
              f"({r['ipc'] / r['cores']:.3f}/core), "
              f"IRB reuse {100.0 * r['irb_reuse_rate']:.1f}%")


def store_series(path):
    """Report-only summary from a bench_store BENCH_store.json."""
    b = load(path)
    return {
        "entries": b["entries"],
        "raw_bytes": b["raw_bytes"],
        "artifact_bytes": b["artifact_bytes"],
        "compression_ratio": b["compression_ratio"],
        "byte_identical": b.get("byte_identical"),
        "pack_mb_per_sec": b["pack_mb_per_sec"],
        "unpack_mb_per_sec": b["unpack_mb_per_sec"],
        "query_points_per_sec": b["query_points_per_sec"],
    }


def print_store_series(s):
    print("Columnar store series (report-only, from bench_store):")
    print(f"  {s['entries']} entries: {s['raw_bytes']} -> "
          f"{s['artifact_bytes']} bytes "
          f"({s['compression_ratio']:.2f}x, "
          f"byte_identical={s['byte_identical']})")
    print(f"  pack {s['pack_mb_per_sec']:.1f} MB/s, "
          f"unpack {s['unpack_mb_per_sec']:.1f} MB/s, "
          f"query {s['query_points_per_sec'] / 1e6:.1f} Mpoints/s")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("floors_json")
    ap.add_argument("--report", help="write the comparison as JSON here")
    ap.add_argument("--cmp-bench",
                    help="BENCH_cmp.json to attach as a report-only CMP "
                         "scaling series (never gates)")
    ap.add_argument("--store-bench",
                    help="BENCH_store.json to attach as a report-only "
                         "columnar-store series (never gates)")
    ap.add_argument("--slack", type=float, default=None,
                    help="allowed geomean regression (default: floors "
                         "file's geomean_slack, else 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="regenerate the floors file from the bench "
                         "report instead of checking")
    args = ap.parse_args()

    if args.update:
        update_floors(args.bench_json, args.floors_json)
        return

    bench = load(args.bench_json)
    floors_doc = load(args.floors_json)
    floors = floors_doc["floors"]
    slack = args.slack if args.slack is not None else \
        float(floors_doc.get("geomean_slack", 0.10))
    rates = bench_rates(bench)

    cur_hw = bench_hw_threads(bench)
    ref_hw = int(floors_doc["hw_threads"])
    host_match = cur_hw == ref_hw

    rows = []
    ratios = []
    for name, floor in sorted(floors.items()):
        if name not in rates:
            rows.append({"workload": name, "status": "missing"})
            continue
        ratio = rates[name] / floor
        ratios.append(ratio)
        rows.append({
            "workload": name,
            "floor_cycles_per_sec": floor,
            "current_cycles_per_sec": rates[name],
            "ratio": ratio,
            "status": "ok" if ratio >= 1.0 - slack else "below_floor",
        })
    if not ratios:
        sys.exit("error: no floor workload matches the bench report "
                 "(renamed workload set? refresh the floors file)")

    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    gated = host_match
    failed = gated and geomean < 1.0 - slack

    report = {
        "check": "perf_floor",
        "hw_threads": {"current": cur_hw, "reference": ref_hw},
        "gated": gated,
        "geomean_ratio": geomean,
        "slack": slack,
        "result": "fail" if failed else "pass",
        "workloads": rows,
    }
    cmp_rows = None
    if args.cmp_bench:
        cmp_rows = cmp_series(args.cmp_bench)
        report["cmp"] = {"report_only": True, "points": cmp_rows}
    store_row = None
    if args.store_bench:
        store_row = store_series(args.store_bench)
        report["store"] = {"report_only": True, **store_row}
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    width = max(len(r["workload"]) for r in rows)
    for r in rows:
        if r["status"] == "missing":
            print(f"  {r['workload']:<{width}}  MISSING from bench report")
        else:
            mark = "" if r["status"] == "ok" else "  <-- below floor"
            print(f"  {r['workload']:<{width}}  "
                  f"{r['current_cycles_per_sec'] / 1e6:8.3f} Mcyc/s  "
                  f"(floor {r['floor_cycles_per_sec'] / 1e6:8.3f}, "
                  f"ratio {r['ratio']:.3f}){mark}")
    print(f"geomean current/floor: {geomean:.3f} "
          f"(hard floor at matching hw_threads: {1.0 - slack:.2f})")
    if cmp_rows is not None:
        print_cmp_series(cmp_rows)
    if store_row is not None:
        print_store_series(store_row)

    if not gated:
        print(f"WARN-ONLY: floors were recorded at hw_threads={ref_hw}, "
              f"this host has {cur_hw}; absolute rates are not "
              f"comparable, so the gate is skipped.")
        return
    if failed:
        sys.exit(f"FAIL: geomean throughput regressed more than "
                 f"{slack:.0%} against the checked-in floors")
    print("PASS: throughput at or above the checked-in floors")


if __name__ == "__main__":
    main()
