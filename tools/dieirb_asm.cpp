/**
 * @file
 * dieirb-asm — assembler / disassembler / functional-runner CLI for the
 * mini-ISA.
 *
 * Usage:
 *   dieirb-asm <program.s>            assemble and print the listing
 *   dieirb-asm -r <program.s>         assemble and run on the VM
 *   dieirb-asm -w <workload>          print a built-in workload's source
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

using namespace direb;

int
main(int argc, char **argv)
{
    bool run = false;
    std::string workload;
    std::string file;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-r") {
            run = true;
        } else if (a == "-w" && i + 1 < argc) {
            workload = argv[++i];
        } else {
            file = a;
        }
    }

    try {
        if (!workload.empty()) {
            std::printf("%s", workloads::source(workload, 1).c_str());
            return 0;
        }
        if (file.empty()) {
            std::fprintf(stderr,
                         "usage: %s [-r] <program.s> | -w <workload>\n",
                         argv[0]);
            return 1;
        }

        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        const Program prog = assemble(ss.str(), file);

        if (!run) {
            std::printf("%s", prog.listing().c_str());
            std::printf("# %zu instructions, %zu data bytes, entry %#llx\n",
                        prog.size(), prog.data.size(),
                        static_cast<unsigned long long>(prog.entry));
            return 0;
        }

        Vm vm(prog);
        const StopReason stop = vm.run();
        std::printf("%s", vm.state().out.c_str());
        std::fprintf(stderr, "# %llu instructions, %s\n",
                     static_cast<unsigned long long>(vm.instCount()),
                     stop == StopReason::Halted ? "halted"
                     : stop == StopReason::BadPc ? "bad pc"
                                                 : "inst limit");
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
