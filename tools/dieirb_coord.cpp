/**
 * @file
 * dieirb-coord — the sharded sweep coordinator.
 *
 * Speaks the same HTTP API as dieirb-serve but simulates nothing
 * itself: every sweep is sharded across N dieirb-serve backends by
 * consistent-hashing each point's cache key onto a ring, fanned out as
 * streamed NDJSON sub-sweeps, and merged back into one
 * deterministic-order response — byte-identical to what a single
 * backend would have produced, including when a backend dies or drains
 * mid-sweep (its unfinished points re-shard onto the survivors; the
 * completed prefix is never re-simulated).
 *
 *   POST /v1/simulate   proxied to the point's ring owner
 *   POST /v1/query      proxied to any Up backend (stores are replicas)
 *   POST /v1/sweep      sharded fan-out; `"stream": true` => NDJSON
 *   GET  /v1/jobs       the coordinator's own job listing
 *   GET  /v1/jobs/<id>  async fan-out job status / result
 *   GET  /healthz       coordinator + per-backend health states
 *   GET  /metrics       coordinator series + re-exported backend
 *                       counters (dieirb_backend_*, backend="..." label)
 *
 * Usage:
 *   dieirb-coord --backend H:P [--backend H:P ...] [options]
 *     --backend H:P       a dieirb-serve backend (repeat; >= 1 required)
 *     --port N            listen port (default 8200; 0 = kernel pick)
 *     --host A            listen address (default 127.0.0.1)
 *     --http-threads N    request dispatch threads (default 16)
 *     --queue-depth N     max outstanding fan-outs before 429 (64)
 *     --deadline-ms N     sync-request wait before 202 (default 60000)
 *     --job-history N     finished job records kept (default 4096)
 *     --vnodes N          ring points per backend (default 64)
 *     --health-interval-ms N  backend /healthz probe period (500)
 *     --max-attempts N    dispatches per point before 500 (default 3)
 *     --reshard-wait-ms N wait for any live backend (default 4000)
 *     --subsweep-idle-ms N   sub-sweep no-progress bound (120000)
 *     -q                  quiet (suppress per-request log lines)
 *
 * SIGTERM/SIGINT drain exactly like dieirb-serve: stop accepting,
 * reject new sweeps with 503, cancel in-flight fan-outs (which cancels
 * their sub-sweeps on the backends), exit 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "coord/coordinator.hh"
#include "service/server.hh"

using namespace direb;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --backend H:P [--backend H:P ...] [options]\n"
        "  --backend H:P     a dieirb-serve backend (repeatable)\n"
        "  --port N          listen port (default 8200; 0 = kernel)\n"
        "  --host A          listen address (default 127.0.0.1)\n"
        "  --http-threads N  connection handler threads (default 16)\n"
        "  --queue-depth N   max outstanding fan-outs before 429 (64)\n"
        "  --deadline-ms N   sync wait before 202 handoff (60000)\n"
        "  --job-history N   finished job records kept (4096)\n"
        "  --vnodes N        ring points per backend (64)\n"
        "  --health-interval-ms N  backend probe period (500)\n"
        "  --max-attempts N  dispatches per point before 500 (3)\n"
        "  --reshard-wait-ms N     wait for any live backend (4000)\n"
        "  --subsweep-idle-ms N    sub-sweep no-progress bound (120000)\n"
        "  -q                quiet\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions opts;
    opts.port = 8200;
    opts.workers = 1; // fan-out jobs wait on backends, never simulate
    opts.modeName = "coord";
    coord::CoordOptions copts;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--backend") {
            copts.backends.push_back(next());
        } else if (a == "--port") {
            opts.port = static_cast<unsigned short>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--host") {
            opts.host = next();
        } else if (a == "--http-threads") {
            opts.httpThreads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--queue-depth") {
            opts.queueDepth = std::strtoull(next(), nullptr, 10);
        } else if (a == "--deadline-ms") {
            opts.defaultDeadlineMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--job-history") {
            opts.jobHistory = std::strtoull(next(), nullptr, 10);
        } else if (a == "--vnodes") {
            copts.vnodes = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--health-interval-ms") {
            copts.healthIntervalMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--max-attempts") {
            copts.maxPointAttempts = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--reshard-wait-ms") {
            copts.reshardWaitMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--subsweep-idle-ms") {
            copts.subsweepIdleTimeoutMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "-q") {
            setQuiet(true);
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 1;
        }
    }
    if (copts.backends.empty()) {
        usage(argv[0]);
        return 1;
    }

    // Fan-out jobs are I/O-bound waits on the backends: give the queue
    // enough workers to run a queue-depth's worth concurrently.
    opts.workers = static_cast<unsigned>(opts.queueDepth);

    std::signal(SIGPIPE, SIG_IGN);
    sigset_t drainSignals;
    sigemptyset(&drainSignals);
    sigaddset(&drainSignals, SIGINT);
    sigaddset(&drainSignals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &drainSignals, nullptr);

    try {
        service::Server server(opts);
        coord::Coordinator coordinator(server, copts);
        coordinator.start();
        server.start();
        std::string backend_list;
        for (const std::string &b : copts.backends) {
            if (!backend_list.empty())
                backend_list += ",";
            backend_list += b;
        }
        std::printf("dieirb-coord listening on %s:%u "
                    "(backends=%s vnodes=%u queue-depth=%zu)\n",
                    opts.host.c_str(),
                    static_cast<unsigned>(server.port()),
                    backend_list.c_str(), copts.vnodes,
                    server.jobs().capacity());
        std::fflush(stdout);

        int sig = 0;
        sigwait(&drainSignals, &sig);
        std::fprintf(stderr,
                     "dieirb-coord: signal %d (%s), draining...\n", sig,
                     sig == SIGTERM ? "SIGTERM" : "SIGINT");
        // Drain the front-end first: in-flight fan-outs observe the
        // drain token, cancel their sub-sweeps and finish; only then
        // stop the probes and the client loop they rode on.
        server.shutdown();
        coordinator.stop();
        std::fprintf(stderr, "dieirb-coord: drained, exiting 0\n");
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
