/**
 * @file
 * dieirb-sim — the command-line simulator driver (the repo's equivalent
 * of SimpleScalar's sim-outorder).
 *
 * Usage:
 *   dieirb-sim [options] (-w <workload> | <program.s>) [key=value ...]
 *
 * Options:
 *   -w <name>       run a built-in workload (see -l) instead of a file
 *   -l              list built-in workloads and exit
 *   -m <mode>       sie | die | die-irb            (default sie)
 *   -n <insts>      max architectural instructions (default 50M)
 *   --cores <n>     simulate an n-core CMP over a shared L2 (shorthand
 *                   for cmp.cores=n; pair with cmp.bundle=<mix> to give
 *                   each core its own kernel)
 *   -s <scale>      workload scale factor          (default 1)
 *   -d              dump the full statistics block
 *   -g              golden-check against the functional VM
 *   -q              quiet (suppress warn/inform)
 *   --trace[=file]  record a pipeline trace; writes <file> (Konata /
 *                   O3PipeView text) and <file>.json (Chrome trace_event)
 *   --stats-json <file>  dump the flattened statistics snapshot as JSON
 *   --checkpoint-at <n>  fast-forward n instructions on the functional
 *                   VM, write an architectural checkpoint and exit
 *                   (no timing run); pair with --checkpoint-out
 *   --checkpoint-out <file>  where --checkpoint-at writes (default
 *                   <program>.ckpt)
 *   --restore <file>  restore a --checkpoint-at checkpoint before the
 *                   timing run (= ckpt.restore=<file>); the reported
 *                   instruction totals still cover the whole program,
 *                   so a restored run is arch-identical to a straight
 *                   one — only the timing-only counters shrink to the
 *                   simulated suffix
 *
 * Both report sinks accept "-" for stdout, so the server and shell
 * pipelines can consume reports without temp files (e.g.
 * `dieirb-sim -w route --stats-json - | python3 -m json.tool`). With a
 * stdout sink the human-readable summary moves to stderr, and
 * `--trace=-` defaults trace.format to konata (only one format can own
 * the stream; override with trace.format=chrome).
 *   --list-config   print every recognized key=value configuration knob
 *                   (name, type, default, description) and exit
 *
 * Any trailing key=value pairs override machine configuration, e.g.
 *   dieirb-sim -w compress -m die-irb -d irb.entries=2048 fu.intalu=2
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "store/checkpoint.hh"
#include "trace/trace.hh"
#include "vm/checkpoint.hh"
#include "workloads/workloads.hh"

using namespace direb;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] (-w <workload> | <program.s>) "
                 "[key=value ...]\n"
                 "  -w <name>   built-in workload (-l to list)\n"
                 "  -l          list workloads\n"
                 "  -m <mode>   sie | die | die-irb (default sie)\n"
                 "  -n <insts>  max architectural instructions\n"
                 "  --cores <n> n-core CMP over a shared L2 "
                 "(= cmp.cores=n)\n"
                 "  -s <scale>  workload scale factor\n"
                 "  -d          dump full statistics\n"
                 "  -g          golden-check against the functional VM\n"
                 "  -q          quiet\n"
                 "  --trace[=file]       record a pipeline trace "
                 "(Konata text + Chrome JSON)\n"
                 "  --stats-json <file>  dump the statistics snapshot as "
                 "JSON\n"
                 "  --checkpoint-at <n>  write an architectural "
                 "checkpoint after n instructions and exit\n"
                 "  --checkpoint-out <file>  checkpoint destination "
                 "(default <program>.ckpt)\n"
                 "  --restore <file>     restore a checkpoint before the "
                 "timing run\n"
                 "  --list-config        print every recognized config "
                 "key and exit\n",
                 argv0);
}

/**
 * Print the full configuration-key registry. The registry fills lazily
 * (a key is recorded the first time a component reads it), so run one
 * tiny throwaway sweep point in the most featureful mode first: die-irb
 * registers the IRB knobs on top of everything a SIE run reads, and the
 * sweep/trace-export paths register their keys too.
 */
int
listConfig()
{
    setQuiet(true);
    harness::Sweep sweep(1);
    sweep.add("probe", "route", harness::baseConfig("die-irb"), 1, 1'000);
    sweep.run();

    const std::vector<ConfigKeyInfo> keys = Config::registeredKeys();
    std::size_t kw = std::strlen("key");
    std::size_t tw = std::strlen("type");
    std::size_t dw = std::strlen("default");
    for (const ConfigKeyInfo &k : keys) {
        kw = std::max(kw, k.key.size());
        tw = std::max(tw, k.type.size());
        dw = std::max(dw, k.def.size());
    }
    std::printf("%-*s  %-*s  %-*s  %s\n", static_cast<int>(kw), "key",
                static_cast<int>(tw), "type", static_cast<int>(dw),
                "default", "description");
    std::printf("%s\n",
                std::string(kw + tw + dw + 6 + std::strlen("description"),
                            '-')
                    .c_str());
    for (const ConfigKeyInfo &k : keys) {
        std::printf("%-*s  %-*s  %-*s  %s\n", static_cast<int>(kw),
                    k.key.c_str(), static_cast<int>(tw), k.type.c_str(),
                    static_cast<int>(dw), k.def.c_str(), k.desc.c_str());
    }
    return 0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string file;
    std::string mode = "sie";
    std::uint64_t max_insts = 50'000'000;
    unsigned scale = 1;
    unsigned cores = 0; // 0 = not given on the command line
    bool dump_stats = false;
    bool golden = false;
    bool trace = false;
    std::string trace_path;
    std::string stats_json;
    std::uint64_t checkpoint_at = 0; // 0 = no checkpoint capture
    std::string checkpoint_out;
    std::string restore;
    std::vector<std::string> overrides;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "-w") {
            workload = next();
        } else if (a == "-l") {
            for (const auto &w : workloads::list()) {
                std::printf("%-10s (%s)  %s\n", w.name.c_str(),
                            w.mimics.c_str(), w.description.c_str());
            }
            return 0;
        } else if (a == "-m") {
            mode = next();
        } else if (a == "-n") {
            max_insts = std::strtoull(next(), nullptr, 0);
        } else if (a == "--cores") {
            cores = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (a == "-s") {
            scale = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (a == "-d") {
            dump_stats = true;
        } else if (a == "-g") {
            golden = true;
        } else if (a == "-q") {
            setQuiet(true);
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else if (a == "--trace") {
            trace = true;
        } else if (a.rfind("--trace=", 0) == 0) {
            trace = true;
            trace_path = a.substr(std::strlen("--trace="));
        } else if (a == "--stats-json") {
            stats_json = next();
        } else if (a == "--checkpoint-at") {
            checkpoint_at = std::strtoull(next(), nullptr, 0);
        } else if (a == "--checkpoint-out") {
            checkpoint_out = next();
        } else if (a == "--restore") {
            restore = next();
        } else if (a == "--list-config") {
            try {
                return listConfig();
            } catch (const FatalError &e) {
                std::fprintf(stderr, "fatal: %s\n", e.what());
                return 1;
            }
        } else if (a.find('=') != std::string::npos) {
            overrides.push_back(a);
        } else if (file.empty() && workload.empty()) {
            file = a;
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    if (workload.empty() && file.empty()) {
        usage(argv[0]);
        return 1;
    }

    try {
        Config cfg = harness::baseConfig(mode);
        if (cores != 0)
            cfg.set("cmp.cores", std::to_string(cores));
        if (trace) {
            if (trace_path.empty())
                trace_path =
                    (!workload.empty() ? workload : file) + ".trace";
            cfg.set("trace.enabled", "true");
            cfg.set("trace.path", trace_path);
            // Only one exporter can own stdout; konata is the default
            // there (trace.format=chrome below still overrides it).
            if (trace_path == "-")
                cfg.set("trace.format", "konata");
        }
        cfg.parseAll(overrides); // key=value may still override trace.*
        if (!restore.empty())
            cfg.set("ckpt.restore", restore);

        // Machine-readable output on stdout demotes the human summary
        // to stderr — and the two sinks cannot share one stream.
        fatal_if(trace_path == "-" && stats_json == "-",
                 "--trace=- and --stats-json - both want stdout");
        std::FILE *human =
            (trace_path == "-" || stats_json == "-") ? stderr : stdout;

        const Program prog = !workload.empty()
            ? workloads::build(workload, scale)
            : assemble(readFile(file), file);

        if (checkpoint_at != 0) {
            // Capture is purely architectural (functional VM), so the
            // timing configuration is irrelevant and no timing run
            // happens: fast-forward, save, done.
            fatal_if(golden,
                     "--checkpoint-at runs no timing core; drop -g");
            if (checkpoint_out.empty())
                checkpoint_out =
                    (!workload.empty() ? workload : file) + ".ckpt";
            const ArchCheckpoint ck = fastForward(prog, checkpoint_at);
            store::saveCheckpoint(checkpoint_out, ck);
            std::fprintf(human,
                         "checkpoint : %s (%llu instructions, %zu "
                         "touched pages)\n",
                         checkpoint_out.c_str(),
                         static_cast<unsigned long long>(ck.insts),
                         ck.pages.size());
            return 0;
        }

        harness::SimResult r;
        if (golden) {
            // goldenRun returns the timing run's results, so the golden
            // path costs one timing simulation, not two.
            harness::GoldenResult g = harness::goldenRun(prog, cfg,
                                                         max_insts);
            if (!g.ok()) {
                std::fprintf(stderr, "GOLDEN CHECK FAILED: %s\n",
                             g.mismatch.c_str());
                return 2;
            }
            std::fprintf(human, "golden check: ok\n");
            r = std::move(g.sim);
        } else {
            r = harness::run(prog, cfg, max_insts);
        }
        cfg.checkUnused(); // typoed key=value overrides fail loudly

        std::fprintf(human, "program    : %s\n", prog.name.c_str());
        std::fprintf(human, "mode       : %s\n", mode.c_str());
        std::fprintf(human, "stopped    : %s\n",
                     r.core.stop == StopReason::Halted ? "halt"
                     : r.core.stop == StopReason::BadPc ? "bad pc"
                                                        : "inst limit");
        // The architectural instruction total covers the whole program
        // even when a checkpoint skipped the prefix, so a restored run
        // reports the same totals as a straight one.
        std::fprintf(human, "instructions: %llu\n",
                     static_cast<unsigned long long>(r.core.archInsts +
                                                     r.warmstartInsts));
        if (r.warmstartInsts != 0) {
            std::fprintf(human,
                         "warm start : %llu instructions restored from "
                         "a checkpoint (timing covers the last %llu)\n",
                         static_cast<unsigned long long>(r.warmstartInsts),
                         static_cast<unsigned long long>(r.core.archInsts));
        }
        std::fprintf(human, "cycles     : %llu\n",
                     static_cast<unsigned long long>(r.core.cycles));
        std::fprintf(human, "IPC        : %.4f\n", r.core.ipc);
        for (std::size_t c = 0; c < r.cores.size(); ++c) {
            const CoreResult &cr = r.cores[c];
            std::fprintf(human,
                         "core%-7zu: %llu insts, %llu cycles, IPC %.4f\n",
                         c,
                         static_cast<unsigned long long>(cr.archInsts),
                         static_cast<unsigned long long>(cr.cycles),
                         cr.ipc);
        }
        if (!r.output.empty())
            std::fprintf(human, "output     : %s", r.output.c_str());
        if (trace) {
            if (!trace::compiledIn())
                std::fprintf(human,
                             "trace      : EMPTY — tracing hooks "
                             "compiled out (DIREB_TRACING=OFF)\n");
            else if (trace_path == "-")
                std::fprintf(human, "trace      : stdout\n");
            else
                std::fprintf(human, "trace      : %s (+ %s.json)\n",
                             trace_path.c_str(), trace_path.c_str());
        }
        if (dump_stats)
            std::fprintf(human, "\n%s", r.statsText.c_str());

        if (!stats_json.empty()) {
            harness::Json root = harness::Json::object();
            root.set("program", prog.name);
            root.set("mode", mode);
            root.set("stop",
                     r.core.stop == StopReason::Halted    ? "halt"
                     : r.core.stop == StopReason::BadPc   ? "bad pc"
                                                          : "inst limit");
            root.set("arch_insts", r.core.archInsts + r.warmstartInsts);
            root.set("cycles", static_cast<std::uint64_t>(r.core.cycles));
            root.set("ipc", r.core.ipc);
            // Only present on warm-started runs, so straight runs keep
            // their established JSON shape byte-for-byte.
            if (r.warmstartInsts != 0)
                root.set("warmstart_insts", r.warmstartInsts);
            // Only present when a trace was requested, so runs without
            // --trace keep their established JSON shape byte-for-byte.
            if (trace)
                root.set("trace_compiled_out", !trace::compiledIn());
            harness::Json stats = harness::Json::object();
            for (const auto &[name, value] : r.stats)
                stats.set(name, value);
            root.set("stats", std::move(stats));
            harness::writeJsonReport(stats_json, root);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
