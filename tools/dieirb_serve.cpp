/**
 * @file
 * dieirb-serve — the batching simulation server.
 *
 * Serves the DIE/IRB simulation engine over HTTP/1.1 on a non-blocking
 * epoll event loop (keep-alive connections, chunked streaming sweeps,
 * no third-party deps):
 *
 *   POST /v1/simulate   one (workload, Config) point
 *   POST /v1/sweep      a (workload x Config) matrix via harness::Sweep;
 *                       `"stream": true` => NDJSON per-point streaming
 *   POST /v1/query      aggregate over mounted result stores (--store)
 *   GET  /v1/jobs/<id>  async job status / result
 *   GET  /healthz       liveness + queue occupancy
 *   GET  /metrics       Prometheus text format
 *
 * Usage:
 *   dieirb-serve [options]
 *     --port N            listen port (default 8100; 0 = kernel pick)
 *     --host A            listen address (default 127.0.0.1)
 *     --workers N         simulation worker threads (default: hw)
 *     --http-threads N    request dispatch threads (default 16)
 *     --queue-depth N     max outstanding jobs before 429 (default 64)
 *     --cache-dir D       sweep result cache directory (default: off)
 *     --store F           mount a dieirb-store artifact for /v1/query
 *                         (repeatable; default: none, /v1/query = 404)
 *     --sweep-jobs N      threads inside one sweep job (default 1)
 *     --deadline-ms N     sync-request wait before 202 (default 60000)
 *     --max-body N        request body limit in bytes (default 8 MiB)
 *     --socket-timeout-ms N  read-a-request / stalled-write deadline
 *     --idle-timeout-ms N    keep-alive idle close (default 30000)
 *     --keepalive-max N      requests per connection, 0 = unlimited
 *     --job-history N     finished job records kept for /v1/jobs (4096)
 *     -q                  quiet (suppress per-request log lines)
 *
 * SIGTERM/SIGINT trigger a graceful drain: stop accepting, reject new
 * jobs with 503, cancel the pending remainder of in-flight sweeps,
 * finish accepted jobs, exit 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "service/server.hh"

using namespace direb;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --port N          listen port (default 8100; 0 = kernel)\n"
        "  --host A          listen address (default 127.0.0.1)\n"
        "  --workers N       simulation worker threads (default: hw)\n"
        "  --http-threads N  connection handler threads (default 16)\n"
        "  --queue-depth N   max outstanding jobs before 429 (64)\n"
        "  --cache-dir D     sweep result cache directory (off)\n"
        "  --store F         mount an artifact for /v1/query "
        "(repeatable)\n"
        "  --sweep-jobs N    threads inside one sweep job (1)\n"
        "  --deadline-ms N   sync wait before 202 handoff (60000)\n"
        "  --max-body N      request body limit, bytes (8388608)\n"
        "  --socket-timeout-ms N  read/stalled-write deadline (10000)\n"
        "  --idle-timeout-ms N    keep-alive idle close (30000)\n"
        "  --keepalive-max N      requests per connection, 0=inf (1000)\n"
        "  --job-history N   finished job records kept (4096)\n"
        "  -q                quiet\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--port") {
            opts.port = static_cast<unsigned short>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--host") {
            opts.host = next();
        } else if (a == "--workers") {
            opts.workers = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--http-threads") {
            opts.httpThreads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--queue-depth") {
            opts.queueDepth = std::strtoull(next(), nullptr, 10);
        } else if (a == "--cache-dir") {
            opts.cacheDir = next();
        } else if (a == "--store") {
            opts.storePaths.push_back(next());
        } else if (a == "--sweep-jobs") {
            opts.sweepJobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--deadline-ms") {
            opts.defaultDeadlineMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--max-body") {
            opts.maxBodyBytes = std::strtoull(next(), nullptr, 10);
        } else if (a == "--socket-timeout-ms") {
            opts.socketTimeoutMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--idle-timeout-ms") {
            opts.idleTimeoutMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--keepalive-max") {
            opts.keepAliveMaxRequests = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (a == "--job-history") {
            opts.jobHistory = std::strtoull(next(), nullptr, 10);
        } else if (a == "-q") {
            setQuiet(true);
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    // Broken client connections surface as EPIPE from send(), never as
    // a process-killing signal; drain signals are consumed by sigwait
    // below, so block them before any thread is spawned (threads
    // inherit the mask).
    std::signal(SIGPIPE, SIG_IGN);
    sigset_t drainSignals;
    sigemptyset(&drainSignals);
    sigaddset(&drainSignals, SIGINT);
    sigaddset(&drainSignals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &drainSignals, nullptr);

    try {
        service::Server server(opts);
        server.start();
        std::string cache_note =
            opts.cacheDir.empty() ? "" : ", cache=" + opts.cacheDir;
        if (!opts.storePaths.empty()) {
            cache_note +=
                ", stores=" + std::to_string(opts.storePaths.size());
        }
        std::printf("dieirb-serve listening on %s:%u "
                    "(workers=%u http-threads=%u queue-depth=%zu%s)\n",
                    opts.host.c_str(),
                    static_cast<unsigned>(server.port()),
                    server.jobs().workers(), opts.httpThreads,
                    server.jobs().capacity(), cache_note.c_str());
        std::fflush(stdout);

        int sig = 0;
        sigwait(&drainSignals, &sig);
        std::fprintf(stderr,
                     "dieirb-serve: signal %d (%s), draining...\n", sig,
                     sig == SIGTERM ? "SIGTERM" : "SIGINT");
        server.shutdown();
        std::fprintf(stderr, "dieirb-serve: drained, exiting 0\n");
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
