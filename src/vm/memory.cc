#include "vm/memory.hh"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace direb
{

std::uint8_t
Memory::peek(Addr addr) const
{
    const Addr pn = addr >> pageShift;
    const auto it = pages.find(pn);
    if (it == pages.end())
        return 0;
    return (*it->second)[addr & (pageSize - 1)];
}

void
Memory::poke(Addr addr, std::uint8_t byte)
{
    const Addr pn = addr >> pageShift;
    auto it = pages.find(pn);
    if (it == pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages.emplace(pn, std::move(page)).first;
    }
    (*it->second)[addr & (pageSize - 1)] = byte;
}

std::uint64_t
Memory::read(Addr addr, unsigned size) const
{
    assert(size >= 1 && size <= 8);
    std::uint64_t val = 0;
    for (unsigned i = 0; i < size; ++i)
        val |= static_cast<std::uint64_t>(peek(addr + i)) << (8 * i);
    return val;
}

void
Memory::write(Addr addr, std::uint64_t value, unsigned size)
{
    assert(size >= 1 && size <= 8);
    for (unsigned i = 0; i < size; ++i)
        poke(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Memory::writeBlob(Addr addr, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        poke(addr + i, bytes[i]);
}

std::vector<Addr>
Memory::touchedPageNumbers() const
{
    std::vector<Addr> out;
    out.reserve(pages.size());
    for (const auto &[pn, page] : pages)
        out.push_back(pn);
    std::sort(out.begin(), out.end());
    return out;
}

void
Memory::readBlob(Addr addr, void *data, std::size_t len) const
{
    auto *bytes = static_cast<std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        bytes[i] = peek(addr + i);
}

} // namespace direb
