#include "vm/checkpoint.hh"

#include "common/logging.hh"
#include "vm/vm.hh"

namespace direb
{

namespace
{

void
fnvFeed(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
}

void
fnvFeedU64(std::uint64_t &h, std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    fnvFeed(h, b, sizeof(b));
}

} // namespace

std::uint64_t
programImageFnv(const Program &program)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint32_t w : program.text)
        fnvFeedU64(h, w);
    if (!program.data.empty())
        fnvFeed(h, program.data.data(), program.data.size());
    fnvFeedU64(h, program.entry);
    return h;
}

ArchCheckpoint
captureCheckpoint(const ArchState &state, const Memory &mem,
                  std::uint64_t insts, std::uint64_t program_fnv)
{
    ArchCheckpoint ck;
    ck.programFnv = program_fnv;
    ck.insts = insts;
    ck.pc = state.pc;
    ck.out = state.out;
    for (unsigned r = 0; r < numIntRegs; ++r)
        ck.intRegs[r] = state.readIntReg(r);
    for (unsigned r = 0; r < numFpRegs; ++r)
        ck.fpRegs[r] = state.readFpReg(r);
    for (const Addr pn : mem.touchedPageNumbers()) {
        CheckpointPage page;
        page.pageNumber = pn;
        page.bytes.resize(Memory::pageSize);
        mem.readBlob(pn << Memory::pageShift, page.bytes.data(),
                     page.bytes.size());
        ck.pages.push_back(std::move(page));
    }
    return ck;
}

void
applyCheckpoint(const ArchCheckpoint &ck, ArchState &state, Memory &mem)
{
    mem.clear();
    for (const CheckpointPage &page : ck.pages) {
        panic_if(page.bytes.size() != Memory::pageSize,
                 "checkpoint page of %zu bytes", page.bytes.size());
        mem.writeBlob(page.pageNumber << Memory::pageShift,
                      page.bytes.data(), page.bytes.size());
    }
    for (unsigned r = 0; r < numIntRegs; ++r)
        state.writeIntReg(r, ck.intRegs[r]);
    for (unsigned r = 0; r < numFpRegs; ++r)
        state.writeFpReg(r, ck.fpRegs[r]);
    state.pc = ck.pc;
    state.out = ck.out;
}

ArchCheckpoint
fastForward(const Program &program, std::uint64_t insts)
{
    fatal_if(insts == 0, "checkpoint boundary must be positive");
    Vm vm(program);
    const StopReason stop = vm.run(insts);
    fatal_if(stop != StopReason::InstLimit,
             "program '%s' stopped (%s) after %llu instructions — cannot "
             "checkpoint at %llu",
             program.name.c_str(),
             stop == StopReason::Halted ? "halt" : "bad pc",
             static_cast<unsigned long long>(vm.instCount()),
             static_cast<unsigned long long>(insts));
    return captureCheckpoint(vm.state(), vm.state().mem, vm.instCount(),
                             programImageFnv(program));
}

} // namespace direb
