/**
 * @file
 * Sparse byte-addressable simulated memory.
 *
 * Backed by 4 KiB pages allocated on first touch. Reads of untouched
 * memory return zero — this is load-bearing: wrong-path (speculative)
 * execution in the out-of-order core may compute wild addresses, and those
 * accesses must be harmless.
 */

#ifndef DIREB_VM_MEMORY_HH
#define DIREB_VM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace direb
{

/** Sparse simulated physical memory. */
class Memory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr(1) << pageShift;

    Memory() = default;
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    /** Read @p size (1..8) bytes, little-endian, zero for untouched. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size (1..8) bytes of @p value, little-endian. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Bulk copy-in (program loading). */
    void writeBlob(Addr addr, const void *data, std::size_t len);

    /** Bulk copy-out (test inspection). */
    void readBlob(Addr addr, void *data, std::size_t len) const;

    /** Number of pages that have been touched. */
    std::size_t pagesAllocated() const { return pages.size(); }

    /**
     * Page numbers of every touched page, sorted ascending — the
     * deterministic iteration order architectural checkpoints are
     * captured in (the backing map is unordered).
     */
    std::vector<Addr> touchedPageNumbers() const;

    /** Drop all contents. */
    void clear() { pages.clear(); }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    std::uint8_t peek(Addr addr) const;
    void poke(Addr addr, std::uint8_t byte);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace direb

#endif // DIREB_VM_MEMORY_HH
