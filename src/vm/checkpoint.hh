/**
 * @file
 * Architectural checkpoints: a snapshot of committed machine state at an
 * instruction boundary, taken by fast-forwarding the functional VM.
 *
 * A checkpoint is purely architectural — registers, pc, program output
 * and every touched memory page. No timing state (caches, predictors,
 * IRB) is captured, so a timing run restored from a checkpoint commits
 * the exact same architectural results as a straight run of the same
 * program, while its cycle counts reflect a cold microarchitecture at
 * the restore point. That is the intended trade: warm-starting a sweep
 * point skips re-executing a shared workload prefix, and the
 * arch-visible results stay golden-equal to the full run (enforced by
 * tests/test_store.cc).
 *
 * Serialisation (file format, compression, checksums) lives in
 * src/store/checkpoint.hh — this header is the in-memory state and the
 * capture/apply/fast-forward operations only, so the cpu layer can
 * restore a checkpoint without depending on the store codec.
 */

#ifndef DIREB_VM_CHECKPOINT_HH
#define DIREB_VM_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"
#include "vm/arch_state.hh"
#include "vm/memory.hh"
#include "vm/program.hh"

namespace direb
{

/** One captured page: page number + its full pageSize-byte image. */
struct CheckpointPage
{
    Addr pageNumber = 0;
    std::vector<std::uint8_t> bytes;
};

/** Committed architectural state at an instruction boundary. */
struct ArchCheckpoint
{
    /** Image hash of the program this was captured from (programImageFnv). */
    std::uint64_t programFnv = 0;
    /** Instructions committed before the snapshot (the prefix length). */
    std::uint64_t insts = 0;
    /** Next instruction to execute after restore. */
    Addr pc = 0;
    /** PUTC/PUTINT output accumulated over the prefix. */
    std::string out;
    std::array<RegVal, numIntRegs> intRegs{};
    std::array<RegVal, numFpRegs> fpRegs{};
    /** Touched pages, sorted by page number. */
    std::vector<CheckpointPage> pages;
};

/**
 * FNV-1a 64 over a program's text words, data bytes and entry point —
 * the identity a checkpoint is bound to. Matching hashes mean the same
 * loaded image, so a restore into a core bound to a different program
 * can be rejected instead of silently diverging.
 */
std::uint64_t programImageFnv(const Program &program);

/** Snapshot @p state / @p mem after @p insts committed instructions. */
ArchCheckpoint captureCheckpoint(const ArchState &state, const Memory &mem,
                                 std::uint64_t insts,
                                 std::uint64_t program_fnv);

/**
 * Load @p ck into @p state / @p mem, replacing their entire contents
 * (memory is cleared first: pages untouched at capture time must read
 * zero after restore, exactly as they did in the original run).
 */
void applyCheckpoint(const ArchCheckpoint &ck, ArchState &state,
                     Memory &mem);

/**
 * Execute exactly @p insts instructions of @p program on the functional
 * VM and capture the resulting checkpoint. fatal() if the program halts
 * or leaves the text segment before the boundary — a checkpoint past
 * the end of execution is meaningless.
 */
ArchCheckpoint fastForward(const Program &program, std::uint64_t insts);

} // namespace direb

#endif // DIREB_VM_CHECKPOINT_HH
