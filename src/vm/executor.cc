#include "vm/executor.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace direb
{

namespace
{

double
asDouble(RegVal bits_)
{
    return std::bit_cast<double>(bits_);
}

RegVal
asBits(double d)
{
    return std::bit_cast<RegVal>(d);
}

std::int64_t
s64(RegVal v)
{
    return static_cast<std::int64_t>(v);
}

} // namespace

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::SB:
        return 1;
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::SH:
        return 2;
      case Opcode::LW:
      case Opcode::LWU:
      case Opcode::SW:
        return 4;
      case Opcode::LD:
      case Opcode::SD:
      case Opcode::FLD:
      case Opcode::FSD:
        return 8;
      default:
        panic("memAccessSize on non-memory opcode %s", opName(op));
    }
}

ExecOutcome
execute(const Inst &inst, Addr pc, ExecContext &ctx)
{
    ExecOutcome out;
    out.nextPc = pc + 4;

    const auto rd_write = [&](RegVal v) {
        out.destVal = v;
        if (writesFpReg(inst.op))
            ctx.writeFpReg(inst.rd, v);
        else
            ctx.writeIntReg(inst.rd, v);
    };

    // Source operand values (recorded for the IRB reuse test).
    RegVal a = 0, b = 0;
    if (readsFpRegs(inst.op)) {
        a = ctx.readFpReg(inst.rs1);
        if (inst.usesRs2())
            b = ctx.readFpReg(inst.rs2);
    } else {
        switch (opFormat(inst.op)) {
          case Format::R:
          case Format::I:
          case Format::B:
          case Format::S:
            a = ctx.readIntReg(inst.rs1);
            if (inst.usesRs2()) {
                b = inst.op == Opcode::FSD ? ctx.readFpReg(inst.rs2)
                                           : ctx.readIntReg(inst.rs2);
            }
            break;
          default:
            break;
        }
    }
    out.op1Val = a;
    out.op2Val = b;

    const std::int64_t immS = inst.imm;
    const std::uint64_t immZ =
        static_cast<std::uint64_t>(inst.imm) & ((1u << immBitsI) - 1);

    switch (inst.op) {
      // ---- integer register-register -------------------------------------
      case Opcode::ADD: rd_write(a + b); break;
      case Opcode::SUB: rd_write(a - b); break;
      case Opcode::AND: rd_write(a & b); break;
      case Opcode::OR: rd_write(a | b); break;
      case Opcode::XOR: rd_write(a ^ b); break;
      case Opcode::SLL: rd_write(a << (b & 63)); break;
      case Opcode::SRL: rd_write(a >> (b & 63)); break;
      case Opcode::SRA:
        rd_write(static_cast<RegVal>(s64(a) >> (b & 63)));
        break;
      case Opcode::SLT: rd_write(s64(a) < s64(b) ? 1 : 0); break;
      case Opcode::SLTU: rd_write(a < b ? 1 : 0); break;
      case Opcode::MUL: rd_write(a * b); break;
      case Opcode::MULH:
        rd_write(static_cast<RegVal>(
            (static_cast<__int128>(s64(a)) * static_cast<__int128>(s64(b)))
            >> 64));
        break;
      case Opcode::DIV:
        if (b == 0) {
            rd_write(~RegVal(0));
        } else if (s64(a) == std::numeric_limits<std::int64_t>::min() &&
                   s64(b) == -1) {
            rd_write(a); // overflow case, RISC-V semantics
        } else {
            rd_write(static_cast<RegVal>(s64(a) / s64(b)));
        }
        break;
      case Opcode::DIVU:
        rd_write(b == 0 ? ~RegVal(0) : a / b);
        break;
      case Opcode::REM:
        if (b == 0) {
            rd_write(a);
        } else if (s64(a) == std::numeric_limits<std::int64_t>::min() &&
                   s64(b) == -1) {
            rd_write(0);
        } else {
            rd_write(static_cast<RegVal>(s64(a) % s64(b)));
        }
        break;
      case Opcode::REMU:
        rd_write(b == 0 ? a : a % b);
        break;

      // ---- integer register-immediate ------------------------------------
      case Opcode::ADDI: rd_write(a + static_cast<RegVal>(immS)); break;
      case Opcode::ANDI: rd_write(a & immZ); break;
      case Opcode::ORI: rd_write(a | immZ); break;
      case Opcode::XORI: rd_write(a ^ immZ); break;
      case Opcode::SLTI:
        rd_write(s64(a) < immS ? 1 : 0);
        break;
      case Opcode::SLLI: rd_write(a << (immZ & 63)); break;
      case Opcode::SRLI: rd_write(a >> (immZ & 63)); break;
      case Opcode::SRAI:
        rd_write(static_cast<RegVal>(s64(a) >> (immZ & 63)));
        break;
      case Opcode::LUI:
        rd_write(static_cast<RegVal>(immS) << immBitsI);
        break;

      // ---- control flow ---------------------------------------------------
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU: {
        bool take = false;
        switch (inst.op) {
          case Opcode::BEQ: take = a == b; break;
          case Opcode::BNE: take = a != b; break;
          case Opcode::BLT: take = s64(a) < s64(b); break;
          case Opcode::BGE: take = s64(a) >= s64(b); break;
          case Opcode::BLTU: take = a < b; break;
          case Opcode::BGEU: take = a >= b; break;
          default: break;
        }
        out.taken = take;
        out.target = pc + static_cast<Addr>(immS * 4);
        if (take)
            out.nextPc = out.target;
        out.result = (static_cast<RegVal>(out.target) << 1) |
                     (take ? 1 : 0);
        break;
      }
      case Opcode::JAL:
        rd_write(pc + 4);
        out.taken = true;
        out.target = pc + static_cast<Addr>(immS * 4);
        out.nextPc = out.target;
        out.result = out.target;
        break;
      case Opcode::JALR:
        rd_write(pc + 4);
        out.taken = true;
        out.target = (a + static_cast<Addr>(immS)) & ~Addr(1);
        out.nextPc = out.target;
        out.result = out.target;
        break;

      // ---- memory ----------------------------------------------------------
      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::LW:
      case Opcode::LWU:
      case Opcode::LD:
      case Opcode::FLD: {
        const unsigned size = memAccessSize(inst.op);
        out.effAddr = a + static_cast<Addr>(immS);
        std::uint64_t v = ctx.memRead(out.effAddr, size);
        switch (inst.op) {
          case Opcode::LB: v = static_cast<RegVal>(sext(v, 8)); break;
          case Opcode::LH: v = static_cast<RegVal>(sext(v, 16)); break;
          case Opcode::LW: v = static_cast<RegVal>(sext(v, 32)); break;
          default: break; // zero-extended / full-width
        }
        rd_write(v);
        out.result = out.effAddr; // IRB covers address generation only
        break;
      }
      case Opcode::SB:
      case Opcode::SH:
      case Opcode::SW:
      case Opcode::SD:
      case Opcode::FSD: {
        const unsigned size = memAccessSize(inst.op);
        out.effAddr = a + static_cast<Addr>(immS);
        out.storeData = b;
        ctx.memWrite(out.effAddr, b, size);
        out.result = out.effAddr;
        break;
      }

      // ---- floating point ---------------------------------------------------
      case Opcode::FADD: rd_write(asBits(asDouble(a) + asDouble(b))); break;
      case Opcode::FSUB: rd_write(asBits(asDouble(a) - asDouble(b))); break;
      case Opcode::FMUL: rd_write(asBits(asDouble(a) * asDouble(b))); break;
      case Opcode::FDIV: rd_write(asBits(asDouble(a) / asDouble(b))); break;
      case Opcode::FSQRT:
        rd_write(asBits(std::sqrt(asDouble(a))));
        break;
      case Opcode::FMIN:
        rd_write(asBits(std::fmin(asDouble(a), asDouble(b))));
        break;
      case Opcode::FMAX:
        rd_write(asBits(std::fmax(asDouble(a), asDouble(b))));
        break;
      case Opcode::FNEG: rd_write(asBits(-asDouble(a))); break;
      case Opcode::FABS: rd_write(asBits(std::fabs(asDouble(a)))); break;
      case Opcode::FMOV: rd_write(a); break;
      case Opcode::FEQ: rd_write(asDouble(a) == asDouble(b) ? 1 : 0); break;
      case Opcode::FLT: rd_write(asDouble(a) < asDouble(b) ? 1 : 0); break;
      case Opcode::FLE: rd_write(asDouble(a) <= asDouble(b) ? 1 : 0); break;
      case Opcode::FCVTDL:
        rd_write(asBits(static_cast<double>(s64(a))));
        break;
      case Opcode::FCVTLD: {
        const double d = asDouble(a);
        std::int64_t v;
        if (std::isnan(d)) {
            v = 0;
        } else if (d >= 9.2233720368547758e18) {
            v = std::numeric_limits<std::int64_t>::max();
        } else if (d <= -9.2233720368547758e18) {
            v = std::numeric_limits<std::int64_t>::min();
        } else {
            v = static_cast<std::int64_t>(d);
        }
        rd_write(static_cast<RegVal>(v));
        break;
      }

      // ---- system -----------------------------------------------------------
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        out.halted = true;
        break;
      case Opcode::PUTC: {
        const char buf[2] = {static_cast<char>(a & 0xff), '\0'};
        ctx.output(buf);
        break;
      }
      case Opcode::PUTINT: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld\n",
                      static_cast<long long>(s64(a)));
        ctx.output(buf);
        break;
      }

      default:
        panic("execute: unhandled opcode %s", opName(inst.op));
    }

    // For plain value-producing ops the IRB result is the destination value.
    if (!isControl(inst.op) && !isMem(inst.op) && writesReg(inst.op))
        out.result = out.destVal;

    return out;
}

} // namespace direb
