/**
 * @file
 * Abstract execution context: the register/memory/output view an
 * instruction executes against. The functional VM implements it with
 * architectural state; the out-of-order core implements it with a
 * speculation-aware overlay so wrong-path instructions execute harmlessly.
 */

#ifndef DIREB_VM_EXEC_CONTEXT_HH
#define DIREB_VM_EXEC_CONTEXT_HH

#include <cstdint>

#include "common/types.hh"

namespace direb
{

/** State interface consumed by the functional executor. */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** Read integer register @p idx (0..31); x0 must read as 0. */
    virtual RegVal readIntReg(unsigned idx) const = 0;
    /** Write integer register @p idx; writes to x0 must be dropped. */
    virtual void writeIntReg(unsigned idx, RegVal val) = 0;

    /** Read FP register @p idx (raw 64-bit pattern). */
    virtual RegVal readFpReg(unsigned idx) const = 0;
    /** Write FP register @p idx (raw 64-bit pattern). */
    virtual void writeFpReg(unsigned idx, RegVal val) = 0;

    /** Load @p size bytes from @p addr. */
    virtual std::uint64_t memRead(Addr addr, unsigned size) = 0;
    /** Store the low @p size bytes of @p val to @p addr. */
    virtual void memWrite(Addr addr, std::uint64_t val, unsigned size) = 0;

    /** Append program output (PUTC/PUTINT). */
    virtual void output(const char *text) = 0;
};

} // namespace direb

#endif // DIREB_VM_EXEC_CONTEXT_HH
