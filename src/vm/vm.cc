#include "vm/vm.hh"

#include "common/logging.hh"

namespace direb
{

void
loadProgram(const Program &program, Memory &mem, ArchState &state)
{
    if (!program.text.empty()) {
        mem.writeBlob(textBase, program.text.data(),
                      program.text.size() * 4);
    }
    if (!program.data.empty())
        mem.writeBlob(dataBase, program.data.data(), program.data.size());
    state.reset();
    state.pc = program.entry;
}

Vm::Vm(const Program &program) : prog(program), archState(mem)
{
    loadProgram(program, mem, archState);
}

bool
Vm::step()
{
    if (isHalted || !prog.inText(archState.pc))
        return false;

    const Inst inst = prog.fetch(archState.pc);
    const ExecOutcome out = execute(inst, archState.pc, archState);
    archState.pc = out.nextPc;
    ++insts;
    ++opClassCounts[static_cast<unsigned>(opClassOf(inst.op))];
    if (out.halted)
        isHalted = true;
    return !isHalted;
}

StopReason
Vm::run(std::uint64_t max_insts)
{
    while (insts < max_insts) {
        if (!prog.inText(archState.pc))
            return isHalted ? StopReason::Halted : StopReason::BadPc;
        if (!step())
            return StopReason::Halted;
    }
    return StopReason::InstLimit;
}

} // namespace direb
