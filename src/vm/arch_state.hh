/**
 * @file
 * Architectural state: the committed register files + memory + program
 * output. Implements ExecContext for the functional executor.
 */

#ifndef DIREB_VM_ARCH_STATE_HH
#define DIREB_VM_ARCH_STATE_HH

#include <array>
#include <string>

#include "isa/inst.hh"
#include "vm/exec_context.hh"
#include "vm/memory.hh"

namespace direb
{

/** Committed machine state, shared by the VM and the OOO core. */
class ArchState : public ExecContext
{
  public:
    explicit ArchState(Memory &memory) : mem(memory) { reset(); }

    /** Zero the register files and set up the ABI stack pointer. */
    void reset();

    RegVal
    readIntReg(unsigned idx) const override
    {
        return idx == 0 ? 0 : intRegs[idx & 31];
    }

    void
    writeIntReg(unsigned idx, RegVal val) override
    {
        if (idx != 0)
            intRegs[idx & 31] = val;
    }

    RegVal readFpReg(unsigned idx) const override { return fpRegs[idx & 31]; }
    void writeFpReg(unsigned idx, RegVal val) override
    {
        fpRegs[idx & 31] = val;
    }

    std::uint64_t
    memRead(Addr addr, unsigned size) override
    {
        return mem.read(addr, size);
    }

    void
    memWrite(Addr addr, std::uint64_t val, unsigned size) override
    {
        mem.write(addr, val, size);
    }

    void output(const char *text) override { out += text; }

    /** Read a register by unified id. */
    RegVal
    readReg(RegId r) const
    {
        return r < numIntRegs ? readIntReg(r) : readFpReg(r - numIntRegs);
    }

    /** Program counter. */
    Addr pc = 0;

    /** Accumulated PUTC/PUTINT output. */
    std::string out;

    /** Backing memory. */
    Memory &mem;

  private:
    std::array<RegVal, numIntRegs> intRegs{};
    std::array<RegVal, numFpRegs> fpRegs{};
};

} // namespace direb

#endif // DIREB_VM_ARCH_STATE_HH
