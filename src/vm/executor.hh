/**
 * @file
 * Functional executor: the single, shared definition of the ISA's
 * semantics. Both the golden-model VM and the timing core call execute();
 * the ExecOutcome additionally reports everything the timing model and the
 * IRB need (operand values, effective address, branch outcome).
 */

#ifndef DIREB_VM_EXECUTOR_HH
#define DIREB_VM_EXECUTOR_HH

#include "common/types.hh"
#include "isa/inst.hh"
#include "vm/exec_context.hh"

namespace direb
{

/**
 * Result of functionally executing one instruction.
 *
 * For the IRB, `result` is the value the ALU would have produced:
 *  - ALU/FP ops: the destination value;
 *  - loads/stores: the effective address (address-generation only —
 *    the memory access itself is outside the Sphere of Replication);
 *  - branches: (target << 1) | taken;
 *  - jumps: the target address.
 */
struct ExecOutcome
{
    Addr nextPc = 0;          //!< architecturally correct next PC
    RegVal result = 0;        //!< ALU-equivalent result (see above)
    RegVal destVal = 0;       //!< value written to dstReg (if any)
    RegVal op1Val = 0;        //!< first source operand value read
    RegVal op2Val = 0;        //!< second source operand value read
    Addr effAddr = invalidAddr; //!< memory effective address (loads/stores)
    std::uint64_t storeData = 0; //!< data for stores
    bool taken = false;       //!< control transfer taken
    Addr target = 0;          //!< control-transfer target (if control)
    bool halted = false;      //!< HALT executed
};

/**
 * Execute @p inst at @p pc against @p ctx.
 *
 * Semantics notes: logical immediates (ANDI/ORI/XORI) zero-extend their
 * 14-bit immediate (so LUI+ORI composes a 33-bit constant); arithmetic
 * immediates sign-extend. Division by zero yields -1 (DIV/DIVU) and the
 * dividend (REM/REMU), RISC-V style, so no instruction can trap.
 */
ExecOutcome execute(const Inst &inst, Addr pc, ExecContext &ctx);

/** Memory access size in bytes for a load/store opcode. */
unsigned memAccessSize(Opcode op);

} // namespace direb

#endif // DIREB_VM_EXECUTOR_HH
