#include "vm/program.hh"

#include <cstdio>

namespace direb
{

Inst
Program::fetch(Addr pc) const
{
    if (!inText(pc)) {
        // Wrong-path fetches may wander outside the image; feed NOPs so
        // the pipeline keeps flowing until the misprediction resolves.
        return Inst();
    }
    return decode(text[(pc - textBase) / 4]);
}

std::string
Program::listing() const
{
    std::string out;
    char line[128];
    for (std::size_t i = 0; i < text.size(); ++i) {
        const Inst inst = decode(text[i]);
        std::snprintf(line, sizeof(line), "%08llx:  %08x  %s\n",
                      static_cast<unsigned long long>(instAddr(i)), text[i],
                      inst.disasm().c_str());
        out += line;
    }
    return out;
}

} // namespace direb
