/**
 * @file
 * Functional virtual machine: the golden model. Executes a Program one
 * instruction at a time with no timing. The OOO core's architectural
 * results are validated against this in the integration tests.
 */

#ifndef DIREB_VM_VM_HH
#define DIREB_VM_VM_HH

#include <array>
#include <cstdint>

#include "vm/arch_state.hh"
#include "vm/executor.hh"
#include "vm/memory.hh"
#include "vm/program.hh"

namespace direb
{

/** Why a VM (or timing) run stopped. */
enum class StopReason : std::uint8_t
{
    Halted,      //!< program executed HALT
    InstLimit,   //!< hit the max-instruction budget
    BadPc,       //!< control left the text segment
};

/** Execution-driven functional simulator over the mini-ISA. */
class Vm
{
  public:
    explicit Vm(const Program &program);

    /**
     * Run up to @p max_insts instructions.
     * @return why execution stopped.
     */
    StopReason run(std::uint64_t max_insts = 100'000'000);

    /** Single-step one instruction; returns false once halted. */
    bool step();

    /** Committed instruction count. */
    std::uint64_t instCount() const { return insts; }

    /** Dynamic instruction count per operation class. */
    const std::array<std::uint64_t, 16> &classCounts() const
    {
        return opClassCounts;
    }

    /** Committed architectural state (registers, memory, output). */
    ArchState &state() { return archState; }
    const ArchState &state() const { return archState; }

    bool halted() const { return isHalted; }

  private:
    const Program &prog;
    Memory mem;
    ArchState archState;
    std::uint64_t insts = 0;
    bool isHalted = false;
    std::array<std::uint64_t, 16> opClassCounts{};
};

/** Load @p program into @p mem and initialise @p state (pc, sp). */
void loadProgram(const Program &program, Memory &mem, ArchState &state);

} // namespace direb

#endif // DIREB_VM_VM_HH
