#include "vm/arch_state.hh"

#include "vm/program.hh"

namespace direb
{

void
ArchState::reset()
{
    intRegs.fill(0);
    fpRegs.fill(0);
    writeIntReg(regSp, stackTop);
    pc = 0;
    out.clear();
}

} // namespace direb
