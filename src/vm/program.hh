/**
 * @file
 * Executable program image: encoded text segment, initial data segment,
 * entry point, and the standard memory-layout constants.
 */

#ifndef DIREB_VM_PROGRAM_HH
#define DIREB_VM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace direb
{

/** Standard memory layout. @{ */
constexpr Addr textBase = 0x1000;
constexpr Addr dataBase = 0x10000000;
constexpr Addr stackTop = 0x7ffff000;
/** @} */

/** Register ABI conventions used by workloads. @{ */
constexpr unsigned regRa = 1;  //!< return address
constexpr unsigned regSp = 2;  //!< stack pointer
/** @} */

/**
 * A loadable program: 32-bit instruction words at textBase, an initialised
 * data blob at dataBase.
 */
struct Program
{
    std::vector<std::uint32_t> text;
    std::vector<std::uint8_t> data;
    Addr entry = textBase;
    std::string name = "anonymous";

    /** Number of static instructions. */
    std::size_t size() const { return text.size(); }

    /** Address of instruction index @p i. */
    Addr instAddr(std::size_t i) const { return textBase + 4 * i; }

    /** True if @p pc lies inside the text segment. */
    bool
    inText(Addr pc) const
    {
        return pc >= textBase && pc < textBase + 4 * text.size() &&
               (pc & 3) == 0;
    }

    /** Decoded instruction at @p pc; NOP for out-of-text addresses. */
    Inst fetch(Addr pc) const;

    /** Append an already-decoded instruction (builder-style authoring). */
    void push(const Inst &inst) { text.push_back(inst.encode()); }

    /** Full disassembly listing (for debugging and doc examples). */
    std::string listing() const;
};

} // namespace direb

#endif // DIREB_VM_PROGRAM_HH
