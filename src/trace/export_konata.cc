/**
 * @file
 * gem5 O3PipeView text exporter. Konata (and gem5's own pipeline viewer
 * scripts) consume records of the form
 *
 *   O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
 *   O3PipeView:decode:<tick>
 *   O3PipeView:rename:<tick>
 *   O3PipeView:dispatch:<tick>
 *   O3PipeView:issue:<tick>
 *   O3PipeView:complete:<tick>
 *   O3PipeView:retire:<tick>:store:<tick>
 *
 * one block per dynamic instruction in sequence order. This core has no
 * separate decode/rename stages, so those are reported at the dispatch
 * cycle; an IRB reuse hit never issues to a functional unit, so its issue
 * tick collapses onto its completion tick (a zero-width execute interval —
 * the visual signature of an ALU bypass). Only committed instructions are
 * emitted; wrong-path and squashed work never retires and O3PipeView has
 * no representation for it.
 */

#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "trace/export.hh"

namespace direb
{

namespace trace
{

namespace
{

/** gem5 reports ticks, not cycles; Konata only needs a uniform scale. */
constexpr Cycle ticksPerCycle = 500;

/** Per-instruction lifecycle assembled from the event stream. */
struct Lifecycle
{
    Addr pc = 0;
    Inst inst;
    bool dup = false;
    bool sawFetch = false, sawDispatch = false, sawIssue = false;
    bool sawComplete = false, sawCommit = false;
    Cycle fetch = 0, dispatch = 0, issue = 0, complete = 0, commit = 0;
};

} // namespace

void
exportKonata(const Tracer &tracer, const std::string &path)
{
    std::map<InstSeq, Lifecycle> insts;
    for (const Event &ev : tracer.events()) {
        if (ev.seq == invalidSeq)
            continue;
        Lifecycle &lc = insts[ev.seq];
        switch (ev.kind) {
          case Kind::Fetch:
            lc.sawFetch = true;
            lc.fetch = ev.cycle;
            break;
          case Kind::Dispatch:
            lc.sawDispatch = true;
            lc.dispatch = ev.cycle;
            break;
          case Kind::Issue:
            lc.sawIssue = true;
            lc.issue = ev.cycle;
            break;
          case Kind::IrbReuseHit:
            // The reuse hit IS the duplicate's issue moment: it leaves the
            // window without touching an ALU.
            lc.sawIssue = true;
            lc.issue = ev.cycle;
            break;
          case Kind::Complete:
            lc.sawComplete = true;
            lc.complete = ev.cycle;
            break;
          case Kind::Commit:
            lc.sawCommit = true;
            lc.commit = ev.cycle;
            break;
          default:
            continue;
        }
        // Every lifecycle event carries the instruction's identity, so a
        // lifecycle whose early events were overwritten by the ring still
        // renders with its real pc/disasm.
        lc.pc = ev.pc;
        lc.inst = ev.inst;
        lc.dup = ev.dup;
    }

    // "-" streams to stdout for shell pipelines (dieirb-sim --trace=-).
    const bool toStdout = path == "-";
    FILE *out = toStdout ? stdout : std::fopen(path.c_str(), "w");
    fatal_if(out == nullptr, "cannot open trace file '%s'", path.c_str());

    for (const auto &[seq, lc] : insts) {
        if (!lc.sawCommit)
            continue;
        // Events before the ring window may have been overwritten; anchor
        // missing earlier stages on the first stage still present.
        const Cycle dispatch = lc.sawDispatch ? lc.dispatch : lc.commit;
        const Cycle fetch = lc.sawFetch ? lc.fetch : dispatch;
        const Cycle complete = lc.sawComplete ? lc.complete : lc.commit;
        const Cycle issue = lc.sawIssue ? lc.issue : complete;

        std::string disasm = lc.inst.disasm();
        if (lc.dup)
            disasm += " (dup)";
        std::fprintf(out, "O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s\n",
                     static_cast<unsigned long long>(fetch * ticksPerCycle),
                     static_cast<unsigned long long>(lc.pc),
                     static_cast<unsigned long long>(seq), disasm.c_str());
        std::fprintf(out, "O3PipeView:decode:%llu\n",
                     static_cast<unsigned long long>(dispatch *
                                                     ticksPerCycle));
        std::fprintf(out, "O3PipeView:rename:%llu\n",
                     static_cast<unsigned long long>(dispatch *
                                                     ticksPerCycle));
        std::fprintf(out, "O3PipeView:dispatch:%llu\n",
                     static_cast<unsigned long long>(dispatch *
                                                     ticksPerCycle));
        std::fprintf(out, "O3PipeView:issue:%llu\n",
                     static_cast<unsigned long long>(issue * ticksPerCycle));
        std::fprintf(out, "O3PipeView:complete:%llu\n",
                     static_cast<unsigned long long>(complete *
                                                     ticksPerCycle));
        std::fprintf(out, "O3PipeView:retire:%llu:store:0\n",
                     static_cast<unsigned long long>(lc.commit *
                                                     ticksPerCycle));
    }

    if (toStdout)
        fatal_if(std::fflush(out) != 0, "error writing trace to stdout");
    else
        fatal_if(std::fclose(out) != 0, "error writing trace file '%s'",
                 path.c_str());
}

} // namespace trace

} // namespace direb
