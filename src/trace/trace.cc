#include "trace/trace.hh"

#include "common/logging.hh"

namespace direb
{

namespace trace
{

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Fetch: return "fetch";
      case Kind::Dispatch: return "dispatch";
      case Kind::Issue: return "issue";
      case Kind::Complete: return "complete";
      case Kind::Commit: return "commit";
      case Kind::Squash: return "squash";
      case Kind::Wakeup: return "wakeup";
      case Kind::FetchStall: return "fetch_stall";
      case Kind::IrbLookup: return "irb_lookup";
      case Kind::IrbReuseHit: return "irb_reuse_hit";
      case Kind::IrbReuseMiss: return "irb_reuse_miss";
      case Kind::IrbUpdate: return "irb_update";
      case Kind::IrbVictimSwap: return "irb_victim_swap";
      case Kind::Recovery: return "recovery";
      case Kind::FaultDetect: return "fault_detect";
      case Kind::Rewind: return "rewind";
    }
    return "?";
}

Tracer::Tracer(std::size_t limit)
{
    fatal_if(limit == 0, "trace.limit must be positive");
    buf.resize(limit);
    group.addScalar(&numRecorded, "recorded", "trace events recorded");
    group.addScalar(&numDropped, "dropped",
                    "oldest events overwritten by a full ring buffer");
}

void
Tracer::recordAt(Cycle at, Kind kind, InstSeq seq, Addr pc, bool dup,
                 const Inst &inst, std::uint64_t arg)
{
    Event &slot = buf[(head + count) % buf.size()];
    if (count < buf.size()) {
        ++count;
    } else {
        // Ring full: overwrite the oldest event so the trace always
        // covers the tail of the run, and account for the loss.
        head = (head + 1) % buf.size();
        ++numDropped;
    }
    slot.cycle = at;
    slot.seq = seq;
    slot.pc = pc;
    slot.arg = arg;
    slot.inst = inst;
    slot.kind = kind;
    slot.dup = dup;
    ++numRecorded;
}

std::vector<Event>
Tracer::events() const
{
    std::vector<Event> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(buf[(head + i) % buf.size()]);
    return out;
}

} // namespace trace

} // namespace direb
