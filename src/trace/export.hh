/**
 * @file
 * Trace exporters: render a Tracer's event buffer as
 *
 *  - a gem5 O3PipeView text trace (loadable in Konata and other pipeline
 *    viewers): one fetch/decode/rename/dispatch/issue/complete/retire
 *    record per committed instruction, duplicates tagged "(dup)";
 *  - Chrome trace_event JSON (open in chrome://tracing or Perfetto):
 *    per-stage duration spans on two tracks (tid 0 = primary stream,
 *    tid 1 = duplicate stream) plus instant markers for machine-level
 *    events (I-cache stalls, recoveries, fault detections, rewinds,
 *    IRB victim swaps, reuse hits).
 *
 * Both exporters work from whatever survives in the bounded ring — when
 * events were dropped the rendered window is the tail of the run.
 */

#ifndef DIREB_TRACE_EXPORT_HH
#define DIREB_TRACE_EXPORT_HH

#include <string>

#include "trace/trace.hh"

namespace direb
{

namespace trace
{

/** Write an O3PipeView/Konata text trace of @p tracer to @p path. */
void exportKonata(const Tracer &tracer, const std::string &path);

/** Write a Chrome trace_event JSON rendering of @p tracer to @p path. */
void exportChromeTrace(const Tracer &tracer, const std::string &path);

} // namespace trace

} // namespace direb

#endif // DIREB_TRACE_EXPORT_HH
