/**
 * @file
 * Chrome trace_event JSON exporter (chrome://tracing, Perfetto, speedscope
 * all read this format). Each committed instruction becomes a chain of
 * "X" duration spans — fetch->dispatch wait, dispatch->issue wait,
 * issue->complete execute, complete->commit retire wait — on the track of
 * its stream (tid 0 = primary, tid 1 = duplicate), with 1 simulated cycle
 * rendered as 1 us. Machine-level events (I-cache stalls, recoveries,
 * fault detections, rewinds, IRB victim swaps) and IRB reuse hits become
 * "i" instant markers, so the timeline shows WHY a gap exists, not just
 * that it does.
 */

#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "trace/export.hh"

namespace direb
{

namespace trace
{

namespace
{

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

struct Lifecycle
{
    Addr pc = 0;
    Inst inst;
    bool dup = false;
    bool sawFetch = false, sawDispatch = false, sawIssue = false;
    bool sawComplete = false, sawCommit = false;
    Cycle fetch = 0, dispatch = 0, issue = 0, complete = 0, commit = 0;
};

class Writer
{
  public:
    // "-" streams to stdout for shell pipelines (trace.format=chrome).
    explicit Writer(const std::string &path)
        : out(path == "-" ? stdout : std::fopen(path.c_str(), "w")),
          toStdout(path == "-"), name(path)
    {
        fatal_if(out == nullptr, "cannot open trace file '%s'",
                 name.c_str());
        std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", out);
    }

    ~Writer()
    {
        std::fputs("\n]}\n", out);
        if (toStdout)
            fatal_if(std::fflush(out) != 0,
                     "error writing trace to stdout");
        else
            fatal_if(std::fclose(out) != 0,
                     "error writing trace file '%s'", name.c_str());
    }

    void
    meta(int tid, const std::string &thread_name)
    {
        sep();
        std::fprintf(out,
                     "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                     "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                     tid, jsonEscape(thread_name).c_str());
    }

    void
    span(const char *span_name, int tid, Cycle ts, Cycle dur,
         InstSeq seq, Addr pc, const std::string &disasm)
    {
        sep();
        std::fprintf(
            out,
            "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
            "\"ts\":%llu,\"dur\":%llu,\"args\":{\"seq\":%llu,"
            "\"pc\":\"0x%llx\",\"inst\":\"%s\"}}",
            span_name, tid, static_cast<unsigned long long>(ts),
            static_cast<unsigned long long>(dur),
            static_cast<unsigned long long>(seq),
            static_cast<unsigned long long>(pc),
            jsonEscape(disasm).c_str());
    }

    void
    instant(const char *inst_name, int tid, Cycle ts, std::uint64_t arg)
    {
        sep();
        std::fprintf(out,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\","
                     "\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                     "\"args\":{\"arg\":%llu}}",
                     inst_name, tid, static_cast<unsigned long long>(ts),
                     static_cast<unsigned long long>(arg));
    }

  private:
    void
    sep()
    {
        std::fputs(first ? "\n" : ",\n", out);
        first = false;
    }

    FILE *out;
    bool toStdout;
    std::string name;
    bool first = true;
};

} // namespace

void
exportChromeTrace(const Tracer &tracer, const std::string &path)
{
    const std::vector<Event> events = tracer.events();

    std::map<InstSeq, Lifecycle> insts;
    for (const Event &ev : events) {
        if (ev.seq == invalidSeq)
            continue;
        Lifecycle &lc = insts[ev.seq];
        switch (ev.kind) {
          case Kind::Fetch:
            lc.sawFetch = true;
            lc.fetch = ev.cycle;
            break;
          case Kind::Dispatch:
            lc.sawDispatch = true;
            lc.dispatch = ev.cycle;
            break;
          case Kind::Issue:
          case Kind::IrbReuseHit:
            lc.sawIssue = true;
            lc.issue = ev.cycle;
            break;
          case Kind::Complete:
            lc.sawComplete = true;
            lc.complete = ev.cycle;
            break;
          case Kind::Commit:
            lc.sawCommit = true;
            lc.commit = ev.cycle;
            break;
          default:
            continue;
        }
        // Identity travels on every lifecycle event, so ring-truncated
        // lifecycles still render with their real pc/disasm/stream.
        lc.pc = ev.pc;
        lc.inst = ev.inst;
        lc.dup = ev.dup;
    }

    Writer w(path);
    w.meta(0, "primary stream");
    w.meta(1, "duplicate stream");

    for (const auto &[seq, lc] : insts) {
        if (!lc.sawCommit)
            continue;
        const int tid = lc.dup ? 1 : 0;
        const Cycle dispatch = lc.sawDispatch ? lc.dispatch : lc.commit;
        const Cycle fetch = lc.sawFetch ? lc.fetch : dispatch;
        const Cycle complete = lc.sawComplete ? lc.complete : lc.commit;
        const Cycle issue = lc.sawIssue ? lc.issue : complete;
        const std::string disasm = lc.inst.disasm();

        w.span("fetch", tid, fetch, dispatch - fetch, seq, lc.pc, disasm);
        w.span("window", tid, dispatch, issue - dispatch, seq, lc.pc,
               disasm);
        w.span("execute", tid, issue, complete - issue, seq, lc.pc,
               disasm);
        w.span("retire-wait", tid, complete, lc.commit - complete, seq,
               lc.pc, disasm);
    }

    for (const Event &ev : events) {
        switch (ev.kind) {
          case Kind::FetchStall:
          case Kind::Recovery:
          case Kind::FaultDetect:
          case Kind::Rewind:
          case Kind::IrbVictimSwap:
            w.instant(kindName(ev.kind), ev.dup ? 1 : 0, ev.cycle, ev.arg);
            break;
          case Kind::IrbReuseHit:
            w.instant(kindName(ev.kind), 1, ev.cycle, ev.arg);
            break;
          default:
            break;
        }
    }
}

} // namespace trace

} // namespace direb
