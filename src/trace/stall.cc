#include "trace/stall.hh"

#include "common/logging.hh"

namespace direb
{

namespace trace
{

const char *
stallStageName(StallStage s)
{
    switch (s) {
      case StallStage::Fetch: return "fetch";
      case StallStage::Dispatch: return "dispatch";
      case StallStage::Issue: return "issue";
      case StallStage::Commit: return "commit";
    }
    return "?";
}

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::Busy: return "busy";
      case StallReason::IcacheMiss: return "icache_miss";
      case StallReason::Redirect: return "redirect";
      case StallReason::IfqFull: return "ifq_full";
      case StallReason::Drained: return "drained";
      case StallReason::FetchStarved: return "fetch_starved";
      case StallReason::WindowFull: return "window_full";
      case StallReason::LsqFull: return "lsq_full";
      case StallReason::PairAlign: return "pair_align";
      case StallReason::Empty: return "empty";
      case StallReason::OperandWait: return "operand_wait";
      case StallReason::FuContention: return "fu_contention";
      case StallReason::IrbDeferral: return "irb_deferral";
      case StallReason::ExecWait: return "exec_wait";
      case StallReason::Rewind: return "rewind";
      case StallReason::L2Wait: return "l2";
      case StallReason::DramWait: return "dram";
      case StallReason::Unattributed: return "unattributed";
      case StallReason::NumReasons: break;
    }
    return "?";
}

bool
StallAccount::allowed(StallStage s, StallReason r)
{
    if (r == StallReason::Busy || r == StallReason::Unattributed)
        return true;
    switch (s) {
      case StallStage::Fetch:
        return r == StallReason::IcacheMiss || r == StallReason::Redirect ||
               r == StallReason::IfqFull || r == StallReason::Drained ||
               r == StallReason::L2Wait || r == StallReason::DramWait;
      case StallStage::Dispatch:
        return r == StallReason::FetchStarved ||
               r == StallReason::WindowFull || r == StallReason::LsqFull ||
               r == StallReason::PairAlign || r == StallReason::Drained;
      case StallStage::Issue:
        return r == StallReason::Empty || r == StallReason::OperandWait ||
               r == StallReason::FuContention ||
               r == StallReason::IrbDeferral;
      case StallStage::Commit:
        return r == StallReason::Empty || r == StallReason::ExecWait ||
               r == StallReason::PairAlign || r == StallReason::Rewind;
    }
    return false;
}

void
StallAccount::init(unsigned fetch_w, unsigned decode_w, unsigned issue_w,
                   unsigned commit_w)
{
    widths[idx(StallStage::Fetch)] = fetch_w;
    widths[idx(StallStage::Dispatch)] = decode_w;
    widths[idx(StallStage::Issue)] = issue_w;
    widths[idx(StallStage::Commit)] = commit_w;
    beginCycle();
}

void
StallAccount::beginCycle()
{
    for (unsigned s = 0; s < numStallStages; ++s) {
        busyNow[s] = 0;
        blamedNow[s] = StallReason::Unattributed;
    }
}

void
StallAccount::busy(StallStage stage, unsigned n)
{
    busyNow[idx(stage)] += n;
}

void
StallAccount::blame(StallStage stage, StallReason reason)
{
    panic_if(!allowed(stage, reason), "reason %s not in %s's closed set",
             stallReasonName(reason), stallStageName(stage));
    blamedNow[idx(stage)] = reason;
}

void
StallAccount::endCycle()
{
    for (unsigned s = 0; s < numStallStages; ++s) {
        const unsigned width = widths[s];
        const unsigned used = busyNow[s];
        panic_if(used > width, "%s stage used %u slots of width %u",
                 stallStageName(static_cast<StallStage>(s)), used, width);
        counters[s][idx(StallReason::Busy)] += used;
        counters[s][idx(blamedNow[s])] += width - used;
    }
}

void
StallAccount::audit(std::uint64_t cycles) const
{
    for (unsigned s = 0; s < numStallStages; ++s) {
        const auto stage = static_cast<StallStage>(s);
        std::uint64_t sum = 0;
        for (unsigned r = 0; r < numStallReasons; ++r)
            sum += counters[s][r].value();
        const std::uint64_t expect = cycles * widths[s];
        panic_if(sum != expect,
                 "stall audit: %s slot-cycles %llu != cycles*width %llu",
                 stallStageName(stage),
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(expect));
        const std::uint64_t unattr =
            counters[s][idx(StallReason::Unattributed)].value();
        panic_if(unattr != 0,
                 "stall audit: %s has %llu unattributed slot-cycles",
                 stallStageName(stage),
                 static_cast<unsigned long long>(unattr));
    }
}

void
StallAccount::registerStats(stats::Group &parent)
{
    for (unsigned s = 0; s < numStallStages; ++s) {
        const auto stage = static_cast<StallStage>(s);
        for (unsigned r = 0; r < numStallReasons; ++r) {
            const auto reason = static_cast<StallReason>(r);
            if (!allowed(stage, reason))
                continue;
            std::string desc = std::string(stallStageName(stage)) +
                               " slot-cycles: " + stallReasonName(reason);
            stageGroups[s].addScalar(&counters[s][r],
                                     stallReasonName(reason), desc);
        }
        group.addChild(&stageGroups[s]);
    }
    parent.addChild(&group);
}

} // namespace trace

} // namespace direb
