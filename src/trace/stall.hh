/**
 * @file
 * Per-stage stall attribution for the out-of-order core.
 *
 * Every counted cycle, each bandwidth-limited stage (fetch, dispatch,
 * issue, commit) accounts for ALL of its width: slots that did work are
 * charged to "busy", and the cycle's leftover slots are charged to exactly
 * one reason from a closed per-stage set — so for every stage
 *
 *     sum(stall.<stage>.*) == core.cycles * <stage width>
 *
 * holds by construction (the core folds the per-cycle ledger into the
 * counters only when a cycle completes, i.e. in lock-step with
 * core.cycles). This turns the paper's "where did the ALU-attributable
 * IPC go" question into directly measured counters that reach every
 * SimResult.stats snapshot and BENCH_*.json report.
 *
 * The accounting is pure bookkeeping on values both scheduler
 * implementations (scan / ready_list) compute identically, so the
 * bit-identical-statistics contract of test_scheduler_diff extends to the
 * stall.* group.
 */

#ifndef DIREB_TRACE_STALL_HH
#define DIREB_TRACE_STALL_HH

#include <cstdint>

#include "common/stats.hh"

namespace direb
{

namespace trace
{

/** The bandwidth-limited stages that account for their width. */
enum class StallStage : std::uint8_t { Fetch, Dispatch, Issue, Commit };

constexpr unsigned numStallStages = 4;

/**
 * The closed reason set. Each stage registers (and may charge) only its
 * own subset; Busy is valid everywhere, Unattributed backstops leftover
 * slots no exit path blamed (asserted zero by test_trace).
 */
enum class StallReason : std::uint8_t
{
    Busy,         //!< slot did useful work
    IcacheMiss,   //!< fetch: I-cache miss in flight (fetch-starved)
    Redirect,     //!< fetch: post-squash bubble / taken-branch group end
    IfqFull,      //!< fetch: fetch/decode queue full (back pressure)
    Drained,      //!< fetch+dispatch: HALT seen, front end drained
    FetchStarved, //!< dispatch: fetch queue empty
    WindowFull,   //!< dispatch: no free RUU entries
    LsqFull,      //!< dispatch: no free load/store-queue entries
    PairAlign,    //!< DIE: odd leftover width cannot hold a full pair
    Empty,        //!< issue+commit: no in-flight instructions at all
    OperandWait,  //!< issue: window occupied but nothing operand-ready
    FuContention, //!< issue: ready instructions denied a functional unit
    IrbDeferral,  //!< issue: duplicates waiting on the IRB reuse test
    ExecWait,     //!< commit: head pair not yet executed/completed
    Rewind,       //!< commit: cycle lost to a checker-triggered rewind
    L2Wait,       //!< fetch: miss being served by the shared L2 (CMP)
    DramWait,     //!< fetch: miss that went all the way to DRAM (CMP)
    Unattributed, //!< leftover no exit path blamed (accounting bug guard)
    NumReasons,
};

constexpr unsigned numStallReasons =
    static_cast<unsigned>(StallReason::NumReasons);

const char *stallStageName(StallStage s);
const char *stallReasonName(StallReason r);

/**
 * The per-cycle ledger + cumulative counters. The core calls beginCycle()
 * at the top of tick(), the stages charge busy()/blame() as they run, and
 * endCycle() folds the ledger into the stats — called only for cycles
 * that complete, so the sum invariant tracks core.cycles exactly.
 */
class StallAccount
{
  public:
    /** Fix the per-stage widths (fetch, decode, issue, commit). */
    void init(unsigned fetch_w, unsigned decode_w, unsigned issue_w,
              unsigned commit_w);

    /** Reset the cycle ledger. */
    void beginCycle();

    /** Charge @p n slots of this cycle's @p stage width as useful work. */
    void busy(StallStage stage, unsigned n = 1);

    /**
     * Attribute this cycle's leftover @p stage slots to @p reason (last
     * call wins; irrelevant when the stage used its full width).
     */
    void blame(StallStage stage, StallReason reason);

    /** Fold the cycle ledger into the counters. */
    void endCycle();

    /** Register the stall.* groups under @p parent. */
    void registerStats(stats::Group &parent);

    /**
     * Panic unless the accounting invariant holds: for every stage,
     * sum(counters) == @p cycles * width and unattributed == 0. The Chip
     * runs this per core after every CMP simulation so the invariant that
     * test_trace spot-checks is asserted on every multi-core run too.
     */
    void audit(std::uint64_t cycles) const;

    /** Cumulative count for (@p stage, @p reason). */
    std::uint64_t
    value(StallStage stage, StallReason reason) const
    {
        return counters[idx(stage)][idx(reason)].value();
    }

  private:
    static unsigned idx(StallStage s) { return static_cast<unsigned>(s); }
    static unsigned idx(StallReason r) { return static_cast<unsigned>(r); }
    static bool allowed(StallStage s, StallReason r);

    unsigned widths[numStallStages] = {};
    unsigned busyNow[numStallStages] = {};
    StallReason blamedNow[numStallStages] = {};

    stats::Scalar counters[numStallStages][numStallReasons];
    stats::Group group{"stall"};
    stats::Group stageGroups[numStallStages] = {
        stats::Group("fetch"),
        stats::Group("dispatch"),
        stats::Group("issue"),
        stats::Group("commit"),
    };
};

} // namespace trace

} // namespace direb

#endif // DIREB_TRACE_STALL_HH
