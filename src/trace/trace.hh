/**
 * @file
 * Pipeline event tracing: a low-overhead per-instruction lifecycle
 * recorder for the out-of-order core.
 *
 * Every pipeline stage, the IRB, the redundancy checker and the scheduler
 * record typed events into a bounded ring buffer owned by the core. The
 * recorder is built for a near-zero disabled cost:
 *
 *  - off by default (trace.enabled=false): every hook is a single
 *    null-pointer test behind the DIREB_TRACE macro;
 *  - compile-to-nothing: building with -DDIREB_TRACING_ENABLED=0 (CMake
 *    option DIREB_TRACING=OFF) removes the hooks entirely;
 *  - bounded: the buffer holds trace.limit events (default 2^20). When
 *    full, the OLDEST event is overwritten (ring semantics) and the drop
 *    is counted — a trace therefore always covers the run's tail, and
 *    events_recorded == events_dropped + size() holds at all times.
 *
 * Exporters (src/trace/export.hh) render the buffer as a Konata /
 * gem5-O3PipeView text trace and as Chrome trace_event JSON.
 */

#ifndef DIREB_TRACE_TRACE_HH
#define DIREB_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/inst.hh"

/**
 * Compile-time switch: building with -DDIREB_TRACING_ENABLED=0 (CMake
 * option DIREB_TRACING=OFF) turns every hook macro into nothing. Defined
 * before the namespace so trace::compiledIn() can report it.
 */
#ifndef DIREB_TRACING_ENABLED
#define DIREB_TRACING_ENABLED 1
#endif

namespace direb
{

namespace trace
{

/**
 * Whether the tracing hooks exist in this build. A Tracer can still be
 * constructed with them compiled out — it just never receives events —
 * so owners should warn the user instead of silently producing an empty
 * trace.
 */
constexpr bool
compiledIn()
{
    return DIREB_TRACING_ENABLED != 0;
}

/** What happened. Per-instruction kinds carry the instruction's seq. */
enum class Kind : std::uint8_t
{
    Fetch,         //!< instruction entered the machine (cycle = fetch)
    Dispatch,      //!< RUU entry allocated, dataflow linked
    Issue,         //!< selected and sent to a functional unit
    Complete,      //!< result available / wakeup broadcast
    Commit,        //!< retired architecturally
    Squash,        //!< removed by a recovery or rewind
    Wakeup,        //!< last outstanding operand arrived
    FetchStall,    //!< front end blocked on an I-cache miss (arg = latency)
    IrbLookup,     //!< IRB probed at dispatch (arg bit0 = pcHit, bit1 = drop)
    IrbReuseHit,   //!< reuse test passed: duplicate bypasses the ALUs
    IrbReuseMiss,  //!< reuse test failed: duplicate executes normally
    IrbUpdate,     //!< commit-time IRB insertion/refresh
    IrbVictimSwap, //!< victim-buffer hit swapped back into the main array
    Recovery,      //!< branch misprediction recovery (squash + redirect)
    FaultDetect,   //!< commit checker caught a corrupted pair
    Rewind,        //!< checker-triggered rewind (arg = replay length)
};

/** Stable lower-case name for @p k (used by the exporters). */
const char *kindName(Kind k);

/** One recorded event. seq is invalidSeq for machine-level events. */
struct Event
{
    Cycle cycle = 0;
    InstSeq seq = invalidSeq;
    Addr pc = 0;
    std::uint64_t arg = 0;
    Inst inst;
    Kind kind = Kind::Fetch;
    bool dup = false; //!< duplicate-stream instruction (DIE modes)
};

/**
 * Bounded ring-buffer event recorder. One per OooCore, created only when
 * trace.enabled is set; the core stamps the current cycle via beginCycle()
 * so recording sites never pass it explicitly.
 */
class Tracer
{
  public:
    /** @param limit ring capacity in events (trace.limit, must be > 0). */
    explicit Tracer(std::size_t limit);

    /** Stamp the cycle all subsequent record() calls are tagged with. */
    void beginCycle(Cycle now) { now_ = now; }

    /** Record an event at the current cycle. */
    void
    record(Kind kind, InstSeq seq, Addr pc, bool dup, const Inst &inst,
           std::uint64_t arg = 0)
    {
        recordAt(now_, kind, seq, pc, dup, inst, arg);
    }

    /**
     * Record an event back-dated to cycle @p at (e.g. the fetch cycle of
     * an instruction only identified — given a seq — at dispatch).
     */
    void recordAt(Cycle at, Kind kind, InstSeq seq, Addr pc, bool dup,
                  const Inst &inst, std::uint64_t arg = 0);

    /** Ring capacity in events. */
    std::size_t capacity() const { return buf.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return count; }
    /** Total events ever recorded. */
    std::uint64_t recorded() const { return numRecorded.value(); }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return numDropped.value(); }

    /** The buffered events, oldest first (copies out of the ring). */
    std::vector<Event> events() const;

    stats::Group &statGroup() { return group; }

  private:
    std::vector<Event> buf; //!< fixed-size ring storage
    std::size_t head = 0;   //!< index of the oldest event
    std::size_t count = 0;  //!< live events
    Cycle now_ = 0;

    stats::Group group{"trace"};
    stats::Scalar numRecorded;
    stats::Scalar numDropped;
};

} // namespace trace

} // namespace direb

/**
 * Hook macros: DIREB_TRACE stamps the tracer's current cycle,
 * DIREB_TRACE_AT back-dates. @p t is a (possibly null) Tracer pointer or
 * smart pointer; with tracing compiled out both expand to nothing.
 */
#if DIREB_TRACING_ENABLED
#define DIREB_TRACE(t, ...)                                                   \
    do {                                                                      \
        if (t)                                                                \
            (t)->record(__VA_ARGS__);                                         \
    } while (0)
#define DIREB_TRACE_AT(t, ...)                                                \
    do {                                                                      \
        if (t)                                                                \
            (t)->recordAt(__VA_ARGS__);                                       \
    } while (0)
#else
#define DIREB_TRACE(t, ...)                                                   \
    do {                                                                      \
    } while (0)
#define DIREB_TRACE_AT(t, ...)                                                \
    do {                                                                      \
    } while (0)
#endif

#endif // DIREB_TRACE_TRACE_HH
