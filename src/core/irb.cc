#include "core/irb.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace direb
{

Irb::Irb(const Config &config)
{
    const std::size_t total = config.getUint(
        "irb.entries", 1024, "instruction reuse buffer entries");
    assoc = static_cast<unsigned>(
        config.getUint("irb.assoc", 1, "IRB set associativity"));
    fatal_if(assoc == 0, "irb.assoc must be positive");
    fatal_if(total % assoc != 0, "irb.entries must be divisible by assoc");
    sets = total / assoc;
    fatal_if(!isPowerOf2(sets), "irb set count must be a power of two");
    entries.resize(total);

    readPorts = static_cast<unsigned>(config.getUint(
        "irb.read_ports", 4, "IRB dedicated read (lookup) ports"));
    writePorts = static_cast<unsigned>(config.getUint(
        "irb.write_ports", 2, "IRB dedicated write (update) ports"));
    rwPorts = static_cast<unsigned>(config.getUint(
        "irb.rw_ports", 2, "IRB shared read/write ports"));
    pipeDepth = config.getUint(
        "irb.pipeline_depth", 3,
        "IRB access pipeline depth (port hold time in cycles)");

    const unsigned ctr_bits = static_cast<unsigned>(config.getUint(
        "irb.ctr_bits", 2,
        "reuse-confidence counter bits (0 disables filtering)"));
    fatal_if(ctr_bits > 8, "irb.ctr_bits out of range");
    ctrEnabled = ctr_bits > 0;
    ctrMax = ctrEnabled ? static_cast<std::uint8_t>((1u << ctr_bits) - 1) : 0;

    const std::size_t victims = config.getUint(
        "irb.victim_entries", 0,
        "victim buffer entries behind the IRB (0 = none)");
    victimBuf.resize(victims);

    beginCycle();

    group.addScalar(&numLookups, "lookups", "PC lookups attempted");
    group.addScalar(&numPcHits, "pc_hits", "lookups finding a valid entry");
    group.addScalar(&numPcMisses, "pc_misses", "lookups missing");
    group.addScalar(&numReuseHits, "reuse_hits",
                    "reuse tests passed (operands matched)");
    group.addScalar(&numReuseMisses, "reuse_misses",
                    "reuse tests failed (operands differed)");
    group.addScalar(&numLookupDrops, "lookup_port_drops",
                    "lookups dropped for lack of a port");
    group.addScalar(&numUpdates, "updates", "entries written at commit");
    group.addScalar(&numUpdateDrops, "update_port_drops",
                    "updates dropped for lack of a port");
    group.addScalar(&numCtrDeferrals, "ctr_deferrals",
                    "replacements deferred by CTR hysteresis");
    group.addScalar(&numVictimHits, "victim_hits",
                    "PC hits served from the victim buffer");
    group.addScalar(&numVictimSwapDeferrals, "victim_swap_deferrals",
                    "victim-hit swap-backs deferred for lack of a write "
                    "port");
    group.addScalar(&numEvictions, "evictions", "live entries replaced");
}

void
Irb::beginCycle()
{
    lookupsLeft = readPorts;
    updatesLeft = writePorts;
    sharedLeft = rwPorts;
}

std::size_t
Irb::setOf(Addr pc) const
{
    return (pc >> 2) & (sets - 1);
}

Irb::Entry *
Irb::find(Addr pc)
{
    const std::size_t base = setOf(pc) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.pc == pc)
            return &e;
    }
    return nullptr;
}

Irb::Entry *
Irb::findVictimBuf(Addr pc)
{
    for (auto &e : victimBuf) {
        if (e.valid && e.pc == pc)
            return &e;
    }
    return nullptr;
}

void
Irb::checkLookupInvariant() const
{
    // Every lookup has exactly one outcome; a drift here means some path
    // forgot (or double-counted) its tally.
    panic_if(numLookups.value() != numPcHits.value() + numPcMisses.value() +
                                       numLookupDrops.value(),
             "IRB lookup accounting drift: %llu lookups vs %llu hits + "
             "%llu misses + %llu drops",
             static_cast<unsigned long long>(numLookups.value()),
             static_cast<unsigned long long>(numPcHits.value()),
             static_cast<unsigned long long>(numPcMisses.value()),
             static_cast<unsigned long long>(numLookupDrops.value()));
}

IrbLookup
Irb::lookup(Addr pc)
{
    ++numLookups;
    IrbLookup res;

    if (lookupsLeft > 0) {
        --lookupsLeft;
    } else if (sharedLeft > 0) {
        --sharedLeft;
    } else {
        // A drop is its own outcome class: not a pc_miss (the tag was
        // never probed), but the owner treats it as one.
        ++numLookupDrops;
        res.portDrop = true;
        checkLookupInvariant();
        return res;
    }

    ++stamp;
    if (Entry *e = find(pc)) {
        e->lruStamp = stamp;
        // Useful entries charge their CTR up, buying resistance against
        // conflicting replacements (the hysteresis of Figure 4).
        if (ctrEnabled && e->ctr < ctrMax)
            ++e->ctr;
        res.pcHit = true;
        res.op1 = e->op1;
        res.op2 = e->op2;
        res.result = e->result;
        ++numPcHits;
        checkLookupInvariant();
        return res;
    }

    if (Entry *v = findVictimBuf(pc)) {
        // Hit in the victim buffer: serve it and swap back into the main
        // array so subsequent lookups hit directly.
        v->lruStamp = stamp;
        res.pcHit = true;
        res.op1 = v->op1;
        res.op2 = v->op2;
        res.result = v->result;
        ++numPcHits;
        ++numVictimHits;

        // The swap rewrites one entry in each array, which the read port
        // serving the probe cannot do: it has to buy a write/shared port
        // like any other update. With the budget exhausted the hit is
        // still served, but the swap is deferred to a later lookup.
        if (updatesLeft > 0) {
            --updatesLeft;
        } else if (sharedLeft > 0) {
            --sharedLeft;
        } else {
            ++numVictimSwapDeferrals;
            checkLookupInvariant();
            return res;
        }

        const std::size_t base = setOf(pc) * assoc;
        Entry *slot = &entries[base];
        for (unsigned w = 1; w < assoc; ++w) {
            Entry &cand = entries[base + w];
            if (!cand.valid) {
                slot = &cand;
                break;
            }
            if (cand.lruStamp < slot->lruStamp)
                slot = &cand;
        }
        std::swap(*slot, *v);
        slot->lruStamp = stamp;
        DIREB_TRACE(tracerPtr, trace::Kind::IrbVictimSwap, invalidSeq, pc,
                    false, Inst{});
        // The entry spilled by the swap enters the victim buffer *now*:
        // keeping its old main-array stamp would misrepresent it as the
        // LRU victim and get it dropped on the very next spill.
        v->lruStamp = stamp;
        checkLookupInvariant();
        return res;
    }

    ++numPcMisses;
    checkLookupInvariant();
    return res;
}

void
Irb::recordReuseTest(bool passed)
{
    if (passed)
        ++numReuseHits;
    else
        ++numReuseMisses;
}

bool
Irb::update(Addr pc, RegVal op1, RegVal op2, RegVal result)
{
    if (updatesLeft > 0) {
        --updatesLeft;
    } else if (sharedLeft > 0) {
        --sharedLeft;
    } else {
        ++numUpdateDrops;
        return false;
    }

    ++stamp;
    ++numUpdates;

    if (Entry *e = find(pc)) {
        e->op1 = op1;
        e->op2 = op2;
        e->result = result;
        e->lruStamp = stamp;
        if (ctrEnabled && e->ctr < ctrMax)
            ++e->ctr;
        return true;
    }

    if (Entry *v = findVictimBuf(pc)) {
        // The PC lives in the victim buffer: refresh that copy in place.
        // Allocating a main-array entry as well would create a duplicate
        // and leave this copy stale — once the main entry is evicted
        // again, a later lookup would serve the stale tuple from here.
        v->op1 = op1;
        v->op2 = op2;
        v->result = result;
        v->lruStamp = stamp;
        if (ctrEnabled && v->ctr < ctrMax)
            ++v->ctr;
        return true;
    }

    // Choose a slot: invalid first, else LRU within the set.
    const std::size_t base = setOf(pc) * assoc;
    Entry *slot = nullptr;
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &cand = entries[base + w];
        if (!cand.valid) {
            slot = &cand;
            break;
        }
        if (!slot || cand.lruStamp < slot->lruStamp)
            slot = &cand;
    }

    if (slot->valid) {
        // CTR hysteresis: a live entry resists replacement until its
        // counter drains, filtering one-shot PCs out of hot sets.
        if (ctrEnabled && slot->ctr > 0) {
            --slot->ctr;
            ++numCtrDeferrals;
            return true; // port consumed, no replacement
        }
        ++numEvictions;
        if (!victimBuf.empty()) {
            // Spill the victim into the victim buffer (LRU slot).
            Entry *vslot = nullptr;
            for (auto &v : victimBuf) {
                if (!v.valid) {
                    vslot = &v;
                    break;
                }
                if (!vslot || v.lruStamp < vslot->lruStamp)
                    vslot = &v;
            }
            *vslot = *slot;
        }
    }

    slot->pc = pc;
    slot->op1 = op1;
    slot->op2 = op2;
    slot->result = result;
    slot->ctr = ctrEnabled ? 1 : 0;
    slot->lruStamp = stamp;
    slot->valid = true;
    return true;
}

bool
Irb::corruptEntry(Addr pc, unsigned bit)
{
    if (Entry *e = find(pc)) {
        e->result ^= RegVal(1) << (bit & 63);
        return true;
    }
    return false;
}

bool
Irb::corruptRandomEntry(std::uint64_t rnd, unsigned bit)
{
    const std::size_t n = entries.size();
    const std::size_t start = rnd % n;
    for (std::size_t i = 0; i < n; ++i) {
        Entry &e = entries[(start + i) % n];
        if (e.valid) {
            e.result ^= RegVal(1) << (bit & 63);
            return true;
        }
    }
    return false;
}

void
Irb::invalidate(Addr pc)
{
    if (Entry *e = find(pc))
        e->valid = false;
    for (auto &v : victimBuf) {
        if (v.valid && v.pc == pc)
            v.valid = false;
    }
}

} // namespace direb
