/**
 * @file
 * Instruction Reuse Buffer (IRB) — the paper's central structure.
 *
 * A PC-indexed table of previously executed instructions: each entry holds
 * the PC tag, the two source-operand values, the ALU result, and a small
 * saturating counter (the CTR field of Figure 4) that provides replacement
 * hysteresis — the paper's "simple mechanism that can possibly reduce
 * conflict misses".
 *
 * Port model (paper §3.2): 4 read ports, 2 write ports, 2 read/write
 * ports. Lookups (issued at fetch, on behalf of duplicate-stream
 * instructions) draw from read + shared ports; updates (at commit) draw
 * from write + shared ports. Lookups beyond the per-cycle port budget are
 * forced PC-misses; updates beyond it are dropped. The 3-stage pipelined
 * access (Cacti-justified in the paper) is modelled by the owner recording
 * lookup-ready time = fetch + pipelineDepth.
 *
 * Organisations for the conflict-miss study: direct-mapped (paper
 * default), set-associative (LRU), and an optional small fully-associative
 * victim buffer behind the main array.
 */

#ifndef DIREB_CORE_IRB_HH
#define DIREB_CORE_IRB_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace direb
{

/** Result of a PC lookup. */
struct IrbLookup
{
    bool pcHit = false;      //!< a valid entry with matching tag exists
    bool portDrop = false;   //!< lookup could not get a port this cycle
    RegVal op1 = 0;          //!< stored first operand value
    RegVal op2 = 0;          //!< stored second operand value
    RegVal result = 0;       //!< stored ALU result
};

/**
 * The Instruction Reuse Buffer.
 *
 * Config keys (defaults): irb.entries=1024, irb.assoc=1,
 * irb.read_ports=4, irb.write_ports=2, irb.rw_ports=2,
 * irb.pipeline_depth=3, irb.ctr_bits=2 (0 disables hysteresis),
 * irb.victim_entries=0.
 */
class Irb
{
  public:
    explicit Irb(const Config &config);

    /** Reset per-cycle port budgets. Call once per simulated cycle. */
    void beginCycle();

    /**
     * Look up @p pc (consumes a lookup port). If no port is available the
     * result has portDrop set and the owner must treat it as a PC miss
     * (no reuse candidate). In the statistics the three outcomes are
     * disjoint — every lookup is exactly one of pc_hit, pc_miss or
     * lookup_port_drop, so
     *   lookups == pc_hits + pc_misses + lookup_port_drops
     * always holds (enforced by an internal assertion).
     */
    IrbLookup lookup(Addr pc);

    /**
     * Record the outcome of the reuse test the issue logic performed
     * against an earlier lookup (for hit-rate statistics only).
     */
    void recordReuseTest(bool passed);

    /**
     * Insert/refresh the entry for @p pc at commit (consumes an update
     * port; silently dropped if none available — returns false).
     * CTR hysteresis: replacing a *different* PC's live entry first
     * decrements its counter; the replacement only happens at zero.
     */
    bool update(Addr pc, RegVal op1, RegVal op2, RegVal result);

    /** Corrupt the stored result for @p pc if present (fault injection). */
    bool corruptEntry(Addr pc, unsigned bit);

    /**
     * Corrupt the first live entry at or after index (@p rnd mod size) —
     * models a transient striking a random cell of the array.
     * @return false if the buffer holds no valid entries.
     */
    bool corruptRandomEntry(std::uint64_t rnd, unsigned bit);

    /** Drop the entry for @p pc (used after a failed commit check). */
    void invalidate(Addr pc);

    /** Pipelined access latency in cycles (lookup ready = fetch + this). */
    Cycle pipelineDepth() const { return pipeDepth; }

    /** Entry count of the main array. */
    std::size_t size() const { return sets * assoc; }

    stats::Group &statGroup() { return group; }

    /** Attach the owning core's event tracer (may be null). */
    void setTracer(trace::Tracer *t) { tracerPtr = t; }

    /** Statistics accessors for benches. @{ */
    std::uint64_t lookups() const { return numLookups.value(); }
    std::uint64_t updates() const { return numUpdates.value(); }
    std::uint64_t pcHits() const { return numPcHits.value(); }
    std::uint64_t pcMisses() const { return numPcMisses.value(); }
    std::uint64_t reuseHits() const { return numReuseHits.value(); }
    std::uint64_t reuseMisses() const { return numReuseMisses.value(); }
    std::uint64_t lookupDrops() const { return numLookupDrops.value(); }
    std::uint64_t updateDrops() const { return numUpdateDrops.value(); }
    std::uint64_t ctrDeferrals() const { return numCtrDeferrals.value(); }
    std::uint64_t victimHits() const { return numVictimHits.value(); }
    std::uint64_t victimSwapDeferrals() const
    {
        return numVictimSwapDeferrals.value();
    }
    /** @} */

  private:
    struct Entry
    {
        Addr pc = invalidAddr;
        RegVal op1 = 0;
        RegVal op2 = 0;
        RegVal result = 0;
        std::uint8_t ctr = 0;
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    std::size_t setOf(Addr pc) const;
    Entry *find(Addr pc);
    Entry *findVictimBuf(Addr pc);
    void checkLookupInvariant() const;

    std::size_t sets = 0;
    unsigned assoc = 1;
    std::vector<Entry> entries;       //!< sets * assoc, set-major
    std::vector<Entry> victimBuf;     //!< fully associative, LRU
    std::uint64_t stamp = 0;

    unsigned readPorts = 4;
    unsigned writePorts = 2;
    unsigned rwPorts = 2;
    unsigned lookupsLeft = 0;
    unsigned updatesLeft = 0;
    unsigned sharedLeft = 0;
    Cycle pipeDepth = 3;
    std::uint8_t ctrMax = 3;
    bool ctrEnabled = true;
    trace::Tracer *tracerPtr = nullptr;

    stats::Group group{"irb"};
    stats::Scalar numLookups;
    stats::Scalar numPcHits;
    stats::Scalar numPcMisses;
    stats::Scalar numReuseHits;
    stats::Scalar numReuseMisses;
    stats::Scalar numLookupDrops;
    stats::Scalar numUpdates;
    stats::Scalar numUpdateDrops;
    stats::Scalar numCtrDeferrals;
    stats::Scalar numVictimHits;
    stats::Scalar numVictimSwapDeferrals;
    stats::Scalar numEvictions;
};

} // namespace direb

#endif // DIREB_CORE_IRB_HH
