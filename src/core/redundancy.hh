/**
 * @file
 * Temporal-redundancy support: the commit-time pair checker and the
 * fault-injection harness used to validate the Sphere-of-Replication
 * argument of the paper's §3.4.
 *
 * Faults are injected into the *checked* copies of values (the datapath
 * results the checker compares), never into the functional architectural
 * state — so a simulation with injection enabled still computes correct
 * program results, and a detected fault costs an instruction-rewind in
 * the timing model exactly as the paper describes.
 */

#ifndef DIREB_CORE_REDUNDANCY_HH
#define DIREB_CORE_REDUNDANCY_HH

#include <cstdint>

#include "common/config.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace direb
{

/** Where a transient fault strikes. */
enum class FaultSite : std::uint8_t
{
    None,     //!< injection disabled
    Fu,       //!< a functional-unit result (one stream's copy)
    FwdOne,   //!< forwarding to one stream's waiting instruction
    FwdBoth,  //!< forwarding bus shared by both streams (DIE-IRB only —
              //!< in plain DIE each stream has its own dataflow, so this
              //!< degenerates to FwdOne)
    Irb,      //!< a stored IRB entry after insertion
};

/** Parse a fault-site name ("none", "fu", "fwd_one", "fwd_both", "irb"). */
FaultSite faultSiteFromName(const std::string &name);
const char *faultSiteName(FaultSite site);

/**
 * Poisson-ish fault injector: each eligible event independently suffers a
 * bit flip with probability fault.rate.
 *
 * Config keys (defaults): fault.rate=0.0, fault.site=none, fault.seed=1.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const Config &config);

    bool enabled() const { return site_ != FaultSite::None && rate > 0.0; }
    FaultSite site() const { return site_; }

    /** Draw: should a fault strike this event? Counts injections. */
    bool strike();

    /** Bit position (0..63) for the flip. */
    unsigned bitToFlip() { return static_cast<unsigned>(rng.below(64)); }

    /** Raw random value (e.g. to pick a victim IRB entry). */
    std::uint64_t randomValue() { return rng.next(); }

    /** The checker caught an injected fault. */
    void recordDetected() { ++numDetected; }

    /** A corrupted pair committed with a passing check (silent escape). */
    void recordEscaped() { ++numEscaped; }

    /** An injected fault was squashed before reaching the checker. */
    void recordSquashed() { ++numSquashed; }

    std::uint64_t injected() const { return numInjected.value(); }
    std::uint64_t detected() const { return numDetected.value(); }
    std::uint64_t escaped() const { return numEscaped.value(); }
    std::uint64_t squashed() const { return numSquashed.value(); }

    stats::Group &statGroup() { return group; }

  private:
    FaultSite site_ = FaultSite::None;
    double rate = 0.0;
    Rng rng;

    stats::Group group{"fault"};
    stats::Scalar numInjected;
    stats::Scalar numDetected;
    stats::Scalar numEscaped;
    stats::Scalar numSquashed;
};

/**
 * Commit-time pair checker ("Check & Retire" of Figure 1). Compares the
 * ALU-equivalent results of a (primary, duplicate) pair; stores also
 * compare their data operand.
 */
class Checker
{
  public:
    explicit Checker() = default;

    /** Compare the two copies; true means the pair may retire. */
    bool
    check(RegVal primary, RegVal duplicate)
    {
        ++numChecks;
        if (primary == duplicate)
            return true;
        ++numMismatches;
        return false;
    }

    std::uint64_t checks() const { return numChecks.value(); }
    std::uint64_t mismatches() const { return numMismatches.value(); }

    /**
     * The checker's stat group. registerStats() both fills it and parents
     * it; a resettable owner re-attaches this group on later configures
     * instead of re-registering the scalars.
     */
    stats::Group &statGroup() { return group; }

    void
    registerStats(stats::Group &parent)
    {
        group.addScalar(&numChecks, "checks", "pair comparisons performed");
        group.addScalar(&numMismatches, "mismatches",
                        "pair comparisons that failed (rewinds)");
        parent.addChild(&group);
    }

  private:
    stats::Group group{"checker"};
    stats::Scalar numChecks;
    stats::Scalar numMismatches;
};

} // namespace direb

#endif // DIREB_CORE_REDUNDANCY_HH
