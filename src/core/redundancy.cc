#include "core/redundancy.hh"

#include "common/logging.hh"

namespace direb
{

FaultSite
faultSiteFromName(const std::string &name)
{
    if (name == "none")
        return FaultSite::None;
    if (name == "fu")
        return FaultSite::Fu;
    if (name == "fwd_one")
        return FaultSite::FwdOne;
    if (name == "fwd_both")
        return FaultSite::FwdBoth;
    if (name == "irb")
        return FaultSite::Irb;
    fatal("unknown fault site '%s'", name.c_str());
}

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::None: return "none";
      case FaultSite::Fu: return "fu";
      case FaultSite::FwdOne: return "fwd_one";
      case FaultSite::FwdBoth: return "fwd_both";
      case FaultSite::Irb: return "irb";
    }
    return "?";
}

FaultInjector::FaultInjector(const Config &config)
    : site_(faultSiteFromName(config.getString(
          "fault.site", "none",
          "fault-injection site: none, fu, fwd_one, fwd_both or irb"))),
      rate(config.getDouble("fault.rate", 0.0,
                            "per-opportunity fault probability [0,1]")),
      rng(config.getUint("fault.seed", 1,
                         "fault-injection random seed"))
{
    fatal_if(rate < 0.0 || rate > 1.0, "fault.rate must be in [0,1]");

    group.addScalar(&numInjected, "injected", "bit flips injected");
    group.addScalar(&numDetected, "detected", "flips caught by the checker");
    group.addScalar(&numEscaped, "escaped",
                    "flips that committed undetected");
    group.addScalar(&numSquashed, "squashed",
                    "flips squashed on the wrong path");
}

bool
FaultInjector::strike()
{
    if (!enabled())
        return false;
    if (!rng.chance(rate))
        return false;
    ++numInjected;
    return true;
}

} // namespace direb
