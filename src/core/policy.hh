/**
 * @file
 * Redundancy policies — the strategy objects that concentrate everything
 * mode-specific about the paper's three execution modes (SIE / DIE /
 * DIE-IRB) so the pipeline-stage code contains no mode branches at all:
 *
 *  - whether dispatch duplicates each instruction into two adjacent RUU
 *    entries, and whether the duplicate stream has its own dataflow
 *    (createVec[1]) or is fed by primary-stream producers;
 *  - the dispatch-time IRB lookup for duplicate-stream instructions
 *    (prepareDuplicate), the commit-time IRB update + the IRB fault-site
 *    strike (onPairCommitted), and the IRB invalidation after a failed
 *    pair check (onCheckFailed);
 *  - whether the forwarding bus is shared by both streams, which decides
 *    if a FwdBoth fault corrupts both copies identically (§3.4).
 *
 * Adding a new redundancy scheme (e.g. clustered-ineffectuality DIE or
 * TMR-style triple execution) means adding a policy subclass, not another
 * copy of the pipeline.
 */

#ifndef DIREB_CORE_POLICY_HH
#define DIREB_CORE_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/irb.hh"
#include "core/redundancy.hh"
#include "cpu/pipeline_state.hh"
#include "trace/trace.hh"

namespace direb
{

/** Redundancy mode of the core. */
enum class ExecMode : std::uint8_t { Sie, Die, DieIrb };

/** Parse "sie" / "die" / "die-irb". */
ExecMode execModeFromName(const std::string &name);
const char *execModeName(ExecMode mode);

/**
 * Mode-specific behaviour of the core, owned by the OooCore and consulted
 * by the stage components through the CoreContext. Policies own the
 * mode-private hardware (the IRB, for DIE-IRB) and attach its statistics
 * under the core's group via registerStats()/unregisterStats().
 */
class RedundancyPolicy
{
  public:
    virtual ~RedundancyPolicy() = default;

    ExecMode mode() const { return mode_; }

    /** RUU entries one architectural instruction occupies (1 or 2). */
    unsigned unitsPerInst() const { return duplicates() ? 2 : 1; }

    /** Dispatch allocates a duplicate entry per instruction. */
    virtual bool duplicates() const = 0;

    /**
     * The duplicate stream has independent dataflow: duplicates link
     * their sources through createVec[1] and register as stream-1
     * producers. When false, duplicates are fed by primary producers.
     */
    virtual bool dupOwnDataflow() const = 0;

    /**
     * Both streams receive forwarded results over one shared bus, so a
     * FwdBoth fault corrupts both copies identically (undetectable).
     */
    virtual bool sharedForwardingBus() const = 0;

    /** The reuse buffer, or nullptr for modes without one. */
    virtual Irb *irb() { return nullptr; }

    /** Per-cycle housekeeping (IRB port budgets). */
    virtual void beginCycle() {}

    /** Attach the owning core's event tracer (may be null). */
    virtual void setTracer(trace::Tracer *) {}

    /** Attach / detach mode-private stat groups under @p parent. @{ */
    virtual void registerStats(stats::Group &parent) { (void)parent; }
    virtual void unregisterStats(stats::Group &parent) { (void)parent; }
    /** @} */

    /**
     * Dispatch-time hook on the freshly allocated duplicate entry at ring
     * slot @p dup_idx (the DIE-IRB lookup that arms the wakeup-time reuse
     * test).
     */
    virtual void
    prepareDuplicate(PipelineState &st, int dup_idx, Cycle now,
                     trace::Tracer *tracer)
    {
        (void)st;
        (void)dup_idx;
        (void)now;
        (void)tracer;
    }

    /**
     * The pair at ring slots (@p head_idx, @p dup_idx) passed the commit
     * check and is retiring: perform the commit-time reuse-buffer update
     * and the IRB fault-site strike.
     */
    virtual void
    onPairCommitted(PipelineState &st, int head_idx, int dup_idx,
                    FaultInjector &injector, trace::Tracer *tracer)
    {
        (void)st;
        (void)head_idx;
        (void)dup_idx;
        (void)injector;
        (void)tracer;
    }

    /** The commit check failed for the pair at @p pc (pre-rewind). */
    virtual void onCheckFailed(Addr pc) { (void)pc; }

  protected:
    explicit RedundancyPolicy(ExecMode m) : mode_(m) {}

  private:
    ExecMode mode_;
};

/** SIE: the plain superscalar baseline — one entry, no checking. */
class SiePolicy final : public RedundancyPolicy
{
  public:
    SiePolicy() : RedundancyPolicy(ExecMode::Sie) {}
    bool duplicates() const override { return false; }
    bool dupOwnDataflow() const override { return false; }
    bool sharedForwardingBus() const override { return false; }
};

/** DIE: duplicate at dispatch, independent per-stream dataflow. */
class DiePolicy final : public RedundancyPolicy
{
  public:
    DiePolicy() : RedundancyPolicy(ExecMode::Die) {}
    bool duplicates() const override { return true; }
    bool dupOwnDataflow() const override { return true; }
    bool sharedForwardingBus() const override { return false; }
};

/**
 * DIE-IRB: primary-fed duplicates (unless the dup_own_dataflow ablation
 * keeps the streams independent), a reuse buffer probed at dispatch with
 * the reuse test folded into wakeup, commit-time IRB updates, and a
 * forwarding bus shared by both streams.
 */
class DieIrbPolicy final : public RedundancyPolicy
{
  public:
    DieIrbPolicy(const Config &config, bool dup_own_dataflow);

    bool duplicates() const override { return true; }
    bool dupOwnDataflow() const override { return dupOwnDataflow_; }
    bool sharedForwardingBus() const override { return true; }
    Irb *irb() override { return irb_.get(); }

    void beginCycle() override { irb_->beginCycle(); }
    void setTracer(trace::Tracer *t) override { irb_->setTracer(t); }
    void registerStats(stats::Group &parent) override;
    void unregisterStats(stats::Group &parent) override;

    void prepareDuplicate(PipelineState &st, int dup_idx, Cycle now,
                          trace::Tracer *tracer) override;
    void onPairCommitted(PipelineState &st, int head_idx, int dup_idx,
                         FaultInjector &injector,
                         trace::Tracer *tracer) override;
    void onCheckFailed(Addr pc) override { irb_->invalidate(pc); }

  private:
    std::unique_ptr<Irb> irb_;
    bool dupOwnDataflow_;
};

/** Build the policy for @p mode (DIE-IRB constructs its Irb from config). */
std::unique_ptr<RedundancyPolicy>
makeRedundancyPolicy(ExecMode mode, bool dup_own_dataflow,
                     const Config &config);

} // namespace direb

#endif // DIREB_CORE_POLICY_HH
