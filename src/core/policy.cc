/**
 * @file
 * Redundancy-policy implementations: mode names, the DIE-IRB reuse-buffer
 * hooks, and the policy factory.
 */

#include "core/policy.hh"

#include "common/logging.hh"

namespace direb
{

ExecMode
execModeFromName(const std::string &name)
{
    if (name == "sie")
        return ExecMode::Sie;
    if (name == "die")
        return ExecMode::Die;
    if (name == "die-irb" || name == "dieirb")
        return ExecMode::DieIrb;
    fatal("unknown execution mode '%s'", name.c_str());
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Sie: return "sie";
      case ExecMode::Die: return "die";
      case ExecMode::DieIrb: return "die-irb";
    }
    return "?";
}

DieIrbPolicy::DieIrbPolicy(const Config &config, bool dup_own_dataflow)
    : RedundancyPolicy(ExecMode::DieIrb),
      irb_(std::make_unique<Irb>(config)),
      dupOwnDataflow_(dup_own_dataflow)
{
}

void
DieIrbPolicy::registerStats(stats::Group &parent)
{
    parent.addChild(&irb_->statGroup());
}

void
DieIrbPolicy::unregisterStats(stats::Group &parent)
{
    parent.removeChild(&irb_->statGroup());
}

void
DieIrbPolicy::prepareDuplicate(PipelineState &st, int dup_idx, Cycle now,
                               trace::Tracer *tracer)
{
    // The 3-stage pipelined lookup (Figure 3) starts at fetch and is
    // complete by the time the instruction reaches the issue window; it
    // is port-arbitrated here, at window entry, which paces lookups at
    // the DIE dispatch rate (<= width/2 per cycle) — the basis of the
    // paper's 4R/2W/2RW sufficiency argument. The result becomes usable
    // one cycle later, i.e. at the duplicate's first issue opportunity.
    // Loads/stores participate for address generation only; outputs and
    // NOP/HALT produce nothing worth reusing.
    RuuCold &dup = st.cold[dup_idx];
    const bool eligible = st.eCls[dup_idx] != OpClass::Nop &&
                          !isOutput(dup.inst.op);
    if (!eligible)
        return;
    dup.irb = irb_->lookup(dup.pc);
    dup.irbReadyAt = now + 1;
    if (dup.irb.pcHit)
        st.set(dup_idx, ruuf::IrbCandidate);
    DIREB_TRACE(tracer, trace::Kind::IrbLookup, st.eSeq[dup_idx], dup.pc,
                true, dup.inst,
                (dup.irb.pcHit ? 1u : 0u) | (dup.irb.portDrop ? 2u : 0u));
}

void
DieIrbPolicy::onPairCommitted(PipelineState &st, int head_idx, int dup_idx,
                              FaultInjector &injector,
                              trace::Tracer *tracer)
{
    // Commit-time IRB update (paper §3.2: off the critical path, through
    // the write/rw ports). A reuse hit needs no rewrite — the stored
    // tuple is bit-identical already.
    const RuuCold &head = st.cold[head_idx];
    if (st.eCls[dup_idx] != OpClass::Nop &&
        !isOutput(st.cold[dup_idx].inst.op) &&
        !st.any(dup_idx, ruuf::ReuseHit)) {
        const bool wrote =
            irb_->update(head.pc, head.outcome.op1Val, head.outcome.op2Val,
                         head.outcome.result);
        DIREB_TRACE(tracer, trace::Kind::IrbUpdate, st.eSeq[head_idx],
                    head.pc, false, head.inst, wrote ? 1 : 0);
    }
    // Fault site "irb": a transient strikes a random live entry; it is
    // caught when (and only when) a duplicate later reuses it.
    if (injector.site() == FaultSite::Irb && injector.strike()) {
        irb_->corruptRandomEntry(injector.randomValue(),
                                 injector.bitToFlip());
    }
}

std::unique_ptr<RedundancyPolicy>
makeRedundancyPolicy(ExecMode mode, bool dup_own_dataflow,
                     const Config &config)
{
    switch (mode) {
      case ExecMode::Sie:
        return std::make_unique<SiePolicy>();
      case ExecMode::Die:
        return std::make_unique<DiePolicy>();
      case ExecMode::DieIrb:
        return std::make_unique<DieIrbPolicy>(config, dup_own_dataflow);
    }
    fatal("unreachable execution mode");
}

} // namespace direb
