/**
 * @file
 * Non-blocking HTTP/1.1 client for dieirb-coord's backend fan-out,
 * built on the same epoll + timer-wheel substrate as the server side.
 *
 * One loop thread owns every in-flight transfer: connect (non-blocking
 * with a deadline), write the request, then parse the response
 * incrementally — status line, headers, then a Content-Length body,
 * chunked transfer coding (the backends' streamed NDJSON sweeps), or
 * read-until-close. Decoded body bytes are delivered to the caller's
 * callback as they arrive, which is what lets the coordinator merge
 * per-point lines from N sub-sweeps while they are still running.
 *
 * Every request rides its own connection with `Connection: close`:
 * sub-sweeps are long-lived streams that would monopolize a pooled
 * connection anyway, and closing the socket doubles as the
 * cancellation path — the backend's EPOLLRDHUP handler flips its
 * per-connection token and cancels the sweep remainder, exactly the
 * propagation the coordinator wants for a disconnected client.
 *
 * Callbacks run on the loop thread: keep them short (append to a
 * buffer, notify a condvar) and never call back into send()/cancel()
 * from inside one (enqueueing from other threads is the design).
 */

#ifndef DIREB_COORD_HTTP_CLIENT_HH
#define DIREB_COORD_HTTP_CLIENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/timer_wheel.hh"

namespace direb
{

namespace coord
{

struct ClientRequest
{
    std::string host; //!< numeric IPv4 or "localhost"
    unsigned short port = 0;
    std::string method = "GET";
    std::string target = "/";
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;
    unsigned connectTimeoutMs = 2'000;
    /**
     * No-progress bound: the transfer fails when this long passes
     * without a single byte moving in either direction. Generous for
     * sub-sweeps (a slow point produces nothing for a while), tight
     * for health probes.
     */
    unsigned idleTimeoutMs = 30'000;
};

struct ClientResponse
{
    int status = 0;
    /** Lower-cased names, wire order. */
    std::vector<std::pair<std::string, std::string>> headers;

    const std::string *header(const std::string &lower_name) const;
};

struct ClientCallbacks
{
    /** Status line + headers parsed (before any body bytes). */
    std::function<void(const ClientResponse &)> onHead;
    /** Decoded body bytes, as they arrive (chunk framing removed). */
    std::function<void(const char *data, std::size_t n)> onBody;
    /**
     * Exactly once, last: ok means the response completed (whatever
     * its status code); !ok carries the transport/parse/timeout error.
     */
    std::function<void(bool ok, const std::string &error)> onDone;
};

class HttpClient
{
  public:
    HttpClient();
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    void start();

    /** Fail everything in flight ("client stopped"), join the loop. */
    void stop();

    /**
     * Begin a transfer; returns its id (for cancel()). Thread-safe.
     * Callbacks fire on the loop thread, onDone always exactly once —
     * including after stop() or a send() on a stopped client.
     */
    std::uint64_t send(ClientRequest req, ClientCallbacks cbs);

    /**
     * Close the transfer's socket and deliver onDone(false,
     * "cancelled"). Unknown/finished ids are a no-op. Thread-safe.
     */
    void cancel(std::uint64_t id);

    /** Blocking one-shot convenience (health probes, metric scrapes). */
    struct FetchResult
    {
        bool ok = false; //!< transport-level success
        int status = 0;
        std::string body;
        std::string error;
    };
    FetchResult fetch(ClientRequest req);

  private:
    struct Xfer;
    struct Command;

    void loop();
    void wake();
    void processCommands();
    void beginXfer(const std::shared_ptr<Xfer> &x);
    void onEvent(const std::shared_ptr<Xfer> &x, std::uint32_t events);
    void pumpWrite(const std::shared_ptr<Xfer> &x);
    void pumpRead(const std::shared_ptr<Xfer> &x);
    static bool parseHead(Xfer &x, std::string &error);
    void finish(const std::shared_ptr<Xfer> &x, bool ok,
                const std::string &error);
    void touch(const std::shared_ptr<Xfer> &x, unsigned delay_ms);

    int epollFd = -1;
    int wakeFd = -1;
    std::thread loopThread;
    bool started = false;

    std::mutex cmdMtx;
    std::vector<Command> commands;
    bool stopRequested = false;
    std::uint64_t nextId = 1;

    // loop-owned
    std::unordered_map<int, std::shared_ptr<Xfer>> byFd;
    std::unordered_map<std::uint64_t, std::shared_ptr<Xfer>> byId;
    service::TimerWheel wheel;
};

} // namespace coord

} // namespace direb

#endif // DIREB_COORD_HTTP_CLIENT_HH
