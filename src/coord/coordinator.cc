#include "coord/coordinator.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include "common/logging.hh"
#include "harness/sweep.hh"

namespace direb
{

namespace coord
{

namespace
{

using harness::Json;
using service::HttpRequest;
using service::HttpResponse;
using service::PointSpec;

HttpResponse
errorResponse(int status, const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return HttpResponse(status, j.dump(0) + "\n");
}

/**
 * The line a backend would emit for a point its drain cancelled:
 * serialized through the same resultJson() path the backends use, so
 * coordinator-synthesized cancellations are byte-identical to
 * backend-emitted ones.
 */
std::string
cancelledLine(const PointSpec &spec)
{
    harness::SweepResult r;
    r.name = spec.name;
    r.status = harness::PointStatus::Cancelled;
    return harness::resultJson(r).dump(0) + "\n";
}

/** dieirb_* -> dieirb_backend_* (names already elsewhere untouched). */
std::string
renameBackendMetric(const std::string &name)
{
    if (name.rfind("dieirb_", 0) == 0)
        return "dieirb_backend_" + name.substr(std::strlen("dieirb_"));
    return name;
}

struct FamAgg
{
    std::string help;
    std::string type;
    std::vector<std::string> samples;
};

/**
 * Fold one backend's /metrics body into the per-family aggregate:
 * families renamed dieirb_* -> dieirb_backend_*, every sample tagged
 * with a backend="host:port" label, HELP/TYPE kept once per family.
 */
void
mergeBackendMetrics(const std::string &address, const std::string &body,
                    std::map<std::string, FamAgg> &fams)
{
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        const std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // "# HELP <name> <text>" / "# TYPE <name> <kind>"
            const bool isHelp = line.rfind("# HELP ", 0) == 0;
            const bool isType = line.rfind("# TYPE ", 0) == 0;
            if (!isHelp && !isType)
                continue;
            const std::size_t nameStart = std::strlen("# HELP ");
            const std::size_t nameEnd = line.find(' ', nameStart);
            if (nameEnd == std::string::npos)
                continue;
            const std::string fam = renameBackendMetric(
                line.substr(nameStart, nameEnd - nameStart));
            FamAgg &agg = fams[fam];
            const std::string rest = line.substr(nameEnd + 1);
            if (isHelp && agg.help.empty())
                agg.help = rest;
            if (isType && agg.type.empty())
                agg.type = rest;
            continue;
        }
        // Sample: "<name>{labels} value" or "<name> value".
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        std::string name;
        std::string rewritten;
        if (brace != std::string::npos &&
            (space == std::string::npos || brace < space)) {
            name = renameBackendMetric(line.substr(0, brace));
            rewritten = name + "{backend=\"" + address + "\"," +
                        line.substr(brace + 1);
        } else if (space != std::string::npos) {
            name = renameBackendMetric(line.substr(0, space));
            rewritten = name + "{backend=\"" + address + "\"}" +
                        line.substr(space);
        } else {
            continue; // not a sample line
        }
        // Histogram samples hang off their family's base name.
        std::string fam = name;
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::size_t n = std::strlen(suffix);
            if (fam.size() > n &&
                fam.compare(fam.size() - n, n, suffix) == 0 &&
                fams.count(fam.substr(0, fam.size() - n))) {
                fam = fam.substr(0, fam.size() - n);
                break;
            }
        }
        fams[fam].samples.push_back(std::move(rewritten));
    }
}

std::string
renderFams(const std::map<std::string, FamAgg> &fams)
{
    std::string out;
    for (const auto &[name, agg] : fams) {
        if (agg.samples.empty())
            continue;
        if (!agg.help.empty())
            out += "# HELP " + name + " " + agg.help + "\n";
        if (!agg.type.empty())
            out += "# TYPE " + name + " " + agg.type + "\n";
        for (const std::string &s : agg.samples)
            out += s + "\n";
    }
    return out;
}

} // namespace

const char *
backendStateName(BackendState state)
{
    switch (state) {
      case BackendState::Up: return "up";
      case BackendState::Draining: return "draining";
      case BackendState::Down: return "down";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Fan-out bookkeeping
// ---------------------------------------------------------------------

/**
 * Shared state of one sharded sweep. Every sub-sweep's callbacks and
 * the coordinating job thread meet under `m`; `nextEmit` is the merge
 * cursor that turns per-shard completion order into the deterministic
 * global order the client sees.
 */
struct Coordinator::Fanout
{
    std::mutex m;
    std::condition_variable cv;

    std::vector<PointSpec> specs;
    std::vector<std::uint64_t> keys; //!< shard key per point
    bool useCache = true;
    std::function<void(const std::string &line)> onLine;

    std::vector<std::string> lines; //!< raw NDJSON per point, verbatim
    std::vector<bool> done;
    std::vector<unsigned> attempts;
    std::size_t nextEmit = 0;
    std::uint64_t cachedCount = 0;
    unsigned outstanding = 0; //!< sub-sweeps in flight this round
};

/** One dispatched sub-sweep: a shard of points on one backend. */
struct Coordinator::Shard
{
    std::size_t backend = 0;
    std::vector<std::size_t> points; //!< global indices, global order
    std::uint64_t transferId = 0;

    // written by client-loop callbacks, read by the job thread after
    // onDone (the fanout mutex orders the handoff)
    std::string buf;          //!< partial NDJSON line
    std::size_t lineIdx = 0;  //!< next shard-local point expected
    int status = 0;
    bool sawSummary = false;
    bool sawCancelled = false; //!< backend drained mid-stream
    bool failed = false;
    std::string error;
    std::string respBody; //!< non-200 diagnostics, capped
};

// ---------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------

Coordinator::Coordinator(service::Server &server, CoordOptions options)
    : srv(server), opts(std::move(options))
{
    fatal_if(opts.backends.empty(), "coordinator needs >= 1 backend");
    backends.reserve(opts.backends.size());
    for (const std::string &addr : opts.backends) {
        const std::size_t colon = addr.rfind(':');
        fatal_if(colon == std::string::npos || colon == 0 ||
                     colon + 1 >= addr.size(),
                 "backend '%s' is not host:port", addr.c_str());
        char *end = nullptr;
        const unsigned long port =
            std::strtoul(addr.c_str() + colon + 1, &end, 10);
        fatal_if(!end || *end != '\0' || port == 0 || port > 65535,
                 "backend '%s' has a bad port", addr.c_str());
        Backend b;
        b.address = addr;
        b.host = addr.substr(0, colon);
        b.port = static_cast<unsigned short>(port);
        backends.push_back(std::move(b));
    }
    ring = HashRing(opts.backends, opts.vnodes);

    service::Metrics &m = srv.metrics();
    m.describe("dieirb_coord_backends", "gauge",
               "configured backends by health state");
    m.describe("dieirb_coord_shards_total", "counter",
               "sub-sweeps dispatched to backends");
    m.describe("dieirb_coord_points_resharded_total", "counter",
               "points re-dispatched after a backend failure or drain");
    m.describe("dieirb_coord_backend_failures_total", "counter",
               "sub-sweep failures by backend");
    m.describe("dieirb_coord_scrape_failures_total", "counter",
               "backend /metrics scrapes that failed");

    service::Server::Hooks hooks;
    hooks.route = [this](const HttpRequest &req,
                         const std::string &request_id,
                         HttpResponse &resp) {
        return routeHook(req, request_id, resp);
    };
    hooks.stream = [this](const HttpRequest &req,
                          const service::Server::StreamPtr &stream) {
        return streamHook(req, stream);
    };
    srv.setHooks(std::move(hooks));
}

Coordinator::~Coordinator() { stop(); }

void
Coordinator::start()
{
    fatal_if(started, "coordinator already started");
    started = true;
    client.start();
    healthThread = std::thread([this] { healthLoop(); });
}

void
Coordinator::stop()
{
    if (stopRequested.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(healthMtx);
    }
    healthTick.notify_all();
    backendUp.notify_all();
    if (healthThread.joinable())
        healthThread.join();
    client.stop();
}

BackendState
Coordinator::backendState(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(mtx);
    return backends[i].state;
}

std::vector<std::size_t>
Coordinator::upBackends() const
{
    std::vector<std::size_t> up;
    std::lock_guard<std::mutex> lock(mtx);
    for (std::size_t i = 0; i < backends.size(); ++i) {
        if (backends[i].state == BackendState::Up)
            up.push_back(i);
    }
    return up;
}

void
Coordinator::setBackendState(std::size_t i, BackendState state)
{
    BackendState old;
    {
        std::lock_guard<std::mutex> lock(mtx);
        old = backends[i].state;
        if (old == state)
            return;
        backends[i].state = state;
    }
    inform("[coord] backend %s: %s -> %s",
           backends[i].address.c_str(), backendStateName(old),
           backendStateName(state));
    if (state == BackendState::Up)
        backendUp.notify_all();
}

void
Coordinator::healthLoop()
{
    while (!stopRequested.load(std::memory_order_relaxed)) {
        {
            std::unique_lock<std::mutex> lock(healthMtx);
            healthTick.wait_for(
                lock, std::chrono::milliseconds(opts.healthIntervalMs),
                [this] {
                    return stopRequested.load(
                        std::memory_order_relaxed);
                });
        }
        if (stopRequested.load(std::memory_order_relaxed))
            return;
        for (std::size_t i = 0; i < backends.size(); ++i) {
            ClientRequest req;
            req.host = backends[i].host;
            req.port = backends[i].port;
            req.method = "GET";
            req.target = "/healthz";
            req.connectTimeoutMs = opts.probeTimeoutMs;
            req.idleTimeoutMs = opts.probeTimeoutMs;
            const HttpClient::FetchResult res =
                client.fetch(std::move(req));

            BackendState next = BackendState::Down;
            if (res.ok && res.status == 200) {
                try {
                    const Json j = Json::parse(res.body);
                    const Json *st = j.find("status");
                    next = st && st->isString() &&
                                   st->asString() == "ok"
                        ? BackendState::Up
                        : BackendState::Draining;
                } catch (const std::exception &) {
                    next = BackendState::Down;
                }
            } else if (res.ok && res.status == 503) {
                next = BackendState::Draining;
            }
            setBackendState(i, next);
        }
    }
}

// ---------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------

bool
Coordinator::routeHook(const HttpRequest &req,
                       const std::string &request_id,
                       HttpResponse &resp)
{
    const std::string path = req.path();
    if (path == "/healthz") {
        if (req.method != "GET" && req.method != "HEAD")
            return false; // built-in 405
        // HTTP/1.0 + text/plain probes get the built-in bare body.
        const std::string *accept = req.header("accept");
        if (req.version == "HTTP/1.0" && accept &&
            accept->find("text/plain") != std::string::npos) {
            return false;
        }
        resp = handleHealth();
        return true;
    }
    if (path == "/metrics") {
        if (req.method != "GET" && req.method != "HEAD")
            return false;
        resp = handleMetrics();
        return true;
    }
    if (path == "/v1/simulate" && req.method == "POST") {
        resp = handleSimulateProxy(req, request_id);
        return true;
    }
    if (path == "/v1/sweep" && req.method == "POST") {
        resp = handleSweepBuffered(req, request_id);
        return true;
    }
    if (path == "/v1/query" && req.method == "POST") {
        resp = handleQueryProxy(req, request_id);
        return true;
    }
    return false; // /v1/jobs* fall through to the built-in handlers
}

HttpResponse
Coordinator::handleHealth()
{
    Json j = srv.healthJson();
    Json arr = Json::array();
    {
        std::lock_guard<std::mutex> lock(mtx);
        for (const Backend &b : backends) {
            Json e = Json::object();
            e.set("address", b.address);
            e.set("state", backendStateName(b.state));
            arr.push(std::move(e));
        }
    }
    j.set("backends", std::move(arr));
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Coordinator::handleMetrics()
{
    service::Metrics &m = srv.metrics();
    m.gauge("dieirb_queue_depth",
            static_cast<double>(srv.jobs().queued()));
    m.gauge("dieirb_queue_capacity",
            static_cast<double>(srv.jobs().capacity()));
    m.gauge("dieirb_workers", srv.jobs().workers());
    m.gauge("dieirb_workers_busy", srv.jobs().busyWorkers());
    {
        std::size_t up = 0, draining = 0, down = 0;
        std::lock_guard<std::mutex> lock(mtx);
        for (const Backend &b : backends) {
            switch (b.state) {
              case BackendState::Up: ++up; break;
              case BackendState::Draining: ++draining; break;
              case BackendState::Down: ++down; break;
            }
        }
        m.gauge("dieirb_coord_backends", static_cast<double>(up),
                "state=\"up\"");
        m.gauge("dieirb_coord_backends", static_cast<double>(draining),
                "state=\"draining\"");
        m.gauge("dieirb_coord_backends", static_cast<double>(down),
                "state=\"down\"");
    }

    // Re-export every backend's counters under dieirb_backend_* with a
    // backend="host:port" label, aggregated after the coordinator's
    // own series.
    std::map<std::string, FamAgg> fams;
    for (const Backend &b : backends) {
        ClientRequest req;
        req.host = b.host;
        req.port = b.port;
        req.method = "GET";
        req.target = "/metrics";
        req.connectTimeoutMs = opts.probeTimeoutMs;
        req.idleTimeoutMs = opts.probeTimeoutMs;
        const HttpClient::FetchResult res = client.fetch(std::move(req));
        if (!res.ok || res.status != 200) {
            m.count("dieirb_coord_scrape_failures_total",
                    "backend=\"" + b.address + "\"");
            continue;
        }
        mergeBackendMetrics(b.address, res.body, fams);
    }

    HttpResponse r(200, m.render() + renderFams(fams));
    r.set("Content-Type", "text/plain; version=0.0.4; charset=utf-8");
    return r;
}

HttpResponse
Coordinator::handleSimulateProxy(const HttpRequest &req,
                                 const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    const PointSpec spec = service::parsePoint(body, PointSpec{});
    const std::uint64_t key = service::pointShardKey(spec);

    std::string lastError = "no live backends";
    for (unsigned attempt = 0; attempt < opts.maxPointAttempts;
         ++attempt) {
        std::vector<bool> up(backends.size());
        {
            std::lock_guard<std::mutex> lock(mtx);
            for (std::size_t i = 0; i < backends.size(); ++i)
                up[i] = backends[i].state == BackendState::Up;
        }
        const std::size_t owner = ring.lookup(
            key, [&up](std::size_t b) { return up[b]; });
        if (owner == HashRing::npos)
            break;

        ClientRequest sub;
        sub.host = backends[owner].host;
        sub.port = backends[owner].port;
        sub.method = "POST";
        sub.target = "/v1/simulate";
        sub.body = req.body;
        sub.headers = {{"Content-Type", "application/json"},
                       {"X-Request-Id", request_id}};
        sub.idleTimeoutMs = opts.subsweepIdleTimeoutMs;
        const HttpClient::FetchResult res = client.fetch(std::move(sub));
        if (!res.ok) {
            lastError = backends[owner].address + ": " + res.error;
            srv.metrics().count(
                "dieirb_coord_backend_failures_total",
                "backend=\"" + backends[owner].address + "\"");
            setBackendState(owner, BackendState::Down);
            continue;
        }
        HttpResponse out(res.status, res.body);
        out.set("X-Backend", backends[owner].address);
        return out;
    }
    return errorResponse(502, "no backend could serve the point: " +
                                  lastError);
}

HttpResponse
Coordinator::handleQueryProxy(const HttpRequest &req,
                              const std::string &request_id)
{
    // Stores are replicated, not sharded: every backend mounts the same
    // artifacts, so any Up backend can answer. Walk the Up set in order,
    // marking unreachable backends Down exactly like the point proxy.
    std::string lastError = "no live backends";
    for (unsigned attempt = 0; attempt < opts.maxPointAttempts;
         ++attempt) {
        // A failed fetch marks its backend Down, so the head of the Up
        // list is always a backend this loop has not yet burned.
        const std::vector<std::size_t> up = upBackends();
        if (up.empty())
            break;
        const std::size_t owner = up[0];

        ClientRequest sub;
        sub.host = backends[owner].host;
        sub.port = backends[owner].port;
        sub.method = "POST";
        sub.target = "/v1/query";
        sub.body = req.body;
        sub.headers = {{"Content-Type", "application/json"},
                       {"X-Request-Id", request_id}};
        sub.idleTimeoutMs = opts.subsweepIdleTimeoutMs;
        const HttpClient::FetchResult res = client.fetch(std::move(sub));
        if (!res.ok) {
            lastError = backends[owner].address + ": " + res.error;
            srv.metrics().count(
                "dieirb_coord_backend_failures_total",
                "backend=\"" + backends[owner].address + "\"");
            setBackendState(owner, BackendState::Down);
            continue;
        }
        HttpResponse out(res.status, res.body);
        out.set("X-Backend", backends[owner].address);
        return out;
    }
    return errorResponse(502,
                         "no backend could serve the query: " + lastError);
}

HttpResponse
Coordinator::handleSweepBuffered(const HttpRequest &req,
                                 const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    std::vector<PointSpec> specs = service::parseSweepSpecs(body);
    const bool async = service::jsonBoolOr(body, "async", false);
    const bool useCache = service::jsonBoolOr(body, "cache", true);
    const unsigned deadlineMs =
        static_cast<unsigned>(service::jsonUintOr(
            body, "deadline_ms", srv.options().defaultDeadlineMs));

    service::JobQueue::Work work = [this, specs = std::move(specs),
                                    useCache]() -> Json {
        std::vector<std::string> lines;
        lines.reserve(specs.size());
        const Json stats = runFanout(
            specs, useCache, nullptr,
            [&lines](const std::string &line) {
                lines.push_back(line);
            });
        Json out = Json::object();
        out.set("total", *stats.find("total"));
        out.set("cached", *stats.find("cached"));
        out.set("cancelled", *stats.find("cancelled"));
        out.set("shards", *stats.find("shards"));
        out.set("resharded", *stats.find("resharded"));
        Json points = Json::array();
        for (const std::string &line : lines)
            points.push(Json::parse(line));
        out.set("points", std::move(points));
        return out;
    };
    return srv.dispatchJob("sweep", request_id, async, deadlineMs,
                           std::move(work));
}

bool
Coordinator::streamHook(const HttpRequest &req,
                        const service::Server::StreamPtr &stream)
{
    std::vector<PointSpec> specs;
    bool useCache = true;
    try {
        const Json body = Json::parse(req.body);
        fatal_if(!body.isObject(),
                 "request: body must be a JSON object");
        fatal_if(service::jsonBoolOr(body, "async", false),
                 "request: stream and async are mutually exclusive");
        specs = service::parseSweepSpecs(body);
        useCache = service::jsonBoolOr(body, "cache", true);
    } catch (const FatalError &e) {
        stream->respond(errorResponse(400, e.what()));
        return true;
    } catch (const std::exception &e) {
        stream->respond(errorResponse(500, e.what()));
        return true;
    }

    service::JobQueue::Work work = [this, stream,
                                    specs = std::move(specs),
                                    useCache]() -> Json {
        srv.metrics().count("dieirb_streams_total");
        stream->begin(200, "application/x-ndjson");
        Json stats;
        try {
            stats = runFanout(specs, useCache, stream->cancelToken(),
                              [&stream](const std::string &line) {
                                  stream->write(line);
                              });
        } catch (...) {
            // Truncate the chunk framing: the client's decoder sees an
            // incomplete stream instead of a silently short result.
            stream->fail();
            throw;
        }
        // Identical shape and key order to a single backend's summary
        // line — the stream is byte-for-byte what one dieirb-serve
        // would have produced.
        Json done = Json::object();
        done.set("done", true);
        done.set("total", *stats.find("total"));
        done.set("cached", *stats.find("cached"));
        done.set("cancelled", *stats.find("cancelled"));
        stream->write(done.dump(0) + "\n");
        stream->end();
        const Json *cancelled = stats.find("cancelled");
        if (cancelled && cancelled->asNumber() > 0)
            srv.metrics().count("dieirb_streams_cancelled_total");

        Json summary = Json::object();
        summary.set("streamed", true);
        summary.set("total", *stats.find("total"));
        summary.set("cached", *stats.find("cached"));
        summary.set("cancelled", *stats.find("cancelled"));
        summary.set("shards", *stats.find("shards"));
        summary.set("resharded", *stats.find("resharded"));
        return summary;
    };

    const service::JobQueue::Ticket ticket = srv.jobs().submit(
        "coord-sweep-stream", stream->requestId(), std::move(work));
    if (!ticket.accepted) {
        srv.metrics().count("dieirb_jobs_rejected_total",
                            ticket.closed ? "reason=\"draining\""
                                          : "reason=\"queue_full\"");
        HttpResponse r = ticket.closed
            ? errorResponse(503, "server is draining")
            : errorResponse(429,
                            "job queue full (" +
                                std::to_string(srv.jobs().capacity()) +
                                " outstanding); retry later");
        if (!ticket.closed)
            r.set("Retry-After", "1");
        stream->respond(std::move(r));
        return true;
    }
    inform("[%s] POST /v1/sweep -> 200 (sharded stream, job %llu)",
           stream->requestId().c_str(),
           static_cast<unsigned long long>(ticket.id));
    return true;
}

// ---------------------------------------------------------------------
// The fan-out engine
// ---------------------------------------------------------------------

void
Coordinator::dispatchShard(const std::shared_ptr<Fanout> &fan,
                           const std::shared_ptr<Shard> &shard)
{
    Json body = Json::object();
    Json points = Json::array();
    for (const std::size_t g : shard->points)
        points.push(service::pointSpecJson(fan->specs[g]));
    body.set("points", std::move(points));
    body.set("stream", true);
    body.set("cache", fan->useCache);

    const Backend &b = backends[shard->backend];
    ClientRequest req;
    req.host = b.host;
    req.port = b.port;
    req.method = "POST";
    req.target = "/v1/sweep";
    req.body = body.dump(0);
    req.headers = {{"Content-Type", "application/json"}};
    req.idleTimeoutMs = opts.subsweepIdleTimeoutMs;
    srv.metrics().count("dieirb_coord_shards_total");

    ClientCallbacks cbs;
    cbs.onHead = [shard](const ClientResponse &resp) {
        shard->status = resp.status;
    };
    cbs.onBody = [this, fan, shard](const char *data, std::size_t n) {
        if (shard->status != 200) {
            if (shard->respBody.size() < 4096)
                shard->respBody.append(data, n);
            return;
        }
        shard->buf.append(data, n);
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = shard->buf.find('\n', start);
            if (nl == std::string::npos)
                break;
            const std::string line =
                shard->buf.substr(start, nl - start);
            start = nl + 1;
            processShardLine(fan, shard, line);
        }
        shard->buf.erase(0, start);
    };
    cbs.onDone = [fan, shard](bool ok, const std::string &error) {
        if (!ok) {
            shard->failed = true;
            shard->error = error;
        } else if (shard->status != 200) {
            shard->failed = true;
            shard->error = "status " + std::to_string(shard->status) +
                           ": " + shard->respBody;
        } else if (!shard->sawSummary) {
            shard->failed = true;
            shard->error = "truncated stream";
        }
        std::lock_guard<std::mutex> lock(fan->m);
        --fan->outstanding;
        fan->cv.notify_all();
    };
    shard->transferId = client.send(std::move(req), std::move(cbs));
}

void
Coordinator::processShardLine(const std::shared_ptr<Fanout> &fan,
                              const std::shared_ptr<Shard> &shard,
                              const std::string &line)
{
    if (shard->failed)
        return;
    try {
        const Json j = Json::parse(line);
        if (j.find("done")) {
            shard->sawSummary = true;
            const Json *c = j.find("cancelled");
            if (c && c->asNumber() > 0)
                shard->sawCancelled = true;
            return;
        }
        if (shard->lineIdx >= shard->points.size()) {
            shard->failed = true;
            shard->error = "more lines than points";
            return;
        }
        const std::size_t g = shard->points[shard->lineIdx++];
        const Json *st = j.find("status");
        if (st && st->isString() && st->asString() == "cancelled") {
            // The backend is draining: this point was never simulated.
            // Leave it unfinished; the next round re-shards it.
            shard->sawCancelled = true;
            return;
        }
        const Json *name = j.find("name");
        if (!name || !name->isString() ||
            name->asString() != fan->specs[g].name) {
            shard->failed = true;
            shard->error = "point name mismatch at line " +
                           std::to_string(shard->lineIdx);
            return;
        }
        const bool cached = j.find("cached") != nullptr;
        std::lock_guard<std::mutex> lock(fan->m);
        if (fan->done[g])
            return; // duplicate (should not happen; rounds are barriers)
        fan->done[g] = true;
        fan->lines[g] = line + "\n"; // verbatim backend bytes
        if (cached)
            ++fan->cachedCount;
        while (fan->nextEmit < fan->done.size() &&
               fan->done[fan->nextEmit]) {
            if (fan->onLine)
                fan->onLine(fan->lines[fan->nextEmit]);
            ++fan->nextEmit;
        }
    } catch (const std::exception &e) {
        shard->failed = true;
        shard->error = std::string("unparsable line: ") + e.what();
    }
}

harness::Json
Coordinator::runFanout(
    const std::vector<PointSpec> &specs, bool use_cache,
    const std::shared_ptr<std::atomic<bool>> &cancel,
    const std::function<void(const std::string &line)> &on_line)
{
    const std::size_t total = specs.size();
    auto fan = std::make_shared<Fanout>();
    fan->specs = specs;
    fan->useCache = use_cache;
    fan->onLine = on_line;
    fan->lines.resize(total);
    fan->done.assign(total, false);
    fan->attempts.assign(total, 0);
    fan->keys.resize(total);
    for (std::size_t i = 0; i < total; ++i)
        fan->keys[i] = service::pointShardKey(specs[i]);

    const auto wantCancel = [&] {
        return (cancel && cancel->load(std::memory_order_relaxed)) ||
               srv.draining() ||
               stopRequested.load(std::memory_order_relaxed);
    };

    unsigned firstRoundShards = 0;
    std::uint64_t resharded = 0;
    bool cancelledRun = false;

    for (unsigned round = 0;; ++round) {
        // The unfinished set. No lock needed between rounds: all
        // sub-sweeps of the previous round have completed.
        std::vector<std::size_t> todo;
        for (std::size_t i = 0; i < total; ++i) {
            if (!fan->done[i])
                todo.push_back(i);
        }
        if (todo.empty())
            break;
        if (wantCancel()) {
            cancelledRun = true;
            break;
        }
        for (const std::size_t g : todo) {
            if (fan->attempts[g] >= opts.maxPointAttempts) {
                throw std::runtime_error(
                    "point '" + fan->specs[g].name + "' failed after " +
                    std::to_string(fan->attempts[g]) + " attempts");
            }
        }

        // Group by ring owner among Up backends; wait (bounded) for
        // any backend to come up when there is none.
        std::vector<bool> up(backends.size());
        {
            std::lock_guard<std::mutex> lock(mtx);
            for (std::size_t i = 0; i < backends.size(); ++i)
                up[i] = backends[i].state == BackendState::Up;
        }
        if (std::find(up.begin(), up.end(), true) == up.end()) {
            bool any = false;
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(opts.reshardWaitMs);
            std::unique_lock<std::mutex> lock(mtx);
            while (!any && !wantCancel() &&
                   std::chrono::steady_clock::now() < deadline) {
                backendUp.wait_for(lock,
                                   std::chrono::milliseconds(100));
                for (const Backend &b : backends)
                    any |= b.state == BackendState::Up;
            }
            if (wantCancel()) {
                cancelledRun = true;
                break;
            }
            if (!any)
                throw std::runtime_error(
                    "no live backends to shard onto");
            continue; // regroup with the fresh state
        }

        std::map<std::size_t, std::vector<std::size_t>> groups;
        for (const std::size_t g : todo) {
            const std::size_t owner = ring.lookup(
                fan->keys[g], [&up](std::size_t b) { return up[b]; });
            groups[owner].push_back(g);
            ++fan->attempts[g];
        }
        if (round == 0) {
            firstRoundShards = static_cast<unsigned>(groups.size());
        } else {
            resharded += todo.size();
            srv.metrics().count("dieirb_coord_points_resharded_total",
                                "", static_cast<double>(todo.size()));
        }

        std::vector<std::shared_ptr<Shard>> shards;
        shards.reserve(groups.size());
        {
            std::lock_guard<std::mutex> lock(fan->m);
            fan->outstanding = static_cast<unsigned>(groups.size());
        }
        for (auto &[backend, pts] : groups) {
            auto shard = std::make_shared<Shard>();
            shard->backend = backend;
            shard->points = std::move(pts);
            shards.push_back(shard);
            dispatchShard(fan, shard);
        }

        // Wait out the round, forwarding a client disconnect (or a
        // drain) to the backends by closing the sub-sweep sockets —
        // their EPOLLRDHUP handlers cancel the sweep remainders.
        bool cancelSent = false;
        {
            std::unique_lock<std::mutex> lock(fan->m);
            while (fan->outstanding > 0) {
                fan->cv.wait_for(lock,
                                 std::chrono::milliseconds(100));
                if (!cancelSent && wantCancel()) {
                    cancelSent = true;
                    for (const auto &shard : shards)
                        client.cancel(shard->transferId);
                }
            }
        }

        // Fold the round's failures into the backend states.
        bool anySaturated = false;
        for (const auto &shard : shards) {
            if (shard->error == "cancelled")
                continue; // we closed it ourselves
            if (shard->sawCancelled && !shard->failed)
                setBackendState(shard->backend,
                                BackendState::Draining);
            if (!shard->failed)
                continue;
            srv.metrics().count(
                "dieirb_coord_backend_failures_total",
                "backend=\"" + backends[shard->backend].address +
                    "\"");
            warn("[coord] sub-sweep on %s failed: %s",
                 backends[shard->backend].address.c_str(),
                 shard->error.c_str());
            if (shard->status == 503) {
                setBackendState(shard->backend,
                                BackendState::Draining);
            } else if (shard->status == 429) {
                anySaturated = true; // healthy, just full: back off
            } else {
                setBackendState(shard->backend, BackendState::Down);
            }
        }
        if (cancelSent) {
            cancelledRun = true;
            break;
        }
        if (anySaturated) {
            // Bounded backoff before re-offering the same backend.
            const unsigned backoffMs =
                std::min(100u * (round + 1), 1000u);
            for (unsigned slept = 0;
                 slept < backoffMs && !wantCancel(); slept += 50) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        }
    }

    // Whatever is still unfinished was cancelled: emit the same
    // cancelled lines a draining backend would have, in order.
    std::uint64_t cancelledCount = 0;
    {
        std::lock_guard<std::mutex> lock(fan->m);
        for (std::size_t i = 0; i < total; ++i) {
            if (fan->done[i])
                continue;
            fan->done[i] = true;
            fan->lines[i] = cancelledLine(fan->specs[i]);
            ++cancelledCount;
        }
        while (fan->nextEmit < total && fan->done[fan->nextEmit]) {
            if (fan->onLine)
                fan->onLine(fan->lines[fan->nextEmit]);
            ++fan->nextEmit;
        }
    }
    (void)cancelledRun;

    Json stats = Json::object();
    stats.set("total", static_cast<std::uint64_t>(total));
    stats.set("cached", fan->cachedCount);
    stats.set("cancelled", cancelledCount);
    stats.set("shards", firstRoundShards);
    stats.set("resharded", resharded);
    return stats;
}

} // namespace coord

} // namespace direb
