#include "coord/http_client.hh"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/logging.hh"
#include "service/io.hh"

namespace direb
{

namespace coord
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

std::string
lowered(std::string s)
{
    for (char &c : s) {
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    }
    return s;
}

} // namespace

const std::string *
ClientResponse::header(const std::string &lower_name) const
{
    for (const auto &[name, value] : headers) {
        if (name == lower_name)
            return &value;
    }
    return nullptr;
}

/**
 * One in-flight transfer, owned by the loop thread. The response side
 * is an incremental parser: head (status line + headers), then one of
 * three body framings, driven directly off the receive buffer.
 */
struct HttpClient::Xfer
{
    std::uint64_t id = 0;
    int fd = -1;
    ClientRequest req;
    ClientCallbacks cbs;

    std::string wire; //!< serialized request
    std::size_t wireOff = 0;
    bool connecting = true;
    bool wantWrite = false; //!< EPOLLOUT currently registered

    enum class Ps : std::uint8_t {
        Head,
        FixedBody,
        Chunked,
        UntilClose,
        Done,
    };
    enum class Cs : std::uint8_t { Size, Data, DataCrlf, Trailers };

    Ps ps = Ps::Head;
    Cs cs = Cs::Size;
    ClientResponse resp;
    std::uint64_t remaining = 0; //!< fixed-body or current-chunk bytes
    std::string in;              //!< unparsed received bytes
    std::size_t inOff = 0;
    bool finished = false;

    /** in minus the consumed prefix. @{ */
    const char *data() const { return in.data() + inOff; }
    std::size_t avail() const { return in.size() - inOff; }
    void consume(std::size_t n)
    {
        inOff += n;
        if (inOff > 64 * 1024 && inOff * 2 >= in.size()) {
            in.erase(0, inOff);
            inOff = 0;
        }
    }
    /** @} */
};

struct HttpClient::Command
{
    enum class Kind : std::uint8_t { Send, Cancel };
    Kind kind = Kind::Send;
    std::shared_ptr<Xfer> xfer; //!< Send
    std::uint64_t id = 0;       //!< Cancel
};

HttpClient::HttpClient() = default;

HttpClient::~HttpClient() { stop(); }

void
HttpClient::start()
{
    fatal_if(started, "http client already started");
    epollFd = ::epoll_create1(0);
    fatal_if(epollFd < 0, "epoll_create1(): %s", std::strerror(errno));
    wakeFd = ::eventfd(0, EFD_NONBLOCK);
    fatal_if(wakeFd < 0, "eventfd(): %s", std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd;
    fatal_if(::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev) < 0,
             "epoll_ctl(wake): %s", std::strerror(errno));
    started = true;
    loopThread = std::thread([this] { loop(); });
}

void
HttpClient::stop()
{
    {
        std::lock_guard<std::mutex> lock(cmdMtx);
        if (stopRequested)
            return;
        stopRequested = true;
    }
    if (started) {
        wake();
        if (loopThread.joinable())
            loopThread.join();
    }
    if (epollFd >= 0) {
        ::close(epollFd);
        epollFd = -1;
    }
    if (wakeFd >= 0) {
        ::close(wakeFd);
        wakeFd = -1;
    }
}

void
HttpClient::wake()
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r =
        ::write(wakeFd, &one, sizeof(one));
}

std::uint64_t
HttpClient::send(ClientRequest req, ClientCallbacks cbs)
{
    auto x = std::make_shared<Xfer>();
    x->req = std::move(req);
    x->cbs = std::move(cbs);
    {
        std::lock_guard<std::mutex> lock(cmdMtx);
        x->id = nextId++;
        if (stopRequested || !started) {
            // Deliver the failure on the caller's thread — there is no
            // loop left (or yet) to deliver it on.
            if (x->cbs.onDone)
                x->cbs.onDone(false, "client stopped");
            return x->id;
        }
        Command cmd;
        cmd.kind = Command::Kind::Send;
        cmd.xfer = std::move(x);
        const std::uint64_t id = cmd.xfer->id;
        commands.push_back(std::move(cmd));
        wake();
        return id;
    }
}

void
HttpClient::cancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(cmdMtx);
    if (stopRequested || !started)
        return;
    Command cmd;
    cmd.kind = Command::Kind::Cancel;
    cmd.id = id;
    commands.push_back(std::move(cmd));
    wake();
}

HttpClient::FetchResult
HttpClient::fetch(ClientRequest req)
{
    FetchResult result;
    std::mutex mtx;
    std::condition_variable cv;
    bool done = false;

    ClientCallbacks cbs;
    cbs.onHead = [&](const ClientResponse &resp) {
        std::lock_guard<std::mutex> lock(mtx);
        result.status = resp.status;
    };
    cbs.onBody = [&](const char *data, std::size_t n) {
        std::lock_guard<std::mutex> lock(mtx);
        result.body.append(data, n);
    };
    cbs.onDone = [&](bool ok, const std::string &error) {
        std::lock_guard<std::mutex> lock(mtx);
        result.ok = ok;
        result.error = error;
        done = true;
        cv.notify_all();
    };
    send(std::move(req), std::move(cbs));
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [&] { return done; });
    return result;
}

void
HttpClient::loop()
{
    std::vector<epoll_event> events(64);
    for (;;) {
        const int timeout = wheel.pollTimeoutMs(200);
        const int n = ::epoll_wait(epollFd, events.data(),
                                   static_cast<int>(events.size()),
                                   timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("client epoll_wait(): %s; loop exiting",
                 std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakeFd) {
                std::uint64_t drained = 0;
                while (::read(wakeFd, &drained, sizeof(drained)) > 0) {}
                continue;
            }
            const auto it = byFd.find(fd);
            if (it != byFd.end()) {
                // Copy: finish() erases the map slot this iterator
                // points into while callees still hold the pointer.
                const std::shared_ptr<Xfer> x = it->second;
                onEvent(x, events[i].events);
            }
        }
        processCommands();
        for (const int fd : wheel.expire(nowMs())) {
            const auto it = byFd.find(fd);
            if (it != byFd.end()) {
                const std::shared_ptr<Xfer> x = it->second;
                finish(x, false,
                       x->connecting ? "connect timeout"
                                     : "idle timeout");
            }
        }
        bool stopNow = false;
        {
            std::lock_guard<std::mutex> lock(cmdMtx);
            stopNow = stopRequested;
        }
        if (stopNow) {
            std::vector<std::shared_ptr<Xfer>> inflight;
            inflight.reserve(byId.size());
            for (const auto &[id, x] : byId)
                inflight.push_back(x);
            for (const auto &x : inflight)
                finish(x, false, "client stopped");
            processCommands(); // fail sends that raced the stop
            break;
        }
    }
}

void
HttpClient::processCommands()
{
    std::vector<Command> batch;
    bool stopNow = false;
    {
        std::lock_guard<std::mutex> lock(cmdMtx);
        batch.swap(commands);
        stopNow = stopRequested;
    }
    for (Command &cmd : batch) {
        if (cmd.kind == Command::Kind::Send) {
            if (stopNow) {
                finish(cmd.xfer, false, "client stopped");
            } else {
                beginXfer(cmd.xfer);
            }
        } else {
            const auto it = byId.find(cmd.id);
            if (it != byId.end()) {
                const std::shared_ptr<Xfer> x = it->second;
                finish(x, false, "cancelled");
            }
        }
    }
}

void
HttpClient::beginXfer(const std::shared_ptr<Xfer> &x)
{
    const ClientRequest &req = x->req;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portStr = std::to_string(req.port);
    const int gai =
        ::getaddrinfo(req.host.c_str(), portStr.c_str(), &hints, &res);
    if (gai != 0 || !res) {
        finish(x, false,
               "resolve " + req.host + ": " + ::gai_strerror(gai));
        return;
    }

    x->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (x->fd < 0) {
        ::freeaddrinfo(res);
        finish(x, false, std::string("socket(): ") +
                             std::strerror(errno));
        return;
    }
    const int rc = ::connect(x->fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc < 0 && errno != EINPROGRESS) {
        finish(x, false, std::string("connect(): ") +
                             std::strerror(errno));
        return;
    }
    x->connecting = rc < 0;

    std::string &w = x->wire;
    w = req.method + " " + req.target + " HTTP/1.1\r\n";
    w += "Host: " + req.host + ":" + portStr + "\r\n";
    for (const auto &[name, value] : req.headers)
        w += name + ": " + value + "\r\n";
    if (!req.body.empty() || req.method == "POST" ||
        req.method == "PUT") {
        w += "Content-Length: " + std::to_string(req.body.size()) +
             "\r\n";
    }
    w += "Connection: close\r\n\r\n";
    w += req.body;

    epoll_event ev{};
    ev.events = EPOLLOUT | EPOLLIN | EPOLLRDHUP;
    ev.data.fd = x->fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, x->fd, &ev) < 0) {
        finish(x, false, std::string("epoll_ctl(): ") +
                             std::strerror(errno));
        return;
    }
    x->wantWrite = true;
    byFd.emplace(x->fd, x);
    byId.emplace(x->id, x);
    wheel.schedule(x->fd, nowMs(), req.connectTimeoutMs);
}

void
HttpClient::touch(const std::shared_ptr<Xfer> &x, unsigned delay_ms)
{
    wheel.schedule(x->fd, nowMs(), delay_ms);
}

void
HttpClient::onEvent(const std::shared_ptr<Xfer> &x,
                    std::uint32_t events)
{
    if (x->connecting) {
        if (!(events & (EPOLLOUT | EPOLLERR | EPOLLHUP)))
            return;
        int soErr = 0;
        socklen_t len = sizeof(soErr);
        ::getsockopt(x->fd, SOL_SOCKET, SO_ERROR, &soErr, &len);
        if (soErr != 0) {
            finish(x, false, std::string("connect(): ") +
                                 std::strerror(soErr));
            return;
        }
        x->connecting = false;
        touch(x, x->req.idleTimeoutMs);
    }
    if ((events & EPOLLOUT) && x->wireOff < x->wire.size())
        pumpWrite(x);
    if (x->fd < 0)
        return; // finished while writing
    if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR))
        pumpRead(x);
}

void
HttpClient::pumpWrite(const std::shared_ptr<Xfer> &x)
{
    while (x->wireOff < x->wire.size()) {
        const ssize_t n = service::io::writeSome(
            x->fd, x->wire.data() + x->wireOff,
            x->wire.size() - x->wireOff);
        if (n > 0) {
            x->wireOff += static_cast<std::size_t>(n);
            touch(x, x->req.idleTimeoutMs);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        finish(x, false, std::string("send(): ") +
                             std::strerror(errno));
        return;
    }
    // Request fully written: stop asking for EPOLLOUT.
    if (x->wantWrite) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP;
        ev.data.fd = x->fd;
        ::epoll_ctl(epollFd, EPOLL_CTL_MOD, x->fd, &ev);
        x->wantWrite = false;
    }
}

void
HttpClient::pumpRead(const std::shared_ptr<Xfer> &x)
{
    char buf[16384];
    bool sawEof = false;
    for (;;) {
        const ssize_t n =
            service::io::readSome(x->fd, buf, sizeof(buf));
        if (n > 0) {
            x->in.append(buf, static_cast<std::size_t>(n));
            touch(x, x->req.idleTimeoutMs);
            continue;
        }
        if (n == 0) {
            sawEof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        finish(x, false, std::string("recv(): ") +
                             std::strerror(errno));
        return;
    }

    // Parse everything buffered so far.
    for (;;) {
        if (x->ps == Xfer::Ps::Head) {
            std::string err;
            if (!parseHead(*x, err)) {
                if (!err.empty()) {
                    finish(x, false, err);
                    return;
                }
                break; // need more header bytes
            }
            if (x->cbs.onHead)
                x->cbs.onHead(x->resp);
            continue;
        }
        if (x->ps == Xfer::Ps::FixedBody) {
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(x->remaining, x->avail()));
            if (take > 0) {
                if (x->cbs.onBody)
                    x->cbs.onBody(x->data(), take);
                x->consume(take);
                x->remaining -= take;
            }
            if (x->remaining == 0) {
                finish(x, true, "");
                return;
            }
            break;
        }
        if (x->ps == Xfer::Ps::UntilClose) {
            if (x->avail() > 0) {
                if (x->cbs.onBody)
                    x->cbs.onBody(x->data(), x->avail());
                x->consume(x->avail());
            }
            break;
        }
        if (x->ps == Xfer::Ps::Chunked) {
            if (x->cs == Xfer::Cs::Size) {
                const std::string_view v(x->data(), x->avail());
                const std::size_t eol = v.find("\r\n");
                if (eol == std::string_view::npos) {
                    if (x->avail() > 1024) {
                        finish(x, false, "oversized chunk-size line");
                        return;
                    }
                    break;
                }
                std::uint64_t size = 0;
                bool any = false;
                for (std::size_t i = 0; i < eol; ++i) {
                    const char c = v[i];
                    if (c == ';')
                        break; // chunk extensions: ignored
                    int digit;
                    if (c >= '0' && c <= '9') {
                        digit = c - '0';
                    } else if (c >= 'a' && c <= 'f') {
                        digit = c - 'a' + 10;
                    } else if (c >= 'A' && c <= 'F') {
                        digit = c - 'A' + 10;
                    } else {
                        finish(x, false, "malformed chunk size");
                        return;
                    }
                    size = size * 16 + static_cast<unsigned>(digit);
                    any = true;
                }
                if (!any) {
                    finish(x, false, "malformed chunk size");
                    return;
                }
                x->consume(eol + 2);
                if (size == 0) {
                    x->cs = Xfer::Cs::Trailers;
                } else {
                    x->remaining = size;
                    x->cs = Xfer::Cs::Data;
                }
                continue;
            }
            if (x->cs == Xfer::Cs::Data) {
                const std::size_t take = static_cast<std::size_t>(
                    std::min<std::uint64_t>(x->remaining, x->avail()));
                if (take > 0) {
                    if (x->cbs.onBody)
                        x->cbs.onBody(x->data(), take);
                    x->consume(take);
                    x->remaining -= take;
                }
                if (x->remaining > 0)
                    break; // need more data bytes
                x->cs = Xfer::Cs::DataCrlf;
                continue;
            }
            if (x->cs == Xfer::Cs::DataCrlf) {
                if (x->avail() < 2)
                    break;
                if (x->data()[0] != '\r' || x->data()[1] != '\n') {
                    finish(x, false, "missing chunk-data CRLF");
                    return;
                }
                x->consume(2);
                x->cs = Xfer::Cs::Size;
                continue;
            }
            // Trailers: lines until the blank one ends the response.
            const std::string_view v(x->data(), x->avail());
            const std::size_t eol = v.find("\r\n");
            if (eol == std::string_view::npos)
                break;
            x->consume(eol + 2);
            if (eol == 0) {
                finish(x, true, "");
                return;
            }
            continue;
        }
        break; // Ps::Done (unreachable: finish() precedes it)
    }

    if (x->fd < 0)
        return;
    if (sawEof) {
        if (x->ps == Xfer::Ps::UntilClose) {
            finish(x, true, "");
        } else if (x->ps == Xfer::Ps::Head) {
            finish(x, false, "connection closed before response");
        } else {
            finish(x, false, "truncated response");
        }
    }
}

/**
 * Parse status line + headers out of x.in once the blank line arrived.
 * True when the head is complete (x.ps advanced to the body framing);
 * false otherwise, with @p error set on a malformed head.
 */
bool
HttpClient::parseHead(Xfer &x, std::string &error)
{
    const std::string_view v(x.data(), x.avail());
    const std::size_t end = v.find("\r\n\r\n");
    if (end == std::string_view::npos) {
        if (x.avail() > 64 * 1024)
            error = "oversized response header";
        return false;
    }
    const std::string_view head = v.substr(0, end);

    // Status line: HTTP/1.x SP 3DIGIT SP reason
    const std::size_t line_end = head.find("\r\n");
    const std::string_view status_line =
        head.substr(0, line_end == std::string_view::npos ? head.size()
                                                          : line_end);
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string_view::npos ||
        status_line.compare(0, 5, "HTTP/") != 0 ||
        status_line.size() < sp + 4) {
        error = "malformed status line";
        return false;
    }
    int status = 0;
    for (std::size_t i = sp + 1; i < sp + 4; ++i) {
        const char c = status_line[i];
        if (c < '0' || c > '9') {
            error = "malformed status code";
            return false;
        }
        status = status * 10 + (c - '0');
    }
    x.resp.status = status;

    // Header lines.
    std::size_t pos = line_end == std::string_view::npos
        ? head.size()
        : line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos)
            eol = head.size();
        const std::string_view line = head.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) {
            error = "malformed response header";
            return false;
        }
        std::string name = lowered(std::string(line.substr(0, colon)));
        std::size_t vs = colon + 1;
        while (vs < line.size() &&
               (line[vs] == ' ' || line[vs] == '\t')) {
            ++vs;
        }
        x.resp.headers.emplace_back(std::move(name),
                                    std::string(line.substr(vs)));
    }
    x.consume(end + 4);

    // Body framing, per RFC 7230 3.3.3 (the subset we produce).
    const std::string *te = x.resp.header("transfer-encoding");
    const std::string *cl = x.resp.header("content-length");
    if (te && lowered(*te).find("chunked") != std::string::npos) {
        x.ps = Xfer::Ps::Chunked;
        x.cs = Xfer::Cs::Size;
    } else if (cl) {
        char *endp = nullptr;
        const unsigned long long n =
            std::strtoull(cl->c_str(), &endp, 10);
        if (!endp || *endp != '\0') {
            error = "malformed Content-Length";
            return false;
        }
        x.remaining = n;
        x.ps = Xfer::Ps::FixedBody;
    } else if (status == 204 || status == 304) {
        x.remaining = 0;
        x.ps = Xfer::Ps::FixedBody;
    } else {
        x.ps = Xfer::Ps::UntilClose;
    }
    return true;
}

void
HttpClient::finish(const std::shared_ptr<Xfer> &x, bool ok,
                   const std::string &error)
{
    if (x->finished)
        return;
    x->finished = true;
    if (x->fd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, x->fd, nullptr);
        wheel.cancel(x->fd);
        byFd.erase(x->fd);
        ::close(x->fd);
        x->fd = -1;
    }
    byId.erase(x->id);
    if (x->cbs.onDone)
        x->cbs.onDone(ok, error);
}

} // namespace coord

} // namespace direb
