/**
 * @file
 * Consistent-hash ring mapping 64-bit point cache keys onto backend
 * indices for dieirb-coord.
 *
 * Every configured backend is placed on the ring permanently (vnodes
 * spread each one around the circle); liveness is a *lookup-time*
 * filter, not a ring mutation. lookup() walks clockwise from the key
 * to the first vnode whose backend the caller's predicate accepts, so
 * a dead backend's keys spill onto their clockwise successors — and
 * move *back* the moment it is accepted again — without ever
 * re-shuffling keys between healthy backends. That minimal-movement
 * property is what keeps each backend's sweep.cache shard warm across
 * failures.
 *
 * Keys are remixed through a 64-bit finalizer before placement: the
 * cache keys are FNV-1a hashes whose low bits correlate for related
 * configs, and the finalizer de-correlates them so vnode ownership is
 * close to uniform.
 *
 * Immutable after construction, so lookups are lock-free and
 * thread-safe by construction.
 */

#ifndef DIREB_COORD_HASH_RING_HH
#define DIREB_COORD_HASH_RING_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace direb
{

namespace coord
{

class HashRing
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    HashRing() = default;

    /**
     * @param nodes  backend identities (e.g. "127.0.0.1:8101"); order
     *               defines the indices lookup() returns.
     * @param vnodes ring points per node; more vnodes = flatter load
     *               split, linearly more placement memory.
     */
    explicit HashRing(std::vector<std::string> nodes,
                      unsigned vnodes = 64);

    /**
     * Owner of @p key: the first vnode clockwise from mix(key) whose
     * node @p accept allows (every node allowed when absent). npos
     * when no node is acceptable.
     */
    std::size_t
    lookup(std::uint64_t key,
           const std::function<bool(std::size_t)> &accept = {}) const;

    std::size_t size() const { return names.size(); }
    const std::string &node(std::size_t i) const { return names[i]; }

    /** FNV-1a-64 of arbitrary bytes (vnode placement uses this). */
    static std::uint64_t hashBytes(const void *data, std::size_t n);

    /** The 64-bit finalizer applied to keys before placement. */
    static std::uint64_t mix(std::uint64_t x);

  private:
    struct Vnode
    {
        std::uint64_t hash;
        std::uint32_t node;
    };

    std::vector<std::string> names;
    std::vector<Vnode> ring; //!< sorted by hash
};

} // namespace coord

} // namespace direb

#endif // DIREB_COORD_HASH_RING_HH
