#include "coord/hash_ring.hh"

#include <algorithm>

namespace direb
{

namespace coord
{

std::uint64_t
HashRing::hashBytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL; // FNV prime
    }
    return h;
}

std::uint64_t
HashRing::mix(std::uint64_t x)
{
    // splitmix64 finalizer: full-avalanche, so FNV keys that differ in
    // a few low bits land far apart on the ring.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

HashRing::HashRing(std::vector<std::string> nodes, unsigned vnodes)
    : names(std::move(nodes))
{
    ring.reserve(names.size() * vnodes);
    for (std::size_t n = 0; n < names.size(); ++n) {
        for (unsigned v = 0; v < vnodes; ++v) {
            const std::string point =
                names[n] + "#" + std::to_string(v);
            ring.push_back(
                {hashBytes(point.data(), point.size()),
                 static_cast<std::uint32_t>(n)});
        }
    }
    std::sort(ring.begin(), ring.end(),
              [](const Vnode &a, const Vnode &b) {
                  // Tie-break on node index so two nodes colliding on
                  // a hash still order deterministically.
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.node < b.node;
              });
}

std::size_t
HashRing::lookup(std::uint64_t key,
                 const std::function<bool(std::size_t)> &accept) const
{
    if (ring.empty())
        return npos;
    const std::uint64_t h = mix(key);
    const auto it = std::lower_bound(
        ring.begin(), ring.end(), h,
        [](const Vnode &v, std::uint64_t value) {
            return v.hash < value;
        });
    std::size_t start = static_cast<std::size_t>(it - ring.begin());
    if (start == ring.size())
        start = 0; // wrap: clockwise past the top of the circle
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const Vnode &v = ring[(start + i) % ring.size()];
        if (!accept || accept(v.node))
            return v.node;
    }
    return npos;
}

} // namespace coord

} // namespace direb
