/**
 * @file
 * dieirb-coord's brain: shard a sweep across N dieirb-serve backends,
 * stream the merged result, survive backends dying mid-sweep.
 *
 * The coordinator is a thin front-end over service::Server — it
 * installs the server's route/stream hooks instead of duplicating the
 * epoll plumbing — plus three pieces of its own:
 *
 *  - a consistent-hash ring (HashRing) over the backends, keyed by the
 *    same FNV-1a-64 point cache key the backends name their result
 *    cache files with, so each backend's sweep.cache shard stays warm
 *    and a point always lands on the same backend while it is up;
 *
 *  - a fan-out engine: each round groups the unfinished points by ring
 *    owner among Up backends, dispatches one streamed NDJSON sub-sweep
 *    per owner over the non-blocking HttpClient, passes each finished
 *    point's line through *verbatim* (byte-identical to a
 *    single-backend run — simulation is deterministic, so the line
 *    does not depend on which backend produced it) in deterministic
 *    global order via a merge cursor, and re-shards the unfinished
 *    remainder of failed or draining backends onto the survivors in
 *    the next round. The completed prefix is never re-simulated:
 *    finished points leave the unfinished set the moment their line
 *    arrives.
 *
 *  - a health checker: a background probe of every backend's /healthz
 *    classifying it Up / Draining (graceful drain: finish what you
 *    get, send nothing new) / Down (transport failure: resend its
 *    unfinished points elsewhere). A backend's ring position never
 *    changes — recovery moves its keys straight back.
 *
 * Client-disconnect cancellation propagates by construction: the
 * server flips the connection's cancel token on EPOLLRDHUP, the
 * fan-out sees it and cancels its sub-sweeps by closing the
 * coordinator->backend sockets, and each backend's own EPOLLRDHUP
 * handler cancels the sweep remainder there.
 */

#ifndef DIREB_COORD_COORDINATOR_HH
#define DIREB_COORD_COORDINATOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coord/hash_ring.hh"
#include "coord/http_client.hh"
#include "harness/report.hh"
#include "service/server.hh"
#include "service/sweep_request.hh"

namespace direb
{

namespace coord
{

enum class BackendState : std::uint8_t { Up, Draining, Down };

const char *backendStateName(BackendState state);

struct CoordOptions
{
    std::vector<std::string> backends; //!< "host:port" each
    unsigned vnodes = 64;              //!< ring points per backend
    unsigned healthIntervalMs = 500;   //!< /healthz probe period
    unsigned maxPointAttempts = 3;     //!< dispatches per point before 500
    unsigned reshardWaitMs = 4'000;    //!< wait for any Up backend
    unsigned subsweepIdleTimeoutMs = 120'000; //!< no-progress bound
    unsigned probeTimeoutMs = 1'000;   //!< health/metrics probe bound
};

class Coordinator
{
  public:
    /**
     * Binds to @p server's hooks; call before server.start(). The
     * server must outlive the coordinator's stop().
     */
    Coordinator(service::Server &server, CoordOptions options);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Start the client loop + health checker (hooks already set). */
    void start();

    /** Stop probes, fail in-flight backend transfers, join threads. */
    void stop();

    /** Current view of one backend (tests and /healthz). */
    BackendState backendState(std::size_t i) const;
    std::size_t backendCount() const { return backends.size(); }

  private:
    struct Backend
    {
        std::string address; //!< "host:port" as configured
        std::string host;
        unsigned short port = 0;
        BackendState state = BackendState::Up;
    };

    /** Shared bookkeeping of one fan-out (all sub-sweeps merge here). */
    struct Fanout;
    /** One dispatched sub-sweep: a shard's points on one backend. */
    struct Shard;

    bool routeHook(const service::HttpRequest &req,
                   const std::string &request_id,
                   service::HttpResponse &resp);
    bool streamHook(const service::HttpRequest &req,
                    const service::Server::StreamPtr &stream);

    service::HttpResponse handleHealth();
    service::HttpResponse handleMetrics();
    service::HttpResponse handleSimulateProxy(
        const service::HttpRequest &req, const std::string &request_id);
    service::HttpResponse handleSweepBuffered(
        const service::HttpRequest &req, const std::string &request_id);
    /** Proxy /v1/query to any Up backend (stores are replicas, not
     *  shards: every backend mounts the same artifacts, so the first
     *  healthy answer is the answer). */
    service::HttpResponse handleQueryProxy(
        const service::HttpRequest &req, const std::string &request_id);

    /**
     * Run one sharded sweep to completion: emits every point's NDJSON
     * line (in deterministic global order) through @p on_line, returns
     * {total, cached, cancelled, shards, resharded}. Throws
     * std::runtime_error when a point exhausts its attempts or no
     * backend comes up within reshardWaitMs.
     */
    harness::Json
    runFanout(const std::vector<service::PointSpec> &specs,
              bool use_cache,
              const std::shared_ptr<std::atomic<bool>> &cancel,
              const std::function<void(const std::string &line)> &on_line);

    void dispatchShard(const std::shared_ptr<Fanout> &fan,
                       const std::shared_ptr<Shard> &shard);
    void processShardLine(const std::shared_ptr<Fanout> &fan,
                          const std::shared_ptr<Shard> &shard,
                          const std::string &line);
    void healthLoop();
    void setBackendState(std::size_t i, BackendState state);
    std::vector<std::size_t> upBackends() const;

    service::Server &srv;
    CoordOptions opts;
    HashRing ring;
    HttpClient client;

    mutable std::mutex mtx;
    std::condition_variable backendUp; //!< signalled on ->Up transitions
    std::vector<Backend> backends;

    std::thread healthThread;
    std::atomic<bool> stopRequested{false};
    std::mutex healthMtx;
    std::condition_variable healthTick;
    bool started = false;
};

} // namespace coord

} // namespace direb

#endif // DIREB_COORD_COORDINATOR_HH
