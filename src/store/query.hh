/**
 * @file
 * Aggregation queries over store artifacts: the engine behind the
 * dieirb-serve /v1/query endpoint and the dieirb-store tool.
 *
 * Request shape (JSON body of POST /v1/query):
 *
 *   {
 *     "metric":   "ipc",            // required — see metric names below
 *     "filter":   {                 // optional, all members optional
 *       "status":        "ok",      // exact PointStatus name
 *       "name_prefix":   "fig7/",
 *       "name_contains": "rb8"
 *     },
 *     "group_by": "name:1",         // optional; "" = one global group
 *     "aggs":     ["mean","max"]    // optional; default = all of them
 *   }
 *
 * Metrics: ipc, cycles, arch_insts, ruu_entries, attempts,
 * warmstart_insts, or stats.<key> for any flattened statistic. Entries
 * lacking the stat are skipped and counted in missing_metric.
 *
 * group_by: "" (everything in one group), "status", "name" (full point
 * name), or "name:<k>" — the k-th '/'-separated component of the point
 * name (missing component = empty key), which is how sweep points
 * encode their matrix axes ("fig7/lat2/rb8/ammp" etc.).
 *
 * Aggregates: count, min, max, mean, geomean, sum. geomean is null
 * unless every value in the group is positive.
 *
 * parseQuery() fatals (FatalError -> HTTP 400) on malformed requests;
 * runQuery() never fails on data, only skips (and counts) what does
 * not match.
 */

#ifndef DIREB_STORE_QUERY_HH
#define DIREB_STORE_QUERY_HH

#include <string>
#include <vector>

#include "harness/report.hh"
#include "store/store.hh"

namespace direb
{

namespace store
{

/** A parsed /v1/query request. */
struct QueryRequest
{
    std::string metric;
    std::string filterStatus;   //!< "" = any
    std::string namePrefix;     //!< "" = any
    std::string nameContains;   //!< "" = any
    std::string groupBy;        //!< "", "status", "name" or "name:<k>"
    std::vector<std::string> aggs; //!< validated; empty = all
};

/** Validate @p body into a QueryRequest; fatal() on anything malformed. */
QueryRequest parseQuery(const harness::Json &body);

/**
 * Run @p req over every entry of @p stores and return the response
 * document: metric/group_by echoes, points / matched / missing_metric /
 * skipped_raw_files counts, and a "groups" array (sorted by key) with
 * the requested aggregates per group.
 */
harness::Json runQuery(const std::vector<const Artifact *> &stores,
                       const QueryRequest &req);

} // namespace store

} // namespace direb

#endif // DIREB_STORE_QUERY_HH
