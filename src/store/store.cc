#include "store/store.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "store/codec.hh"

namespace direb
{

namespace store
{

using harness::PointStatus;
using harness::SweepResult;

namespace
{

constexpr char storeMagic[8] = {'D', 'I', 'R', 'B', 'S', 'T', 'O', 'R'};

constexpr std::uint64_t sectionColumnar = 0;
constexpr std::uint64_t sectionRawFiles = 1;

/** Stats-column type bytes. */
constexpr std::uint64_t statIntegral = 0; //!< delta + zigzag varints
constexpr std::uint64_t statDouble = 1;   //!< raw 8-byte bit patterns

void
putString(BitWriter &w, const std::string &s)
{
    w.putVarint(s.size());
    w.putBytes(s.data(), s.size());
}

/**
 * Read a string whose declared length must fit inside the payload —
 * bounding BEFORE the resize turns a hostile length into FatalError
 * instead of a gigantic allocation.
 */
std::string
getString(BitReader &r, std::size_t bound)
{
    const std::uint64_t len = r.getVarint();
    fatal_if(len > bound, "store: string length %llu exceeds the payload",
             static_cast<unsigned long long>(len));
    std::string s(len, '\0');
    r.getBytes(s.data(), s.size());
    return s;
}

void
putDouble(BitWriter &w, double v)
{
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(bits >> (8 * i));
    w.putBytes(b, sizeof(b));
}

double
getDouble(BitReader &r)
{
    unsigned char b[8];
    r.getBytes(b, sizeof(b));
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
        bits |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return std::bit_cast<double>(bits);
}

/**
 * Delta + zigzag a u64 column: deltas wrap in unsigned arithmetic (so
 * no overflow UB regardless of value order) and zigzag keeps small
 * negative deltas short. @{
 */
void
putDeltaColumn(BitWriter &w, const std::vector<std::uint64_t> &col)
{
    std::uint64_t prev = 0;
    for (const std::uint64_t v : col) {
        w.putVarint(zigzagEncode(static_cast<std::int64_t>(v - prev)));
        prev = v;
    }
}

std::vector<std::uint64_t>
getDeltaColumn(BitReader &r, std::size_t n)
{
    std::vector<std::uint64_t> col(n);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        prev += static_cast<std::uint64_t>(zigzagDecode(r.getVarint()));
        col[i] = prev;
    }
    return col;
}
/** @} */

/**
 * True when @p v survives a double->int64->double round trip with the
 * exact bit pattern — which excludes NaN, infinities, -0.0, fractions
 * and out-of-range magnitudes, everything the integral column encoding
 * could not restore bit-identically.
 */
bool
integralBits(double v)
{
    if (v < -9.2e18 || v > 9.2e18)
        return false;
    const auto i = static_cast<std::int64_t>(v);
    return std::bit_cast<std::uint64_t>(static_cast<double>(i)) ==
           std::bit_cast<std::uint64_t>(v);
}

void
putCore(BitWriter &w, const CoreResult &cr)
{
    w.putBits(static_cast<std::uint64_t>(cr.stop) & 0xff, 8);
    w.putVarint(cr.cycles);
    w.putVarint(cr.archInsts);
    w.putVarint(cr.ruuEntriesCommitted);
    putDouble(w, cr.ipc);
}

CoreResult
getCore(BitReader &r)
{
    CoreResult cr;
    cr.stop = static_cast<StopReason>(r.getBits(8));
    cr.cycles = static_cast<Cycle>(r.getVarint());
    cr.archInsts = r.getVarint();
    cr.ruuEntriesCommitted = r.getVarint();
    cr.ipc = getDouble(r);
    return cr;
}

std::string
encodeColumnarSection(const std::vector<StoredEntry> &entries)
{
    BitWriter w;
    const std::size_t n = entries.size();
    w.putVarint(n);
    for (const StoredEntry &e : entries)
        putString(w, e.filename);
    for (const StoredEntry &e : entries)
        putString(w, e.result.name);
    for (const StoredEntry &e : entries)
        w.putBits(static_cast<std::uint64_t>(e.result.status), 8);
    for (const StoredEntry &e : entries)
        putString(w, e.result.error);
    for (const StoredEntry &e : entries)
        w.putVarint(e.result.attempts);
    for (const StoredEntry &e : entries)
        w.putVarint(e.result.sim.warmstartInsts);

    // Aggregate-core columns: counters are near-monotone across a
    // sorted cache directory, so delta + zigzag keeps them short.
    for (const StoredEntry &e : entries)
        w.putBits(static_cast<std::uint64_t>(e.result.sim.core.stop) &
                      0xff,
                  8);
    std::vector<std::uint64_t> col(n);
    for (std::size_t i = 0; i < n; ++i)
        col[i] = entries[i].result.sim.core.cycles;
    putDeltaColumn(w, col);
    for (std::size_t i = 0; i < n; ++i)
        col[i] = entries[i].result.sim.core.archInsts;
    putDeltaColumn(w, col);
    for (std::size_t i = 0; i < n; ++i)
        col[i] = entries[i].result.sim.core.ruuEntriesCommitted;
    putDeltaColumn(w, col);
    for (const StoredEntry &e : entries)
        putDouble(w, e.result.sim.core.ipc);

    // CMP per-core lists (rare; stored row-wise per entry).
    for (const StoredEntry &e : entries) {
        w.putVarint(e.result.sim.cores.size());
        for (const CoreResult &cr : e.result.sim.cores)
            putCore(w, cr);
    }

    // Stats dictionary: each key named once, then one column per key
    // with a presence bitmap (entries of a sweep share most keys, so
    // the bitmaps are nearly all-ones and compress to nothing).
    std::map<std::string, bool> keys; // key -> all present values integral
    for (const StoredEntry &e : entries) {
        for (const auto &[k, v] : e.result.sim.stats) {
            auto [it, fresh] = keys.emplace(k, true);
            it->second = it->second && integralBits(v);
        }
    }
    w.putVarint(keys.size());
    for (const auto &[k, integral] : keys)
        putString(w, k);
    for (const auto &[k, integral] : keys) {
        for (const StoredEntry &e : entries)
            w.putBits(e.result.sim.stats.count(k) ? 1 : 0, 1);
        w.putBits(integral ? statIntegral : statDouble, 8);
        if (integral) {
            std::vector<std::uint64_t> vals;
            for (const StoredEntry &e : entries) {
                const auto it = e.result.sim.stats.find(k);
                if (it != e.result.sim.stats.end())
                    vals.push_back(static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(it->second)));
            }
            putDeltaColumn(w, vals);
        } else {
            for (const StoredEntry &e : entries) {
                const auto it = e.result.sim.stats.find(k);
                if (it != e.result.sim.stats.end())
                    putDouble(w, it->second);
            }
        }
    }

    for (const StoredEntry &e : entries)
        putString(w, e.result.sim.output);
    for (const StoredEntry &e : entries)
        putString(w, e.result.sim.statsText);
    return w.finish();
}

std::vector<StoredEntry>
decodeColumnarSection(const std::string &payload)
{
    BitReader r(payload);
    const std::uint64_t n = r.getVarint();
    fatal_if(n > payload.size(),
             "store: %llu entries declared in a %zu-byte section",
             static_cast<unsigned long long>(n), payload.size());
    std::vector<StoredEntry> entries(n);
    const std::size_t bound = payload.size();
    for (StoredEntry &e : entries)
        e.filename = getString(r, bound);
    for (StoredEntry &e : entries)
        e.result.name = getString(r, bound);
    for (StoredEntry &e : entries) {
        const std::uint64_t s = r.getBits(8);
        fatal_if(s > static_cast<std::uint64_t>(PointStatus::Cancelled),
                 "store: bad point status %llu",
                 static_cast<unsigned long long>(s));
        e.result.status = static_cast<PointStatus>(s);
    }
    for (StoredEntry &e : entries)
        e.result.error = getString(r, bound);
    for (StoredEntry &e : entries)
        e.result.attempts = static_cast<unsigned>(r.getVarint());
    for (StoredEntry &e : entries)
        e.result.sim.warmstartInsts = r.getVarint();

    for (StoredEntry &e : entries)
        e.result.sim.core.stop = static_cast<StopReason>(r.getBits(8));
    std::vector<std::uint64_t> col = getDeltaColumn(r, n);
    for (std::uint64_t i = 0; i < n; ++i)
        entries[i].result.sim.core.cycles = static_cast<Cycle>(col[i]);
    col = getDeltaColumn(r, n);
    for (std::uint64_t i = 0; i < n; ++i)
        entries[i].result.sim.core.archInsts = col[i];
    col = getDeltaColumn(r, n);
    for (std::uint64_t i = 0; i < n; ++i)
        entries[i].result.sim.core.ruuEntriesCommitted = col[i];
    for (StoredEntry &e : entries)
        e.result.sim.core.ipc = getDouble(r);

    for (StoredEntry &e : entries) {
        const std::uint64_t cores = r.getVarint();
        fatal_if(cores > bound, "store: absurd CMP core count %llu",
                 static_cast<unsigned long long>(cores));
        e.result.sim.cores.reserve(cores);
        for (std::uint64_t i = 0; i < cores; ++i)
            e.result.sim.cores.push_back(getCore(r));
    }

    const std::uint64_t nkeys = r.getVarint();
    fatal_if(nkeys > bound, "store: absurd stat-key count %llu",
             static_cast<unsigned long long>(nkeys));
    std::vector<std::string> keys(nkeys);
    for (std::string &k : keys)
        k = getString(r, bound);
    for (const std::string &k : keys) {
        std::vector<bool> present(n);
        for (std::uint64_t i = 0; i < n; ++i)
            present[i] = r.getBits(1) != 0;
        const std::uint64_t type = r.getBits(8);
        if (type == statIntegral) {
            std::uint64_t cnt = 0;
            for (std::uint64_t i = 0; i < n; ++i)
                cnt += present[i];
            const std::vector<std::uint64_t> vals =
                getDeltaColumn(r, cnt);
            std::size_t next = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                if (present[i]) {
                    entries[i].result.sim.stats[k] = static_cast<double>(
                        static_cast<std::int64_t>(vals[next++]));
                }
            }
        } else if (type == statDouble) {
            for (std::uint64_t i = 0; i < n; ++i) {
                if (present[i])
                    entries[i].result.sim.stats[k] = getDouble(r);
            }
        } else {
            fatal("store: bad stat column type %llu",
                  static_cast<unsigned long long>(type));
        }
    }

    for (StoredEntry &e : entries)
        e.result.sim.output = getString(r, bound);
    for (StoredEntry &e : entries)
        e.result.sim.statsText = getString(r, bound);
    fatal_if(r.bitsLeft() >= 8,
             "store: %zu trailing bytes after the columnar section",
             r.bitsLeft() / 8);
    return entries;
}

std::string
encodeRawSection(const std::vector<RawFile> &files)
{
    BitWriter w;
    w.putVarint(files.size());
    for (const RawFile &f : files) {
        putString(w, f.filename);
        putString(w, f.bytes);
    }
    return w.finish();
}

std::vector<RawFile>
decodeRawSection(const std::string &payload)
{
    BitReader r(payload);
    const std::uint64_t n = r.getVarint();
    fatal_if(n > payload.size(),
             "store: %llu raw files declared in a %zu-byte section",
             static_cast<unsigned long long>(n), payload.size());
    std::vector<RawFile> files(n);
    for (RawFile &f : files) {
        f.filename = getString(r, payload.size());
        f.bytes = getString(r, payload.size());
    }
    fatal_if(r.bitsLeft() >= 8,
             "store: %zu trailing bytes after the raw section",
             r.bitsLeft() / 8);
    return files;
}

void
putSection(BitWriter &w, std::uint64_t kind, const std::string &payload)
{
    const std::string compressed = compress(payload);
    w.putVarint(kind);
    w.putVarint(compressed.size());
    w.putBytes(compressed.data(), compressed.size());
    w.putVarint(fnv1a64(compressed.data(), compressed.size()));
}

} // namespace

std::string
renderEntryBytes(const StoredEntry &entry)
{
    return harness::renderSweepCacheEntry(entry.result);
}

Artifact
packDirectory(const std::string &dir)
{
    fatal_if(!std::filesystem::is_directory(dir),
             "store: %s is not a directory", dir.c_str());
    std::vector<std::string> names;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        if (de.is_regular_file())
            names.push_back(de.path().filename().string());
    }
    std::sort(names.begin(), names.end());

    Artifact art;
    for (const std::string &name : names) {
        const std::string path = dir + "/" + name;
        std::ifstream in(path, std::ios::binary);
        fatal_if(!in, "store: cannot read %s", path.c_str());
        std::ostringstream body;
        body << in.rdbuf();
        const std::string bytes = body.str();

        // Columnar only when re-rendering the parse reproduces the file
        // byte-for-byte — the structural guarantee behind "unpack is
        // always byte-identical". Everything else rides verbatim.
        StoredEntry entry;
        entry.filename = name;
        if (harness::parseSweepCacheEntry(bytes, entry.result) &&
            harness::renderSweepCacheEntry(entry.result) == bytes) {
            art.entries.push_back(std::move(entry));
        } else {
            art.rawFiles.push_back(RawFile{name, bytes});
        }
    }
    return art;
}

std::string
encodeArtifact(const Artifact &artifact)
{
    BitWriter w;
    w.putBytes(storeMagic, sizeof(storeMagic));
    w.putVarint(storeFormatVersion);
    w.putVarint(2);
    putSection(w, sectionColumnar,
               encodeColumnarSection(artifact.entries));
    putSection(w, sectionRawFiles, encodeRawSection(artifact.rawFiles));
    return w.finish();
}

Artifact
decodeArtifact(const std::string &bytes)
{
    BitReader r(bytes);
    char magic[sizeof(storeMagic)];
    r.getBytes(magic, sizeof(magic));
    fatal_if(std::memcmp(magic, storeMagic, sizeof(magic)) != 0,
             "store: bad magic (not a dieirb store artifact)");
    const std::uint64_t version = r.getVarint();
    fatal_if(version != storeFormatVersion,
             "store: format version %llu (this build reads %u)",
             static_cast<unsigned long long>(version), storeFormatVersion);
    const std::uint64_t nsect = r.getVarint();
    fatal_if(nsect > 16, "store: absurd section count %llu",
             static_cast<unsigned long long>(nsect));

    Artifact art;
    for (std::uint64_t s = 0; s < nsect; ++s) {
        const std::uint64_t kind = r.getVarint();
        const std::uint64_t clen = r.getVarint();
        fatal_if(clen > bytes.size(),
                 "store: declared section of %llu bytes in a %zu-byte "
                 "file",
                 static_cast<unsigned long long>(clen), bytes.size());
        std::string compressed(clen, '\0');
        r.getBytes(compressed.data(), compressed.size());
        const std::uint64_t sum = r.getVarint();
        fatal_if(sum != fnv1a64(compressed.data(), compressed.size()),
                 "store: section checksum mismatch (corrupt artifact)");
        const std::string payload = decompress(compressed);
        if (kind == sectionColumnar)
            art.entries = decodeColumnarSection(payload);
        else if (kind == sectionRawFiles)
            art.rawFiles = decodeRawSection(payload);
        else
            fatal("store: unknown section kind %llu",
                  static_cast<unsigned long long>(kind));
    }
    fatal_if(r.bitsLeft() >= 8,
             "store: %zu trailing bytes after the last section",
             r.bitsLeft() / 8);
    return art;
}

void
writeArtifact(const std::string &path, const Artifact &artifact)
{
    const std::string bytes = encodeArtifact(artifact);
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path());
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        fatal_if(!out, "store: cannot write %s", tmp.c_str());
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        fatal_if(!out, "store: short write to %s", tmp.c_str());
    }
    std::filesystem::rename(tmp, target);
}

Artifact
readArtifact(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "store: cannot open %s", path.c_str());
    std::ostringstream body;
    body << in.rdbuf();
    return decodeArtifact(body.str());
}

void
unpackArtifact(const Artifact &artifact, const std::string &dir)
{
    std::filesystem::create_directories(dir);
    const auto writeFile = [&dir](const std::string &name,
                                  const std::string &bytes) {
        fatal_if(name.empty() || name.find('/') != std::string::npos ||
                     name == ".." || name == ".",
                 "store: refusing to unpack suspicious filename '%s'",
                 name.c_str());
        const std::string path = dir + "/" + name;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        fatal_if(!out, "store: cannot write %s", path.c_str());
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        fatal_if(!out, "store: short write to %s", path.c_str());
    };
    for (const StoredEntry &e : artifact.entries)
        writeFile(e.filename, renderEntryBytes(e));
    for (const RawFile &f : artifact.rawFiles)
        writeFile(f.filename, f.bytes);
}

} // namespace store

} // namespace direb
