#include "store/codec.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace direb
{

namespace store
{

std::uint64_t
fnv1a64(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

// ---------------------------------------------------------------------------
// Bit streams
// ---------------------------------------------------------------------------

void
BitWriter::flushAligned()
{
    while (fill >= 8) {
        out.push_back(static_cast<char>(acc & 0xff));
        acc >>= 8;
        fill -= 8;
    }
}

void
BitWriter::putBits(std::uint64_t value, unsigned bits)
{
    panic_if(bits > 57, "BitWriter::putBits: %u bits per call", bits);
    if (bits < 64)
        value &= (std::uint64_t(1) << bits) - 1;
    acc |= value << fill;
    fill += bits;
    flushAligned();
}

void
BitWriter::putVarint(std::uint64_t value)
{
    do {
        const std::uint8_t byte = value & 0x7f;
        value >>= 7;
        putBits(byte | (value ? 0x80 : 0), 8);
    } while (value);
}

void
BitWriter::putBytes(const void *data, std::size_t n)
{
    if (fill % 8 != 0)
        putBits(0, 8 - fill % 8); // align
    flushAligned();
    out.append(static_cast<const char *>(data), n);
}

std::string
BitWriter::finish()
{
    if (fill % 8 != 0)
        putBits(0, 8 - fill % 8);
    flushAligned();
    return std::move(out);
}

std::uint64_t
BitReader::getBits(unsigned bits)
{
    panic_if(bits > 57, "BitReader::getBits: %u bits per call", bits);
    fatal_if(pos + bits > size * 8,
             "store codec: truncated stream (want %u bits at bit %zu of "
             "%zu bytes)",
             bits, pos, size);
    std::uint64_t v = 0;
    unsigned got = 0;
    while (got < bits) {
        const std::size_t byte = (pos + got) >> 3;
        const unsigned off = (pos + got) & 7;
        const unsigned take = std::min(8 - off, bits - got);
        const std::uint64_t chunk = (buf[byte] >> off) &
                                    ((1u << take) - 1);
        v |= chunk << got;
        got += take;
    }
    pos += bits;
    return v;
}

std::uint64_t
BitReader::getVarint()
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        const std::uint64_t byte = getBits(8);
        fatal_if(shift >= 64 || (shift == 63 && (byte & 0x7f) > 1),
                 "store codec: varint overflows 64 bits");
        v |= (byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

void
BitReader::getBytes(void *data, std::size_t n)
{
    if (pos % 8 != 0)
        pos += 8 - pos % 8; // align, mirroring putBytes
    fatal_if(pos / 8 + n > size,
             "store codec: truncated stream (want %zu raw bytes at byte "
             "%zu of %zu)",
             n, pos / 8, size);
    std::memcpy(data, buf + pos / 8, n);
    pos += n * 8;
}

// ---------------------------------------------------------------------------
// Canonical Huffman
// ---------------------------------------------------------------------------

namespace
{

/**
 * Compute Huffman code lengths for @p freq by pairing the two lightest
 * live nodes (simple O(n^2) selection — alphabets here are <= 512
 * symbols, so table build time is noise next to the byte loops).
 */
std::vector<std::uint8_t>
huffmanLengths(const std::vector<std::uint64_t> &freq)
{
    const unsigned n = static_cast<unsigned>(freq.size());
    struct Node
    {
        std::uint64_t weight;
        int parent = -1;
        bool live = false;
    };
    std::vector<Node> nodes;
    nodes.reserve(2 * n);
    unsigned liveCount = 0;
    for (unsigned s = 0; s < n; ++s) {
        Node nd;
        nd.weight = freq[s];
        nd.live = freq[s] > 0;
        liveCount += nd.live ? 1 : 0;
        nodes.push_back(nd);
    }
    std::vector<std::uint8_t> len(n, 0);
    if (liveCount == 0)
        return len;
    if (liveCount == 1) {
        for (unsigned s = 0; s < n; ++s)
            len[s] = freq[s] ? 1 : 0;
        return len;
    }

    for (;;) {
        int a = -1, b = -1;
        for (unsigned i = 0; i < nodes.size(); ++i) {
            if (!nodes[i].live)
                continue;
            if (a < 0 || nodes[i].weight < nodes[a].weight) {
                b = a;
                a = static_cast<int>(i);
            } else if (b < 0 || nodes[i].weight < nodes[b].weight) {
                b = static_cast<int>(i);
            }
        }
        if (b < 0)
            break; // one live root left: done
        Node parent;
        parent.weight = nodes[a].weight + nodes[b].weight;
        parent.live = true;
        nodes[a].live = nodes[b].live = false;
        nodes[a].parent = nodes[b].parent =
            static_cast<int>(nodes.size());
        nodes.push_back(parent);
    }

    for (unsigned s = 0; s < n; ++s) {
        if (!freq[s])
            continue;
        unsigned depth = 0;
        for (int i = nodes[s].parent; i >= 0; i = nodes[i].parent)
            ++depth;
        len[s] = static_cast<std::uint8_t>(depth);
    }
    return len;
}

} // namespace

Huffman
Huffman::fromFrequencies(const std::uint64_t *freq, unsigned symbols)
{
    panic_if(symbols == 0 || symbols > 512,
             "Huffman: alphabet of %u symbols", symbols);
    std::vector<std::uint64_t> f(freq, freq + symbols);

    // Depth-limit by scaling: halving (and keeping live symbols at
    // >= 1) flattens the distribution; in the limit all weights are 1
    // and the tree is balanced (depth <= 10 for <= 512 symbols).
    for (;;) {
        const std::vector<std::uint8_t> lens = huffmanLengths(f);
        const std::uint8_t deepest =
            *std::max_element(lens.begin(), lens.end());
        if (deepest <= maxCodeLen) {
            Huffman h;
            h.symbols = symbols;
            h.len = lens;
            h.buildCanonical();
            return h;
        }
        for (auto &w : f) {
            if (w)
                w = w / 2 + 1;
        }
    }
}

Huffman
Huffman::fromLengths(const std::uint8_t *lengths, unsigned symbols)
{
    panic_if(symbols == 0 || symbols > 512,
             "Huffman: alphabet of %u symbols", symbols);
    Huffman h;
    h.symbols = symbols;
    h.len.assign(lengths, lengths + symbols);
    for (const std::uint8_t l : h.len) {
        fatal_if(l > maxCodeLen,
                 "store codec: Huffman code length %u exceeds %u", l,
                 maxCodeLen);
    }
    h.buildCanonical();
    return h;
}

void
Huffman::buildCanonical()
{
    // Kraft check first: a corrupted length table must be rejected, not
    // turned into an ambiguous decoder.
    std::array<std::uint32_t, maxCodeLen + 1> countAt{};
    unsigned live = 0;
    for (unsigned s = 0; s < symbols; ++s) {
        if (len[s]) {
            ++countAt[len[s]];
            ++live;
        }
    }
    if (live == 0) {
        fatal("store codec: Huffman table has no symbols");
    } else if (live > 1) {
        std::uint64_t kraft = 0;
        for (unsigned l = 1; l <= maxCodeLen; ++l)
            kraft += std::uint64_t(countAt[l])
                     << (maxCodeLen - l);
        fatal_if(kraft != (std::uint64_t(1) << maxCodeLen),
                 "store codec: invalid Huffman table (Kraft sum "
                 "mismatch)");
    }

    // Canonical assignment: symbols sorted by (length, symbol).
    sorted.clear();
    sorted.reserve(live);
    for (unsigned l = 1; l <= maxCodeLen; ++l) {
        for (unsigned s = 0; s < symbols; ++s) {
            if (len[s] == l)
                sorted.push_back(static_cast<std::uint16_t>(s));
        }
    }

    code.assign(symbols, 0);
    std::uint32_t next = 0;
    std::uint32_t index = 0;
    firstCode.fill(0);
    firstIndex.fill(0);
    liveAt.fill(0);
    for (unsigned l = 1; l <= maxCodeLen; ++l) {
        firstCode[l] = next;
        firstIndex[l] = index;
        liveAt[l] = countAt[l];
        for (unsigned s = 0; s < symbols; ++s) {
            if (len[s] != l)
                continue;
            // Codes are emitted LSB-first, so store the bit-reversed
            // canonical code: the decoder reads bits in the same order.
            std::uint32_t c = next++;
            std::uint32_t rev = 0;
            for (unsigned b = 0; b < l; ++b) {
                rev = (rev << 1) | (c & 1);
                c >>= 1;
            }
            code[s] = static_cast<std::uint16_t>(rev);
            ++index;
        }
        next <<= 1;
    }
}

unsigned
Huffman::decode(BitReader &r) const
{
    std::uint32_t acc = 0;
    for (unsigned l = 1; l <= maxCodeLen; ++l) {
        acc = (acc << 1) | static_cast<std::uint32_t>(r.getBits(1));
        if (!liveAt[l])
            continue;
        const std::uint32_t offset = acc - firstCode[l];
        if (acc >= firstCode[l] && offset < liveAt[l])
            return sorted[firstIndex[l] + offset];
    }
    fatal("store codec: invalid Huffman code in stream");
}

// ---------------------------------------------------------------------------
// LZ77 + Huffman block format
// ---------------------------------------------------------------------------

namespace
{

constexpr unsigned lzMinMatch = 4;
constexpr unsigned lzMaxMatch = 1u << 16;
constexpr std::size_t lzWindow = std::size_t(1) << 20;
constexpr unsigned lzHashBits = 16;
constexpr unsigned lzChainDepth = 32;
constexpr unsigned eobSymbol = 256; //!< end-of-block in the token alphabet

constexpr std::uint8_t methodStored = 0;
constexpr std::uint8_t methodLzHuff = 1;

std::uint32_t
lzHash(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - lzHashBits);
}

/**
 * Greedy LZ77 parse of @p raw into a byte-oriented token stream:
 *   varint litRunLen, <litRunLen literal bytes>,
 *   varint matchLen (0 terminates the stream), varint matchDist, ...
 * Every byte of the token stream then goes through one Huffman table.
 */
std::string
lzTokenize(const std::string &raw)
{
    const auto *data =
        reinterpret_cast<const std::uint8_t *>(raw.data());
    const std::size_t n = raw.size();

    std::string tokens;
    tokens.reserve(n / 2 + 16);
    const auto putVar = [&tokens](std::uint64_t v) {
        do {
            const std::uint8_t b = v & 0x7f;
            v >>= 7;
            tokens.push_back(static_cast<char>(b | (v ? 0x80 : 0)));
        } while (v);
    };

    std::vector<std::int64_t> head(std::size_t(1) << lzHashBits, -1);
    std::vector<std::int64_t> chain(n, -1);

    std::size_t litStart = 0;
    std::size_t i = 0;
    const auto flushLiterals = [&](std::size_t end) {
        putVar(end - litStart);
        tokens.append(raw, litStart, end - litStart);
    };

    while (i < n) {
        std::size_t bestLen = 0;
        std::size_t bestDist = 0;
        if (i + lzMinMatch <= n) {
            const std::uint32_t h = lzHash(data + i);
            std::int64_t cand = head[h];
            unsigned depth = 0;
            while (cand >= 0 && depth < lzChainDepth &&
                   i - static_cast<std::size_t>(cand) <= lzWindow) {
                const std::size_t c = static_cast<std::size_t>(cand);
                std::size_t l = 0;
                const std::size_t lim =
                    std::min<std::size_t>(n - i, lzMaxMatch);
                while (l < lim && data[c + l] == data[i + l])
                    ++l;
                if (l > bestLen) {
                    bestLen = l;
                    bestDist = i - c;
                }
                cand = chain[c];
                ++depth;
            }
            chain[i] = head[h];
            head[h] = static_cast<std::int64_t>(i);
        }

        if (bestLen >= lzMinMatch) {
            flushLiterals(i);
            putVar(bestLen);
            putVar(bestDist);
            // Index the skipped positions so later matches can start
            // inside this one (cap the work on long runs).
            const std::size_t stop =
                std::min(i + bestLen, n >= lzMinMatch ? n - lzMinMatch + 1
                                                      : std::size_t(0));
            for (std::size_t j = i + 1;
                 j < stop && j < i + 64; ++j) {
                const std::uint32_t h2 = lzHash(data + j);
                chain[j] = head[h2];
                head[h2] = static_cast<std::int64_t>(j);
            }
            i += bestLen;
            litStart = i;
        } else {
            ++i;
        }
    }
    flushLiterals(n);
    putVar(0); // terminator
    return tokens;
}

} // namespace

std::string
compress(const std::string &raw)
{
    const std::string tokens = lzTokenize(raw);

    // Entropy stage over the token bytes + explicit end-of-block.
    std::uint64_t freq[257] = {};
    for (const char c : tokens)
        ++freq[static_cast<std::uint8_t>(c)];
    freq[eobSymbol] = 1;
    const Huffman huff = Huffman::fromFrequencies(freq, 257);

    BitWriter w;
    w.putBits(methodLzHuff, 8);
    w.putVarint(raw.size());
    // 257 4-bit code lengths, packed two per byte.
    const std::uint8_t *lens = huff.lengths();
    for (unsigned s = 0; s < 257; s += 2) {
        const std::uint8_t hi = s + 1 < 257 ? lens[s + 1] : 0;
        w.putBits(lens[s] | (hi << 4), 8);
    }
    for (const char c : tokens)
        huff.encode(w, static_cast<std::uint8_t>(c));
    huff.encode(w, eobSymbol);
    std::string block = w.finish();

    if (block.size() >= raw.size() + 2) {
        BitWriter stored;
        stored.putBits(methodStored, 8);
        stored.putVarint(raw.size());
        stored.putBytes(raw.data(), raw.size());
        block = stored.finish();
    }
    return block;
}

std::string
decompress(const std::string &block, std::size_t max_raw_size)
{
    BitReader r(block);
    const std::uint64_t method = r.getBits(8);
    const std::uint64_t rawSize = r.getVarint();
    fatal_if(rawSize > max_raw_size,
             "store codec: declared size %llu exceeds the %zu-byte limit",
             static_cast<unsigned long long>(rawSize), max_raw_size);

    if (method == methodStored) {
        std::string raw(rawSize, '\0');
        r.getBytes(raw.data(), raw.size());
        return raw;
    }
    fatal_if(method != methodLzHuff,
             "store codec: unknown block method %llu",
             static_cast<unsigned long long>(method));

    std::uint8_t lens[257];
    for (unsigned s = 0; s < 257; s += 2) {
        const std::uint64_t packed = r.getBits(8);
        lens[s] = packed & 0x0f;
        if (s + 1 < 257)
            lens[s + 1] = (packed >> 4) & 0x0f;
    }
    const Huffman huff = Huffman::fromLengths(lens, 257);

    // Decode the token stream and replay it in one pass.
    const auto tokenByte = [&]() -> std::uint8_t {
        const unsigned sym = huff.decode(r);
        fatal_if(sym == eobSymbol,
                 "store codec: unexpected end-of-block inside a token");
        return static_cast<std::uint8_t>(sym);
    };
    const auto tokenVarint = [&]() -> std::uint64_t {
        std::uint64_t v = 0;
        unsigned shift = 0;
        for (;;) {
            const std::uint8_t b = tokenByte();
            fatal_if(shift >= 64, "store codec: token varint overflow");
            v |= std::uint64_t(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
        }
    };

    std::string raw;
    raw.reserve(rawSize);
    for (;;) {
        const std::uint64_t litLen = tokenVarint();
        fatal_if(raw.size() + litLen > rawSize,
                 "store codec: literal run overflows the declared size");
        for (std::uint64_t i = 0; i < litLen; ++i)
            raw.push_back(static_cast<char>(tokenByte()));
        const std::uint64_t matchLen = tokenVarint();
        if (matchLen == 0)
            break;
        const std::uint64_t dist = tokenVarint();
        fatal_if(matchLen < lzMinMatch || matchLen > lzMaxMatch,
                 "store codec: match length %llu out of range",
                 static_cast<unsigned long long>(matchLen));
        fatal_if(dist == 0 || dist > raw.size(),
                 "store codec: match distance %llu outside the window "
                 "(%zu bytes decoded)",
                 static_cast<unsigned long long>(dist), raw.size());
        fatal_if(raw.size() + matchLen > rawSize,
                 "store codec: match overflows the declared size");
        // Byte-by-byte on purpose: overlapping matches (dist < len)
        // replicate the most recent bytes, RLE-style.
        const std::size_t start = raw.size() - dist;
        for (std::uint64_t i = 0; i < matchLen; ++i)
            raw.push_back(raw[start + i]);
    }
    const unsigned tail = huff.decode(r);
    fatal_if(tail != eobSymbol,
             "store codec: missing end-of-block marker");
    fatal_if(raw.size() != rawSize,
             "store codec: decoded %zu bytes, header declared %llu",
             raw.size(), static_cast<unsigned long long>(rawSize));
    return raw;
}

} // namespace store

} // namespace direb
