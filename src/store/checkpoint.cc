#include "store/checkpoint.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "store/codec.hh"

namespace direb
{

namespace store
{

namespace
{

constexpr char ckptMagic[8] = {'D', 'I', 'R', 'B', 'C', 'K', 'P', 'T'};

/** 4 GiB of pages: far beyond any real run, cheap corruption stop. */
constexpr std::uint64_t maxCheckpointPages = std::uint64_t(1) << 20;

std::atomic<std::uint64_t> restores{0};

} // namespace

std::uint64_t
checkpointRestores()
{
    return restores.load(std::memory_order_relaxed);
}

void
noteCheckpointRestore()
{
    restores.fetch_add(1, std::memory_order_relaxed);
}

std::string
encodeCheckpoint(const ArchCheckpoint &ck)
{
    BitWriter payload;
    payload.putVarint(ck.programFnv);
    payload.putVarint(ck.insts);
    payload.putVarint(ck.pc);
    payload.putVarint(ck.out.size());
    payload.putBytes(ck.out.data(), ck.out.size());
    for (const RegVal v : ck.intRegs)
        payload.putVarint(v);
    for (const RegVal v : ck.fpRegs)
        payload.putVarint(v);
    payload.putVarint(ck.pages.size());
    for (const CheckpointPage &page : ck.pages) {
        payload.putVarint(page.pageNumber);
        payload.putBytes(page.bytes.data(), page.bytes.size());
    }
    const std::string compressed = compress(payload.finish());

    BitWriter out;
    out.putBytes(ckptMagic, sizeof(ckptMagic));
    out.putVarint(checkpointFormatVersion);
    out.putVarint(compressed.size());
    out.putBytes(compressed.data(), compressed.size());
    out.putVarint(fnv1a64(compressed.data(), compressed.size()));
    return out.finish();
}

ArchCheckpoint
decodeCheckpoint(const std::string &bytes)
{
    BitReader r(bytes);
    char magic[sizeof(ckptMagic)];
    r.getBytes(magic, sizeof(magic));
    fatal_if(std::memcmp(magic, ckptMagic, sizeof(magic)) != 0,
             "checkpoint: bad magic (not a dieirb checkpoint file)");
    const std::uint64_t version = r.getVarint();
    fatal_if(version != checkpointFormatVersion,
             "checkpoint: format version %llu (this build reads %u)",
             static_cast<unsigned long long>(version),
             checkpointFormatVersion);
    const std::uint64_t clen = r.getVarint();
    fatal_if(clen > bytes.size(),
             "checkpoint: declared payload of %llu bytes in a %zu-byte "
             "file",
             static_cast<unsigned long long>(clen), bytes.size());
    std::string compressed(clen, '\0');
    r.getBytes(compressed.data(), compressed.size());
    const std::uint64_t sum = r.getVarint();
    fatal_if(sum != fnv1a64(compressed.data(), compressed.size()),
             "checkpoint: payload checksum mismatch (corrupt file)");
    fatal_if(r.bitsLeft() >= 8,
             "checkpoint: %zu trailing bytes after the checksum",
             r.bitsLeft() / 8);

    const std::string payload = decompress(compressed);
    BitReader p(payload);
    ArchCheckpoint ck;
    ck.programFnv = p.getVarint();
    ck.insts = p.getVarint();
    ck.pc = p.getVarint();
    const std::uint64_t outLen = p.getVarint();
    fatal_if(outLen > payload.size(),
             "checkpoint: output length %llu exceeds the payload",
             static_cast<unsigned long long>(outLen));
    ck.out.resize(outLen);
    p.getBytes(ck.out.data(), ck.out.size());
    for (RegVal &v : ck.intRegs)
        v = p.getVarint();
    for (RegVal &v : ck.fpRegs)
        v = p.getVarint();
    const std::uint64_t pages = p.getVarint();
    fatal_if(pages > maxCheckpointPages,
             "checkpoint: absurd page count %llu",
             static_cast<unsigned long long>(pages));
    ck.pages.reserve(pages);
    for (std::uint64_t i = 0; i < pages; ++i) {
        CheckpointPage page;
        page.pageNumber = p.getVarint();
        fatal_if(!ck.pages.empty() &&
                     page.pageNumber <= ck.pages.back().pageNumber,
                 "checkpoint: pages out of order");
        page.bytes.resize(Memory::pageSize);
        p.getBytes(page.bytes.data(), page.bytes.size());
        ck.pages.push_back(std::move(page));
    }
    fatal_if(p.bitsLeft() >= 8,
             "checkpoint: %zu trailing bytes after the last page",
             p.bitsLeft() / 8);
    return ck;
}

void
saveCheckpoint(const std::string &path, const ArchCheckpoint &ck)
{
    const std::string bytes = encodeCheckpoint(ck);
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path());
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        fatal_if(!out, "checkpoint: cannot write %s", tmp.c_str());
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        fatal_if(!out, "checkpoint: short write to %s", tmp.c_str());
    }
    std::filesystem::rename(tmp, target);
}

ArchCheckpoint
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "checkpoint: cannot open %s", path.c_str());
    std::ostringstream body;
    body << in.rdbuf();
    return decodeCheckpoint(body.str());
}

std::string
checkpointKeyHex(std::uint64_t program_fnv, std::uint64_t insts)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(insts >> (8 * i));
    const std::uint64_t key = fnv1a64(b, sizeof(b), program_fnv);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace store

} // namespace direb
