#include "store/query.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"

namespace direb
{

namespace store
{

using harness::Json;
using harness::SweepResult;

namespace
{

const char *const allAggs[] = {"count", "min",     "max",
                               "mean",  "geomean", "sum"};

bool
knownAgg(const std::string &name)
{
    for (const char *a : allAggs) {
        if (name == a)
            return true;
    }
    return false;
}

/**
 * Extract the requested metric from one entry; false when the entry
 * does not carry it (only possible for stats.<key> metrics).
 */
bool
metricValue(const SweepResult &res, const std::string &metric, double &out)
{
    if (metric == "ipc") {
        out = res.sim.core.ipc;
    } else if (metric == "cycles") {
        out = static_cast<double>(res.sim.core.cycles);
    } else if (metric == "arch_insts") {
        out = static_cast<double>(res.sim.core.archInsts);
    } else if (metric == "ruu_entries") {
        out = static_cast<double>(res.sim.core.ruuEntriesCommitted);
    } else if (metric == "attempts") {
        out = res.attempts;
    } else if (metric == "warmstart_insts") {
        out = static_cast<double>(res.sim.warmstartInsts);
    } else { // validated to start with "stats." by parseQuery
        const auto it = res.sim.stats.find(metric.substr(6));
        if (it == res.sim.stats.end())
            return false;
        out = it->second;
    }
    return true;
}

/** The k-th '/'-separated component of @p name ("" when missing). */
std::string
nameComponent(const std::string &name, unsigned k)
{
    std::size_t begin = 0;
    for (unsigned i = 0; i < k; ++i) {
        const std::size_t slash = name.find('/', begin);
        if (slash == std::string::npos)
            return "";
        begin = slash + 1;
    }
    const std::size_t end = name.find('/', begin);
    return name.substr(begin, end == std::string::npos ? std::string::npos
                                                       : end - begin);
}

std::string
groupKey(const SweepResult &res, const std::string &group_by)
{
    if (group_by.empty())
        return "";
    if (group_by == "status")
        return harness::pointStatusName(res.status);
    if (group_by == "name")
        return res.name;
    // validated shape "name:<k>" by parseQuery
    const unsigned k =
        static_cast<unsigned>(std::stoul(group_by.substr(5)));
    return nameComponent(res.name, k);
}

} // namespace

QueryRequest
parseQuery(const Json &body)
{
    fatal_if(!body.isObject(), "query: request body must be an object");
    QueryRequest req;

    const Json *metric = body.find("metric");
    fatal_if(!metric || !metric->isString(),
             "query: 'metric' (string) is required");
    req.metric = metric->asString();
    const bool builtin = req.metric == "ipc" || req.metric == "cycles" ||
                         req.metric == "arch_insts" ||
                         req.metric == "ruu_entries" ||
                         req.metric == "attempts" ||
                         req.metric == "warmstart_insts";
    fatal_if(!builtin && (req.metric.rfind("stats.", 0) != 0 ||
                          req.metric.size() <= 6),
             "query: unknown metric '%s' (want ipc, cycles, arch_insts, "
             "ruu_entries, attempts, warmstart_insts or stats.<key>)",
             req.metric.c_str());

    if (const Json *filter = body.find("filter")) {
        fatal_if(!filter->isObject(), "query: 'filter' must be an object");
        const auto str = [filter](const char *key) -> std::string {
            const Json *v = filter->find(key);
            if (!v)
                return "";
            fatal_if(!v->isString(), "query: filter.%s must be a string",
                     key);
            return v->asString();
        };
        req.filterStatus = str("status");
        req.namePrefix = str("name_prefix");
        req.nameContains = str("name_contains");
        fatal_if(!req.filterStatus.empty() &&
                     req.filterStatus != "ok" &&
                     req.filterStatus != "timeout" &&
                     req.filterStatus != "error" &&
                     req.filterStatus != "cancelled",
                 "query: unknown filter.status '%s'",
                 req.filterStatus.c_str());
        for (std::size_t i = 0; i < filter->size(); ++i) {
            const std::string &name = filter->memberName(i);
            fatal_if(name != "status" && name != "name_prefix" &&
                         name != "name_contains",
                     "query: unknown filter member '%s'", name.c_str());
        }
    }

    if (const Json *group = body.find("group_by")) {
        fatal_if(!group->isString(), "query: 'group_by' must be a string");
        req.groupBy = group->asString();
        if (!req.groupBy.empty() && req.groupBy != "status" &&
            req.groupBy != "name") {
            bool ok = req.groupBy.rfind("name:", 0) == 0 &&
                      req.groupBy.size() > 5;
            for (std::size_t i = 5; ok && i < req.groupBy.size(); ++i)
                ok = req.groupBy[i] >= '0' && req.groupBy[i] <= '9';
            fatal_if(!ok,
                     "query: unknown group_by '%s' (want \"\", status, "
                     "name or name:<k>)",
                     req.groupBy.c_str());
        }
    }

    if (const Json *aggs = body.find("aggs")) {
        fatal_if(!aggs->isArray() || aggs->size() == 0,
                 "query: 'aggs' must be a non-empty array");
        for (std::size_t i = 0; i < aggs->size(); ++i) {
            const Json &a = aggs->at(i);
            fatal_if(!a.isString() || !knownAgg(a.asString()),
                     "query: unknown aggregate (want count, min, max, "
                     "mean, geomean or sum)");
            req.aggs.push_back(a.asString());
        }
    }

    for (std::size_t i = 0; i < body.size(); ++i) {
        const std::string &name = body.memberName(i);
        fatal_if(name != "metric" && name != "filter" &&
                     name != "group_by" && name != "aggs",
                 "query: unknown request member '%s'", name.c_str());
    }
    return req;
}

Json
runQuery(const std::vector<const Artifact *> &stores,
         const QueryRequest &req)
{
    std::size_t points = 0, matched = 0, missing = 0, raw = 0;
    std::map<std::string, std::vector<double>> groups;
    for (const Artifact *art : stores) {
        raw += art->rawFiles.size();
        for (const StoredEntry &e : art->entries) {
            ++points;
            const SweepResult &res = e.result;
            if (!req.filterStatus.empty() &&
                req.filterStatus != harness::pointStatusName(res.status))
                continue;
            if (!req.namePrefix.empty() &&
                res.name.rfind(req.namePrefix, 0) != 0)
                continue;
            if (!req.nameContains.empty() &&
                res.name.find(req.nameContains) == std::string::npos)
                continue;
            double v;
            if (!metricValue(res, req.metric, v)) {
                ++missing;
                continue;
            }
            ++matched;
            groups[groupKey(res, req.groupBy)].push_back(v);
        }
    }

    const std::vector<std::string> aggs =
        req.aggs.empty()
            ? std::vector<std::string>(std::begin(allAggs),
                                       std::end(allAggs))
            : req.aggs;

    Json out = Json::object();
    out.set("metric", req.metric);
    out.set("group_by", req.groupBy);
    out.set("points", points);
    out.set("matched", matched);
    out.set("missing_metric", missing);
    out.set("skipped_raw_files", raw);
    Json garr = Json::array();
    for (const auto &[key, vals] : groups) {
        Json g = Json::object();
        g.set("key", key);
        double mn = vals[0], mx = vals[0], sum = 0.0, logsum = 0.0;
        bool positive = true;
        for (const double v : vals) {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
            sum += v;
            if (v > 0.0)
                logsum += std::log(v);
            else
                positive = false;
        }
        for (const std::string &agg : aggs) {
            if (agg == "count")
                g.set("count", vals.size());
            else if (agg == "min")
                g.set("min", mn);
            else if (agg == "max")
                g.set("max", mx);
            else if (agg == "mean")
                g.set("mean", sum / static_cast<double>(vals.size()));
            else if (agg == "sum")
                g.set("sum", sum);
            else if (agg == "geomean") {
                // Geometric mean is only meaningful over positive
                // values; null marks a group where it is undefined.
                if (positive)
                    g.set("geomean",
                          std::exp(logsum /
                                   static_cast<double>(vals.size())));
                else
                    g.set("geomean", Json());
            }
        }
        garr.push(std::move(g));
    }
    out.set("groups", std::move(garr));
    return out;
}

} // namespace store

} // namespace direb
