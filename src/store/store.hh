/**
 * @file
 * Compressed columnar sweep-result store.
 *
 * A sweep.cache directory (or a directory of BENCH_*.json reports)
 * holds many small JSON files that share almost all of their structure:
 * the same stat keys repeated per entry, monotone counters, long
 * identical stats_text templates. dieirb-store packs such a directory
 * into ONE artifact file that stores each stat key once (dictionary
 * encoding), each numeric column together (delta + zigzag varints for
 * integral columns, raw IEEE-754 bytes for true doubles), and entropy-codes
 * the result — and unpacks it back **byte-identically**.
 *
 * Byte identity is guaranteed structurally, not hopefully: at pack time
 * every file is parsed with harness::parseSweepCacheEntry and accepted
 * into the columnar section only if re-rendering the parse
 * (harness::renderSweepCacheEntry) reproduces the original bytes
 * exactly. Anything else — foreign files, BENCH reports, entries from
 * older cache versions, hand-edited files — is carried verbatim in a
 * raw section (still compressed). Unpack therefore always restores the
 * original directory bit-for-bit.
 *
 * File layout (LEB128 varints; sections individually compressed and
 * FNV-1a-64 checksummed so corruption anywhere raises FatalError):
 *
 *   magic    "DIRBSTOR"                     8 bytes
 *   version  varint                         (storeFormatVersion)
 *   nsect    varint
 *   per section:
 *     kind     varint                       0 = columnar, 1 = raw files
 *     clen     varint
 *     payload  clen bytes                   store::compress() output
 *     checksum varint                       FNV-1a 64 of the payload
 *
 * Columnar payload (decompressed): entry count n; then whole columns in
 * order — filenames, point names, status bytes, error strings, attempt
 * varints, warmstart varints; the aggregate-core columns (stop bytes;
 * cycles / arch_insts / ruu_entries as delta+zigzag varints; ipc as raw
 * doubles); per-entry CMP core lists; the stats dictionary (sorted
 * unique keys, then per key a presence bitmap, a type byte — 0 =
 * integral delta+zigzag, 1 = raw doubles — and the present values); and
 * finally the output and stats_text string columns. Strings are varint
 * length + bytes; doubles are 8 little-endian bytes of the bit pattern,
 * so every value round-trips bit-exactly (including NaN payloads and
 * -0.0, which the integral classifier rejects by bit-pattern compare).
 */

#ifndef DIREB_STORE_STORE_HH
#define DIREB_STORE_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace direb
{

namespace store
{

constexpr std::uint32_t storeFormatVersion = 1;

/** One columnar entry: a parsed cache file plus its directory name. */
struct StoredEntry
{
    std::string filename; //!< basename inside the packed directory
    harness::SweepResult result;
};

/** One verbatim-carried file (anything that is not a v2 cache entry). */
struct RawFile
{
    std::string filename;
    std::string bytes;
};

/** The in-memory form of one artifact. */
struct Artifact
{
    std::vector<StoredEntry> entries;
    std::vector<RawFile> rawFiles;

    std::size_t size() const { return entries.size() + rawFiles.size(); }
};

/**
 * Scan @p dir (non-recursively) and classify every regular file:
 * parse-and-re-render-identical sweep-cache entries become columnar
 * StoredEntries, everything else a RawFile. Files are taken in sorted
 * name order so packing is deterministic. fatal() if the directory
 * cannot be read.
 */
Artifact packDirectory(const std::string &dir);

/** Serialise to the compressed artifact format described above. */
std::string encodeArtifact(const Artifact &artifact);

/**
 * Inverse of encodeArtifact(). FatalError — never a crash or a partial
 * result — on any corruption: bad magic, foreign version, truncation,
 * checksum mismatch, or impossible lengths.
 */
Artifact decodeArtifact(const std::string &bytes);

/** encodeArtifact + atomic write (tmp + rename); fatal() on I/O error. */
void writeArtifact(const std::string &path, const Artifact &artifact);

/** Read + decodeArtifact; fatal() on I/O error or corruption. */
Artifact readArtifact(const std::string &path);

/**
 * Restore the packed directory: every entry re-rendered through
 * harness::renderSweepCacheEntry, every raw file verbatim. Existing
 * files of the same names are overwritten; fatal() on I/O error.
 */
void unpackArtifact(const Artifact &artifact, const std::string &dir);

/** The exact bytes unpackArtifact() writes for one columnar entry. */
std::string renderEntryBytes(const StoredEntry &entry);

} // namespace store

} // namespace direb

#endif // DIREB_STORE_STORE_HH
