/**
 * @file
 * Dependency-free bit-stream and entropy-coding primitives shared by the
 * columnar sweep-result store and the architectural-checkpoint files.
 *
 * Three layers, each usable on its own:
 *
 *  - BitWriter / BitReader: LSB-first bit packing over a byte string,
 *    plus LEB128 varints and zigzag mapping for signed deltas. The
 *    reader is hardened for untrusted input: every read is
 *    bounds-checked and raises FatalError past the end — never UB.
 *
 *  - Huffman: a canonical, length-limited (<= 15 bit) Huffman coder
 *    over a 256-symbol byte alphabet plus an explicit end-of-block
 *    symbol. Code lengths are stored as 4-bit nibbles, so the table
 *    costs a fixed 129 bytes in the stream and decode tables rebuild
 *    deterministically on any host.
 *
 *  - compress() / decompress(): the block format every store artifact
 *    section and checkpoint payload goes through — greedy LZ77 with a
 *    1 MiB window over the raw bytes, the token stream then entropy
 *    coded with one Huffman table. Incompressible input falls back to
 *    stored bytes, so compress() never expands by more than the small
 *    fixed header. decompress() validates the declared raw size, every
 *    match offset/length and the Huffman tables, and fails with
 *    FatalError on any inconsistency — corrupt input must never crash
 *    or silently return partial data.
 */

#ifndef DIREB_STORE_CODEC_HH
#define DIREB_STORE_CODEC_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace direb
{

namespace store
{

/** FNV-1a 64 over @p n bytes (the artifact section checksum). */
std::uint64_t fnv1a64(const void *data, std::size_t n,
                      std::uint64_t seed = 1469598103934665603ULL);

/** Zigzag mapping: small-magnitude signed values become small varints. @{ */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}
/** @} */

/** LSB-first bit packer over a growable byte string. */
class BitWriter
{
  public:
    /** Append the low @p bits of @p value (bits <= 57 per call). */
    void putBits(std::uint64_t value, unsigned bits);

    /** Append one LEB128 varint (7 value bits per byte). */
    void putVarint(std::uint64_t value);

    /** Byte-align, then append @p n raw bytes. */
    void putBytes(const void *data, std::size_t n);

    /** Pad the tail bits with zeros and return the finished buffer. */
    std::string finish();

    std::size_t bitCount() const { return out.size() * 8 + fill; }

  private:
    void flushAligned();

    std::string out;
    std::uint64_t acc = 0;
    unsigned fill = 0; //!< bits currently buffered in acc
};

/**
 * Bounds-checked LSB-first bit reader over an immutable byte buffer.
 * Every overrun raises FatalError ("truncated stream"), so a corrupted
 * or maliciously short input fails loudly at the exact read.
 */
class BitReader
{
  public:
    BitReader(const void *data, std::size_t n)
        : buf(static_cast<const std::uint8_t *>(data)), size(n)
    {}
    explicit BitReader(const std::string &bytes)
        : BitReader(bytes.data(), bytes.size())
    {}

    std::uint64_t getBits(unsigned bits);
    std::uint64_t getVarint();

    /** Byte-align, then copy @p n raw bytes out. */
    void getBytes(void *data, std::size_t n);

    /** Bits not yet consumed (for end-of-stream assertions). */
    std::size_t bitsLeft() const { return size * 8 - pos; }

  private:
    const std::uint8_t *buf;
    std::size_t size;
    std::size_t pos = 0; //!< in bits
};

/**
 * Canonical Huffman code over @p symbols symbols, depth-limited to
 * maxCodeLen bits by frequency scaling. Symbols with zero frequency get
 * no code; a degenerate alphabet (<= 1 live symbol) is handled with a
 * 1-bit code so the stream shape stays uniform.
 */
class Huffman
{
  public:
    static constexpr unsigned maxCodeLen = 15;

    /** Build from symbol frequencies (size = alphabet size, <= 512). */
    static Huffman fromFrequencies(const std::uint64_t *freq,
                                   unsigned symbols);

    /** Rebuild from the code lengths read back out of a stream. */
    static Huffman fromLengths(const std::uint8_t *lengths,
                               unsigned symbols);

    /** Write one symbol's code. */
    void
    encode(BitWriter &w, unsigned symbol) const
    {
        w.putBits(code[symbol], len[symbol]);
    }

    /** Read one symbol (FatalError on an invalid code). */
    unsigned decode(BitReader &r) const;

    /** Per-symbol code lengths, 0 = unused (for serialisation). */
    const std::uint8_t *lengths() const { return len.data(); }
    unsigned alphabet() const { return symbols; }

  private:
    void buildCanonical();

    unsigned symbols = 0;
    std::vector<std::uint8_t> len;
    std::vector<std::uint16_t> code;
    /** Canonical decode state: per length, first code + symbol base. @{ */
    std::array<std::uint32_t, maxCodeLen + 2> firstCode{};
    std::array<std::uint32_t, maxCodeLen + 2> firstIndex{};
    std::array<std::uint32_t, maxCodeLen + 2> liveAt{};
    std::vector<std::uint16_t> sorted; //!< symbols in canonical order
    /** @} */
};

/**
 * Compress @p raw: LZ77 token stream, Huffman entropy stage, stored
 * fallback when that would expand. The result is self-describing and
 * host-independent.
 */
std::string compress(const std::string &raw);

/**
 * Inverse of compress(). FatalError on any corruption: bad method byte,
 * truncated stream, invalid Huffman table, out-of-window match, or a
 * decoded size that disagrees with the header. @p max_raw_size bounds
 * the allocation a hostile header can demand.
 */
std::string decompress(const std::string &block,
                       std::size_t max_raw_size = std::size_t(1) << 32);

} // namespace store

} // namespace direb

#endif // DIREB_STORE_CODEC_HH
