/**
 * @file
 * Checkpoint serialisation: the on-disk form of vm::ArchCheckpoint.
 *
 * Layout (all multi-byte fields little-endian / LEB128 varints):
 *
 *   magic    "DIRBCKPT"                     8 bytes
 *   version  varint                         (checkpointFormatVersion)
 *   clen     varint                         compressed payload bytes
 *   payload  clen bytes                     store::compress() output
 *   checksum varint                         FNV-1a 64 of the payload
 *
 * Decompressed payload:
 *
 *   programFnv, insts, pc                   varints
 *   out                                     varint length + bytes
 *   intRegs[32], fpRegs[32]                 varints (raw bit patterns)
 *   pageCount                               varint
 *   per page: pageNumber varint (strictly increasing) + 4096 raw bytes
 *
 * Every load path is hardened: magic/version/checksum mismatches,
 * truncation, out-of-order pages and absurd page counts all raise
 * FatalError — a corrupt checkpoint must never be silently applied.
 */

#ifndef DIREB_STORE_CHECKPOINT_HH
#define DIREB_STORE_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "vm/checkpoint.hh"

namespace direb
{

namespace store
{

constexpr std::uint32_t checkpointFormatVersion = 1;

/** Serialise to the compressed, checksummed file format. */
std::string encodeCheckpoint(const ArchCheckpoint &ck);

/** Inverse of encodeCheckpoint(); FatalError on any corruption. */
ArchCheckpoint decodeCheckpoint(const std::string &bytes);

/** Write atomically (tmp + rename); fatal() on I/O failure. */
void saveCheckpoint(const std::string &path, const ArchCheckpoint &ck);

/** Read + decode; fatal() on I/O failure or corruption. */
ArchCheckpoint loadCheckpoint(const std::string &path);

/**
 * Content address of a warm-start checkpoint: program image hash x
 * prefix length, as the 16-hex-digit filename stem used inside a
 * sweep.warmstart_dir cache.
 */
std::string checkpointKeyHex(std::uint64_t program_fnv,
                             std::uint64_t insts);

/**
 * Process-wide count of checkpoints applied to cores (warm-starts and
 * --restore runs); exported as dieirb_store_checkpoint_restores_total. @{
 */
std::uint64_t checkpointRestores();
void noteCheckpointRestore();
/** @} */

} // namespace store

} // namespace direb

#endif // DIREB_STORE_CHECKPOINT_HH
