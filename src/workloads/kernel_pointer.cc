/**
 * @file
 * "pointer" — mcf-like pointer chasing. Builds an 8192-node (128 KiB,
 * exceeding L1) linked list laid out as a stride permutation, then walks
 * it serially. The load-to-load dependence chain plus cache misses keep
 * IPC far below the machine width, so ALU bandwidth is never the
 * bottleneck — the DIE slowdown should be near zero (the paper's ammp/
 * low-loss corner).
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
pointerKernel()
{
    static const char *text = R"(
# pointer: serial linked-list walk over a 128 KiB footprint (mcf stand-in)
.data
nodes:  .space 131072           # 8192 nodes x 16 bytes (next, value)
.text
start:
        la   s1, nodes
        li   s2, 8192
        li   s3, 0
build:
        slli t0, s3, 4
        add  t0, t0, s1         # &node[i]
        addi t1, s3, 2467       # odd stride => full permutation cycle
        andi t1, t1, 8191
        slli t2, t1, 4
        add  t2, t2, s1
        sd   t2, 0(t0)          # next pointer
        sd   s3, 8(t0)          # value
        addi s3, s3, 1
        blt  s3, s2, build

        li   s4, %OUTER%        # walk steps
        li   s5, 0              # checksum
        mv   t0, s1
walk:
        ld   t1, 8(t0)
        add  s5, s5, t1
        ld   t0, 0(t0)
        addi s4, s4, -1
        bnez s4, walk
        putint s5
        halt
)";
    return {text, 24000};
}

} // namespace workloads

} // namespace direb
