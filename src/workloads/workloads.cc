#include "workloads/workloads.hh"

#include <map>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

namespace
{

struct Registered
{
    WorkloadInfo info;
    KernelSource (*source)();
};

const std::vector<Registered> &
registry()
{
    static const std::vector<Registered> regs = {
        {{"compress", "gzip", "LZ window matching, int-ALU bound"},
         compressKernel},
        {{"route", "vpr", "grid cost relaxation, branchy mins"},
         routeKernel},
        {{"cc_expr", "gcc", "recursive expression evaluation, call-heavy"},
         ccExprKernel},
        {{"pointer", "mcf", "serial pointer chasing, cache-miss bound"},
         pointerKernel},
        {{"parse", "parser", "table-driven tokenising, very high reuse"},
         parseKernel},
        {{"object", "vortex", "hash-table store, multiply-hashed keys"},
         objectKernel},
        {{"sort", "bzip2", "shell sort over fresh data, low reuse"},
         sortKernel},
        {{"anneal", "twolf", "random-swap annealing, mispredict heavy"},
         annealKernel},
        {{"stencil", "swim", "FP 5-point Jacobi stencil, FpAdd bound"},
         stencilKernel},
        {{"neural", "art", "FP dot-product matching, window bound"},
         neuralKernel},
        {{"moldyn", "ammp", "N-body forces, div/sqrt latency bound"},
         moldynKernel},
        {{"raster", "mesa", "integer edge-function rasteriser"},
         rasterKernel},
    };
    return regs;
}

const Registered &
findKernel(const std::string &name)
{
    for (const auto &r : registry()) {
        if (r.info.name == name)
            return r;
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::string
expandOuter(const char *text, unsigned outer)
{
    std::string s = text;
    const std::string key = "%OUTER%";
    const auto at = s.find(key);
    fatal_if(at == std::string::npos, "kernel lacks %%OUTER%% placeholder");
    s.replace(at, key.size(), std::to_string(outer));
    fatal_if(s.find(key) != std::string::npos,
             "kernel has multiple %%OUTER%% placeholders");
    return s;
}

} // namespace

const std::vector<WorkloadInfo> &
list()
{
    static const std::vector<WorkloadInfo> infos = [] {
        std::vector<WorkloadInfo> v;
        for (const auto &r : registry())
            v.push_back(r.info);
        return v;
    }();
    return infos;
}

bool
exists(const std::string &name)
{
    for (const auto &r : registry()) {
        if (r.info.name == name)
            return true;
    }
    return false;
}

std::string
source(const std::string &name, unsigned scale)
{
    fatal_if(scale == 0, "workload scale must be positive");
    const Registered &r = findKernel(name);
    const KernelSource k = r.source();
    return expandOuter(k.asmText, k.defaultOuter * scale);
}

Program
build(const std::string &name, unsigned scale)
{
    return assemble(source(name, scale), name);
}

} // namespace workloads

} // namespace direb
