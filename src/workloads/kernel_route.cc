/**
 * @file
 * "route" — vpr-like grid cost relaxation. Repeated sweeps relax a 16x16
 * cost grid toward a wavefront emanating from an interior source. Branchy
 * (three data-dependent mins per cell) with dense word loads. The grid
 * fully converges partway through the run, after which every sweep sees
 * identical operand values — IRB reuse climbs from moderate to near-total
 * across the run, a realistic converging-solver profile.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
routeKernel()
{
    static const char *text = R"(
# route: maze-routing cost relaxation on a 16x16 grid (vpr stand-in)
.data
grid:   .space 1024
.text
start:
        la   s1, grid
        li   s0, 0
        li   s2, 256
        li   t0, 1000
init:
        slli t1, s0, 2
        add  t1, t1, s1
        sw   t0, 0(t1)
        addi s0, s0, 1
        blt  s0, s2, init
        sw   zero, 68(s1)       # source at (1,1)

        li   s3, 0              # pass counter
        li   s4, %OUTER%
pass:
        li   s5, 1              # y
yloop:
        li   s6, 1              # x
xloop:
        la   a2, grid           # rematerialised base (reusable)
        slli t0, s5, 4
        add  t0, t0, s6
        slli t0, t0, 2
        add  t0, t0, a2         # &grid[y][x]
        lw   t1, 0(t0)          # current
        lw   t2, -4(t0)         # left
        lw   t3, 4(t0)          # right
        lw   t4, -64(t0)        # up
        lw   t5, 64(t0)         # down
        blt  t2, t3, m1
        mv   t2, t3
m1:
        blt  t2, t4, m2
        mv   t2, t4
m2:
        blt  t2, t5, m3
        mv   t2, t5
m3:
        addi t2, t2, 1          # min(neighbours) + 1
        bge  t2, t1, nostore
        sw   t2, 0(t0)
nostore:
        addi s6, s6, 1
        li   t6, 15             # rematerialised bound (reusable)
        blt  s6, t6, xloop
        addi s5, s5, 1
        li   t6, 15
        blt  s5, t6, yloop
        addi s3, s3, 1
        blt  s3, s4, pass

        li   s0, 0              # checksum over the whole grid
        li   s7, 0
ck:
        slli t0, s0, 2
        add  t0, t0, s1
        lw   t1, 0(t0)
        add  s7, s7, t1
        addi s0, s0, 1
        blt  s0, s2, ck
        putint s7
        halt
)";
    return {text, 46};
}

} // namespace workloads

} // namespace direb
