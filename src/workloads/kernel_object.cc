/**
 * @file
 * "object" — vortex-like hash-table object store. Inserts/looks up
 * LCG-generated keys in a 4096-slot open-addressing table using a
 * Fibonacci hash (integer multiply on the critical path). Keys rarely
 * repeat, so IRB reuse is low — the workload that separates the IRB from
 * a plain ALU doubling.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
objectKernel()
{
    static const char *text = R"(
# object: open-addressing hash store (vortex stand-in)
.data
htab:   .space 65536            # 4096 slots x 16 bytes (key, value)
.text
start:
        la   s1, htab
        li   s2, %OUTER%        # operations
        li   s3, 0
        li   s4, 99991
        li   s5, 1103515245
        li   s6, 2654435761
        li   s7, 0              # checksum
kloop:
        mul  s4, s4, s5
        addi s4, s4, 4057
        srli t0, s4, 12
        andi t0, t0, 4095
        addi t0, t0, 1          # key in [1,4096]; 0 means empty
        li   a2, 2654435761     # rematerialised hash constant (reusable)
        mul  t1, t0, a2         # Fibonacci hash
        srli t1, t1, 16
        andi t1, t1, 4095
probe:
        la   a4, htab           # rematerialised base (reusable)
        slli t2, t1, 4
        add  t2, t2, a4
        ld   t3, 0(t2)
        beqz t3, insert
        beq  t3, t0, found
        addi t1, t1, 1
        li   a3, 4095           # rematerialised mask (reusable)
        and  t1, t1, a3
        j    probe
insert:
        sd   t0, 0(t2)
        sd   s3, 8(t2)
        j    next
found:
        ld   t4, 8(t2)
        add  s7, s7, t4
next:
        addi s3, s3, 1
        blt  s3, s2, kloop
        putint s7
        halt
)";
    return {text, 5200};
}

} // namespace workloads

} // namespace direb
