/**
 * @file
 * "neural" — art-like neural pattern matching. Eight static input vectors
 * are repeatedly matched against sixteen weight rows by fully-unrolled
 * 32-element dot products (the serial FP-add accumulation chain keeps IPC
 * low and window-bound — the paper's art corner). Rows come in groups of
 * four identical "prototypes" (a trained ART network's converged
 * clusters), so each unrolled multiply/add repeats its operands across
 * consecutive rows — high IRB reuse on top of the largest DIE loss.
 */

#include "workloads/kernels.hh"

#include <string>

namespace direb
{

namespace workloads
{

KernelSource
neuralKernel()
{
    static const std::string text = [] {
        std::string s = R"(
# neural: unrolled dot-product pattern matching (art stand-in)
.data
.align 8
inputs:  .space 2048            # 8 vectors x 32 doubles
weights: .space 4096            # 16 rows x 32 doubles
.text
start:
        la   s1, inputs
        la   s2, weights
        li   s0, 0
        li   t1, 256
niinit:
        andi t0, s0, 7
        addi t0, t0, 1
        fcvtdl f3, t0
        slli t2, s0, 3
        add  t2, t2, s1
        fsd  f3, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, niinit
# weights: rows in groups of 4 identical prototypes ((row>>2) drives value)
        li   s0, 0
        li   t1, 512
nwinit:
        srli t0, s0, 7          # row/4 (32 doubles per row)
        andi t2, s0, 31         # element index
        slli t3, t2, 1
        add  t0, t0, t3
        andi t0, t0, 15
        addi t0, t0, 1
        fcvtdl f3, t0
        slli t2, s0, 3
        add  t2, t2, s2
        fsd  f3, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, nwinit

        li   s3, 0              # round
        li   s4, %OUTER%
        li   s11, 0             # winner accumulator
round:
        li   s5, 0              # input index
inl:
        slli t0, s5, 8
        add  s6, t0, s1         # input base
        li   s7, 0              # row
        li   s8, -1             # best row
        fcvtdl f10, zero        # best score
rowl:
        slli t0, s7, 8
        add  t1, t0, s2         # row base
        fcvtdl f11, zero        # accumulator
)";
        // Fully unrolled 32-element dot product (compiled -O3 style):
        // input loads reuse (fixed base per input), weight loads miss
        // (row base changes), multiplies and the accumulation chain reuse
        // across the four rows of a prototype group.
        for (int i = 0; i < 32; ++i) {
            const std::string off = std::to_string(i * 8);
            s += "        fld  f3, " + off + "(s6)\n";
            s += "        fld  f4, " + off + "(t1)\n";
            s += "        fmul f5, f3, f4\n";
            s += "        fadd f11, f11, f5\n";
        }
        s += R"(
        flt  t6, f10, f11
        beqz t6, norec
        fmov f10, f11
        mv   s8, s7
norec:
        addi s7, s7, 1
        li   t6, 16             # rematerialised bound
        blt  s7, t6, rowl
        add  s11, s11, s8
        addi s5, s5, 1
        li   t6, 8
        blt  s5, t6, inl
        addi s3, s3, 1
        blt  s3, s4, round
        putint s11
        halt
)";
        return s;
    }();
    return {text.c_str(), 12};
}

} // namespace workloads

} // namespace direb
