/**
 * @file
 * Parameterised synthetic workload generator.
 *
 * Emits a program of `blocks` basic blocks executed `outerIters` times.
 * Each block is generated once (fixed PCs) and marked either "reusing"
 * (its operand registers are re-seeded to block-specific constants every
 * outer iteration, so each of its instructions repeats with identical
 * operand values — an IRB hit after the first iteration) or
 * "accumulating" (operands evolve every iteration — an IRB reuse miss).
 * The reuseFraction parameter therefore dials the duplicate stream's
 * reuse hit rate almost linearly, which is exactly what the IRB
 * sensitivity benches need.
 */

#include "workloads/workloads.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace direb
{

namespace workloads
{

namespace
{

/** Registers the generator may use freely as block operands. */
constexpr unsigned firstDataReg = 10; // a0
constexpr unsigned numDataRegs = 16;  // a0..s11-ish band (x10..x25)

/** Fixed bookkeeping registers. */
constexpr unsigned regIter = 29;  // t4: outer-loop counter
constexpr unsigned regBase = 30;  // t5: data segment base
constexpr unsigned regSum = 28;   // t3: running checksum

} // namespace

Program
synthetic(const SyntheticParams &sp)
{
    fatal_if(sp.blocks == 0 || sp.instsPerBlock == 0 || sp.outerIters == 0,
             "synthetic: all sizes must be positive");
    Rng rng(sp.seed);
    Program prog;
    prog.name = "synthetic";

    // 512-dword scratch array for loads.
    prog.data.assign(4096, 0);
    for (std::size_t i = 0; i < prog.data.size(); ++i)
        prog.data[i] = static_cast<std::uint8_t>(rng.next());

    // --- prologue ---------------------------------------------------------
    // regBase = dataBase; regIter = outerIters; regSum = 0; data regs = id.
    const auto emit_li32 = [&](unsigned rd, std::uint64_t val) {
        prog.push(makeI(Opcode::LUI, rd, 0,
                        static_cast<std::int32_t>(val >> immBitsI)));
        prog.push(makeI(Opcode::ORI, rd, rd,
                        static_cast<std::int32_t>(val &
                                                  ((1 << immBitsI) - 1))));
    };
    emit_li32(regBase, dataBase);
    emit_li32(regIter, sp.outerIters);
    prog.push(makeI(Opcode::ADDI, regSum, 0, 0));
    for (unsigned r = 0; r < numDataRegs; ++r) {
        prog.push(makeI(Opcode::ADDI, firstDataReg + r, 0,
                        static_cast<std::int32_t>(r * 17 + 3)));
    }
    bool any_fp = false;

    // --- loop body ---------------------------------------------------------
    const std::size_t loop_top = prog.text.size();
    for (unsigned b = 0; b < sp.blocks; ++b) {
        const bool reusing = rng.chance(sp.reuseFraction);
        const bool fp_block = rng.chance(sp.fpFraction);
        // Each block owns two operand registers.
        const unsigned r1 = firstDataReg + (b * 2) % numDataRegs;
        const unsigned r2 = firstDataReg + (b * 2 + 1) % numDataRegs;

        if (reusing) {
            // Re-seed to block constants: every op below repeats exactly.
            prog.push(makeI(Opcode::ADDI, r1, 0,
                            static_cast<std::int32_t>(b * 7 + 11)));
            prog.push(makeI(Opcode::ADDI, r2, 0,
                            static_cast<std::int32_t>(b * 13 + 5)));
        } else {
            // Fold in the iteration counter: operands differ every pass.
            prog.push(makeR(Opcode::ADD, r1, r1, regIter));
        }

        if (fp_block) {
            any_fp = true;
            const unsigned f1 = 1 + (b % 8);
            const unsigned f2 = 9 + (b % 8);
            prog.push(makeR(Opcode::FCVTDL, f1, r1, 0));
            for (unsigned i = 0; i < sp.instsPerBlock; ++i) {
                prog.push(i % 2 == 0 ? makeR(Opcode::FADD, f2, f2, f1)
                                     : makeR(Opcode::FMUL, f1, f1, f2));
            }
            prog.push(makeR(Opcode::FCVTLD, r2, f2, 0));
            prog.push(makeR(Opcode::ADD, regSum, regSum, r2));
            continue;
        }

        for (unsigned i = 0; i < sp.instsPerBlock; ++i) {
            if (rng.chance(sp.memFraction)) {
                // Load from a block-fixed or evolving offset.
                const std::int32_t off = reusing
                    ? static_cast<std::int32_t>((b * 56) % 4088)
                    : static_cast<std::int32_t>((b * 56 + i * 8) % 4088);
                prog.push(makeI(Opcode::LD, r2, regBase, off));
                continue;
            }
            switch (rng.below(4)) {
              case 0:
                prog.push(makeR(Opcode::ADD, r2, r1, r2));
                break;
              case 1:
                prog.push(makeR(Opcode::XOR, r1, r1, r2));
                break;
              case 2:
                prog.push(makeR(Opcode::SUB, r2, r2, r1));
                break;
              default:
                prog.push(makeI(Opcode::SLLI, r1, r1, 1));
                break;
            }
        }

        if (rng.chance(sp.branchFraction)) {
            // Data-dependent forward branch over one instruction.
            prog.push(makeI(Opcode::ANDI, r2, r2, 1));
            prog.push(makeB(Opcode::BEQ, r2, 0, 2));
            prog.push(makeI(Opcode::ADDI, regSum, regSum, 1));
        }
        prog.push(makeR(Opcode::ADD, regSum, regSum, r2));
    }
    (void)any_fp;

    // --- loop close ----------------------------------------------------------
    prog.push(makeI(Opcode::ADDI, regIter, regIter, -1));
    const auto here = static_cast<std::int64_t>(prog.text.size());
    prog.push(makeB(Opcode::BNE, regIter, 0,
                    static_cast<std::int32_t>(
                        static_cast<std::int64_t>(loop_top) - here)));

    prog.push(makeI(Opcode::PUTINT, 0, regSum, 0));
    prog.push(Inst(Opcode::HALT, 0, 0, 0, 0));
    return prog;
}

} // namespace workloads

} // namespace direb
