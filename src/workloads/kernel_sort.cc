/**
 * @file
 * "sort" — bzip2-front-end-like shell sort. Each round refills a
 * 256-element array from a continuing LCG stream (different data every
 * round) and shell-sorts it with gaps 7/3/1. Compare/shift heavy with
 * data-dependent branches and low operand repetition — a low-reuse,
 * high-int-ALU workload.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
sortKernel()
{
    static const char *text = R"(
# sort: shell sort over fresh data each round (bzip2 stand-in)
.data
arr:    .space 2048             # 256 dwords
.text
start:
        la   s1, arr
        li   s2, 0              # round
        li   s3, %OUTER%
        li   s4, 5555           # LCG state persists across rounds
        li   s5, 1103515245
        li   s11, 0             # checksum
round:
        li   s0, 0
        li   t1, 256
fill:
        mul  s4, s4, s5
        addi s4, s4, 4057 
        srli t0, s4, 16
        andi t0, t0, 16383
        slli t2, s0, 3
        add  t2, t2, s1
        sd   t0, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, fill

        li   s6, 7              # gap sequence 7, 3, 1
gaploop:
        mv   s7, s6
        mv   s0, s6             # i = gap
iloop:
        la   a3, arr            # rematerialised base (reusable)
        slli t0, s0, 3
        add  t0, t0, a3
        ld   s8, 0(t0)          # tmp = a[i]
        mv   s9, s0             # j
jloop:
        blt  s9, s7, jdone
        la   a3, arr            # rematerialised base (reusable)
        sub  t1, s9, s7
        slli t2, t1, 3
        add  t2, t2, a3
        ld   t3, 0(t2)          # a[j-gap]
        bge  s8, t3, jdone
        slli t4, s9, 3
        add  t4, t4, a3
        sd   t3, 0(t4)          # shift up
        mv   s9, t1
        j    jloop
jdone:
        la   a3, arr            # rematerialised base (reusable)
        slli t4, s9, 3
        add  t4, t4, a3
        sd   s8, 0(t4)
        addi s0, s0, 1
        li   t5, 256            # rematerialised bound (reusable)
        blt  s0, t5, iloop
        srli s6, s6, 1          # 7 -> 3 -> 1 -> 0
        bnez s6, gaploop

        ld   t0, 1024(s1)       # sample the sorted middle
        add  s11, s11, t0
        addi s2, s2, 1
        blt  s2, s3, round
        putint s11
        halt
)";
    return {text, 8};
}

} // namespace workloads

} // namespace direb
