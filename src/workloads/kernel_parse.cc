/**
 * @file
 * "parse" — parser-like table-driven tokenising. Repeated passes classify
 * every byte of a 2 KiB text through a character-class table and count
 * token boundaries. One character is perturbed per pass, so nearly every
 * dynamic instruction repeats with identical operands — the high-reuse
 * end of the suite, with dense dependent loads and branches.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
parseKernel()
{
    static const char *text = R"(
# parse: table-driven tokenizer over a quasi-static buffer (parser stand-in)
.data
tbuf:   .space 2048
ctab:   .space 256
counts: .space 64
.text
start:
        la   s1, tbuf
        la   s2, ctab
        la   s3, counts
        li   s0, 0
        li   t1, 256
ctinit:
        andi t0, s0, 3          # four character classes
        add  t2, s2, s0
        sb   t0, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, ctinit

        li   s0, 0
        li   t1, 2048
        li   s4, 31415
        li   s5, 1103515245
tinit:
        mul  s4, s4, s5
        addi s4, s4, 4057 
        srli t0, s4, 16
        andi t0, t0, 15
        addi t0, t0, 97         # 'a'..'p'
        add  t2, s1, s0
        sb   t0, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, tinit

        li   s6, 0              # pass
        li   s7, %OUTER%
        li   s8, 0              # token count
ploop:
        li   s0, 0
        li   s9, 99             # previous class (invalid)
chloop:
        add  t0, s1, s0
        lbu  a0, 0(t0)
        call classify           # a1 = character class
        slli t4, a1, 3
        add  t4, s3, t4
        ld   t5, 0(t4)
        addi t5, t5, 1
        sd   t5, 0(t4)          # counts[class]++
        beq  a1, s9, same
        addi s8, s8, 1          # token boundary
same:
        mv   s9, a1
        addi s0, s0, 1
        li   t6, 2048           # rematerialised bound (reusable)
        blt  s0, t6, chloop
        andi t0, s6, 2047       # perturb one char per pass
        add  t0, s1, t0
        lbu  t1, 0(t0)
        addi t1, t1, 1
        sb   t1, 0(t0)
        addi s6, s6, 1
        blt  s6, s7, ploop

        ld   t0, 0(s3)
        add  s8, s8, t0
        ld   t0, 8(s3)
        add  s8, s8, t0
        putint s8
        halt

# a1 = classify(a0): character-class table lookup with the usual compiled
# prologue/epilogue (fixed sp at this call depth -> reusable stack traffic)
classify:
        addi sp, sp, -16
        sd   ra, 0(sp)
        la   t2, ctab
        add  t2, t2, a0
        lbu  a1, 0(t2)
        ld   ra, 0(sp)
        addi sp, sp, 16
        ret
)";
    return {text, 8};
}

} // namespace workloads

} // namespace direb
