/**
 * @file
 * Internal declarations of the twelve kernel sources. Each function
 * returns the raw assembly text with a "%OUTER%" placeholder for the main
 * iteration count, plus the default count that yields roughly 150-400K
 * dynamic instructions at scale 1.
 */

#ifndef DIREB_WORKLOADS_KERNELS_HH
#define DIREB_WORKLOADS_KERNELS_HH

namespace direb
{

namespace workloads
{

/** One kernel's template: assembly text + default outer iteration count. */
struct KernelSource
{
    const char *asmText;
    unsigned defaultOuter;
};

KernelSource compressKernel(); //!< gzip/bzip2: LZ window matching
KernelSource routeKernel();    //!< vpr: grid cost relaxation
KernelSource ccExprKernel();   //!< gcc: recursive expression evaluation
KernelSource pointerKernel();  //!< mcf: linked-list pointer chasing
KernelSource parseKernel();    //!< parser: table-driven tokenising
KernelSource objectKernel();   //!< vortex: hash-table store
KernelSource sortKernel();     //!< bzip2 front-end: shell sort
KernelSource annealKernel();   //!< twolf: simulated annealing moves
KernelSource stencilKernel();  //!< swim/equake: FP 5-point stencil
KernelSource neuralKernel();   //!< art: FP match (dot products + max)
KernelSource moldynKernel();   //!< ammp: N-body forces (div/sqrt bound)
KernelSource rasterKernel();   //!< mesa: integer triangle rasteriser

} // namespace workloads

} // namespace direb

#endif // DIREB_WORKLOADS_KERNELS_HH
