/**
 * @file
 * Rate-mode workload bundles: named kernel mixes for the CMP layer. A
 * bundle names the per-core programs of a multi-core run; members are
 * assigned round-robin so one bundle serves every core count.
 */

#include <sstream>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace workloads
{

const std::vector<BundleInfo> &
bundles()
{
    static const std::vector<BundleInfo> regs = {
        {"mix_int",
         {"compress", "parse", "route", "sort"},
         "integer-ALU mix: high- and low-reuse int kernels"},
        {"mix_fp",
         {"stencil", "neural", "moldyn", "raster"},
         "floating-point mix: FP-latency and FP-bandwidth bound"},
        {"mix_mem",
         {"pointer", "object", "sort", "compress"},
         "memory-pressure mix: cache-miss and store-heavy kernels"},
        {"mix_reuse",
         {"parse", "cc_expr", "anneal", "neural"},
         "IRB-stress mix: very high vs very low operand repetition"},
        {"mix_all",
         {"compress", "route", "cc_expr", "pointer", "parse", "object",
          "sort", "anneal", "stencil", "neural", "moldyn", "raster"},
         "all twelve kernels in canonical order"},
    };
    return regs;
}

bool
bundleExists(const std::string &name)
{
    for (const auto &b : bundles()) {
        if (b.name == name)
            return true;
    }
    return false;
}

namespace
{

std::vector<std::string>
memberKernels(const std::string &name)
{
    for (const auto &b : bundles()) {
        if (b.name == name)
            return b.kernels;
    }

    // Not a named bundle: accept an explicit comma-separated kernel list.
    std::vector<std::string> members;
    std::stringstream ss(name);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            members.push_back(item);
    }
    fatal_if(members.empty(), "empty workload bundle '%s'", name.c_str());
    for (const auto &k : members) {
        fatal_if(!exists(k),
                 "unknown kernel '%s' in bundle '%s' (expected a bundle "
                 "name or a comma-separated kernel list)",
                 k.c_str(), name.c_str());
    }
    return members;
}

} // namespace

std::vector<Program>
buildBundle(const std::string &name, unsigned cores, unsigned scale)
{
    fatal_if(cores == 0, "bundle '%s' needs at least one core",
             name.c_str());
    const std::vector<std::string> members = memberKernels(name);
    std::vector<Program> programs;
    programs.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        programs.push_back(build(members[c % members.size()], scale));
    return programs;
}

} // namespace workloads

} // namespace direb
