/**
 * @file
 * "compress" — gzip-like LZ window matching. Fills a 4 KiB buffer with a
 * 16-symbol pseudo-random alphabet, then for each position searches the
 * previous 32 offsets for the longest match (capped at 8). Heavy on
 * single-cycle integer ops and byte loads with high ILP — the classic
 * ALU-bandwidth-bound profile. Operand reuse is moderate: the compared
 * byte values come from a small alphabet and match lengths are tiny.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
compressKernel()
{
    static const char *text = R"(
# compress: LZ77-style longest-match search (gzip stand-in)
.data
buf:    .space 4096
.text
start:
        li   s0, 0              # fill index
        la   s1, buf
        li   s2, 4096
        li   s3, 12345          # LCG seed
        li   s4, 1103515245
fill:
        mul  s3, s3, s4
        addi s3, s3, 4057 
        srli t0, s3, 16
        andi t0, t0, 15         # 16-symbol alphabet
        add  t1, s1, s0
        sb   t0, 0(t1)
        addi s0, s0, 1
        blt  s0, s2, fill

        li   s5, 0              # checksum
        li   s6, 64             # pos
        li   s7, %OUTER%
        addi s7, s7, 64         # pos limit
        addi sp, sp, -16        # frame for the spilled best-length
outer:
        sd   zero, 8(sp)        # best match length lives on the stack
        li   t1, 1              # candidate back-offset
cand:
        la   a2, buf            # rematerialised base (reusable)
        sub  t2, s6, t1         # candidate start
        li   t3, 0              # match length (reusable remat)
inner:
        add  t4, a2, t2
        add  t5, a2, s6
        add  t4, t4, t3
        add  t5, t5, t3
        lbu  t6, 0(t4)
        lbu  a0, 0(t5)
        bne  t6, a0, endin
        addi t3, t3, 1
        li   a1, 8              # rematerialised cap (reusable)
        blt  t3, a1, inner
endin:
        ld   a3, 8(sp)          # reload spilled best (reusable addr-gen)
        blt  t3, a3, nobest
        sd   t3, 8(sp)          # spill new best (reusable addr-gen)
nobest:
        addi t1, t1, 1
        li   a1, 33             # rematerialised bound (reusable)
        blt  t1, a1, cand
        ld   t0, 8(sp)
        add  s5, s5, t0
        addi s6, s6, 1
        blt  s6, s7, outer
        addi sp, sp, 16

        putint s5
        halt
)";
    return {text, 420};
}

} // namespace workloads

} // namespace direb
