/**
 * @file
 * "cc_expr" — gcc-like recursive expression-tree evaluation. A complete
 * binary tree of 255 operators (add/sub/xor/and chosen by node index)
 * over 256 leaves is evaluated recursively with real call/return (depth
 * 9, exercising the RAS); one leaf is perturbed per evaluation, so most
 * of the tree re-evaluates with identical operands — strong but not
 * total IRB reuse, plus call-heavy control flow.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
ccExprKernel()
{
    static const char *text = R"(
# cc_expr: recursive expression-tree evaluation (gcc stand-in)
.data
leaves: .space 2048             # 256 dwords
.text
start:
        la   s1, leaves
        li   s0, 0
        li   s2, 256
        li   s3, 777
        li   t5, 1103515245
linit:
        mul  s3, s3, t5
        addi s3, s3, 4057 
        srli t0, s3, 16
        andi t0, t0, 1023
        slli t1, s0, 3
        add  t1, t1, s1
        sd   t0, 0(t1)
        addi s0, s0, 1
        blt  s0, s2, linit

        li   s4, 0              # eval counter
        li   s5, %OUTER%
        li   s6, 0              # checksum
eloop:
        li   a0, 0              # root node
        call eval
        add  s6, s6, a1
        andi t0, s4, 255        # perturb one leaf per eval
        slli t0, t0, 3
        add  t0, t0, s1
        ld   t1, 0(t0)
        addi t1, t1, 3
        sd   t1, 0(t0)
        addi s4, s4, 1
        blt  s4, s5, eloop
        putint s6
        halt

# a1 = eval(node a0); nodes 0..254 internal, 255..510 leaves
eval:
        slti t0, a0, 255
        bnez t0, internal
        addi t0, a0, -255
        slli t0, t0, 3
        add  t0, t0, s1
        ld   a1, 0(t0)
        ret
internal:
        addi sp, sp, -24
        sd   ra, 0(sp)
        sd   a0, 8(sp)
        slli a0, a0, 1
        addi a0, a0, 1          # left child
        call eval
        sd   a1, 16(sp)
        ld   a0, 8(sp)
        slli a0, a0, 1
        addi a0, a0, 2          # right child
        call eval
        ld   t1, 16(sp)         # left value
        ld   a0, 8(sp)
        andi t0, a0, 3          # operator select
        beqz t0, opadd
        addi t2, t0, -1
        beqz t2, opsub
        addi t2, t0, -2
        beqz t2, opxor
        and  a1, t1, a1
        j    opdone
opadd:
        add  a1, t1, a1
        j    opdone
opsub:
        sub  a1, t1, a1
        j    opdone
opxor:
        xor  a1, t1, a1
opdone:
        ld   ra, 0(sp)
        addi sp, sp, 24
        ret
)";
    return {text, 28};
}

} // namespace workloads

} // namespace direb
