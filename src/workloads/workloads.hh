/**
 * @file
 * Workload suite: twelve kernels standing in for the paper's SPEC2000
 * applications, plus a parameterised synthetic generator.
 *
 * Each kernel is a self-contained assembly program for the mini-ISA that
 * mimics the dominant microarchitectural behaviour of one SPEC2000 app
 * (see DESIGN.md §6): instruction mix, branchiness, memory footprint, and
 * — critically for the IRB — the degree of operand-value repetition.
 * Every kernel prints a deterministic checksum (PUTINT) and HALTs, so the
 * timing core can be validated against the functional VM.
 */

#ifndef DIREB_WORKLOADS_WORKLOADS_HH
#define DIREB_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "vm/program.hh"

namespace direb
{

namespace workloads
{

/** Catalogue entry for one kernel. */
struct WorkloadInfo
{
    std::string name;        //!< kernel name ("compress", "pointer", ...)
    std::string mimics;      //!< SPEC2000 app it stands in for
    std::string description; //!< one-line behaviour summary
};

/** All twelve kernels, in the canonical bench order. */
const std::vector<WorkloadInfo> &list();

/** True if @p name is a known kernel. */
bool exists(const std::string &name);

/**
 * Assemble kernel @p name.
 *
 * @param scale multiplies the main iteration count (1 = default length,
 *              roughly 150-400K dynamic instructions)
 * @throws FatalError for unknown names
 */
Program build(const std::string &name, unsigned scale = 1);

/** Raw assembly text of kernel @p name with "%OUTER%" already expanded. */
std::string source(const std::string &name, unsigned scale = 1);

/** Parameters of the synthetic workload generator. */
struct SyntheticParams
{
    std::uint64_t seed = 1;
    unsigned blocks = 64;          //!< distinct basic blocks in the loop
    unsigned instsPerBlock = 8;    //!< ALU ops per block
    unsigned outerIters = 2000;    //!< times the block sequence repeats
    double fpFraction = 0.0;       //!< fraction of blocks using FP ops
    double memFraction = 0.2;      //!< fraction of ops that are loads
    double branchFraction = 0.15;  //!< extra data-dependent branches
    /**
     * Probability that a block's operand registers are reset to fixed
     * values each outer iteration — the direct knob for IRB reuse.
     */
    double reuseFraction = 0.5;
};

/**
 * Generate a synthetic program with a controllable reuse rate. Used by
 * the property tests and the IRB sensitivity benches.
 */
Program synthetic(const SyntheticParams &params);

/**
 * Multi-program rate-mode bundles for the CMP layer: a named mix of
 * kernels, assigned round-robin so any core count works (SPEC-rate
 * style — independent copies, no sharing between programs).
 */
struct BundleInfo
{
    std::string name;                 //!< bundle name ("mix_int", ...)
    std::vector<std::string> kernels; //!< members, round-robin order
    std::string description;          //!< one-line behaviour summary
};

/** The named bundles, in canonical order. */
const std::vector<BundleInfo> &bundles();

/** True if @p name is a known bundle. */
bool bundleExists(const std::string &name);

/**
 * Build the programs for a @p cores -core rate-mode run of bundle
 * @p name. Accepts either a named bundle or an explicit comma-separated
 * kernel list ("compress,route,sort"); members are assigned to cores
 * round-robin. @throws FatalError for unknown bundle/kernel names.
 */
std::vector<Program> buildBundle(const std::string &name, unsigned cores,
                                 unsigned scale = 1);

} // namespace workloads

} // namespace direb

#endif // DIREB_WORKLOADS_WORKLOADS_HH
