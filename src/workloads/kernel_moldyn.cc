/**
 * @file
 * "moldyn" — ammp-like N-body interaction sweep. Each particle folds its
 * 63 partners into a damped serial accumulation (fadd+fmul, a 6-cycle
 * loop-carried chain) finished by an FSQRT/FDIV normalisation. The
 * dependence chain is slower than any unit's occupancy, so the machine is
 * latency-bound with idle ALUs — duplicating the stream costs almost
 * nothing (the paper's ammp corner, ~1% DIE loss).
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
moldynKernel()
{
    static const char *text = R"(
# moldyn: all-pairs forces with div/sqrt on the critical path (ammp stand-in)
.data
.align 8
px:     .space 512              # 64 doubles
py:     .space 512
fx:     .space 512
fy:     .space 512
consts: .double 0.5, 1.0, 1000.0
.text
start:
        la   s1, px
        la   s2, py
        la   s3, fx
        la   s4, fy
        la   t0, consts
        fld  f12, 0(t0)         # softening
        fld  f13, 8(t0)         # 1.0
        fld  f14, 16(t0)        # checksum scale
        li   s0, 0
        li   t1, 64
minit:
        andi t0, s0, 15
        addi t0, t0, 1
        fcvtdl f3, t0
        slli t2, s0, 3
        add  t3, t2, s1
        fsd  f3, 0(t3)
        slli t0, s0, 1
        addi t0, t0, 3
        andi t0, t0, 31
        addi t0, t0, 1
        fcvtdl f4, t0
        add  t3, t2, s2
        fsd  f4, 0(t3)
        addi s0, s0, 1
        blt  s0, t1, minit

        li   s5, 0              # iteration
        li   s6, %OUTER%
mdround:
        li   s7, 0              # particle i
mil:
        slli t0, s7, 3
        add  t1, t0, s1
        fld  f1, 0(t1)          # xi
        add  t1, t0, s2
        fld  f2, 0(t1)          # yi
        fcvtdl f8, zero         # damped interaction accumulator
        addi s8, s7, 1          # j
        slli t1, s8, 3
        add  t1, t1, s1         # &px[j]
mjl:
        fld  f3, 0(t1)          # xj
        fsub f5, f1, f3         # dx
        fadd f8, f8, f5         # serial 6-cycle chain per pair:
        fmul f8, f8, f12        #   f8 = (f8 + dx) * 0.5
        addi t1, t1, 8
        addi s8, s8, 1
        li   t6, 64             # rematerialised bound (reusable)
        blt  s8, t6, mjl
        fabs f7, f8             # once per particle: div/sqrt on the chain
        fadd f7, f7, f13
        fsqrt f10, f7
        fdiv f8, f8, f10
        fadd f9, f2, f8         # fold in yi so both coordinates matter
        slli t0, s7, 3
        add  t1, t0, s3
        fsd  f8, 0(t1)
        add  t1, t0, s4
        fsd  f9, 0(t1)
        addi s7, s7, 1
        li   t6, 63
        blt  s7, t6, mil
        addi s5, s5, 1
        blt  s5, s6, mdround

        li   t0, 80             # checksum: fx[10] scaled to int
        add  t0, t0, s3
        fld  f3, 0(t0)
        fmul f3, f3, f14
        fcvtld t1, f3
        putint t1
        halt
)";
    return {text, 14};
}

} // namespace workloads

} // namespace direb
