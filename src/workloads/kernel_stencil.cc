/**
 * @file
 * "stencil" — swim/equake-like FP 5-point stencil. Jacobi sweeps between
 * two 32x32 double grids with constant coefficients. FP-adder bound (two
 * FpAdd units serve five adds per cell) with perfectly repeating address
 * arithmetic across sweeps but continuously evolving FP data — high
 * address-generation reuse, low data-op reuse.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
stencilKernel()
{
    static const char *text = R"(
# stencil: Jacobi 5-point relaxation on 32x32 doubles (swim stand-in)
.data
.align 8
gridA:  .space 8192
gridB:  .space 8192
coef:   .double 0.25, 0.125
.text
start:
        la   s1, gridA
        la   s2, gridB
        la   t0, coef
        fld  f1, 0(t0)          # centre weight
        fld  f2, 8(t0)          # neighbour weight
        li   s0, 0
        li   t1, 1024
sinit:
        fcvtdl f3, s0
        slli t2, s0, 3
        add  t2, t2, s1
        fsd  f3, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, sinit

        li   s3, 0              # sweep
        li   s4, %OUTER%
        addi sp, sp, -32        # spill slots for the grid bases
sweep:
        sd   s1, 8(sp)          # compilers keep these in memory under
        sd   s2, 16(sp)         # pressure; the reloads below reuse
        li   s5, 1              # y
syl:
        li   s6, 1              # x
sxl:
        ld   a2, 8(sp)          # reload A base (reusable addr-gen)
        ld   a3, 16(sp)         # reload B base (reusable addr-gen)
        slli t0, s5, 5
        add  t0, t0, s6
        slli t0, t0, 3
        add  t1, t0, a2         # &A[y][x]
        add  t2, t0, a3         # &B[y][x]
        fld  f3, 0(t1)
        fld  f4, -8(t1)
        fld  f5, 8(t1)
        fld  f6, -256(t1)
        fld  f7, 256(t1)
        fadd f8, f4, f5
        fadd f9, f6, f7
        fadd f8, f8, f9
        fmul f8, f8, f2
        fmul f3, f3, f1
        fadd f3, f3, f8
        fsd  f3, 0(t2)
        addi s6, s6, 1
        li   t6, 31             # rematerialised bound (reusable)
        blt  s6, t6, sxl
        addi s5, s5, 1
        li   t6, 31
        blt  s5, t6, syl
        mv   t0, s1             # ping-pong the grids
        mv   s1, s2
        mv   s2, t0
        addi s3, s3, 1
        blt  s3, s4, sweep
        addi sp, sp, 32

        li   t0, 4224           # checksum: cell (16,16) scaled to int
        add  t0, t0, s1
        fld  f3, 0(t0)
        fcvtld t1, f3
        putint t1
        halt
)";
    return {text, 12};
}

} // namespace workloads

} // namespace direb
