/**
 * @file
 * "raster" — mesa-like integer triangle rasterisation. Sixteen random
 * triangles are rendered into a 32x32 framebuffer every frame using
 * per-pixel edge-function sign tests (integer multiplies and subtracts).
 * The same triangles render every frame, so per-pixel edge evaluations
 * repeat exactly — high reuse riding on a multiply-heavy integer mix.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
rasterKernel()
{
    static const char *text = R"(
# raster: bounding-box edge-function rasteriser (mesa stand-in)
.data
fb:     .space 1024             # 32x32 bytes
tris:   .space 512              # 16 triangles x 6 word coords
.text
start:
        la   s1, fb
        la   s2, tris
        li   s0, 0
        li   t1, 96
        li   s4, 4242
        li   s5, 1103515245
trinit:
        mul  s4, s4, s5
        addi s4, s4, 4057 
        srli t0, s4, 16
        andi t0, t0, 31
        slli t2, s0, 2
        add  t2, t2, s2
        sw   t0, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, trinit

        li   s6, 0              # frame
        li   s7, %OUTER%
        li   s11, 0             # covered-pixel count
frame:
        li   s8, 0              # triangle index
tloop:
        slli t1, s8, 1
        add  t1, t1, s8         # s8*3
        slli t1, t1, 3          # *24 bytes
        add  t1, t1, s2
        lw   a0, 0(t1)          # x0
        lw   a1, 4(t1)          # y0
        lw   a2, 8(t1)          # x1
        lw   a3, 12(t1)         # y1
        lw   a4, 16(t1)         # x2
        lw   a5, 20(t1)         # y2
        mv   a6, a0             # xmin
        blt  a6, a2, r1
        mv   a6, a2
r1:
        blt  a6, a4, r2
        mv   a6, a4
r2:
        mv   a7, a0             # xmax
        bge  a7, a2, r3
        mv   a7, a2
r3:
        bge  a7, a4, r4
        mv   a7, a4
r4:
        mv   s9, a1             # ymin
        blt  s9, a3, r5
        mv   s9, a3
r5:
        blt  s9, a5, r6
        mv   s9, a5
r6:
        mv   s10, a1            # ymax
        bge  s10, a3, r7
        mv   s10, a3
r7:
        bge  s10, a5, r8
        mv   s10, a5
r8:
        mv   t2, s9             # y
pyl:
        mv   t3, a6             # x
pxl:
        sub  t4, a2, a0         # edge 0-1
        sub  t5, t2, a1
        mul  t4, t4, t5
        sub  t5, a3, a1
        sub  t6, t3, a0
        mul  t5, t5, t6
        sub  t4, t4, t5
        bltz t4, pnext
        sub  t4, a4, a2         # edge 1-2
        sub  t5, t2, a3
        mul  t4, t4, t5
        sub  t5, a5, a3
        sub  t6, t3, a2
        mul  t5, t5, t6
        sub  t4, t4, t5
        bltz t4, pnext
        sub  t4, a0, a4         # edge 2-0
        sub  t5, t2, a5
        mul  t4, t4, t5
        sub  t5, a1, a5
        sub  t6, t3, a4
        mul  t5, t5, t6
        sub  t4, t4, t5
        bltz t4, pnext
        slli t4, t2, 5          # covered: fb[y*32+x] = tri
        add  t4, t4, t3
        add  t4, t4, s1
        sb   s8, 0(t4)
        addi s11, s11, 1
pnext:
        addi t3, t3, 1
        bge  a7, t3, pxl
        addi t2, t2, 1
        bge  s10, t2, pyl
        addi s8, s8, 1
        slti t6, s8, 16
        bnez t6, tloop
        addi s6, s6, 1
        blt  s6, s7, frame
        putint s11
        halt
)";
    return {text, 4};
}

} // namespace workloads

} // namespace direb
