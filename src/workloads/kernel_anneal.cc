/**
 * @file
 * "anneal" — twolf-like simulated annealing. Each move draws two random
 * slots, computes a cost delta, and swaps if the delta clears a
 * temperature threshold that decays every 1024 moves. The accept/reject
 * branch is data-dependent and effectively random — the misprediction-
 * heavy corner of the suite.
 */

#include "workloads/kernels.hh"

namespace direb
{

namespace workloads
{

KernelSource
annealKernel()
{
    static const char *text = R"(
# anneal: random-swap annealing with decaying threshold (twolf stand-in)
.data
cost:   .space 8192             # 1024 dwords
.text
start:
        la   s1, cost
        li   s0, 0
        li   t1, 1024
        li   s4, 2024
        li   s5, 1103515245
ainit:
        mul  s4, s4, s5
        addi s4, s4, 4057 
        srli t0, s4, 16
        andi t0, t0, 8191
        slli t2, s0, 3
        add  t2, t2, s1
        sd   t0, 0(t2)
        addi s0, s0, 1
        blt  s0, t1, ainit

        li   s6, 8192           # temperature threshold
        li   s7, 0              # move counter
        li   s8, %OUTER%
        li   s9, 0              # accepted moves
swloop:
        mul  s4, s4, s5
        addi s4, s4, 4057 
        li   a3, 1023           # rematerialised mask (reusable)
        srli t0, s4, 13
        and  t0, t0, a3         # slot i
        srli t1, s4, 33
        and  t1, t1, a3         # slot j
        la   a2, cost           # rematerialised base (reusable)
        slli t2, t0, 3
        add  t2, t2, a2
        slli t3, t1, 3
        add  t3, t3, a2
        ld   t4, 0(t2)
        ld   t5, 0(t3)
        sub  t6, t4, t5         # cost delta
        bge  t6, s6, reject
        sd   t5, 0(t2)          # accept: swap
        sd   t4, 0(t3)
        addi s9, s9, 1
reject:
        addi s7, s7, 1
        andi a0, s7, 1023
        bnez a0, nodecay
        srai s6, s6, 1          # cool down
nodecay:
        blt  s7, s8, swloop
        putint s9
        halt
)";
    return {text, 11000};
}

} // namespace workloads

} // namespace direb
