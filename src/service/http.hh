/**
 * @file
 * Minimal HTTP/1.1 machinery for the simulation service: an incremental
 * request parser that is fed raw bytes exactly as they arrive from a
 * socket (split reads are the normal case, not an edge case), and a
 * response builder. No third-party dependencies and no ambition beyond
 * what dieirb-serve needs — Content-Length request framing only, but
 * with full keep-alive support: feed() reports how many bytes belong to
 * the current request, so pipelined or keep-alive leftovers seed the
 * next one, and reset() rewinds the parser for that next request.
 *
 * The parser is written for untrusted input: every limit violation or
 * syntax error turns into a sticky Error state carrying the HTTP status
 * the server should answer with (400 malformed request line or header,
 * 405 unrecognized method, 411 missing Content-Length on a body method,
 * 413 oversized body, 431 oversized header block, 501 Transfer-Encoding,
 * 505 unknown HTTP version), never into a crash or an unbounded buffer.
 */

#ifndef DIREB_SERVICE_HTTP_HH
#define DIREB_SERVICE_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace direb
{

namespace service
{

/** One parsed request. Header names are lower-cased at parse time. */
struct HttpRequest
{
    std::string method;  //!< e.g. "GET", "POST" (always upper-case)
    std::string target;  //!< raw request-target, e.g. "/v1/jobs/7?x=1"
    std::string version; //!< "HTTP/1.0" or "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Lookup by lower-cased name; nullptr when absent. */
    const std::string *header(const std::string &lower_name) const;

    /** The target up to (not including) any '?' query. */
    std::string path() const;

    /**
     * HTTP/1.1 semantics: keep the connection unless the client said
     * `Connection: close`. HTTP/1.0 clients always get close — they
     * cannot be assumed to understand persistent connections or
     * chunked framing.
     */
    bool wantsKeepAlive() const;
};

/**
 * Incremental HTTP/1.1 request parser.
 *
 * feed() consumes bytes in arbitrarily small or large chunks and
 * returns how many of them belong to the request being parsed: all of
 * them while the request is still incomplete (status() == NeedMore),
 * only up to the end of the Content-Length body once it completes
 * (status() == Done — the unconsumed tail is the start of the next
 * pipelined request and stays with the caller), and zero on any feed
 * after Done. Error is sticky and swallows everything — the connection
 * is going to be closed anyway; errorStatus()/errorReason() say why.
 * reset() returns a Done (or errored) parser to its initial state so
 * one parser instance serves a whole keep-alive connection.
 */
class HttpParser
{
  public:
    struct Limits
    {
        std::size_t maxHeaderBytes = 64 * 1024;
        std::size_t maxBodyBytes = 8 * 1024 * 1024;
    };

    enum class Status : std::uint8_t { NeedMore, Done, Error };

    HttpParser() = default;
    explicit HttpParser(Limits limits) : limits(limits) {}

    /** Consume up to @p n bytes; returns how many were consumed. */
    std::size_t feed(const char *data, std::size_t n);

    Status status() const;

    /** The parsed request; valid once status() == Done. */
    const HttpRequest &request() const { return req; }

    /** Move the parsed request out (valid once, after Done). */
    HttpRequest takeRequest() { return std::move(req); }

    /** True once any bytes of the current request have been consumed. */
    bool started() const { return sawBytes; }

    /** Rewind to the initial state for the next request (keeps limits). */
    void reset();

    /** HTTP status to answer with; valid once status() == Error. @{ */
    int errorStatus() const { return errStatus; }
    const std::string &errorReason() const { return errReason; }
    /** @} */

  private:
    enum class State : std::uint8_t { Headers, Body, Done, Error };

    void parseHeaderBlock(std::size_t block_end);
    void fail(int status, std::string reason);

    Limits limits;
    State state = State::Headers;
    bool sawBytes = false;
    std::string buf;
    std::size_t scanFrom = 0; //!< restart "\r\n\r\n" search here
    std::size_t contentLength = 0;
    HttpRequest req;
    int errStatus = 0;
    std::string errReason;
};

/** A response under construction; serialize() frames it for the wire. */
struct HttpResponse
{
    int status = 200;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    HttpResponse() = default;
    HttpResponse(int status, std::string body)
        : status(status), body(std::move(body))
    {}

    /** Append a header (no dedup; serialize() writes them in order). */
    HttpResponse &set(std::string name, std::string value);

    /**
     * Render status line + headers + body. Content-Length and a
     * Connection header (`keep-alive` or `close`) are always appended;
     * Content-Type defaults to application/json unless already set.
     */
    std::string serialize(bool keep_alive = false) const;
};

/**
 * Chunked transfer-coding for streamed responses: one data chunk
 * (hex size + CRLF + payload + CRLF), and the zero-length terminal
 * chunk that ends the stream. encodeChunk("") is NOT a valid data
 * chunk — a zero size means end-of-stream — so empty payloads are
 * rendered as nothing at all.
 */
std::string encodeChunk(const std::string &payload);
std::string lastChunk();

/**
 * Response head for a chunked stream (no Content-Length; the chunk
 * framing delimits the body). @p extra_headers are "Name: value" pairs
 * appended verbatim.
 */
std::string
streamHead(int status, const std::string &content_type, bool keep_alive,
           const std::vector<std::pair<std::string, std::string>>
               &extra_headers = {});

/** Canonical reason phrase ("OK", "Too Many Requests", ...). */
const char *statusText(int status);

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_HTTP_HH
