/**
 * @file
 * Minimal HTTP/1.1 machinery for the simulation service: an incremental
 * request parser that is fed raw bytes exactly as they arrive from a
 * blocking socket (split reads are the normal case, not an edge case),
 * and a response builder. No third-party dependencies and no ambition
 * beyond what dieirb-serve needs — Content-Length framing only, one
 * request per connection, Connection: close on every response.
 *
 * The parser is written for untrusted input: every limit violation or
 * syntax error turns into a sticky Error state carrying the HTTP status
 * the server should answer with (400 malformed request line or header,
 * 405 unrecognized method, 411 missing Content-Length on a body method,
 * 413 oversized body, 431 oversized header block, 501 Transfer-Encoding,
 * 505 unknown HTTP version), never into a crash or an unbounded buffer.
 */

#ifndef DIREB_SERVICE_HTTP_HH
#define DIREB_SERVICE_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace direb
{

namespace service
{

/** One parsed request. Header names are lower-cased at parse time. */
struct HttpRequest
{
    std::string method;  //!< e.g. "GET", "POST" (always upper-case)
    std::string target;  //!< raw request-target, e.g. "/v1/jobs/7?x=1"
    std::string version; //!< "HTTP/1.0" or "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Lookup by lower-cased name; nullptr when absent. */
    const std::string *header(const std::string &lower_name) const;

    /** The target up to (not including) any '?' query. */
    std::string path() const;
};

/**
 * Incremental HTTP/1.1 request parser.
 *
 * feed() consumes bytes in arbitrarily small or large chunks and
 * returns NeedMore until the request line, every header and the full
 * Content-Length body have been buffered (Done), or until the input is
 * rejected (Error; errorStatus()/errorReason() say why). Both Done and
 * Error are sticky: further feed() calls are no-ops, so a connection
 * loop can simply stop reading.
 */
class HttpParser
{
  public:
    struct Limits
    {
        std::size_t maxHeaderBytes = 64 * 1024;
        std::size_t maxBodyBytes = 8 * 1024 * 1024;
    };

    enum class Status : std::uint8_t { NeedMore, Done, Error };

    HttpParser() = default;
    explicit HttpParser(Limits limits) : limits(limits) {}

    /** Consume @p n bytes; returns the parser status afterwards. */
    Status feed(const char *data, std::size_t n);

    Status status() const;

    /** The parsed request; valid once status() == Done. */
    const HttpRequest &request() const { return req; }

    /** True once any request bytes have been consumed. */
    bool started() const { return sawBytes; }

    /** HTTP status to answer with; valid once status() == Error. @{ */
    int errorStatus() const { return errStatus; }
    const std::string &errorReason() const { return errReason; }
    /** @} */

  private:
    enum class State : std::uint8_t { Headers, Body, Done, Error };

    void parseHeaderBlock(std::size_t block_end);
    void fail(int status, std::string reason);

    Limits limits;
    State state = State::Headers;
    bool sawBytes = false;
    std::string buf;
    std::size_t scanFrom = 0; //!< restart "\r\n\r\n" search here
    std::size_t contentLength = 0;
    HttpRequest req;
    int errStatus = 0;
    std::string errReason;
};

/** A response under construction; serialize() frames it for the wire. */
struct HttpResponse
{
    int status = 200;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    HttpResponse() = default;
    HttpResponse(int status, std::string body)
        : status(status), body(std::move(body))
    {}

    /** Append a header (no dedup; serialize() writes them in order). */
    HttpResponse &set(std::string name, std::string value);

    /**
     * Render status line + headers + body. Content-Length and
     * Connection: close are always appended; Content-Type defaults to
     * application/json unless already set.
     */
    std::string serialize() const;
};

/** Canonical reason phrase ("OK", "Too Many Requests", ...). */
const char *statusText(int status);

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_HTTP_HH
