/**
 * @file
 * Bounded job queue + worker pool for the simulation service.
 *
 * Jobs are opaque closures returning a harness::Json result; the queue
 * assigns each an id, bounds the number of outstanding (queued +
 * running) jobs so an overloaded server answers 429 instead of growing
 * without limit, runs them on a fixed pool of worker threads, and keeps
 * a bounded history of finished records so GET /v1/jobs/<id> can report
 * status and results after the fact.
 *
 * Shutdown contract (the server's drain): close() makes every further
 * submit() come back rejected-with-closed, but jobs already accepted
 * keep running; drain() closes, lets the workers finish everything
 * outstanding and joins them. Long-running sweep jobs are expected to
 * watch the server's cancellation token themselves (Sweep::run(cancel))
 * so a drain finishes the point in flight instead of the whole matrix.
 */

#ifndef DIREB_SERVICE_JOB_QUEUE_HH
#define DIREB_SERVICE_JOB_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/report.hh"

namespace direb
{

namespace service
{

enum class JobState : std::uint8_t { Queued, Running, Done, Failed };

const char *jobStateName(JobState state);

/** Snapshot of one job, as returned by lookup()/wait(). */
struct JobRecord
{
    std::uint64_t id = 0;
    std::string kind;      //!< "simulate", "sweep", ...
    std::string requestId; //!< propagated from the HTTP request
    JobState state = JobState::Queued;
    harness::Json result; //!< valid when Done
    std::string error;    //!< valid when Failed
    double runSeconds = 0.0;

    bool finished() const
    {
        return state == JobState::Done || state == JobState::Failed;
    }
};

class JobQueue
{
  public:
    using Work = std::function<harness::Json()>;

    /**
     * @param capacity max outstanding (queued + running) jobs; further
     *                 submissions are rejected (the 429 path).
     * @param workers  worker threads; 0 = hardware concurrency.
     * @param history  finished records kept for lookup()/list() before
     *                 the oldest are trimmed (the --job-history flag).
     */
    JobQueue(std::size_t capacity, unsigned workers,
             std::size_t history = 4096);

    /** drain()s if the owner did not. */
    ~JobQueue();

    struct Ticket
    {
        std::uint64_t id = 0;
        bool accepted = false;
        bool closed = false; //!< rejected because the queue was closed
    };

    /**
     * Enqueue @p work. Rejected (accepted=false) when the queue is full
     * (closed=false — retry later) or closed (closed=true — the server
     * is shutting down). @p work runs on a worker thread; a thrown
     * exception marks the job Failed with the exception text.
     */
    Ticket submit(std::string kind, std::string request_id, Work work);

    /** Snapshot a job; false when the id is unknown (or trimmed). */
    bool lookup(std::uint64_t id, JobRecord &out) const;

    /**
     * Snapshot up to @p limit known jobs (queued, running and the
     * bounded finished history), newest-first by id — the cheap
     * GET /v1/jobs listing the coordinator's debug path leans on.
     */
    std::vector<JobRecord> list(std::size_t limit) const;

    /**
     * Block until the job finishes or @p deadline elapses; true when
     * the job finished (out is its final record), false on deadline
     * (out is the current snapshot) or when the id is unknown.
     */
    bool wait(std::uint64_t id, std::chrono::milliseconds deadline,
              JobRecord &out) const;

    /** Reject all future submissions; running/queued jobs continue. */
    void close();

    /** close(), finish every outstanding job, join the workers. */
    void drain();

    /** Instantaneous sizes (for /metrics and /healthz). @{ */
    std::size_t queued() const;
    std::size_t outstanding() const;
    std::size_t capacity() const { return cap; }
    unsigned workers() const;
    unsigned busyWorkers() const;
    /** @} */

    /** Monotonic accounting since construction. @{ */
    std::uint64_t acceptedCount() const;
    std::uint64_t rejectedCount() const;
    std::uint64_t completedCount() const;
    std::uint64_t failedCount() const;
    /** @} */

  private:
    /** A record plus the closure it still has to run. */
    struct Slot
    {
        JobRecord record;
        Work work;
    };

    void workerLoop();
    void trimHistoryLocked();

    const std::size_t cap;
    /** Finished records kept for lookup()/list() before trimming. */
    const std::size_t historyLimit;

    mutable std::mutex mtx;
    std::condition_variable workAvailable;
    mutable std::condition_variable jobFinished;
    bool closed = false;
    std::deque<std::uint64_t> pending; //!< queued job ids, FIFO
    std::map<std::uint64_t, Slot> slots;
    std::deque<std::uint64_t> finishedOrder; //!< trim oldest first
    std::uint64_t nextId = 1;
    std::size_t outstandingJobs = 0;
    unsigned busy = 0;
    std::uint64_t numAccepted = 0;
    std::uint64_t numRejected = 0;
    std::uint64_t numCompleted = 0;
    std::uint64_t numFailed = 0;

    std::vector<std::thread> pool;
    bool joined = false;
};

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_JOB_QUEUE_HH
