/**
 * @file
 * dieirb-serve's HTTP server: a long-running batching front-end over
 * the existing simulation engine (harness::run / harness::Sweep /
 * harness::CorePool), built on a non-blocking epoll event loop with no
 * third-party dependencies.
 *
 * Endpoints:
 *   POST /v1/simulate   one (workload, Config) point
 *   POST /v1/sweep      a (workload x Config) matrix via harness::Sweep;
 *                       `"stream": true` streams per-point NDJSON
 *                       results over a chunked response as they finish
 *   POST /v1/query      filter/group-by/aggregate over mounted columnar
 *                       result stores (ServerOptions::storePaths; see
 *                       src/store/query.hh for the request shape)
 *   GET  /v1/jobs/<id>  async job status / result
 *   GET  /healthz       liveness + queue occupancy
 *   GET  /metrics       Prometheus text format
 *
 * Threading model: ONE event-loop thread owns the listening socket
 * (edge-triggered accept), every connection's state machine
 * (read -> parse -> dispatch -> write), all epoll registration and a
 * timer wheel for idle/read/stalled-write deadlines. Connections are
 * HTTP/1.1 keep-alive: one connection serves many requests, pipelined
 * leftovers seed the next parse. Parsed requests are handed to a small
 * dispatch pool (the only threads that may block, e.g. on a sync job
 * wait); simulation itself runs on the JobQueue's worker pool, drawing
 * warm cores from one shared harness::CorePool. Responses travel back
 * to the event loop through a per-connection output buffer plus an
 * eventfd wakeup. A full queue answers 429 with Retry-After.
 *
 * Streaming: a sweep with `"stream": true` answers immediately with
 * `Transfer-Encoding: chunked` + application/x-ndjson and then emits
 * one JSON line per point, in deterministic enqueue order, as the
 * completed prefix grows (Sweep::run's ordered PointCallback), ending
 * with a `{"done": true, ...}` summary line. A client disconnect flips
 * the connection's cancellation token, which the sweep polls between
 * points — exactly the mechanism SIGTERM drain uses — so the pending
 * remainder is cancelled instead of simulated into the void.
 *
 * Shutdown contract: shutdown() (idempotent, thread-safe) stops
 * accepting connections, rejects new jobs with 503, cancels the pending
 * remainder of in-flight sweeps (drain token + every live streaming
 * connection's token), finishes every request already in flight and
 * every job already accepted, then joins all threads. dieirb-serve
 * wires SIGTERM/SIGINT to exactly this, so a drained server exits 0.
 */

#ifndef DIREB_SERVICE_SERVER_HH
#define DIREB_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/core_pool.hh"
#include "harness/sweep.hh"
#include "service/http.hh"
#include "store/query.hh"
#include "service/job_queue.hh"
#include "service/metrics.hh"
#include "service/timer_wheel.hh"

namespace direb
{

namespace service
{

struct ServerOptions
{
    std::string host = "127.0.0.1";
    unsigned short port = 8100;  //!< 0 = kernel-assigned (tests)
    unsigned workers = 0;        //!< sim workers; 0 = hw concurrency
    unsigned httpThreads = 16;   //!< request dispatch threads
    std::size_t queueDepth = 64; //!< max outstanding jobs (429 beyond)
    std::size_t maxBodyBytes = 8 * 1024 * 1024;
    unsigned socketTimeoutMs = 10'000; //!< read-a-request / stalled-write
    unsigned idleTimeoutMs = 30'000;   //!< keep-alive wait between requests
    unsigned keepAliveMaxRequests = 1000; //!< then Connection: close
    unsigned defaultDeadlineMs = 60'000;  //!< sync wait before 202
    unsigned sweepJobs = 1;     //!< threads inside one sweep job
    std::string cacheDir;       //!< sweep.cache directory ("" = off)
    std::string modeName = "serve";  //!< healthz "mode" (serve vs coord)
    std::size_t jobHistory = 4096;   //!< finished JobRecords kept
    /** Columnar store artifacts to mount read-only for /v1/query
     *  (dieirb-serve --store; loaded once at construction, fatal() on a
     *  missing or corrupt artifact). Empty = /v1/query answers 404. */
    std::vector<std::string> storePaths;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    struct Conn; // private in spirit; Stream needs the full type

    /**
     * A live chunked response owned by a hook (or by the built-in
     * streaming sweep handler): the writer side of one connection,
     * usable from any thread. Exactly one of respond() or
     * begin()+write()*+end()/fail() must be called per Stream. Writes
     * after the client disconnected are silently dropped; poll
     * cancelled() to stop producing early.
     */
    class Stream
    {
      public:
        /** Buffered non-stream answer (error paths: 400/429/503). */
        void respond(HttpResponse resp);

        /** Send the chunked-response head (status + content type). */
        void begin(int status, const std::string &content_type,
                   const std::vector<std::pair<std::string, std::string>>
                       &extra_headers = {});

        /** One chunk of payload (no-op on an empty string). */
        void write(const std::string &payload);

        /** Terminal chunk: the stream completed normally. */
        void end();

        /**
         * Abort without the terminal chunk and close the connection:
         * the client's chunk decoder sees a truncated body and knows
         * the stream did NOT complete (curl exits non-zero).
         */
        void fail();

        /** Client disconnect / server drain: stop producing. */
        bool cancelled() const;
        const std::shared_ptr<std::atomic<bool>> &cancelToken() const;

        const std::string &requestId() const { return rid; }
        bool keepAlive() const { return keep; }

      private:
        friend class Server;
        Server *srv = nullptr;
        std::shared_ptr<Conn> conn;
        bool keep = false;
        std::string rid;
        std::string label = "/v1/sweep";
    };

    using StreamPtr = std::shared_ptr<Stream>;

    /**
     * Interception points for a front-end built on this server's HTTP
     * plumbing (dieirb-coord): `route` may claim any buffered request
     * before the built-in handlers run (return true and fill the
     * response); `stream` may claim a streaming sweep (POST /v1/sweep
     * with `"stream": true`) and owns the Stream from then on. Both run
     * on dispatch threads and must not block on long work — submit to
     * jobs() instead, exactly like the built-in handlers do. Set before
     * start(); never called for requests that fail to parse.
     */
    struct Hooks
    {
        std::function<bool(const HttpRequest &req,
                           const std::string &request_id,
                           HttpResponse &resp)>
            route;
        std::function<bool(const HttpRequest &req, StreamPtr stream)>
            stream;
    };

    void setHooks(Hooks hooks) { this->hooks = std::move(hooks); }

    /** Bind + listen + spawn threads; fatal() if the bind fails. */
    void start();

    /** The bound port (after start(); useful with options.port = 0). */
    unsigned short port() const { return boundPort; }

    /**
     * Graceful drain: stop accepting, reject new jobs (503), cancel
     * pending sweep points (including live streams), finish in-flight
     * requests and accepted jobs, join every thread. Safe to call from
     * any thread, any number of times.
     */
    void shutdown();

    bool running() const { return started && !stopped; }

    /** True once shutdown() has been requested (healthz: "draining"). */
    bool draining() const
    {
        return stopping.load(std::memory_order_relaxed);
    }

    /** Direct access for tests and for dieirb-serve's status line. @{ */
    JobQueue &jobs() { return *jobQueue; }
    Metrics &metrics() { return metricsRegistry; }
    const ServerOptions &options() const { return opts; }
    /** @} */

    /**
     * Route one parsed request to its handler (also used by tests to
     * exercise handlers without a socket). @p request_id receives the
     * propagated/generated id echoed back on the wire. Streaming is a
     * socket-path feature: route() serves `"stream": true` sweeps as a
     * plain buffered response.
     */
    HttpResponse route(const HttpRequest &req, std::string &request_id);

    /**
     * Submit @p work and either wait for it (sync, up to
     * @p deadline_ms, then 202) or answer 202 immediately (async).
     * Public so a front-end hook (the coordinator) can run its own job
     * kinds through the same queue, backpressure and job-record
     * plumbing as the built-in handlers.
     */
    HttpResponse dispatchJob(const char *kind,
                             const std::string &request_id, bool async,
                             unsigned deadline_ms, JobQueue::Work work);

    /**
     * The healthz body shared by serve and coord: status (ok/draining),
     * mode, version (git describe at configure time), uptime and queue
     * occupancy. The coordinator's hook extends it with backend states.
     */
    harness::Json healthJson() const;

  private:
    struct DispatchItem;

    /** Event-loop side (all private state below `// loop-owned`). @{ */
    void eventLoop();
    void acceptReady();
    void onConnEvent(const std::shared_ptr<Conn> &conn,
                     std::uint32_t events);
    void pumpRead(const std::shared_ptr<Conn> &conn);
    bool feedParser(const std::shared_ptr<Conn> &conn);
    void flushOut(const std::shared_ptr<Conn> &conn);
    void completeResponse(const std::shared_ptr<Conn> &conn);
    void closeConn(const std::shared_ptr<Conn> &conn);
    void onDeadline(const std::shared_ptr<Conn> &conn);
    void processWakeups();
    void beginDrainInLoop();
    /** @} */

    /** Producer side (dispatch pool / job workers). @{ */
    void dispatchLoop();
    void processRequest(const std::shared_ptr<Conn> &conn,
                        const HttpRequest &req);
    void handleSweepStream(const HttpRequest &req,
                           const StreamPtr &stream);
    void sendResponse(const std::shared_ptr<Conn> &conn,
                      HttpResponse resp, bool keep_alive,
                      const std::string &path_label);
    void enqueueOutput(const std::shared_ptr<Conn> &conn,
                       const std::string &bytes, bool done);
    void wakeLoop(const std::shared_ptr<Conn> &conn);
    /** @} */

    HttpResponse handleSimulate(const HttpRequest &req,
                                const std::string &request_id);
    HttpResponse handleSweep(const HttpRequest &req,
                             const std::string &request_id);
    HttpResponse handleQuery(const HttpRequest &req);
    HttpResponse handleJobGet(const std::string &path);
    HttpResponse handleJobList(const HttpRequest &req);
    HttpResponse handleHealth(const HttpRequest &req);
    HttpResponse handleMetrics();

    /** Fold one finished sweep point into the roll-up counters. */
    void rollupPoint(const harness::SweepResult &point);

    ServerOptions opts;
    Hooks hooks;
    std::chrono::steady_clock::time_point startTime{};
    Metrics metricsRegistry;
    /** Artifacts mounted at construction; immutable afterwards, so
     *  dispatch threads may query them without locking. */
    std::vector<store::Artifact> mountedStores;
    /** checkpointRestores() value already folded into the counter at
     *  the previous /metrics scrape (exchange-based delta export). */
    std::atomic<std::uint64_t> lastCkptRestores{0};
    harness::CorePool corePool; //!< shared across all jobs and sweeps
    /** Declared after corePool: the queue's drain-on-destroy must run
     *  while the pool the workers draw from is still alive. */
    std::unique_ptr<JobQueue> jobQueue;

    int listenFd = -1;
    int epollFd = -1;
    int wakeFd = -1; //!< eventfd: producers nudge the event loop
    unsigned short boundPort = 0;
    bool started = false;
    bool stopped = false;
    std::atomic<bool> stopping{false}; //!< drain/cancellation token
    std::atomic<std::uint64_t> requestSeq{1};

    std::thread loopThread;
    std::vector<std::thread> dispatchers;

    // loop-owned (no locks: only eventLoop() and its helpers touch
    // these, always on the loop thread)
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    TimerWheel wheel;
    bool drainStarted = false;

    // producer -> loop handoff
    std::mutex wakeMtx;
    std::vector<std::shared_ptr<Conn>> wakeQueue;

    // loop -> dispatch pool handoff
    std::mutex dispatchMtx;
    std::condition_variable dispatchAvailable;
    std::deque<std::unique_ptr<DispatchItem>> dispatchQueue;
    bool dispatchClosed = false;
};

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_SERVER_HH
