/**
 * @file
 * dieirb-serve's HTTP server: a long-running batching front-end over
 * the existing simulation engine (harness::run / harness::Sweep /
 * harness::CorePool), built on blocking POSIX sockets with no
 * third-party dependencies.
 *
 * Endpoints:
 *   POST /v1/simulate   one (workload, Config) point
 *   POST /v1/sweep      a (workload x Config) matrix via harness::Sweep
 *   GET  /v1/jobs/<id>  async job status / result
 *   GET  /healthz       liveness + queue occupancy
 *   GET  /metrics       Prometheus text format
 *
 * Threading model: one acceptor thread hands sockets to a fixed pool of
 * HTTP handler threads (one request per connection, Connection: close);
 * simulation work never runs on a handler — handlers submit jobs to a
 * bounded JobQueue whose workers draw warm cores from one shared
 * harness::CorePool. Synchronous requests are just handlers waiting on
 * their job with a deadline; "async": true returns 202 + a job id
 * immediately. A full queue answers 429 with Retry-After.
 *
 * Shutdown contract: shutdown() (idempotent, thread-safe) stops
 * accepting connections, rejects new jobs with 503, cancels the pending
 * remainder of in-flight sweeps via the cancellation token passed to
 * Sweep::run(), finishes every job already accepted, then joins all
 * threads. dieirb-serve wires SIGTERM/SIGINT to exactly this, so a
 * drained server exits 0.
 */

#ifndef DIREB_SERVICE_SERVER_HH
#define DIREB_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/core_pool.hh"
#include "harness/sweep.hh"
#include "service/http.hh"
#include "service/job_queue.hh"
#include "service/metrics.hh"

namespace direb
{

namespace service
{

struct ServerOptions
{
    std::string host = "127.0.0.1";
    unsigned short port = 8100;  //!< 0 = kernel-assigned (tests)
    unsigned workers = 0;        //!< sim workers; 0 = hw concurrency
    unsigned httpThreads = 16;   //!< connection handler threads
    std::size_t queueDepth = 64; //!< max outstanding jobs (429 beyond)
    std::size_t maxBodyBytes = 8 * 1024 * 1024;
    unsigned socketTimeoutMs = 10'000;   //!< per-request socket deadline
    unsigned defaultDeadlineMs = 60'000; //!< sync wait before 202
    unsigned sweepJobs = 1;     //!< threads inside one sweep job
    std::string cacheDir;       //!< sweep.cache directory ("" = off)
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn threads; fatal() if the bind fails. */
    void start();

    /** The bound port (after start(); useful with options.port = 0). */
    unsigned short port() const { return boundPort; }

    /**
     * Graceful drain: stop accepting, reject new jobs (503), cancel
     * pending sweep points, finish accepted jobs, join every thread.
     * Safe to call from any thread, any number of times.
     */
    void shutdown();

    bool running() const { return started && !stopped; }

    /** True once shutdown() has been requested (healthz: "draining"). */
    bool draining() const
    {
        return stopping.load(std::memory_order_relaxed);
    }

    /** Direct access for tests and for dieirb-serve's status line. @{ */
    JobQueue &jobs() { return *jobQueue; }
    Metrics &metrics() { return metricsRegistry; }
    const ServerOptions &options() const { return opts; }
    /** @} */

    /**
     * Route one parsed request to its handler (also used by tests to
     * exercise handlers without a socket). @p request_id receives the
     * propagated/generated id that handleConnection() echoes back.
     */
    HttpResponse route(const HttpRequest &req, std::string &request_id);

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    HttpResponse handleSimulate(const HttpRequest &req,
                                const std::string &request_id);
    HttpResponse handleSweep(const HttpRequest &req,
                             const std::string &request_id);
    HttpResponse handleJobGet(const std::string &path);
    HttpResponse handleHealth();
    HttpResponse handleMetrics();

    /** Submit + optional sync wait shared by simulate and sweep. */
    HttpResponse dispatchJob(const char *kind,
                             const std::string &request_id, bool async,
                             unsigned deadline_ms, JobQueue::Work work);

    /** Fold one finished sweep point into the roll-up counters. */
    void rollupPoint(const harness::SweepResult &point);

    ServerOptions opts;
    Metrics metricsRegistry;
    harness::CorePool corePool; //!< shared across all jobs and sweeps
    /** Declared after corePool: the queue's drain-on-destroy must run
     *  while the pool the workers draw from is still alive. */
    std::unique_ptr<JobQueue> jobQueue;

    int listenFd = -1;
    unsigned short boundPort = 0;
    bool started = false;
    bool stopped = false;
    std::atomic<bool> stopping{false}; //!< sweep cancellation token
    std::atomic<std::uint64_t> requestSeq{1};

    std::thread acceptor;
    std::vector<std::thread> handlers;

    std::mutex connMtx;
    std::condition_variable connAvailable;
    std::deque<int> connQueue;
    bool connClosed = false;
};

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_SERVER_HH
