#include "service/sweep_request.hh"

#include <cstdio>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace service
{

using harness::Json;

std::string
jsonStringOr(const Json &obj, const char *key, const std::string &def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    fatal_if(!v->isString(), "request: '%s' must be a string", key);
    return v->asString();
}

std::uint64_t
jsonUintOr(const Json &obj, const char *key, std::uint64_t def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    fatal_if(!v->isNumber() || v->asNumber() < 0,
             "request: '%s' must be a non-negative number", key);
    return static_cast<std::uint64_t>(v->asNumber());
}

bool
jsonBoolOr(const Json &obj, const char *key, bool def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    // asBool panics on non-bool kinds; pre-check for a clean 400.
    fatal_if(!v->isBool(), "request: '%s' must be a boolean", key);
    return v->asBool();
}

namespace
{

/** Render a config-override value the way Config::set expects it. */
std::string
overrideValue(const Json &v, const std::string &key)
{
    if (v.isString())
        return v.asString();
    if (v.isNumber()) {
        const double d = v.asNumber();
        if (d == static_cast<double>(static_cast<std::int64_t>(d)))
            return std::to_string(static_cast<std::int64_t>(d));
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        return buf;
    }
    // Panics (abort) must never be reachable from network input, so
    // every other kind — including null — is rejected before asBool().
    fatal_if(!v.isBool(), "request: config.%s must be a scalar",
             key.c_str());
    return v.asBool() ? "true" : "false";
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &w : workloads::list()) {
        if (w.name == name)
            return true;
    }
    return false;
}

} // namespace

PointSpec
parsePoint(const Json &obj, const PointSpec &defaults)
{
    PointSpec spec = defaults;
    spec.workload = jsonStringOr(obj, "workload", defaults.workload);
    fatal_if(spec.workload.empty(), "request: 'workload' is required");
    fatal_if(!knownWorkload(spec.workload),
             "request: unknown workload '%s' (see dieirb-sim -l)",
             spec.workload.c_str());
    spec.mode = jsonStringOr(obj, "mode", defaults.mode);
    fatal_if(spec.mode != "sie" && spec.mode != "die" &&
                 spec.mode != "die-irb",
             "request: mode must be sie, die or die-irb, got '%s'",
             spec.mode.c_str());
    spec.scale =
        static_cast<unsigned>(jsonUintOr(obj, "scale", defaults.scale));
    fatal_if(spec.scale < 1 || spec.scale > 1024,
             "request: scale must be in [1, 1024]");
    spec.maxInsts = jsonUintOr(obj, "max_insts", defaults.maxInsts);
    fatal_if(spec.maxInsts < 1, "request: max_insts must be positive");
    if (const Json *cfg = obj.find("config")) {
        fatal_if(!cfg->isObject(), "request: 'config' must be an object");
        for (std::size_t i = 0; i < cfg->size(); ++i) {
            const std::string &key = cfg->memberName(i);
            fatal_if(key == "sweep.cache",
                     "request: sweep.cache is server-controlled");
            spec.overrides.emplace_back(
                key, overrideValue(cfg->memberValue(i), key));
        }
    }
    if (spec.name.empty())
        spec.name = spec.workload + "/" + spec.mode;
    return spec;
}

std::vector<PointSpec>
parseSweepSpecs(const Json &body)
{
    std::vector<PointSpec> specs;
    if (const Json *points = body.find("points")) {
        fatal_if(!points->isArray(),
                 "request: 'points' must be an array");
        PointSpec base;
        base.workload.clear(); // each point must name its workload
        for (std::size_t i = 0; i < points->size(); ++i) {
            fatal_if(!points->at(i).isObject(),
                     "request: points[%zu] must be an object", i);
            PointSpec spec = parsePoint(points->at(i), base);
            spec.name = jsonStringOr(points->at(i), "name", spec.name);
            specs.push_back(std::move(spec));
        }
    } else {
        const Json *wl = body.find("workloads");
        fatal_if(!wl || !wl->isArray(),
                 "request: need 'points' or a 'workloads' array");
        std::vector<std::string> modes;
        if (const Json *ms = body.find("modes")) {
            fatal_if(!ms->isArray(),
                     "request: 'modes' must be an array");
            for (std::size_t i = 0; i < ms->size(); ++i) {
                fatal_if(!ms->at(i).isString(),
                         "request: modes[%zu] must be a string", i);
                modes.push_back(ms->at(i).asString());
            }
        } else {
            modes.push_back(jsonStringOr(body, "mode", "sie"));
        }
        for (std::size_t i = 0; i < wl->size(); ++i) {
            fatal_if(!wl->at(i).isString(),
                     "request: workloads[%zu] must be a string", i);
            for (const std::string &mode : modes) {
                // Route shared scale/max_insts/config through the same
                // per-point parser so they get the same validation.
                Json point = Json::object();
                point.set("workload", wl->at(i).asString());
                point.set("mode", mode);
                if (const Json *s = body.find("scale"))
                    point.set("scale", *s);
                if (const Json *mi = body.find("max_insts"))
                    point.set("max_insts", *mi);
                if (const Json *cfg = body.find("config"))
                    point.set("config", *cfg);
                specs.push_back(parsePoint(point, PointSpec{}));
            }
        }
    }
    fatal_if(specs.empty(), "request: no sweep points");
    fatal_if(specs.size() > 4096,
             "request: too many sweep points (%zu > 4096)", specs.size());
    return specs;
}

Json
pointSpecJson(const PointSpec &spec)
{
    Json j = Json::object();
    j.set("name", spec.name);
    j.set("workload", spec.workload);
    j.set("mode", spec.mode);
    j.set("scale", spec.scale);
    j.set("max_insts", spec.maxInsts);
    if (!spec.overrides.empty()) {
        Json cfg = Json::object();
        for (const auto &[key, value] : spec.overrides)
            cfg.set(key, value);
        j.set("config", std::move(cfg));
    }
    return j;
}

std::uint64_t
pointShardKey(const PointSpec &spec)
{
    // Reproduce exactly what the backend's Sweep will content-address:
    // the built program plus baseConfig(mode) with the explicit
    // overrides applied. sweep.cache never enters the key, so the
    // backend adding its own cache directory does not change it.
    const Program prog = workloads::build(spec.workload, spec.scale);
    Config cfg = harness::baseConfig(spec.mode);
    for (const auto &[key, value] : spec.overrides)
        cfg.set(key, value);
    return harness::pointCacheKey(prog, cfg, spec.maxInsts);
}

} // namespace service

} // namespace direb
