/**
 * @file
 * A small Prometheus metrics registry for the service layer. Three
 * instrument kinds cover everything dieirb-serve exposes: monotonic
 * counters (requests, rejected jobs, cache hits, simulated cycles),
 * gauges sampled at scrape time (queue depth, busy workers) and
 * fixed-bucket latency histograms. render() emits the text exposition
 * format (version 0.0.4) that Prometheus, `promtool check metrics` and
 * plain curl all understand.
 *
 * Series are addressed by family name plus a pre-rendered label string
 * (e.g. `path="/v1/simulate",code="200"`); a family's HELP/TYPE header
 * is registered once via describe(). Everything is guarded by one
 * mutex — metrics are updated per request, not per simulated cycle, so
 * contention is irrelevant next to the simulations themselves.
 */

#ifndef DIREB_SERVICE_METRICS_HH
#define DIREB_SERVICE_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace direb
{

namespace service
{

class Metrics
{
  public:
    /** Register a family's TYPE/HELP ("counter", "gauge", "histogram"). */
    void describe(const std::string &name, const std::string &type,
                  const std::string &help);

    /** Add @p delta (default 1) to a counter series. */
    void count(const std::string &name, const std::string &labels = "",
               double delta = 1.0);

    /** Set a gauge series to an instantaneous value. */
    void gauge(const std::string &name, double value,
               const std::string &labels = "");

    /** Record one observation into a histogram series. */
    void observe(const std::string &name, double value,
                 const std::string &labels = "");

    /** Prometheus text exposition format (0.0.4). */
    std::string render() const;

  private:
    struct Histogram
    {
        std::vector<std::uint64_t> bucketCounts; //!< per upper bound
        double sum = 0.0;
        std::uint64_t observations = 0;
    };

    struct Family
    {
        std::string type;
        std::string help;
        std::map<std::string, double> series;      //!< counters/gauges
        std::map<std::string, Histogram> histograms;
    };

    /** Histogram upper bounds, seconds (+Inf is implicit). */
    static const std::vector<double> &buckets();

    Family &family(const std::string &name);

    mutable std::mutex mtx;
    std::map<std::string, Family> families;
};

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_METRICS_HH
