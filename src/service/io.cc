#include "service/io.hh"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace direb
{

namespace service
{

namespace io
{

ssize_t
readSome(int fd, void *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::recv(fd, buf, n, 0);
        if (r < 0 && errno == EINTR)
            continue; // a signal is not a peer hangup
        return r;
    }
}

ssize_t
writeSome(int fd, const void *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::send(fd, buf, n, MSG_NOSIGNAL);
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

std::size_t
readFull(int fd, void *buf, std::size_t n)
{
    std::size_t got = 0;
    auto *p = static_cast<char *>(buf);
    while (got < n) {
        const ssize_t r = readSome(fd, p + got, n - got);
        if (r <= 0)
            break; // EOF or real error; got says how far we came
        got += static_cast<std::size_t>(r);
    }
    return got;
}

bool
writeFull(int fd, const void *buf, std::size_t n)
{
    std::size_t sent = 0;
    const auto *p = static_cast<const char *>(buf);
    while (sent < n) {
        const ssize_t r = writeSome(fd, p + sent, n - sent);
        if (r < 0)
            return false;
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

bool
setNonBlocking(int fd, bool on)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return want == flags || ::fcntl(fd, F_SETFL, want) == 0;
}

} // namespace io

} // namespace service

} // namespace direb
