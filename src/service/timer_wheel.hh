/**
 * @file
 * A hashed timer wheel for the event loop's connection deadlines
 * (keep-alive idle, header/body read, stalled write). One active
 * deadline per key: scheduling a key again supersedes its previous
 * deadline (lazy cancellation via a per-key generation counter, so
 * rescheduling is O(1) and nothing is ever searched or removed from a
 * slot eagerly). Deadlines further out than one wheel revolution are
 * parked in their slot and re-examined each time the cursor passes —
 * fine for connection timeouts, which are seconds, not hours.
 *
 * Single-threaded by design: only the event loop touches it.
 */

#ifndef DIREB_SERVICE_TIMER_WHEEL_HH
#define DIREB_SERVICE_TIMER_WHEEL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace direb
{

namespace service
{

class TimerWheel
{
  public:
    /**
     * @param tick_ms wheel granularity — deadlines fire within one
     *                tick after they are due.
     * @param slots   wheel size; one revolution spans tick_ms * slots.
     */
    explicit TimerWheel(std::uint64_t tick_ms = 100,
                        std::size_t slots = 512);

    /** Arm (or re-arm) @p key to fire @p delay_ms after @p now_ms. */
    void schedule(int key, std::uint64_t now_ms, std::uint64_t delay_ms);

    /** Disarm @p key; expired/unknown keys are a no-op. */
    void cancel(int key);

    /** True while @p key has an armed deadline. */
    bool armed(int key) const { return deadlines.count(key) != 0; }

    /**
     * Advance the cursor to @p now_ms and return every key whose
     * deadline has passed, each at most once.
     */
    std::vector<int> expire(std::uint64_t now_ms);

    /**
     * Suggested epoll timeout: the tick size while anything is armed,
     * @p idle_ms otherwise.
     */
    int pollTimeoutMs(int idle_ms) const;

    std::size_t pendingCount() const { return deadlines.size(); }

  private:
    struct Entry
    {
        int key;
        std::uint64_t gen;
        std::uint64_t deadline; //!< absolute ms
    };

    struct Armed
    {
        std::uint64_t gen;
        std::uint64_t deadline;
    };

    const std::uint64_t tickMs;
    std::vector<std::vector<Entry>> slots;
    std::unordered_map<int, Armed> deadlines; //!< live deadline per key
    std::uint64_t cursor = 0; //!< last tick processed by expire()
    std::uint64_t genSeq = 1;
};

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_TIMER_WHEEL_HH
