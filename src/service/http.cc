#include "service/http.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace direb
{

namespace service
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

bool
isUpperToken(const std::string &s)
{
    if (s.empty() || s.size() > 16)
        return false;
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return c >= 'A' && c <= 'Z'; });
}

bool
isKnownMethod(const std::string &m)
{
    static const char *known[] = {"GET",    "HEAD",    "POST", "PUT",
                                  "DELETE", "OPTIONS", "PATCH"};
    return std::any_of(std::begin(known), std::end(known),
                       [&m](const char *k) { return m == k; });
}

/** Methods that must carry Content-Length (we never read chunked). */
bool
expectsBody(const std::string &m)
{
    return m == "POST" || m == "PUT" || m == "PATCH";
}

} // namespace

const std::string *
HttpRequest::header(const std::string &lower_name) const
{
    for (const auto &[name, value] : headers) {
        if (name == lower_name)
            return &value;
    }
    return nullptr;
}

std::string
HttpRequest::path() const
{
    const std::size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

bool
HttpRequest::wantsKeepAlive() const
{
    if (version != "HTTP/1.1")
        return false;
    const std::string *conn = header("connection");
    return !conn || lower(*conn) != "close";
}

HttpParser::Status
HttpParser::status() const
{
    switch (state) {
      case State::Done: return Status::Done;
      case State::Error: return Status::Error;
      default: return Status::NeedMore;
    }
}

void
HttpParser::fail(int status, std::string reason)
{
    state = State::Error;
    errStatus = status;
    errReason = std::move(reason);
    buf.clear();
    buf.shrink_to_fit();
}

void
HttpParser::reset()
{
    state = State::Headers;
    sawBytes = false;
    buf.clear();
    scanFrom = 0;
    contentLength = 0;
    req = HttpRequest{};
    errStatus = 0;
    errReason.clear();
}

std::size_t
HttpParser::feed(const char *data, std::size_t n)
{
    // Done consumes nothing further: the tail belongs to the next
    // request on the connection. Error swallows everything — the
    // connection is doomed, callers may keep draining to EOF.
    if (state == State::Done)
        return 0;
    if (state == State::Error)
        return n;
    if (n > 0)
        sawBytes = true;

    buf.append(data, n);

    if (state == State::Headers) {
        const std::size_t block = buf.find("\r\n\r\n", scanFrom);
        if (block == std::string::npos) {
            // Restart the next search just before the tail so a
            // terminator split across reads is still found.
            scanFrom = buf.size() > 3 ? buf.size() - 3 : 0;
            if (buf.size() > limits.maxHeaderBytes)
                fail(431, "header block exceeds " +
                              std::to_string(limits.maxHeaderBytes) +
                              " bytes");
            return n;
        }
        // An oversized block is rejected even when its terminator
        // arrived in the same read as the rest of it.
        if (block > limits.maxHeaderBytes) {
            fail(431, "header block exceeds " +
                          std::to_string(limits.maxHeaderBytes) +
                          " bytes");
            return n;
        }
        parseHeaderBlock(block);
        if (state == State::Error)
            return n;
        buf.erase(0, block + 4); // leave any body prefix in place
        state = State::Body;
    }

    if (state == State::Body && buf.size() >= contentLength) {
        // Any excess past the body arrived in this very feed — every
        // earlier call returned with the message still incomplete and
        // all of its bytes consumed — so it is this call's unconsumed
        // remainder, handed back for the caller to re-feed after
        // reset().
        const std::size_t excess = buf.size() - contentLength;
        req.body = buf.substr(0, contentLength);
        buf.clear();
        buf.shrink_to_fit();
        state = State::Done;
        return n - excess;
    }
    return n;
}

void
HttpParser::parseHeaderBlock(std::size_t block_end)
{
    // Request line: METHOD SP request-target SP HTTP-version.
    std::size_t line_end = buf.find("\r\n");
    const std::string line = buf.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
        return fail(400, "malformed request line");
    }
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = line.substr(sp2 + 1);
    if (!isUpperToken(req.method))
        return fail(400, "malformed method token");
    if (!isKnownMethod(req.method))
        return fail(405, "unrecognized method '" + req.method + "'");
    if (req.target.empty() || req.target[0] != '/')
        return fail(400, "request target must be absolute path");
    if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0")
        return fail(505, "unsupported version '" + req.version + "'");

    // Header fields, one per CRLF-terminated line.
    std::size_t at = line_end + 2;
    bool haveLength = false;
    while (at < block_end) {
        const std::size_t eol = buf.find("\r\n", at);
        const std::string field = buf.substr(at, eol - at);
        at = eol + 2;
        const std::size_t colon = field.find(':');
        if (colon == std::string::npos || colon == 0)
            return fail(400, "malformed header field");
        const std::string name = lower(field.substr(0, colon));
        const std::string value = trim(field.substr(colon + 1));
        if (name.find(' ') != std::string::npos ||
            name.find('\t') != std::string::npos) {
            return fail(400, "whitespace in header name");
        }
        if (name == "transfer-encoding")
            return fail(501, "transfer-encoding not supported");
        if (name == "content-length") {
            if (value.empty() ||
                !std::all_of(value.begin(), value.end(), [](char c) {
                    return c >= '0' && c <= '9';
                })) {
                return fail(400, "malformed content-length");
            }
            std::size_t parsed = 0;
            for (const char c : value) {
                parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
                if (parsed > limits.maxBodyBytes) {
                    return fail(413,
                                "body exceeds " +
                                    std::to_string(limits.maxBodyBytes) +
                                    " bytes");
                }
            }
            if (haveLength && parsed != contentLength)
                return fail(400, "conflicting content-length headers");
            haveLength = true;
            contentLength = parsed;
        }
        req.headers.emplace_back(name, value);
    }

    if (!haveLength && expectsBody(req.method))
        return fail(411, "length required");
}

HttpResponse &
HttpResponse::set(std::string name, std::string value)
{
    headers.emplace_back(std::move(name), std::move(value));
    return *this;
}

std::string
HttpResponse::serialize(bool keep_alive) const
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      statusText(status) + "\r\n";
    bool haveType = false;
    for (const auto &[name, value] : headers) {
        out += name + ": " + value + "\r\n";
        if (lower(name) == "content-type")
            haveType = true;
    }
    if (!haveType)
        out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                      : "Connection: close\r\n\r\n";
    out += body;
    return out;
}

std::string
encodeChunk(const std::string &payload)
{
    if (payload.empty())
        return "";
    char size[24];
    std::snprintf(size, sizeof(size), "%zx\r\n", payload.size());
    std::string out = size;
    out += payload;
    out += "\r\n";
    return out;
}

std::string
lastChunk()
{
    return "0\r\n\r\n";
}

std::string
streamHead(int status, const std::string &content_type, bool keep_alive,
           const std::vector<std::pair<std::string, std::string>>
               &extra_headers)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      statusText(status) + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Transfer-Encoding: chunked\r\n";
    for (const auto &[name, value] : extra_headers)
        out += name + ": " + value + "\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                      : "Connection: close\r\n\r\n";
    return out;
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 411: return "Length Required";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      case 505: return "HTTP Version Not Supported";
      default: return "Status";
    }
}

} // namespace service

} // namespace direb
