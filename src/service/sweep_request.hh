/**
 * @file
 * Request-body parsing shared by dieirb-serve and dieirb-coord: typed
 * accessors over an untrusted JSON body (fatal() => HTTP 400) and the
 * simulate/sweep point specification. Both servers must accept exactly
 * the same wire format — a sweep the coordinator shards across backends
 * is validated once at the edge and re-encoded point-by-point for the
 * sub-sweeps, so the two parsers being one parser is a correctness
 * property, not a convenience.
 */

#ifndef DIREB_SERVICE_SWEEP_REQUEST_HH
#define DIREB_SERVICE_SWEEP_REQUEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/report.hh"

namespace direb
{

namespace service
{

/** Typed member accessors over a request body; fatal() => HTTP 400. @{ */
std::string jsonStringOr(const harness::Json &obj, const char *key,
                         const std::string &def);
std::uint64_t jsonUintOr(const harness::Json &obj, const char *key,
                         std::uint64_t def);
bool jsonBoolOr(const harness::Json &obj, const char *key, bool def);
/** @} */

/** Everything needed to enqueue one sweep point, parsed up front so
 *  malformed requests fail with 400 before a job is ever created. */
struct PointSpec
{
    std::string name;
    std::string workload;
    std::string mode = "sie";
    unsigned scale = 1;
    std::uint64_t maxInsts = 50'000'000;
    std::vector<std::pair<std::string, std::string>> overrides;
};

/** Parse one point object, filling absent members from @p defaults. */
PointSpec parsePoint(const harness::Json &obj, const PointSpec &defaults);

/**
 * Point list of a sweep request body: either an explicit "points"
 * array, or the cross product of "workloads" x "modes" (the classic
 * figure matrix). Shared by the buffered and the streaming sweep
 * handlers — and by the coordinator — so all of them validate
 * identically.
 */
std::vector<PointSpec> parseSweepSpecs(const harness::Json &body);

/**
 * Re-encode one spec as a request-body point object (the inverse of
 * parsePoint): what the coordinator sends each backend, per point, in
 * its sub-sweep "points" arrays. parsePoint(pointSpecJson(s)) == s.
 */
harness::Json pointSpecJson(const PointSpec &spec);

/**
 * The shard key of one spec: the PR-4 FNV-1a-64 sweep-cache content
 * address of the point this spec expands to (program image, instruction
 * budget, explicit config overrides). Two specs describing the same
 * simulation hash identically, so the coordinator's consistent-hash
 * placement keeps every point on the backend whose result cache
 * already holds it.
 */
std::uint64_t pointShardKey(const PointSpec &spec);

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_SWEEP_REQUEST_HH
