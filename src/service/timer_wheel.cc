#include "service/timer_wheel.hh"

#include <algorithm>

namespace direb
{

namespace service
{

TimerWheel::TimerWheel(std::uint64_t tick_ms, std::size_t slot_count)
    : tickMs(tick_ms > 0 ? tick_ms : 1),
      slots(slot_count > 0 ? slot_count : 1)
{}

void
TimerWheel::schedule(int key, std::uint64_t now_ms,
                     std::uint64_t delay_ms)
{
    const std::uint64_t deadline = now_ms + delay_ms;
    const std::uint64_t gen = genSeq++;
    deadlines[key] = {gen, deadline};
    // Entries already queued for this key carry an older generation and
    // are dropped lazily when their slot comes around.
    slots[(deadline / tickMs) % slots.size()].push_back(
        {key, gen, deadline});
}

void
TimerWheel::cancel(int key)
{
    deadlines.erase(key); // queued entries die lazily
}

std::vector<int>
TimerWheel::expire(std::uint64_t now_ms)
{
    std::vector<int> due;
    const std::uint64_t nowTick = now_ms / tickMs;
    if (cursor == 0) {
        // First call: sweep one whole revolution so deadlines armed
        // before any expire() ran cannot hide behind the cursor.
        cursor = nowTick >= slots.size() ? nowTick - slots.size() + 1 : 0;
    }
    // Sweep at most one full revolution; nothing can be due twice.
    const std::uint64_t last =
        std::min(nowTick, cursor + slots.size() - 1);
    for (std::uint64_t t = cursor; t <= last; ++t) {
        std::vector<Entry> &slot = slots[t % slots.size()];
        std::vector<Entry> keep;
        for (const Entry &e : slot) {
            const auto it = deadlines.find(e.key);
            if (it == deadlines.end() || it->second.gen != e.gen)
                continue; // cancelled or superseded
            if (e.deadline <= now_ms) {
                deadlines.erase(it);
                due.push_back(e.key);
            } else {
                // Parked from a future revolution; not due yet.
                keep.push_back(e);
            }
        }
        slot.swap(keep);
    }
    cursor = nowTick;
    return due;
}

int
TimerWheel::pollTimeoutMs(int idle_ms) const
{
    return deadlines.empty() ? idle_ms : static_cast<int>(tickMs);
}

} // namespace service

} // namespace direb
