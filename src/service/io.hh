/**
 * @file
 * Signal-safe socket I/O helpers shared by the event loop, the test
 * clients and the load generator.
 *
 * The PR-5 connection path treated EINTR from recv()/send() as "the
 * peer went away" and silently dropped the rest of the response — a
 * profiling signal or SIGCHLD landing mid-transfer truncated the wire.
 * These helpers make the retry policy explicit and shared:
 *
 *  - readSome / writeSome: one syscall's worth of progress, retrying
 *    EINTR internally. They never spin on EAGAIN — a non-blocking fd
 *    that would block returns -1 with errno preserved so an event loop
 *    can go back to epoll.
 *  - readFull / writeFull: blocking-fd convenience that also retries
 *    short transfers until the requested byte count is moved, EOF or a
 *    real error. Used by tests and bench_serve's client side.
 */

#ifndef DIREB_SERVICE_IO_HH
#define DIREB_SERVICE_IO_HH

#include <sys/types.h>

#include <cstddef>

namespace direb
{

namespace service
{

namespace io
{

/**
 * recv() once, retrying EINTR. Returns > 0 on data, 0 on EOF, -1 on
 * error with errno set (EAGAIN/EWOULDBLOCK = try again after poll).
 */
ssize_t readSome(int fd, void *buf, std::size_t n);

/**
 * send() once with MSG_NOSIGNAL, retrying EINTR. Returns > 0 bytes
 * written or -1 with errno set (never 0 for n > 0).
 */
ssize_t writeSome(int fd, const void *buf, std::size_t n);

/**
 * Read exactly @p n bytes from a blocking fd, retrying EINTR and short
 * reads. Returns the byte count actually read: n on success, less only
 * on EOF or error.
 */
std::size_t readFull(int fd, void *buf, std::size_t n);

/**
 * Write all @p n bytes to a blocking fd, retrying EINTR and short
 * writes. True on success; false on a real error (errno says why).
 */
bool writeFull(int fd, const void *buf, std::size_t n);

/** O_NONBLOCK on/off; false (errno set) on fcntl failure. */
bool setNonBlocking(int fd, bool on);

} // namespace io

} // namespace service

} // namespace direb

#endif // DIREB_SERVICE_IO_HH
