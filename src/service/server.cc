#include "service/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace service
{

namespace
{

using harness::Json;

/** JSON error body + status; the uniform failure shape of the API. */
HttpResponse
errorResponse(int status, const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return HttpResponse(status, j.dump(0) + "\n");
}

HttpResponse
methodNotAllowed(const std::string &allow)
{
    HttpResponse r = errorResponse(405, "method not allowed");
    r.set("Allow", allow);
    return r;
}

/** Typed member accessors over a request body; fatal() => HTTP 400. @{ */
std::string
stringOr(const Json &obj, const char *key, const std::string &def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    fatal_if(!v->isString(), "request: '%s' must be a string", key);
    return v->asString();
}

std::uint64_t
uintOr(const Json &obj, const char *key, std::uint64_t def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    fatal_if(!v->isNumber() || v->asNumber() < 0,
             "request: '%s' must be a non-negative number", key);
    return static_cast<std::uint64_t>(v->asNumber());
}

bool
boolOr(const Json &obj, const char *key, bool def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    // asBool panics on non-bool kinds; pre-check for a clean 400.
    fatal_if(!v->isBool(), "request: '%s' must be a boolean", key);
    return v->asBool();
}
/** @} */

/** Render a config-override value the way Config::set expects it. */
std::string
overrideValue(const Json &v, const std::string &key)
{
    if (v.isString())
        return v.asString();
    if (v.isNumber()) {
        const double d = v.asNumber();
        if (d == static_cast<double>(static_cast<std::int64_t>(d)))
            return std::to_string(static_cast<std::int64_t>(d));
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        return buf;
    }
    // Panics (abort) must never be reachable from network input, so
    // every other kind — including null — is rejected before asBool().
    fatal_if(!v.isBool(), "request: config.%s must be a scalar",
             key.c_str());
    return v.asBool() ? "true" : "false";
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &w : workloads::list()) {
        if (w.name == name)
            return true;
    }
    return false;
}

/** Everything needed to enqueue one sweep point, parsed up front so
 *  malformed requests fail with 400 before a job is ever created. */
struct PointSpec
{
    std::string name;
    std::string workload;
    std::string mode = "sie";
    unsigned scale = 1;
    std::uint64_t maxInsts = 50'000'000;
    std::vector<std::pair<std::string, std::string>> overrides;
};

PointSpec
parsePoint(const Json &obj, const PointSpec &defaults)
{
    PointSpec spec = defaults;
    spec.workload = stringOr(obj, "workload", defaults.workload);
    fatal_if(spec.workload.empty(), "request: 'workload' is required");
    fatal_if(!knownWorkload(spec.workload),
             "request: unknown workload '%s' (see dieirb-sim -l)",
             spec.workload.c_str());
    spec.mode = stringOr(obj, "mode", defaults.mode);
    fatal_if(spec.mode != "sie" && spec.mode != "die" &&
                 spec.mode != "die-irb",
             "request: mode must be sie, die or die-irb, got '%s'",
             spec.mode.c_str());
    spec.scale =
        static_cast<unsigned>(uintOr(obj, "scale", defaults.scale));
    fatal_if(spec.scale < 1 || spec.scale > 1024,
             "request: scale must be in [1, 1024]");
    spec.maxInsts = uintOr(obj, "max_insts", defaults.maxInsts);
    fatal_if(spec.maxInsts < 1, "request: max_insts must be positive");
    if (const Json *cfg = obj.find("config")) {
        fatal_if(!cfg->isObject(), "request: 'config' must be an object");
        for (std::size_t i = 0; i < cfg->size(); ++i) {
            const std::string &key = cfg->memberName(i);
            fatal_if(key == "sweep.cache",
                     "request: sweep.cache is server-controlled");
            spec.overrides.emplace_back(
                key, overrideValue(cfg->memberValue(i), key));
        }
    }
    if (spec.name.empty())
        spec.name = spec.workload + "/" + spec.mode;
    return spec;
}

/** Point result JSON: the sweep shape plus program output. */
Json
pointJson(const harness::SweepResult &r, bool with_stats)
{
    Json j = harness::resultJson(r);
    j.set("output", r.sim.output);
    if (with_stats) {
        Json stats = Json::object();
        for (const auto &[name, value] : r.sim.stats)
            stats.set(name, value);
        j.set("stats", std::move(stats));
    }
    return j;
}

} // namespace

Server::Server(ServerOptions options) : opts(std::move(options))
{
    jobQueue =
        std::make_unique<JobQueue>(opts.queueDepth, opts.workers);

    Metrics &m = metricsRegistry;
    m.describe("dieirb_http_requests_total", "counter",
               "HTTP requests by path and status code");
    m.describe("dieirb_http_request_seconds", "histogram",
               "wall-clock request handling latency");
    m.describe("dieirb_jobs_rejected_total", "counter",
               "jobs rejected by backpressure or drain");
    m.describe("dieirb_queue_depth", "gauge", "jobs waiting in the queue");
    m.describe("dieirb_queue_capacity", "gauge",
               "max outstanding jobs before 429");
    m.describe("dieirb_workers", "gauge", "simulation worker threads");
    m.describe("dieirb_workers_busy", "gauge",
               "workers currently running a job");
    m.describe("dieirb_sweep_cache_hits_total", "counter",
               "sweep points restored from the result cache");
    m.describe("dieirb_sweep_cache_misses_total", "counter",
               "sweep points actually simulated");
    m.describe("dieirb_sim_points_total", "counter",
               "finished sweep points by status");
    m.describe("dieirb_sim_cycles_total", "counter",
               "simulated core cycles, all finished points");
    m.describe("dieirb_sim_insts_total", "counter",
               "committed architectural instructions, all points");
    m.describe("dieirb_core_pool_constructions_total", "counter",
               "cores constructed because the pool was empty");
    m.describe("dieirb_core_pool_reuses_total", "counter",
               "core acquisitions served by reset() reuse");
}

Server::~Server() { shutdown(); }

void
Server::start()
{
    fatal_if(started, "server already started");

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(listenFd < 0, "socket(): %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    fatal_if(::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1,
             "bad listen address '%s'", opts.host.c_str());
    fatal_if(::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) < 0,
             "cannot bind %s:%u: %s", opts.host.c_str(),
             static_cast<unsigned>(opts.port), std::strerror(errno));
    fatal_if(::listen(listenFd, 256) < 0, "listen(): %s",
             std::strerror(errno));

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);
    started = true;

    acceptor = std::thread([this] { acceptLoop(); });
    const unsigned n = opts.httpThreads > 0 ? opts.httpThreads : 1;
    handlers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        handlers.emplace_back([this] { handlerLoop(); });
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping.load(std::memory_order_relaxed))
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("accept(): %s; acceptor exiting", std::strerror(errno));
            return;
        }
        bool enqueued = false;
        {
            std::lock_guard<std::mutex> lock(connMtx);
            if (!connClosed) {
                connQueue.push_back(fd);
                enqueued = true;
            }
        }
        if (enqueued)
            connAvailable.notify_one();
        else
            ::close(fd);
    }
}

void
Server::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(connMtx);
            connAvailable.wait(lock, [this] {
                return !connQueue.empty() || connClosed;
            });
            if (connQueue.empty()) {
                if (connClosed)
                    return; // queued connections all drained
                continue;
            }
            fd = connQueue.front();
            connQueue.pop_front();
        }
        handleConnection(fd);
    }
}

void
Server::handleConnection(int fd)
{
    timeval tv{};
    tv.tv_sec = opts.socketTimeoutMs / 1000;
    tv.tv_usec = (opts.socketTimeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    HttpParser parser({/*maxHeaderBytes=*/64 * 1024, opts.maxBodyBytes});
    char buf[16384];
    auto st = HttpParser::Status::NeedMore;
    while (st == HttpParser::Status::NeedMore) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break; // peer closed, read timeout or error
        st = parser.feed(buf, static_cast<std::size_t>(n));
    }

    std::string requestId;
    std::string pathLabel = "other";
    HttpResponse resp;
    const auto start = std::chrono::steady_clock::now();
    if (st == HttpParser::Status::Done) {
        const HttpRequest &req = parser.request();
        const std::string path = req.path();
        if (path == "/healthz" || path == "/metrics" ||
            path == "/v1/simulate" || path == "/v1/sweep") {
            pathLabel = path;
        } else if (path.rfind("/v1/jobs/", 0) == 0) {
            pathLabel = "/v1/jobs";
        }
        resp = route(req, requestId);
        inform("[%s] %s %s -> %d", requestId.c_str(), req.method.c_str(),
               req.target.c_str(), resp.status);
    } else if (st == HttpParser::Status::Error) {
        resp = errorResponse(parser.errorStatus(), parser.errorReason());
        inform("[-] rejected request: %d %s", parser.errorStatus(),
               parser.errorReason().c_str());
    } else if (parser.started()) {
        resp = errorResponse(408, "incomplete request");
    } else {
        ::close(fd); // probe connection: opened and closed silently
        return;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    // Count before sending: once the client has the response, a
    // follow-up scrape of /metrics must already see this request.
    const std::string labels = "path=\"" + pathLabel + "\",code=\"" +
                               std::to_string(resp.status) + "\"";
    metricsRegistry.count("dieirb_http_requests_total", labels);
    metricsRegistry.observe("dieirb_http_request_seconds",
                            elapsed.count(),
                            "path=\"" + pathLabel + "\"");

    if (!requestId.empty())
        resp.set("X-Request-Id", requestId);
    const std::string wire = resp.serialize();
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break; // peer went away; nothing useful left to do
        sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

HttpResponse
Server::route(const HttpRequest &req, std::string &request_id)
{
    const std::string *hdr = req.header("x-request-id");
    request_id = hdr && !hdr->empty()
        ? *hdr
        : "req-" + std::to_string(requestSeq.fetch_add(
              1, std::memory_order_relaxed));

    const std::string path = req.path();
    try {
        if (path == "/healthz") {
            if (req.method != "GET" && req.method != "HEAD")
                return methodNotAllowed("GET");
            return handleHealth();
        }
        if (path == "/metrics") {
            if (req.method != "GET" && req.method != "HEAD")
                return methodNotAllowed("GET");
            return handleMetrics();
        }
        if (path == "/v1/simulate") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleSimulate(req, request_id);
        }
        if (path == "/v1/sweep") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleSweep(req, request_id);
        }
        if (path.rfind("/v1/jobs/", 0) == 0) {
            if (req.method != "GET")
                return methodNotAllowed("GET");
            return handleJobGet(path);
        }
        return errorResponse(404, "no such endpoint: " + path);
    } catch (const FatalError &e) {
        // fatal() is the user-error channel everywhere in this repo;
        // over HTTP the user error is a bad request.
        return errorResponse(400, e.what());
    } catch (const std::exception &e) {
        return errorResponse(500, e.what());
    }
}

void
Server::rollupPoint(const harness::SweepResult &point)
{
    Metrics &m = metricsRegistry;
    m.count("dieirb_sim_points_total",
            std::string("status=\"") +
                harness::pointStatusName(point.status) + "\"");
    if (point.status == harness::PointStatus::Cancelled)
        return;
    if (point.fromCache) {
        m.count("dieirb_sweep_cache_hits_total");
    } else {
        m.count("dieirb_sweep_cache_misses_total");
    }
    m.count("dieirb_sim_cycles_total", "",
            static_cast<double>(point.sim.core.cycles));
    m.count("dieirb_sim_insts_total", "",
            static_cast<double>(point.sim.core.archInsts));
}

HttpResponse
Server::handleSimulate(const HttpRequest &req,
                       const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    const PointSpec spec = parsePoint(body, PointSpec{});
    const bool async = boolOr(body, "async", false);
    const bool withStats = boolOr(body, "stats", false);
    const bool useCache = boolOr(body, "cache", true);
    const unsigned deadlineMs = static_cast<unsigned>(
        uintOr(body, "deadline_ms", opts.defaultDeadlineMs));

    JobQueue::Work work = [this, spec, withStats, useCache]() -> Json {
        harness::Sweep sweep(1);
        sweep.setSharedPool(&corePool);
        Config cfg = harness::baseConfig(spec.mode);
        for (const auto &[key, value] : spec.overrides)
            cfg.set(key, value);
        if (useCache && !opts.cacheDir.empty())
            cfg.set("sweep.cache", opts.cacheDir);
        sweep.add(spec.name, spec.workload, std::move(cfg), spec.scale,
                  spec.maxInsts);
        const auto results = sweep.run(&stopping);
        rollupPoint(results[0]);
        return pointJson(results[0], withStats);
    };
    return dispatchJob("simulate", request_id, async, deadlineMs,
                       std::move(work));
}

HttpResponse
Server::handleSweep(const HttpRequest &req, const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");

    // Point list: either an explicit "points" array, or the cross
    // product of "workloads" x "modes" (the classic figure matrix).
    std::vector<PointSpec> specs;
    if (const Json *points = body.find("points")) {
        fatal_if(!points->isArray(),
                 "request: 'points' must be an array");
        PointSpec base;
        base.workload.clear(); // each point must name its workload
        for (std::size_t i = 0; i < points->size(); ++i) {
            fatal_if(!points->at(i).isObject(),
                     "request: points[%zu] must be an object", i);
            PointSpec spec = parsePoint(points->at(i), base);
            spec.name = stringOr(points->at(i), "name", spec.name);
            specs.push_back(std::move(spec));
        }
    } else {
        const Json *wl = body.find("workloads");
        fatal_if(!wl || !wl->isArray(),
                 "request: need 'points' or a 'workloads' array");
        std::vector<std::string> modes;
        if (const Json *ms = body.find("modes")) {
            fatal_if(!ms->isArray(),
                     "request: 'modes' must be an array");
            for (std::size_t i = 0; i < ms->size(); ++i) {
                fatal_if(!ms->at(i).isString(),
                         "request: modes[%zu] must be a string", i);
                modes.push_back(ms->at(i).asString());
            }
        } else {
            modes.push_back(stringOr(body, "mode", "sie"));
        }
        for (std::size_t i = 0; i < wl->size(); ++i) {
            fatal_if(!wl->at(i).isString(),
                     "request: workloads[%zu] must be a string", i);
            for (const std::string &mode : modes) {
                // Route shared scale/max_insts/config through the same
                // per-point parser so they get the same validation.
                Json point = Json::object();
                point.set("workload", wl->at(i).asString());
                point.set("mode", mode);
                if (const Json *s = body.find("scale"))
                    point.set("scale", *s);
                if (const Json *mi = body.find("max_insts"))
                    point.set("max_insts", *mi);
                if (const Json *cfg = body.find("config"))
                    point.set("config", *cfg);
                specs.push_back(parsePoint(point, PointSpec{}));
            }
        }
    }
    fatal_if(specs.empty(), "request: no sweep points");
    fatal_if(specs.size() > 4096,
             "request: too many sweep points (%zu > 4096)", specs.size());

    const bool async = boolOr(body, "async", false);
    const bool useCache = boolOr(body, "cache", true);
    const unsigned deadlineMs = static_cast<unsigned>(
        uintOr(body, "deadline_ms", opts.defaultDeadlineMs));

    JobQueue::Work work = [this, specs, useCache]() -> Json {
        harness::Sweep sweep(opts.sweepJobs);
        sweep.setSharedPool(&corePool);
        for (const PointSpec &spec : specs) {
            Config cfg = harness::baseConfig(spec.mode);
            for (const auto &[key, value] : spec.overrides)
                cfg.set(key, value);
            if (useCache && !opts.cacheDir.empty())
                cfg.set("sweep.cache", opts.cacheDir);
            sweep.add(spec.name, spec.workload, std::move(cfg),
                      spec.scale, spec.maxInsts);
        }
        const auto results = sweep.run(&stopping);

        Json out = Json::object();
        Json points = Json::array();
        std::uint64_t cached = 0;
        std::uint64_t cancelled = 0;
        for (const harness::SweepResult &r : results) {
            rollupPoint(r);
            cached += r.fromCache ? 1 : 0;
            cancelled +=
                r.status == harness::PointStatus::Cancelled ? 1 : 0;
            points.push(harness::resultJson(r));
        }
        out.set("total", static_cast<std::uint64_t>(results.size()));
        out.set("cached", cached);
        out.set("cancelled", cancelled);
        out.set("points", std::move(points));
        return out;
    };
    return dispatchJob("sweep", request_id, async, deadlineMs,
                       std::move(work));
}

HttpResponse
Server::dispatchJob(const char *kind, const std::string &request_id,
                    bool async, unsigned deadline_ms,
                    JobQueue::Work work)
{
    const JobQueue::Ticket ticket =
        jobQueue->submit(kind, request_id, std::move(work));
    if (!ticket.accepted) {
        metricsRegistry.count("dieirb_jobs_rejected_total",
                              ticket.closed ? "reason=\"draining\""
                                            : "reason=\"queue_full\"");
        if (ticket.closed)
            return errorResponse(503, "server is draining");
        HttpResponse r = errorResponse(
            429, "job queue full (" +
                     std::to_string(jobQueue->capacity()) +
                     " outstanding); retry later");
        r.set("Retry-After", "1");
        return r;
    }

    if (async) {
        Json j = Json::object();
        j.set("job", ticket.id);
        j.set("state", "queued");
        return HttpResponse(202, j.dump(2) + "\n");
    }

    JobRecord rec;
    const bool finished = jobQueue->wait(
        ticket.id, std::chrono::milliseconds(deadline_ms), rec);
    Json j = Json::object();
    j.set("job", ticket.id);
    j.set("state", jobStateName(rec.state));
    if (!finished) {
        // The job keeps running; the client polls /v1/jobs/<id>.
        j.set("deadline_exceeded", true);
        return HttpResponse(202, j.dump(2) + "\n");
    }
    if (rec.state == JobState::Failed) {
        j.set("error", rec.error);
        return HttpResponse(500, j.dump(2) + "\n");
    }
    j.set("result", rec.result);
    j.set("run_seconds", rec.runSeconds);
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleJobGet(const std::string &path)
{
    const std::string tail = path.substr(std::strlen("/v1/jobs/"));
    fatal_if(tail.empty() ||
                 tail.find_first_not_of("0123456789") !=
                     std::string::npos,
             "request: job id must be a decimal integer");
    const std::uint64_t id = std::strtoull(tail.c_str(), nullptr, 10);

    JobRecord rec;
    if (!jobQueue->lookup(id, rec))
        return errorResponse(404, "no such job " + tail);
    Json j = Json::object();
    j.set("job", rec.id);
    j.set("kind", rec.kind);
    j.set("request_id", rec.requestId);
    j.set("state", jobStateName(rec.state));
    if (rec.state == JobState::Failed)
        j.set("error", rec.error);
    if (rec.state == JobState::Done) {
        j.set("result", rec.result);
        j.set("run_seconds", rec.runSeconds);
    }
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleHealth()
{
    Json j = Json::object();
    j.set("status", draining() ? "draining" : "ok");
    j.set("queued", static_cast<std::uint64_t>(jobQueue->queued()));
    j.set("outstanding",
          static_cast<std::uint64_t>(jobQueue->outstanding()));
    j.set("workers", jobQueue->workers());
    j.set("busy", jobQueue->busyWorkers());
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleMetrics()
{
    Metrics &m = metricsRegistry;
    m.gauge("dieirb_queue_depth",
            static_cast<double>(jobQueue->queued()));
    m.gauge("dieirb_queue_capacity",
            static_cast<double>(jobQueue->capacity()));
    m.gauge("dieirb_workers", jobQueue->workers());
    m.gauge("dieirb_workers_busy", jobQueue->busyWorkers());
    m.gauge("dieirb_core_pool_constructions_total",
            static_cast<double>(corePool.constructions()));
    m.gauge("dieirb_core_pool_reuses_total",
            static_cast<double>(corePool.reuses()));

    HttpResponse r(200, m.render());
    r.set("Content-Type", "text/plain; version=0.0.4; charset=utf-8");
    return r;
}

void
Server::shutdown()
{
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) {
        // Someone else is (or was) draining; nothing further to do
        // beyond not racing them.
        return;
    }

    // 1. New jobs are rejected (503) — but status/metrics/job-polling
    //    requests already queued still get answered below.
    jobQueue->close();

    // 2. Stop accepting connections. shutdown() on the listening
    //    socket pops the blocked accept() on Linux.
    if (listenFd >= 0)
        ::shutdown(listenFd, SHUT_RDWR);
    if (acceptor.joinable())
        acceptor.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }

    // 3. Serve every connection already accepted, then stop handlers.
    {
        std::lock_guard<std::mutex> lock(connMtx);
        connClosed = true;
    }
    connAvailable.notify_all();
    for (std::thread &t : handlers) {
        if (t.joinable())
            t.join();
    }

    // 4. Drain the job queue: accepted jobs finish (in-flight sweeps
    //    cancel their pending remainder via `stopping`), workers join.
    jobQueue->drain();
    stopped = true;
}

} // namespace service

} // namespace direb
