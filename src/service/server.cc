#include "service/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "service/io.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace service
{

namespace
{

using harness::Json;

using Clock = std::chrono::steady_clock;

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

/** JSON error body + status; the uniform failure shape of the API. */
HttpResponse
errorResponse(int status, const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return HttpResponse(status, j.dump(0) + "\n");
}

HttpResponse
methodNotAllowed(const std::string &allow)
{
    HttpResponse r = errorResponse(405, "method not allowed");
    r.set("Allow", allow);
    return r;
}

/** The bounded path label used on request metrics. */
std::string
labelForPath(const std::string &path)
{
    if (path == "/healthz" || path == "/metrics" ||
        path == "/v1/simulate" || path == "/v1/sweep") {
        return path;
    }
    if (path.rfind("/v1/jobs/", 0) == 0)
        return "/v1/jobs";
    return "other";
}

/** Typed member accessors over a request body; fatal() => HTTP 400. @{ */
std::string
stringOr(const Json &obj, const char *key, const std::string &def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    fatal_if(!v->isString(), "request: '%s' must be a string", key);
    return v->asString();
}

std::uint64_t
uintOr(const Json &obj, const char *key, std::uint64_t def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    fatal_if(!v->isNumber() || v->asNumber() < 0,
             "request: '%s' must be a non-negative number", key);
    return static_cast<std::uint64_t>(v->asNumber());
}

bool
boolOr(const Json &obj, const char *key, bool def)
{
    const Json *v = obj.find(key);
    if (!v)
        return def;
    // asBool panics on non-bool kinds; pre-check for a clean 400.
    fatal_if(!v->isBool(), "request: '%s' must be a boolean", key);
    return v->asBool();
}
/** @} */

/** Render a config-override value the way Config::set expects it. */
std::string
overrideValue(const Json &v, const std::string &key)
{
    if (v.isString())
        return v.asString();
    if (v.isNumber()) {
        const double d = v.asNumber();
        if (d == static_cast<double>(static_cast<std::int64_t>(d)))
            return std::to_string(static_cast<std::int64_t>(d));
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        return buf;
    }
    // Panics (abort) must never be reachable from network input, so
    // every other kind — including null — is rejected before asBool().
    fatal_if(!v.isBool(), "request: config.%s must be a scalar",
             key.c_str());
    return v.asBool() ? "true" : "false";
}

bool
knownWorkload(const std::string &name)
{
    for (const auto &w : workloads::list()) {
        if (w.name == name)
            return true;
    }
    return false;
}

/** Everything needed to enqueue one sweep point, parsed up front so
 *  malformed requests fail with 400 before a job is ever created. */
struct PointSpec
{
    std::string name;
    std::string workload;
    std::string mode = "sie";
    unsigned scale = 1;
    std::uint64_t maxInsts = 50'000'000;
    std::vector<std::pair<std::string, std::string>> overrides;
};

PointSpec
parsePoint(const Json &obj, const PointSpec &defaults)
{
    PointSpec spec = defaults;
    spec.workload = stringOr(obj, "workload", defaults.workload);
    fatal_if(spec.workload.empty(), "request: 'workload' is required");
    fatal_if(!knownWorkload(spec.workload),
             "request: unknown workload '%s' (see dieirb-sim -l)",
             spec.workload.c_str());
    spec.mode = stringOr(obj, "mode", defaults.mode);
    fatal_if(spec.mode != "sie" && spec.mode != "die" &&
                 spec.mode != "die-irb",
             "request: mode must be sie, die or die-irb, got '%s'",
             spec.mode.c_str());
    spec.scale =
        static_cast<unsigned>(uintOr(obj, "scale", defaults.scale));
    fatal_if(spec.scale < 1 || spec.scale > 1024,
             "request: scale must be in [1, 1024]");
    spec.maxInsts = uintOr(obj, "max_insts", defaults.maxInsts);
    fatal_if(spec.maxInsts < 1, "request: max_insts must be positive");
    if (const Json *cfg = obj.find("config")) {
        fatal_if(!cfg->isObject(), "request: 'config' must be an object");
        for (std::size_t i = 0; i < cfg->size(); ++i) {
            const std::string &key = cfg->memberName(i);
            fatal_if(key == "sweep.cache",
                     "request: sweep.cache is server-controlled");
            spec.overrides.emplace_back(
                key, overrideValue(cfg->memberValue(i), key));
        }
    }
    if (spec.name.empty())
        spec.name = spec.workload + "/" + spec.mode;
    return spec;
}

/**
 * Point list of a sweep request body: either an explicit "points"
 * array, or the cross product of "workloads" x "modes" (the classic
 * figure matrix). Shared by the buffered and the streaming sweep
 * handlers so both validate identically.
 */
std::vector<PointSpec>
parseSweepSpecs(const Json &body)
{
    std::vector<PointSpec> specs;
    if (const Json *points = body.find("points")) {
        fatal_if(!points->isArray(),
                 "request: 'points' must be an array");
        PointSpec base;
        base.workload.clear(); // each point must name its workload
        for (std::size_t i = 0; i < points->size(); ++i) {
            fatal_if(!points->at(i).isObject(),
                     "request: points[%zu] must be an object", i);
            PointSpec spec = parsePoint(points->at(i), base);
            spec.name = stringOr(points->at(i), "name", spec.name);
            specs.push_back(std::move(spec));
        }
    } else {
        const Json *wl = body.find("workloads");
        fatal_if(!wl || !wl->isArray(),
                 "request: need 'points' or a 'workloads' array");
        std::vector<std::string> modes;
        if (const Json *ms = body.find("modes")) {
            fatal_if(!ms->isArray(),
                     "request: 'modes' must be an array");
            for (std::size_t i = 0; i < ms->size(); ++i) {
                fatal_if(!ms->at(i).isString(),
                         "request: modes[%zu] must be a string", i);
                modes.push_back(ms->at(i).asString());
            }
        } else {
            modes.push_back(stringOr(body, "mode", "sie"));
        }
        for (std::size_t i = 0; i < wl->size(); ++i) {
            fatal_if(!wl->at(i).isString(),
                     "request: workloads[%zu] must be a string", i);
            for (const std::string &mode : modes) {
                // Route shared scale/max_insts/config through the same
                // per-point parser so they get the same validation.
                Json point = Json::object();
                point.set("workload", wl->at(i).asString());
                point.set("mode", mode);
                if (const Json *s = body.find("scale"))
                    point.set("scale", *s);
                if (const Json *mi = body.find("max_insts"))
                    point.set("max_insts", *mi);
                if (const Json *cfg = body.find("config"))
                    point.set("config", *cfg);
                specs.push_back(parsePoint(point, PointSpec{}));
            }
        }
    }
    fatal_if(specs.empty(), "request: no sweep points");
    fatal_if(specs.size() > 4096,
             "request: too many sweep points (%zu > 4096)", specs.size());
    return specs;
}

/** Point result JSON: the sweep shape plus program output. */
Json
pointJson(const harness::SweepResult &r, bool with_stats)
{
    Json j = harness::resultJson(r);
    j.set("output", r.sim.output);
    if (with_stats) {
        Json stats = Json::object();
        for (const auto &[name, value] : r.sim.stats)
            stats.set(name, value);
        j.set("stats", std::move(stats));
    }
    return j;
}

/** Does a sweep body opt into the chunked NDJSON streaming path? */
bool
wantsStream(const HttpRequest &req)
{
    try {
        const Json j = Json::parse(req.body);
        if (!j.isObject())
            return false;
        const Json *s = j.find("stream");
        return s && s->isBool() && s->asBool();
    } catch (const std::exception &) {
        return false; // route() will produce the proper 400
    }
}

} // namespace

/**
 * One live connection. The event loop owns the fd, the parser, the
 * input buffer and the state tag; producers (dispatch pool and job
 * workers) only ever touch the mtx-guarded output channel. `cancel` is
 * the per-connection cancellation token streaming sweeps poll — the
 * loop flips it on disconnect, shutdown flips it on drain.
 */
struct Server::Conn
{
    enum class St : std::uint8_t {
        Idle,    //!< keep-alive: waiting for the next request
        Reading, //!< request started, not yet fully parsed
        Busy,    //!< dispatched; response/stream being produced+written
    };

    int fd = -1;

    // loop-owned
    St st = St::Idle;
    HttpParser parser;
    std::string inBuf; //!< unconsumed (pipelined) bytes
    unsigned served = 0;
    bool writeArmed = false;    //!< EPOLLOUT registered
    bool writeDeadline = false; //!< wheel holds a stalled-write deadline
    Clock::time_point reqStart{};

    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);

    // producer <-> loop output channel, guarded by mtx
    std::mutex mtx;
    std::string out;
    std::size_t outOff = 0;
    bool outDone = false;    //!< producer finished this response
    bool closeAfter = false; //!< close instead of keep-alive reset
    bool dead = false;       //!< fd closed; producers must stop appending
    std::string pathLabel = "other";
    int respStatus = 0;
};

struct Server::DispatchItem
{
    std::shared_ptr<Conn> conn;
    HttpRequest req;
};

Server::Server(ServerOptions options) : opts(std::move(options))
{
    jobQueue =
        std::make_unique<JobQueue>(opts.queueDepth, opts.workers);

    Metrics &m = metricsRegistry;
    m.describe("dieirb_http_requests_total", "counter",
               "HTTP requests by path and status code");
    m.describe("dieirb_http_request_seconds", "histogram",
               "first request byte to last response byte");
    m.describe("dieirb_http_read_seconds", "histogram",
               "first request byte to fully parsed request");
    m.describe("dieirb_http_connections_total", "counter",
               "connections accepted");
    m.describe("dieirb_http_active_connections", "gauge",
               "currently open connections");
    m.describe("dieirb_jobs_rejected_total", "counter",
               "jobs rejected by backpressure or drain");
    m.describe("dieirb_queue_depth", "gauge", "jobs waiting in the queue");
    m.describe("dieirb_queue_capacity", "gauge",
               "max outstanding jobs before 429");
    m.describe("dieirb_workers", "gauge", "simulation worker threads");
    m.describe("dieirb_workers_busy", "gauge",
               "workers currently running a job");
    m.describe("dieirb_streams_total", "counter",
               "streamed sweep responses started");
    m.describe("dieirb_streams_cancelled_total", "counter",
               "streamed sweeps whose remainder was cancelled");
    m.describe("dieirb_sweep_cache_hits_total", "counter",
               "sweep points restored from the result cache");
    m.describe("dieirb_sweep_cache_misses_total", "counter",
               "sweep points actually simulated");
    m.describe("dieirb_sim_points_total", "counter",
               "finished sweep points by status");
    m.describe("dieirb_sim_cycles_total", "counter",
               "simulated core cycles, all finished points");
    m.describe("dieirb_sim_insts_total", "counter",
               "committed architectural instructions, all points");
    m.describe("dieirb_core_pool_constructions_total", "counter",
               "cores constructed because the pool was empty");
    m.describe("dieirb_core_pool_reuses_total", "counter",
               "core acquisitions served by reset() reuse");
}

Server::~Server() { shutdown(); }

void
Server::start()
{
    fatal_if(started, "server already started");

    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    fatal_if(listenFd < 0, "socket(): %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    fatal_if(::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1,
             "bad listen address '%s'", opts.host.c_str());
    fatal_if(::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) < 0,
             "cannot bind %s:%u: %s", opts.host.c_str(),
             static_cast<unsigned>(opts.port), std::strerror(errno));
    fatal_if(::listen(listenFd, 512) < 0, "listen(): %s",
             std::strerror(errno));

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);

    epollFd = ::epoll_create1(0);
    fatal_if(epollFd < 0, "epoll_create1(): %s", std::strerror(errno));
    wakeFd = ::eventfd(0, EFD_NONBLOCK);
    fatal_if(wakeFd < 0, "eventfd(): %s", std::strerror(errno));

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET; // edge: accept until EAGAIN
    ev.data.fd = listenFd;
    fatal_if(::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) < 0,
             "epoll_ctl(listen): %s", std::strerror(errno));
    ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd;
    fatal_if(::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev) < 0,
             "epoll_ctl(wake): %s", std::strerror(errno));

    started = true;
    loopThread = std::thread([this] { eventLoop(); });
    const unsigned n = opts.httpThreads > 0 ? opts.httpThreads : 1;
    dispatchers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        dispatchers.emplace_back([this] { dispatchLoop(); });
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

void
Server::eventLoop()
{
    std::vector<epoll_event> events(128);
    for (;;) {
        const int timeout = wheel.pollTimeoutMs(200);
        const int n = ::epoll_wait(epollFd, events.data(),
                                   static_cast<int>(events.size()),
                                   timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("epoll_wait(): %s; event loop exiting",
                 std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakeFd) {
                std::uint64_t drained = 0;
                while (::read(wakeFd, &drained, sizeof(drained)) > 0) {}
                continue; // wakeQueue handled below
            }
            if (fd == listenFd) {
                acceptReady();
                continue;
            }
            const auto it = conns.find(fd);
            if (it != conns.end())
                onConnEvent(it->second, events[i].events);
        }
        processWakeups();
        for (const int fd : wheel.expire(nowMs())) {
            const auto it = conns.find(fd);
            if (it != conns.end())
                onDeadline(it->second);
        }
        if (stopping.load(std::memory_order_acquire) && !drainStarted)
            beginDrainInLoop();
        if (drainStarted && conns.empty())
            break;
    }
    // Abnormal exit (epoll failure): drop whatever is still open so
    // shutdown() can join without leaking fds.
    std::vector<std::shared_ptr<Conn>> leftovers;
    leftovers.reserve(conns.size());
    for (const auto &[fd, conn] : conns)
        leftovers.push_back(conn);
    for (const auto &conn : leftovers)
        closeConn(conn);
}

void
Server::acceptReady()
{
    for (;;) {
        const int fd =
            ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                !stopping.load(std::memory_order_relaxed)) {
                warn("accept(): %s", std::strerror(errno));
            }
            return;
        }
        if (drainStarted) {
            ::close(fd); // raced in after the drain began
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->parser = HttpParser(
            {/*maxHeaderBytes=*/64 * 1024, opts.maxBodyBytes});
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) < 0) {
            warn("epoll_ctl(conn): %s", std::strerror(errno));
            ::close(fd);
            continue;
        }
        conns.emplace(fd, conn);
        metricsRegistry.count("dieirb_http_connections_total");
        metricsRegistry.gauge("dieirb_http_active_connections",
                              static_cast<double>(conns.size()));
        wheel.schedule(fd, nowMs(), opts.idleTimeoutMs);
        pumpRead(conn); // edge-triggered: data may already be queued
    }
}

void
Server::onConnEvent(const std::shared_ptr<Conn> &conn,
                    std::uint32_t events)
{
    if (events & (EPOLLHUP | EPOLLERR)) {
        conn->cancel->store(true, std::memory_order_relaxed);
        closeConn(conn);
        return;
    }
    if (events & EPOLLRDHUP) {
        // The client stopped sending. For a streaming sweep this is
        // the disconnect signal that cancels the pending remainder;
        // writes keep going until they fail or finish (a half-closed
        // client may still be reading).
        conn->cancel->store(true, std::memory_order_relaxed);
    }
    if (events & EPOLLOUT)
        flushOut(conn);
    if (conn->fd < 0)
        return; // closed while flushing
    if (events & (EPOLLIN | EPOLLRDHUP)) {
        // While a response/stream is in production we deliberately do
        // not read: pipelined bytes wait in the kernel buffer and are
        // pulled in by completeResponse()'s pumpRead().
        if (conn->st != Conn::St::Busy)
            pumpRead(conn);
    }
}

void
Server::pumpRead(const std::shared_ptr<Conn> &conn)
{
    if (!feedParser(conn))
        return; // leftovers already completed a request (or an error)
    char buf[16384];
    for (;;) {
        const ssize_t n = io::readSome(conn->fd, buf, sizeof(buf));
        if (n > 0) {
            conn->inBuf.append(buf, static_cast<std::size_t>(n));
            if (!feedParser(conn))
                return;
            continue;
        }
        if (n == 0) { // EOF
            conn->cancel->store(true, std::memory_order_relaxed);
            if (conn->parser.started() &&
                conn->parser.status() == HttpParser::Status::NeedMore) {
                // Mid-request EOF: answer 408 on the off chance the
                // client half-closed and still reads.
                conn->st = Conn::St::Busy;
                wheel.cancel(conn->fd);
                sendResponse(conn,
                             errorResponse(408, "incomplete request"),
                             /*keep_alive=*/false, "other");
            } else {
                closeConn(conn);
            }
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return; // drained; epoll will tell us about the next bytes
        closeConn(conn); // ECONNRESET and friends
        return;
    }
}

/**
 * Feed buffered input to the parser. Returns false once this
 * connection stopped consuming reads: a complete request went to the
 * dispatch queue, a parser error response was queued, or the
 * connection died. Unconsumed pipelined bytes stay in inBuf for the
 * next request.
 */
bool
Server::feedParser(const std::shared_ptr<Conn> &conn)
{
    if (conn->inBuf.empty())
        return true;
    if (conn->st == Conn::St::Idle) {
        // First byte of a new request: latency timing starts HERE, so
        // slow-client read time is visible and a 408 records how long
        // we actually waited (not ~0s).
        conn->st = Conn::St::Reading;
        conn->reqStart = Clock::now();
        wheel.schedule(conn->fd, nowMs(), opts.socketTimeoutMs);
    }
    const std::size_t consumed =
        conn->parser.feed(conn->inBuf.data(), conn->inBuf.size());
    conn->inBuf.erase(0, consumed);

    switch (conn->parser.status()) {
      case HttpParser::Status::NeedMore:
        return true;
      case HttpParser::Status::Done: {
        const std::chrono::duration<double> readTime =
            Clock::now() - conn->reqStart;
        HttpRequest req = conn->parser.takeRequest();
        metricsRegistry.observe(
            "dieirb_http_read_seconds", readTime.count(),
            "path=\"" + labelForPath(req.path()) + "\"");
        conn->st = Conn::St::Busy;
        wheel.cancel(conn->fd);
        auto item = std::make_unique<DispatchItem>();
        item->conn = conn;
        item->req = std::move(req);
        {
            std::lock_guard<std::mutex> lock(dispatchMtx);
            dispatchQueue.push_back(std::move(item));
        }
        dispatchAvailable.notify_one();
        return false;
      }
      case HttpParser::Status::Error: {
        inform("[-] rejected request: %d %s",
               conn->parser.errorStatus(),
               conn->parser.errorReason().c_str());
        conn->st = Conn::St::Busy;
        wheel.cancel(conn->fd);
        sendResponse(conn,
                     errorResponse(conn->parser.errorStatus(),
                                   conn->parser.errorReason()),
                     /*keep_alive=*/false, "other");
        return false;
      }
    }
    return true; // unreachable
}

void
Server::flushOut(const std::shared_ptr<Conn> &conn)
{
    std::unique_lock<std::mutex> lock(conn->mtx);
    if (conn->dead)
        return;
    for (;;) {
        if (conn->outOff == conn->out.size()) {
            conn->out.clear();
            conn->outOff = 0;
            if (conn->outDone) {
                lock.unlock();
                completeResponse(conn);
                return;
            }
            // Mid-stream lull: nothing pending, so no EPOLLOUT and no
            // stalled-write deadline (the sweep bounds the stream).
            if (conn->writeArmed) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
                ev.data.fd = conn->fd;
                ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
                conn->writeArmed = false;
            }
            if (conn->writeDeadline) {
                wheel.cancel(conn->fd);
                conn->writeDeadline = false;
            }
            return;
        }
        const ssize_t n =
            io::writeSome(conn->fd, conn->out.data() + conn->outOff,
                          conn->out.size() - conn->outOff);
        if (n > 0) {
            conn->outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!conn->writeArmed) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET;
                ev.data.fd = conn->fd;
                ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
                conn->writeArmed = true;
            }
            // Any progress re-arms the stalled-write deadline.
            wheel.schedule(conn->fd, nowMs(), opts.socketTimeoutMs);
            conn->writeDeadline = true;
            return;
        }
        // EPIPE/ECONNRESET: the client is gone. Cancel any stream
        // still producing for this connection and drop it.
        conn->cancel->store(true, std::memory_order_relaxed);
        lock.unlock();
        closeConn(conn);
        return;
    }
}

void
Server::completeResponse(const std::shared_ptr<Conn> &conn)
{
    // The producer is done with this response (outDone was set), so
    // the shared fields are stable without the lock.
    const std::chrono::duration<double> elapsed =
        Clock::now() - conn->reqStart;
    metricsRegistry.count("dieirb_http_requests_total",
                          "path=\"" + conn->pathLabel + "\",code=\"" +
                              std::to_string(conn->respStatus) + "\"");
    metricsRegistry.observe("dieirb_http_request_seconds",
                            elapsed.count(),
                            "path=\"" + conn->pathLabel + "\"");
    ++conn->served;
    if (conn->closeAfter || drainStarted) {
        closeConn(conn);
        return;
    }
    conn->st = Conn::St::Idle;
    conn->parser.reset();
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        conn->outDone = false;
        conn->pathLabel = "other";
        conn->respStatus = 0;
    }
    wheel.schedule(conn->fd, nowMs(), opts.idleTimeoutMs);
    // Pipelined leftovers (or bytes that arrived while we were busy —
    // edge-triggered epoll will not re-announce them) seed the next
    // request immediately.
    pumpRead(conn);
}

void
Server::closeConn(const std::shared_ptr<Conn> &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->dead = true;
    }
    conn->cancel->store(true, std::memory_order_relaxed);
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    wheel.cancel(conn->fd);
    conns.erase(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
    metricsRegistry.gauge("dieirb_http_active_connections",
                          static_cast<double>(conns.size()));
}

void
Server::onDeadline(const std::shared_ptr<Conn> &conn)
{
    switch (conn->st) {
      case Conn::St::Idle:
        closeConn(conn); // keep-alive idle expiry: close silently
        return;
      case Conn::St::Reading:
        // Slow client: the request never completed within the read
        // deadline. 408 carries the real elapsed time into the
        // latency histogram because reqStart began at the first byte.
        conn->st = Conn::St::Busy;
        sendResponse(conn, errorResponse(408, "incomplete request"),
                     /*keep_alive=*/false, "other");
        return;
      case Conn::St::Busy:
        // Only armed while output is pending: a stalled write.
        closeConn(conn);
        return;
    }
}

void
Server::processWakeups()
{
    std::vector<std::shared_ptr<Conn>> ready;
    {
        std::lock_guard<std::mutex> lock(wakeMtx);
        ready.swap(wakeQueue);
    }
    for (const auto &conn : ready)
        flushOut(conn);
}

void
Server::beginDrainInLoop()
{
    drainStarted = true;
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        ::close(listenFd);
        listenFd = -1;
    }
    // Cancel every live stream's pending remainder and drop idle
    // keep-alive connections; in-flight requests run to completion
    // (their conns leave the map as their responses finish).
    std::vector<std::shared_ptr<Conn>> idle;
    for (const auto &[fd, conn] : conns) {
        conn->cancel->store(true, std::memory_order_relaxed);
        if (conn->st == Conn::St::Idle)
            idle.push_back(conn);
    }
    for (const auto &conn : idle)
        closeConn(conn);
}

// ---------------------------------------------------------------------
// Producer side: dispatch pool and streaming jobs
// ---------------------------------------------------------------------

void
Server::dispatchLoop()
{
    for (;;) {
        std::unique_ptr<DispatchItem> item;
        {
            std::unique_lock<std::mutex> lock(dispatchMtx);
            dispatchAvailable.wait(lock, [this] {
                return !dispatchQueue.empty() || dispatchClosed;
            });
            if (dispatchQueue.empty()) {
                if (dispatchClosed)
                    return;
                continue;
            }
            item = std::move(dispatchQueue.front());
            dispatchQueue.pop_front();
        }
        processRequest(item->conn, item->req);
    }
}

void
Server::processRequest(const std::shared_ptr<Conn> &conn,
                       const HttpRequest &req)
{
    const std::string label = labelForPath(req.path());
    // served is stable here: the loop only advances it between
    // requests, and this request is still in flight.
    const bool keepAlive =
        req.wantsKeepAlive() &&
        (opts.keepAliveMaxRequests == 0 ||
         conn->served + 1 < opts.keepAliveMaxRequests) &&
        !stopping.load(std::memory_order_relaxed) &&
        req.method != "HEAD"; // we answer HEAD with a body: must close

    if (req.method == "POST" && req.path() == "/v1/sweep" &&
        wantsStream(req)) {
        const std::string *hdr = req.header("x-request-id");
        const std::string rid = hdr && !hdr->empty()
            ? *hdr
            : "req-" + std::to_string(requestSeq.fetch_add(
                  1, std::memory_order_relaxed));
        handleSweepStream(conn, req, keepAlive, rid);
        return;
    }

    std::string rid;
    HttpResponse resp = route(req, rid);
    if (!rid.empty())
        resp.set("X-Request-Id", rid);
    inform("[%s] %s %s -> %d", rid.c_str(), req.method.c_str(),
           req.target.c_str(), resp.status);
    sendResponse(conn, std::move(resp), keepAlive, label);
}

void
Server::handleSweepStream(const std::shared_ptr<Conn> &conn,
                          const HttpRequest &req, bool keep_alive,
                          const std::string &request_id)
{
    std::vector<PointSpec> specs;
    bool useCache = true;
    try {
        const Json body = Json::parse(req.body);
        fatal_if(!body.isObject(), "request: body must be a JSON object");
        fatal_if(boolOr(body, "async", false),
                 "request: stream and async are mutually exclusive");
        specs = parseSweepSpecs(body);
        useCache = boolOr(body, "cache", true);
    } catch (const FatalError &e) {
        HttpResponse r = errorResponse(400, e.what());
        r.set("X-Request-Id", request_id);
        sendResponse(conn, std::move(r), keep_alive, "/v1/sweep");
        return;
    } catch (const std::exception &e) {
        HttpResponse r = errorResponse(500, e.what());
        r.set("X-Request-Id", request_id);
        sendResponse(conn, std::move(r), keep_alive, "/v1/sweep");
        return;
    }

    // The whole stream is produced by the job worker: response head
    // first, then one NDJSON line per point in deterministic enqueue
    // order as the completed prefix grows, then the summary line and
    // the terminal chunk. The connection's cancellation token makes a
    // client disconnect (or a server drain) cancel the pending
    // remainder exactly like SIGTERM does for buffered sweeps.
    auto cancel = conn->cancel;
    JobQueue::Work work = [this, conn, cancel, keep_alive, request_id,
                           specs = std::move(specs),
                           useCache]() -> Json {
        metricsRegistry.count("dieirb_streams_total");
        {
            std::lock_guard<std::mutex> lock(conn->mtx);
            if (!conn->dead) {
                conn->pathLabel = "/v1/sweep";
                conn->respStatus = 200;
                conn->closeAfter = !keep_alive;
                conn->out += streamHead(200, "application/x-ndjson",
                                        keep_alive,
                                        {{"X-Request-Id", request_id}});
            }
        }
        wakeLoop(conn);

        harness::Sweep sweep(opts.sweepJobs);
        sweep.setSharedPool(&corePool);
        for (const PointSpec &spec : specs) {
            Config cfg = harness::baseConfig(spec.mode);
            for (const auto &[key, value] : spec.overrides)
                cfg.set(key, value);
            if (useCache && !opts.cacheDir.empty())
                cfg.set("sweep.cache", opts.cacheDir);
            sweep.add(spec.name, spec.workload, std::move(cfg),
                      spec.scale, spec.maxInsts);
        }
        if (stopping.load(std::memory_order_relaxed))
            cancel->store(true, std::memory_order_relaxed);

        std::uint64_t cached = 0;
        std::uint64_t cancelled = 0;
        std::vector<harness::SweepResult> results;
        try {
            results = sweep.run(
                cancel.get(),
                [&](const harness::SweepResult &r, std::size_t) {
                    rollupPoint(r);
                    cached += r.fromCache ? 1 : 0;
                    cancelled +=
                        r.status == harness::PointStatus::Cancelled ? 1
                                                                    : 0;
                    enqueueOutput(
                        conn,
                        encodeChunk(harness::resultJson(r).dump(0) +
                                    "\n"),
                        /*done=*/false);
                });
        } catch (...) {
            // Close the chunk framing so the client sees a terminated
            // (if truncated) stream, then let the job record the error.
            enqueueOutput(conn, lastChunk(), /*done=*/true);
            throw;
        }

        Json done = Json::object();
        done.set("done", true);
        done.set("total", static_cast<std::uint64_t>(results.size()));
        done.set("cached", cached);
        done.set("cancelled", cancelled);
        enqueueOutput(conn, encodeChunk(done.dump(0) + "\n") + lastChunk(),
                      /*done=*/true);
        if (cancelled > 0)
            metricsRegistry.count("dieirb_streams_cancelled_total");

        Json summary = Json::object();
        summary.set("streamed", true);
        summary.set("total", static_cast<std::uint64_t>(results.size()));
        summary.set("cached", cached);
        summary.set("cancelled", cancelled);
        return summary;
    };

    const JobQueue::Ticket ticket =
        jobQueue->submit("sweep-stream", request_id, std::move(work));
    if (!ticket.accepted) {
        metricsRegistry.count("dieirb_jobs_rejected_total",
                              ticket.closed ? "reason=\"draining\""
                                            : "reason=\"queue_full\"");
        HttpResponse r = ticket.closed
            ? errorResponse(503, "server is draining")
            : errorResponse(429,
                            "job queue full (" +
                                std::to_string(jobQueue->capacity()) +
                                " outstanding); retry later");
        if (!ticket.closed)
            r.set("Retry-After", "1");
        r.set("X-Request-Id", request_id);
        sendResponse(conn, std::move(r), keep_alive, "/v1/sweep");
        return;
    }
    inform("[%s] POST /v1/sweep -> 200 (streaming, job %llu)",
           request_id.c_str(),
           static_cast<unsigned long long>(ticket.id));
}

void
Server::sendResponse(const std::shared_ptr<Conn> &conn,
                     HttpResponse resp, bool keep_alive,
                     const std::string &path_label)
{
    const std::string wire = resp.serialize(keep_alive);
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->pathLabel = path_label;
        conn->respStatus = resp.status;
        conn->closeAfter = !keep_alive;
        conn->out += wire;
        conn->outDone = true;
    }
    wakeLoop(conn);
}

void
Server::enqueueOutput(const std::shared_ptr<Conn> &conn,
                      const std::string &bytes, bool done)
{
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->out += bytes;
        if (done)
            conn->outDone = true;
    }
    wakeLoop(conn);
}

void
Server::wakeLoop(const std::shared_ptr<Conn> &conn)
{
    {
        std::lock_guard<std::mutex> lock(wakeMtx);
        wakeQueue.push_back(conn);
    }
    const std::uint64_t one = 1;
    // A full eventfd counter already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t r =
        ::write(wakeFd, &one, sizeof(one));
}

// ---------------------------------------------------------------------
// Request handlers (shared by the socket path and socket-free tests)
// ---------------------------------------------------------------------

HttpResponse
Server::route(const HttpRequest &req, std::string &request_id)
{
    const std::string *hdr = req.header("x-request-id");
    request_id = hdr && !hdr->empty()
        ? *hdr
        : "req-" + std::to_string(requestSeq.fetch_add(
              1, std::memory_order_relaxed));

    const std::string path = req.path();
    try {
        if (path == "/healthz") {
            if (req.method != "GET" && req.method != "HEAD")
                return methodNotAllowed("GET");
            return handleHealth();
        }
        if (path == "/metrics") {
            if (req.method != "GET" && req.method != "HEAD")
                return methodNotAllowed("GET");
            return handleMetrics();
        }
        if (path == "/v1/simulate") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleSimulate(req, request_id);
        }
        if (path == "/v1/sweep") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleSweep(req, request_id);
        }
        if (path.rfind("/v1/jobs/", 0) == 0) {
            if (req.method != "GET")
                return methodNotAllowed("GET");
            return handleJobGet(path);
        }
        return errorResponse(404, "no such endpoint: " + path);
    } catch (const FatalError &e) {
        // fatal() is the user-error channel everywhere in this repo;
        // over HTTP the user error is a bad request.
        return errorResponse(400, e.what());
    } catch (const std::exception &e) {
        return errorResponse(500, e.what());
    }
}

void
Server::rollupPoint(const harness::SweepResult &point)
{
    Metrics &m = metricsRegistry;
    m.count("dieirb_sim_points_total",
            std::string("status=\"") +
                harness::pointStatusName(point.status) + "\"");
    if (point.status == harness::PointStatus::Cancelled)
        return;
    if (point.fromCache) {
        m.count("dieirb_sweep_cache_hits_total");
    } else {
        m.count("dieirb_sweep_cache_misses_total");
    }
    m.count("dieirb_sim_cycles_total", "",
            static_cast<double>(point.sim.core.cycles));
    m.count("dieirb_sim_insts_total", "",
            static_cast<double>(point.sim.core.archInsts));
}

HttpResponse
Server::handleSimulate(const HttpRequest &req,
                       const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    const PointSpec spec = parsePoint(body, PointSpec{});
    const bool async = boolOr(body, "async", false);
    const bool withStats = boolOr(body, "stats", false);
    const bool useCache = boolOr(body, "cache", true);
    const unsigned deadlineMs = static_cast<unsigned>(
        uintOr(body, "deadline_ms", opts.defaultDeadlineMs));

    JobQueue::Work work = [this, spec, withStats, useCache]() -> Json {
        harness::Sweep sweep(1);
        sweep.setSharedPool(&corePool);
        Config cfg = harness::baseConfig(spec.mode);
        for (const auto &[key, value] : spec.overrides)
            cfg.set(key, value);
        if (useCache && !opts.cacheDir.empty())
            cfg.set("sweep.cache", opts.cacheDir);
        sweep.add(spec.name, spec.workload, std::move(cfg), spec.scale,
                  spec.maxInsts);
        const auto results = sweep.run(&stopping);
        rollupPoint(results[0]);
        return pointJson(results[0], withStats);
    };
    return dispatchJob("simulate", request_id, async, deadlineMs,
                       std::move(work));
}

HttpResponse
Server::handleSweep(const HttpRequest &req, const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    // Note: `"stream": true` is honoured on the socket path before
    // route() is ever called; here (socket-free tests, or any future
    // non-stream transport) it falls back to this buffered response.
    std::vector<PointSpec> specs = parseSweepSpecs(body);

    const bool async = boolOr(body, "async", false);
    const bool useCache = boolOr(body, "cache", true);
    const unsigned deadlineMs = static_cast<unsigned>(
        uintOr(body, "deadline_ms", opts.defaultDeadlineMs));

    JobQueue::Work work = [this, specs, useCache]() -> Json {
        harness::Sweep sweep(opts.sweepJobs);
        sweep.setSharedPool(&corePool);
        for (const PointSpec &spec : specs) {
            Config cfg = harness::baseConfig(spec.mode);
            for (const auto &[key, value] : spec.overrides)
                cfg.set(key, value);
            if (useCache && !opts.cacheDir.empty())
                cfg.set("sweep.cache", opts.cacheDir);
            sweep.add(spec.name, spec.workload, std::move(cfg),
                      spec.scale, spec.maxInsts);
        }
        const auto results = sweep.run(&stopping);

        Json out = Json::object();
        Json points = Json::array();
        std::uint64_t cached = 0;
        std::uint64_t cancelled = 0;
        for (const harness::SweepResult &r : results) {
            rollupPoint(r);
            cached += r.fromCache ? 1 : 0;
            cancelled +=
                r.status == harness::PointStatus::Cancelled ? 1 : 0;
            points.push(harness::resultJson(r));
        }
        out.set("total", static_cast<std::uint64_t>(results.size()));
        out.set("cached", cached);
        out.set("cancelled", cancelled);
        out.set("points", std::move(points));
        return out;
    };
    return dispatchJob("sweep", request_id, async, deadlineMs,
                       std::move(work));
}

HttpResponse
Server::dispatchJob(const char *kind, const std::string &request_id,
                    bool async, unsigned deadline_ms,
                    JobQueue::Work work)
{
    const JobQueue::Ticket ticket =
        jobQueue->submit(kind, request_id, std::move(work));
    if (!ticket.accepted) {
        metricsRegistry.count("dieirb_jobs_rejected_total",
                              ticket.closed ? "reason=\"draining\""
                                            : "reason=\"queue_full\"");
        if (ticket.closed)
            return errorResponse(503, "server is draining");
        HttpResponse r = errorResponse(
            429, "job queue full (" +
                     std::to_string(jobQueue->capacity()) +
                     " outstanding); retry later");
        r.set("Retry-After", "1");
        return r;
    }

    if (async) {
        Json j = Json::object();
        j.set("job", ticket.id);
        j.set("state", "queued");
        return HttpResponse(202, j.dump(2) + "\n");
    }

    JobRecord rec;
    const bool finished = jobQueue->wait(
        ticket.id, std::chrono::milliseconds(deadline_ms), rec);
    Json j = Json::object();
    j.set("job", ticket.id);
    j.set("state", jobStateName(rec.state));
    if (!finished) {
        // The job keeps running; the client polls /v1/jobs/<id>.
        j.set("deadline_exceeded", true);
        return HttpResponse(202, j.dump(2) + "\n");
    }
    if (rec.state == JobState::Failed) {
        j.set("error", rec.error);
        return HttpResponse(500, j.dump(2) + "\n");
    }
    j.set("result", rec.result);
    j.set("run_seconds", rec.runSeconds);
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleJobGet(const std::string &path)
{
    const std::string tail = path.substr(std::strlen("/v1/jobs/"));
    fatal_if(tail.empty() ||
                 tail.find_first_not_of("0123456789") !=
                     std::string::npos,
             "request: job id must be a decimal integer");
    const std::uint64_t id = std::strtoull(tail.c_str(), nullptr, 10);

    JobRecord rec;
    if (!jobQueue->lookup(id, rec))
        return errorResponse(404, "no such job " + tail);
    Json j = Json::object();
    j.set("job", rec.id);
    j.set("kind", rec.kind);
    j.set("request_id", rec.requestId);
    j.set("state", jobStateName(rec.state));
    if (rec.state == JobState::Failed)
        j.set("error", rec.error);
    if (rec.state == JobState::Done) {
        j.set("result", rec.result);
        j.set("run_seconds", rec.runSeconds);
    }
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleHealth()
{
    Json j = Json::object();
    j.set("status", draining() ? "draining" : "ok");
    j.set("queued", static_cast<std::uint64_t>(jobQueue->queued()));
    j.set("outstanding",
          static_cast<std::uint64_t>(jobQueue->outstanding()));
    j.set("workers", jobQueue->workers());
    j.set("busy", jobQueue->busyWorkers());
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleMetrics()
{
    Metrics &m = metricsRegistry;
    m.gauge("dieirb_queue_depth",
            static_cast<double>(jobQueue->queued()));
    m.gauge("dieirb_queue_capacity",
            static_cast<double>(jobQueue->capacity()));
    m.gauge("dieirb_workers", jobQueue->workers());
    m.gauge("dieirb_workers_busy", jobQueue->busyWorkers());
    m.gauge("dieirb_core_pool_constructions_total",
            static_cast<double>(corePool.constructions()));
    m.gauge("dieirb_core_pool_reuses_total",
            static_cast<double>(corePool.reuses()));

    HttpResponse r(200, m.render());
    r.set("Content-Type", "text/plain; version=0.0.4; charset=utf-8");
    return r;
}

void
Server::shutdown()
{
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) {
        // Someone else is (or was) draining; nothing further to do
        // beyond not racing them.
        return;
    }

    // 1. New jobs are rejected (503) — but status/metrics/job-polling
    //    requests already parsed still get answered below.
    jobQueue->close();

    // 2. Let the event loop drain: it stops accepting, cancels live
    //    streams' pending remainders, closes idle connections, writes
    //    out every in-flight response and exits once no connection is
    //    left. The eventfd nudge makes it notice `stopping` now.
    if (started) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t r =
            ::write(wakeFd, &one, sizeof(one));
        if (loopThread.joinable())
            loopThread.join();
    }

    // 3. Stop the dispatch pool: queued requests were all answered by
    //    the loop drain (a closed job queue means 503s, not hangs).
    {
        std::lock_guard<std::mutex> lock(dispatchMtx);
        dispatchClosed = true;
    }
    dispatchAvailable.notify_all();
    for (std::thread &t : dispatchers) {
        if (t.joinable())
            t.join();
    }

    // 4. Drain the job queue: accepted jobs finish (in-flight sweeps
    //    cancel their pending remainder via `stopping` or their
    //    connection token), workers join.
    jobQueue->drain();

    if (epollFd >= 0) {
        ::close(epollFd);
        epollFd = -1;
    }
    if (wakeFd >= 0) {
        ::close(wakeFd);
        wakeFd = -1;
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    stopped = true;
}

} // namespace service

} // namespace direb
