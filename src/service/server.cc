#include "service/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "service/io.hh"
#include "service/sweep_request.hh"
#include "store/checkpoint.hh"
#include "workloads/workloads.hh"

// Injected by src/service/CMakeLists.txt from `git describe` at
// configure time; tarball builds fall back to the placeholder.
#ifndef DIREB_GIT_DESCRIBE
#define DIREB_GIT_DESCRIBE "unknown"
#endif

namespace direb
{

namespace service
{

namespace
{

using harness::Json;

using Clock = std::chrono::steady_clock;

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

/** JSON error body + status; the uniform failure shape of the API. */
HttpResponse
errorResponse(int status, const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return HttpResponse(status, j.dump(0) + "\n");
}

HttpResponse
methodNotAllowed(const std::string &allow)
{
    HttpResponse r = errorResponse(405, "method not allowed");
    r.set("Allow", allow);
    return r;
}

/** The bounded path label used on request metrics. */
std::string
labelForPath(const std::string &path)
{
    if (path == "/healthz" || path == "/metrics" ||
        path == "/v1/simulate" || path == "/v1/sweep" ||
        path == "/v1/query") {
        return path;
    }
    if (path == "/v1/jobs" || path.rfind("/v1/jobs/", 0) == 0)
        return "/v1/jobs";
    return "other";
}

/** Point result JSON: the sweep shape plus program output. */
Json
pointJson(const harness::SweepResult &r, bool with_stats)
{
    Json j = harness::resultJson(r);
    j.set("output", r.sim.output);
    if (with_stats) {
        Json stats = Json::object();
        for (const auto &[name, value] : r.sim.stats)
            stats.set(name, value);
        j.set("stats", std::move(stats));
    }
    return j;
}

/** Does a sweep body opt into the chunked NDJSON streaming path? */
bool
wantsStream(const HttpRequest &req)
{
    try {
        const Json j = Json::parse(req.body);
        if (!j.isObject())
            return false;
        const Json *s = j.find("stream");
        return s && s->isBool() && s->asBool();
    } catch (const std::exception &) {
        return false; // route() will produce the proper 400
    }
}

} // namespace

/**
 * One live connection. The event loop owns the fd, the parser, the
 * input buffer and the state tag; producers (dispatch pool and job
 * workers) only ever touch the mtx-guarded output channel. `cancel` is
 * the per-connection cancellation token streaming sweeps poll — the
 * loop flips it on disconnect, shutdown flips it on drain.
 */
struct Server::Conn
{
    enum class St : std::uint8_t {
        Idle,    //!< keep-alive: waiting for the next request
        Reading, //!< request started, not yet fully parsed
        Busy,    //!< dispatched; response/stream being produced+written
    };

    int fd = -1;

    // loop-owned
    St st = St::Idle;
    HttpParser parser;
    std::string inBuf; //!< unconsumed (pipelined) bytes
    unsigned served = 0;
    bool writeArmed = false;    //!< EPOLLOUT registered
    bool writeDeadline = false; //!< wheel holds a stalled-write deadline
    Clock::time_point reqStart{};

    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);

    // producer <-> loop output channel, guarded by mtx
    std::mutex mtx;
    std::string out;
    std::size_t outOff = 0;
    bool outDone = false;    //!< producer finished this response
    bool closeAfter = false; //!< close instead of keep-alive reset
    bool dead = false;       //!< fd closed; producers must stop appending
    std::string pathLabel = "other";
    int respStatus = 0;
};

struct Server::DispatchItem
{
    std::shared_ptr<Conn> conn;
    HttpRequest req;
};

// ---------------------------------------------------------------------
// Stream: the writer side of one chunked response, thread-safe
// ---------------------------------------------------------------------

void
Server::Stream::respond(HttpResponse resp)
{
    resp.set("X-Request-Id", rid);
    srv->sendResponse(conn, std::move(resp), keep, label);
}

void
Server::Stream::begin(
    int status, const std::string &content_type,
    const std::vector<std::pair<std::string, std::string>>
        &extra_headers)
{
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->pathLabel = label;
        conn->respStatus = status;
        conn->closeAfter = !keep;
        auto headers = extra_headers;
        headers.emplace_back("X-Request-Id", rid);
        conn->out += streamHead(status, content_type, keep, headers);
    }
    srv->wakeLoop(conn);
}

void
Server::Stream::write(const std::string &payload)
{
    if (payload.empty())
        return;
    srv->enqueueOutput(conn, encodeChunk(payload), /*done=*/false);
}

void
Server::Stream::end()
{
    srv->enqueueOutput(conn, lastChunk(), /*done=*/true);
}

void
Server::Stream::fail()
{
    // No terminal chunk: the client's decoder sees the truncation. The
    // connection must close (chunk framing is unrecoverable mid-body).
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        conn->closeAfter = true;
        conn->outDone = true;
    }
    srv->wakeLoop(conn);
}

bool
Server::Stream::cancelled() const
{
    return conn->cancel->load(std::memory_order_relaxed);
}

const std::shared_ptr<std::atomic<bool>> &
Server::Stream::cancelToken() const
{
    return conn->cancel;
}

Server::Server(ServerOptions options) : opts(std::move(options))
{
    jobQueue = std::make_unique<JobQueue>(opts.queueDepth, opts.workers,
                                          opts.jobHistory);

    Metrics &m = metricsRegistry;
    m.describe("dieirb_http_requests_total", "counter",
               "HTTP requests by path and status code");
    m.describe("dieirb_http_request_seconds", "histogram",
               "first request byte to last response byte");
    m.describe("dieirb_http_read_seconds", "histogram",
               "first request byte to fully parsed request");
    m.describe("dieirb_http_connections_total", "counter",
               "connections accepted");
    m.describe("dieirb_http_active_connections", "gauge",
               "currently open connections");
    m.describe("dieirb_jobs_rejected_total", "counter",
               "jobs rejected by backpressure or drain");
    m.describe("dieirb_queue_depth", "gauge", "jobs waiting in the queue");
    m.describe("dieirb_queue_capacity", "gauge",
               "max outstanding jobs before 429");
    m.describe("dieirb_workers", "gauge", "simulation worker threads");
    m.describe("dieirb_workers_busy", "gauge",
               "workers currently running a job");
    m.describe("dieirb_streams_total", "counter",
               "streamed sweep responses started");
    m.describe("dieirb_streams_cancelled_total", "counter",
               "streamed sweeps whose remainder was cancelled");
    m.describe("dieirb_sweep_cache_hits_total", "counter",
               "sweep points restored from the result cache");
    m.describe("dieirb_sweep_cache_misses_total", "counter",
               "sweep points actually simulated");
    m.describe("dieirb_sim_points_total", "counter",
               "finished sweep points by status");
    m.describe("dieirb_sim_cycles_total", "counter",
               "simulated core cycles, all finished points");
    m.describe("dieirb_sim_insts_total", "counter",
               "committed architectural instructions, all points");
    m.describe("dieirb_core_pool_constructions_total", "counter",
               "cores constructed because the pool was empty");
    m.describe("dieirb_core_pool_reuses_total", "counter",
               "core acquisitions served by reset() reuse");
    m.describe("dieirb_store_artifacts", "gauge",
               "columnar store artifacts mounted for /v1/query");
    m.describe("dieirb_store_entries", "gauge",
               "columnar entries across all mounted artifacts");
    m.describe("dieirb_store_raw_files", "gauge",
               "verbatim (non-columnar) files across mounted artifacts");
    m.describe("dieirb_store_queries_total", "counter",
               "/v1/query requests answered");
    m.describe("dieirb_store_query_seconds", "histogram",
               "/v1/query evaluation time");
    m.describe("dieirb_store_checkpoint_restores_total", "counter",
               "architectural checkpoints applied to cores "
               "(warm-started sweep points and ckpt.restore runs)");

    // Mounting is load-once: the artifacts are immutable for the
    // server's lifetime, so /v1/query needs no locking and a corrupt
    // artifact fails the server at construction, not mid-query.
    for (const std::string &path : opts.storePaths)
        mountedStores.push_back(store::readArtifact(path));
}

Server::~Server() { shutdown(); }

void
Server::start()
{
    fatal_if(started, "server already started");

    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    fatal_if(listenFd < 0, "socket(): %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    fatal_if(::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1,
             "bad listen address '%s'", opts.host.c_str());
    fatal_if(::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) < 0,
             "cannot bind %s:%u: %s", opts.host.c_str(),
             static_cast<unsigned>(opts.port), std::strerror(errno));
    fatal_if(::listen(listenFd, 512) < 0, "listen(): %s",
             std::strerror(errno));

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);

    epollFd = ::epoll_create1(0);
    fatal_if(epollFd < 0, "epoll_create1(): %s", std::strerror(errno));
    wakeFd = ::eventfd(0, EFD_NONBLOCK);
    fatal_if(wakeFd < 0, "eventfd(): %s", std::strerror(errno));

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET; // edge: accept until EAGAIN
    ev.data.fd = listenFd;
    fatal_if(::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev) < 0,
             "epoll_ctl(listen): %s", std::strerror(errno));
    ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd;
    fatal_if(::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev) < 0,
             "epoll_ctl(wake): %s", std::strerror(errno));

    started = true;
    startTime = Clock::now();
    loopThread = std::thread([this] { eventLoop(); });
    const unsigned n = opts.httpThreads > 0 ? opts.httpThreads : 1;
    dispatchers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        dispatchers.emplace_back([this] { dispatchLoop(); });
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

void
Server::eventLoop()
{
    std::vector<epoll_event> events(128);
    for (;;) {
        const int timeout = wheel.pollTimeoutMs(200);
        const int n = ::epoll_wait(epollFd, events.data(),
                                   static_cast<int>(events.size()),
                                   timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("epoll_wait(): %s; event loop exiting",
                 std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakeFd) {
                std::uint64_t drained = 0;
                while (::read(wakeFd, &drained, sizeof(drained)) > 0) {}
                continue; // wakeQueue handled below
            }
            if (fd == listenFd) {
                acceptReady();
                continue;
            }
            const auto it = conns.find(fd);
            if (it != conns.end()) {
                // Copy: closeConn() erases the map slot this iterator
                // points into while callees still hold the pointer.
                const std::shared_ptr<Conn> conn = it->second;
                onConnEvent(conn, events[i].events);
            }
        }
        processWakeups();
        for (const int fd : wheel.expire(nowMs())) {
            const auto it = conns.find(fd);
            if (it != conns.end()) {
                const std::shared_ptr<Conn> conn = it->second;
                onDeadline(conn);
            }
        }
        if (stopping.load(std::memory_order_acquire) && !drainStarted)
            beginDrainInLoop();
        if (drainStarted && conns.empty())
            break;
    }
    // Abnormal exit (epoll failure): drop whatever is still open so
    // shutdown() can join without leaking fds.
    std::vector<std::shared_ptr<Conn>> leftovers;
    leftovers.reserve(conns.size());
    for (const auto &[fd, conn] : conns)
        leftovers.push_back(conn);
    for (const auto &conn : leftovers)
        closeConn(conn);
}

void
Server::acceptReady()
{
    for (;;) {
        const int fd =
            ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                !stopping.load(std::memory_order_relaxed)) {
                warn("accept(): %s", std::strerror(errno));
            }
            return;
        }
        if (drainStarted) {
            ::close(fd); // raced in after the drain began
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->parser = HttpParser(
            {/*maxHeaderBytes=*/64 * 1024, opts.maxBodyBytes});
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) < 0) {
            warn("epoll_ctl(conn): %s", std::strerror(errno));
            ::close(fd);
            continue;
        }
        conns.emplace(fd, conn);
        metricsRegistry.count("dieirb_http_connections_total");
        metricsRegistry.gauge("dieirb_http_active_connections",
                              static_cast<double>(conns.size()));
        wheel.schedule(fd, nowMs(), opts.idleTimeoutMs);
        pumpRead(conn); // edge-triggered: data may already be queued
    }
}

void
Server::onConnEvent(const std::shared_ptr<Conn> &conn,
                    std::uint32_t events)
{
    if (events & (EPOLLHUP | EPOLLERR)) {
        conn->cancel->store(true, std::memory_order_relaxed);
        closeConn(conn);
        return;
    }
    if (events & EPOLLRDHUP) {
        // The client stopped sending. For a streaming sweep this is
        // the disconnect signal that cancels the pending remainder;
        // writes keep going until they fail or finish (a half-closed
        // client may still be reading).
        conn->cancel->store(true, std::memory_order_relaxed);
    }
    if (events & EPOLLOUT)
        flushOut(conn);
    if (conn->fd < 0)
        return; // closed while flushing
    if (events & (EPOLLIN | EPOLLRDHUP)) {
        // While a response/stream is in production we deliberately do
        // not read: pipelined bytes wait in the kernel buffer and are
        // pulled in by completeResponse()'s pumpRead().
        if (conn->st != Conn::St::Busy)
            pumpRead(conn);
    }
}

void
Server::pumpRead(const std::shared_ptr<Conn> &conn)
{
    if (!feedParser(conn))
        return; // leftovers already completed a request (or an error)
    char buf[16384];
    for (;;) {
        const ssize_t n = io::readSome(conn->fd, buf, sizeof(buf));
        if (n > 0) {
            conn->inBuf.append(buf, static_cast<std::size_t>(n));
            if (!feedParser(conn))
                return;
            continue;
        }
        if (n == 0) { // EOF
            conn->cancel->store(true, std::memory_order_relaxed);
            if (conn->parser.started() &&
                conn->parser.status() == HttpParser::Status::NeedMore) {
                // Mid-request EOF: answer 408 on the off chance the
                // client half-closed and still reads.
                conn->st = Conn::St::Busy;
                wheel.cancel(conn->fd);
                sendResponse(conn,
                             errorResponse(408, "incomplete request"),
                             /*keep_alive=*/false, "other");
            } else {
                closeConn(conn);
            }
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return; // drained; epoll will tell us about the next bytes
        closeConn(conn); // ECONNRESET and friends
        return;
    }
}

/**
 * Feed buffered input to the parser. Returns false once this
 * connection stopped consuming reads: a complete request went to the
 * dispatch queue, a parser error response was queued, or the
 * connection died. Unconsumed pipelined bytes stay in inBuf for the
 * next request.
 */
bool
Server::feedParser(const std::shared_ptr<Conn> &conn)
{
    if (conn->inBuf.empty())
        return true;
    if (conn->st == Conn::St::Idle) {
        // First byte of a new request: latency timing starts HERE, so
        // slow-client read time is visible and a 408 records how long
        // we actually waited (not ~0s).
        conn->st = Conn::St::Reading;
        conn->reqStart = Clock::now();
        wheel.schedule(conn->fd, nowMs(), opts.socketTimeoutMs);
    }
    const std::size_t consumed =
        conn->parser.feed(conn->inBuf.data(), conn->inBuf.size());
    conn->inBuf.erase(0, consumed);

    switch (conn->parser.status()) {
      case HttpParser::Status::NeedMore:
        return true;
      case HttpParser::Status::Done: {
        const std::chrono::duration<double> readTime =
            Clock::now() - conn->reqStart;
        HttpRequest req = conn->parser.takeRequest();
        metricsRegistry.observe(
            "dieirb_http_read_seconds", readTime.count(),
            "path=\"" + labelForPath(req.path()) + "\"");
        conn->st = Conn::St::Busy;
        wheel.cancel(conn->fd);
        auto item = std::make_unique<DispatchItem>();
        item->conn = conn;
        item->req = std::move(req);
        {
            std::lock_guard<std::mutex> lock(dispatchMtx);
            dispatchQueue.push_back(std::move(item));
        }
        dispatchAvailable.notify_one();
        return false;
      }
      case HttpParser::Status::Error: {
        inform("[-] rejected request: %d %s",
               conn->parser.errorStatus(),
               conn->parser.errorReason().c_str());
        conn->st = Conn::St::Busy;
        wheel.cancel(conn->fd);
        sendResponse(conn,
                     errorResponse(conn->parser.errorStatus(),
                                   conn->parser.errorReason()),
                     /*keep_alive=*/false, "other");
        return false;
      }
    }
    return true; // unreachable
}

void
Server::flushOut(const std::shared_ptr<Conn> &conn)
{
    std::unique_lock<std::mutex> lock(conn->mtx);
    if (conn->dead)
        return;
    for (;;) {
        if (conn->outOff == conn->out.size()) {
            conn->out.clear();
            conn->outOff = 0;
            if (conn->outDone) {
                lock.unlock();
                completeResponse(conn);
                return;
            }
            // Mid-stream lull: nothing pending, so no EPOLLOUT and no
            // stalled-write deadline (the sweep bounds the stream).
            if (conn->writeArmed) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
                ev.data.fd = conn->fd;
                ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
                conn->writeArmed = false;
            }
            if (conn->writeDeadline) {
                wheel.cancel(conn->fd);
                conn->writeDeadline = false;
            }
            return;
        }
        const ssize_t n =
            io::writeSome(conn->fd, conn->out.data() + conn->outOff,
                          conn->out.size() - conn->outOff);
        if (n > 0) {
            conn->outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!conn->writeArmed) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET;
                ev.data.fd = conn->fd;
                ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
                conn->writeArmed = true;
            }
            // Any progress re-arms the stalled-write deadline.
            wheel.schedule(conn->fd, nowMs(), opts.socketTimeoutMs);
            conn->writeDeadline = true;
            return;
        }
        // EPIPE/ECONNRESET: the client is gone. Cancel any stream
        // still producing for this connection and drop it.
        conn->cancel->store(true, std::memory_order_relaxed);
        lock.unlock();
        closeConn(conn);
        return;
    }
}

void
Server::completeResponse(const std::shared_ptr<Conn> &conn)
{
    // The producer is done with this response (outDone was set), so
    // the shared fields are stable without the lock.
    const std::chrono::duration<double> elapsed =
        Clock::now() - conn->reqStart;
    metricsRegistry.count("dieirb_http_requests_total",
                          "path=\"" + conn->pathLabel + "\",code=\"" +
                              std::to_string(conn->respStatus) + "\"");
    metricsRegistry.observe("dieirb_http_request_seconds",
                            elapsed.count(),
                            "path=\"" + conn->pathLabel + "\"");
    ++conn->served;
    if (conn->closeAfter || drainStarted) {
        closeConn(conn);
        return;
    }
    conn->st = Conn::St::Idle;
    conn->parser.reset();
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        conn->outDone = false;
        conn->pathLabel = "other";
        conn->respStatus = 0;
    }
    wheel.schedule(conn->fd, nowMs(), opts.idleTimeoutMs);
    // Pipelined leftovers (or bytes that arrived while we were busy —
    // edge-triggered epoll will not re-announce them) seed the next
    // request immediately.
    pumpRead(conn);
}

void
Server::closeConn(const std::shared_ptr<Conn> &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->dead = true;
    }
    conn->cancel->store(true, std::memory_order_relaxed);
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    wheel.cancel(conn->fd);
    conns.erase(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
    metricsRegistry.gauge("dieirb_http_active_connections",
                          static_cast<double>(conns.size()));
}

void
Server::onDeadline(const std::shared_ptr<Conn> &conn)
{
    switch (conn->st) {
      case Conn::St::Idle:
        closeConn(conn); // keep-alive idle expiry: close silently
        return;
      case Conn::St::Reading:
        // Slow client: the request never completed within the read
        // deadline. 408 carries the real elapsed time into the
        // latency histogram because reqStart began at the first byte.
        conn->st = Conn::St::Busy;
        sendResponse(conn, errorResponse(408, "incomplete request"),
                     /*keep_alive=*/false, "other");
        return;
      case Conn::St::Busy:
        // Only armed while output is pending: a stalled write.
        closeConn(conn);
        return;
    }
}

void
Server::processWakeups()
{
    std::vector<std::shared_ptr<Conn>> ready;
    {
        std::lock_guard<std::mutex> lock(wakeMtx);
        ready.swap(wakeQueue);
    }
    for (const auto &conn : ready)
        flushOut(conn);
}

void
Server::beginDrainInLoop()
{
    drainStarted = true;
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        ::close(listenFd);
        listenFd = -1;
    }
    // Cancel every live stream's pending remainder and drop idle
    // keep-alive connections; in-flight requests run to completion
    // (their conns leave the map as their responses finish).
    std::vector<std::shared_ptr<Conn>> idle;
    for (const auto &[fd, conn] : conns) {
        conn->cancel->store(true, std::memory_order_relaxed);
        if (conn->st == Conn::St::Idle)
            idle.push_back(conn);
    }
    for (const auto &conn : idle)
        closeConn(conn);
}

// ---------------------------------------------------------------------
// Producer side: dispatch pool and streaming jobs
// ---------------------------------------------------------------------

void
Server::dispatchLoop()
{
    for (;;) {
        std::unique_ptr<DispatchItem> item;
        {
            std::unique_lock<std::mutex> lock(dispatchMtx);
            dispatchAvailable.wait(lock, [this] {
                return !dispatchQueue.empty() || dispatchClosed;
            });
            if (dispatchQueue.empty()) {
                if (dispatchClosed)
                    return;
                continue;
            }
            item = std::move(dispatchQueue.front());
            dispatchQueue.pop_front();
        }
        processRequest(item->conn, item->req);
    }
}

void
Server::processRequest(const std::shared_ptr<Conn> &conn,
                       const HttpRequest &req)
{
    const std::string label = labelForPath(req.path());
    // served is stable here: the loop only advances it between
    // requests, and this request is still in flight.
    const bool keepAlive =
        req.wantsKeepAlive() &&
        (opts.keepAliveMaxRequests == 0 ||
         conn->served + 1 < opts.keepAliveMaxRequests) &&
        !stopping.load(std::memory_order_relaxed) &&
        req.method != "HEAD"; // we answer HEAD with a body: must close

    if (req.method == "POST" && req.path() == "/v1/sweep" &&
        wantsStream(req)) {
        const std::string *hdr = req.header("x-request-id");
        auto stream = std::make_shared<Stream>();
        stream->srv = this;
        stream->conn = conn;
        stream->keep = keepAlive;
        stream->rid = hdr && !hdr->empty()
            ? *hdr
            : "req-" + std::to_string(requestSeq.fetch_add(
                  1, std::memory_order_relaxed));
        // A front-end hook (the coordinator) gets first claim on the
        // stream; otherwise the built-in sweep handler drives it.
        if (hooks.stream && hooks.stream(req, stream))
            return;
        handleSweepStream(req, stream);
        return;
    }

    std::string rid;
    HttpResponse resp = route(req, rid);
    if (!rid.empty())
        resp.set("X-Request-Id", rid);
    inform("[%s] %s %s -> %d", rid.c_str(), req.method.c_str(),
           req.target.c_str(), resp.status);
    sendResponse(conn, std::move(resp), keepAlive, label);
}

void
Server::handleSweepStream(const HttpRequest &req,
                          const StreamPtr &stream)
{
    std::vector<PointSpec> specs;
    bool useCache = true;
    try {
        const Json body = Json::parse(req.body);
        fatal_if(!body.isObject(), "request: body must be a JSON object");
        fatal_if(jsonBoolOr(body, "async", false),
                 "request: stream and async are mutually exclusive");
        specs = parseSweepSpecs(body);
        useCache = jsonBoolOr(body, "cache", true);
    } catch (const FatalError &e) {
        stream->respond(errorResponse(400, e.what()));
        return;
    } catch (const std::exception &e) {
        stream->respond(errorResponse(500, e.what()));
        return;
    }

    // The whole stream is produced by the job worker: response head
    // first, then one NDJSON line per point in deterministic enqueue
    // order as the completed prefix grows, then the summary line and
    // the terminal chunk. The connection's cancellation token makes a
    // client disconnect (or a server drain) cancel the pending
    // remainder exactly like SIGTERM does for buffered sweeps.
    JobQueue::Work work = [this, stream, specs = std::move(specs),
                           useCache]() -> Json {
        metricsRegistry.count("dieirb_streams_total");
        stream->begin(200, "application/x-ndjson");

        harness::Sweep sweep(opts.sweepJobs);
        sweep.setSharedPool(&corePool);
        for (const PointSpec &spec : specs) {
            Config cfg = harness::baseConfig(spec.mode);
            for (const auto &[key, value] : spec.overrides)
                cfg.set(key, value);
            if (useCache && !opts.cacheDir.empty())
                cfg.set("sweep.cache", opts.cacheDir);
            sweep.add(spec.name, spec.workload, std::move(cfg),
                      spec.scale, spec.maxInsts);
        }
        auto cancel = stream->cancelToken();
        if (stopping.load(std::memory_order_relaxed))
            cancel->store(true, std::memory_order_relaxed);

        std::uint64_t cached = 0;
        std::uint64_t cancelled = 0;
        std::vector<harness::SweepResult> results;
        try {
            results = sweep.run(
                cancel.get(),
                [&](const harness::SweepResult &r, std::size_t) {
                    rollupPoint(r);
                    cached += r.fromCache ? 1 : 0;
                    cancelled +=
                        r.status == harness::PointStatus::Cancelled ? 1
                                                                    : 0;
                    stream->write(harness::resultJson(r).dump(0) + "\n");
                });
        } catch (...) {
            // Close the chunk framing so the client sees a terminated
            // (if truncated) stream, then let the job record the error.
            stream->end();
            throw;
        }

        Json done = Json::object();
        done.set("done", true);
        done.set("total", static_cast<std::uint64_t>(results.size()));
        done.set("cached", cached);
        done.set("cancelled", cancelled);
        stream->write(done.dump(0) + "\n");
        stream->end();
        if (cancelled > 0)
            metricsRegistry.count("dieirb_streams_cancelled_total");

        Json summary = Json::object();
        summary.set("streamed", true);
        summary.set("total", static_cast<std::uint64_t>(results.size()));
        summary.set("cached", cached);
        summary.set("cancelled", cancelled);
        return summary;
    };

    const JobQueue::Ticket ticket = jobQueue->submit(
        "sweep-stream", stream->requestId(), std::move(work));
    if (!ticket.accepted) {
        metricsRegistry.count("dieirb_jobs_rejected_total",
                              ticket.closed ? "reason=\"draining\""
                                            : "reason=\"queue_full\"");
        HttpResponse r = ticket.closed
            ? errorResponse(503, "server is draining")
            : errorResponse(429,
                            "job queue full (" +
                                std::to_string(jobQueue->capacity()) +
                                " outstanding); retry later");
        if (!ticket.closed)
            r.set("Retry-After", "1");
        stream->respond(std::move(r));
        return;
    }
    inform("[%s] POST /v1/sweep -> 200 (streaming, job %llu)",
           stream->requestId().c_str(),
           static_cast<unsigned long long>(ticket.id));
}

void
Server::sendResponse(const std::shared_ptr<Conn> &conn,
                     HttpResponse resp, bool keep_alive,
                     const std::string &path_label)
{
    const std::string wire = resp.serialize(keep_alive);
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->pathLabel = path_label;
        conn->respStatus = resp.status;
        conn->closeAfter = !keep_alive;
        conn->out += wire;
        conn->outDone = true;
    }
    wakeLoop(conn);
}

void
Server::enqueueOutput(const std::shared_ptr<Conn> &conn,
                      const std::string &bytes, bool done)
{
    {
        std::lock_guard<std::mutex> lock(conn->mtx);
        if (conn->dead)
            return;
        conn->out += bytes;
        if (done)
            conn->outDone = true;
    }
    wakeLoop(conn);
}

void
Server::wakeLoop(const std::shared_ptr<Conn> &conn)
{
    {
        std::lock_guard<std::mutex> lock(wakeMtx);
        wakeQueue.push_back(conn);
    }
    const std::uint64_t one = 1;
    // A full eventfd counter already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t r =
        ::write(wakeFd, &one, sizeof(one));
}

// ---------------------------------------------------------------------
// Request handlers (shared by the socket path and socket-free tests)
// ---------------------------------------------------------------------

HttpResponse
Server::route(const HttpRequest &req, std::string &request_id)
{
    const std::string *hdr = req.header("x-request-id");
    request_id = hdr && !hdr->empty()
        ? *hdr
        : "req-" + std::to_string(requestSeq.fetch_add(
              1, std::memory_order_relaxed));

    const std::string path = req.path();
    try {
        if (hooks.route) {
            HttpResponse resp;
            if (hooks.route(req, request_id, resp))
                return resp;
        }
        if (path == "/healthz") {
            if (req.method != "GET" && req.method != "HEAD")
                return methodNotAllowed("GET");
            return handleHealth(req);
        }
        if (path == "/metrics") {
            if (req.method != "GET" && req.method != "HEAD")
                return methodNotAllowed("GET");
            return handleMetrics();
        }
        if (path == "/v1/simulate") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleSimulate(req, request_id);
        }
        if (path == "/v1/sweep") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleSweep(req, request_id);
        }
        if (path == "/v1/query") {
            if (req.method != "POST")
                return methodNotAllowed("POST");
            return handleQuery(req);
        }
        if (path == "/v1/jobs") {
            if (req.method != "GET")
                return methodNotAllowed("GET");
            return handleJobList(req);
        }
        if (path.rfind("/v1/jobs/", 0) == 0) {
            if (req.method != "GET")
                return methodNotAllowed("GET");
            return handleJobGet(path);
        }
        return errorResponse(404, "no such endpoint: " + path);
    } catch (const FatalError &e) {
        // fatal() is the user-error channel everywhere in this repo;
        // over HTTP the user error is a bad request.
        return errorResponse(400, e.what());
    } catch (const std::exception &e) {
        return errorResponse(500, e.what());
    }
}

void
Server::rollupPoint(const harness::SweepResult &point)
{
    Metrics &m = metricsRegistry;
    m.count("dieirb_sim_points_total",
            std::string("status=\"") +
                harness::pointStatusName(point.status) + "\"");
    if (point.status == harness::PointStatus::Cancelled)
        return;
    if (point.fromCache) {
        m.count("dieirb_sweep_cache_hits_total");
    } else {
        m.count("dieirb_sweep_cache_misses_total");
    }
    m.count("dieirb_sim_cycles_total", "",
            static_cast<double>(point.sim.core.cycles));
    m.count("dieirb_sim_insts_total", "",
            static_cast<double>(point.sim.core.archInsts));
}

HttpResponse
Server::handleSimulate(const HttpRequest &req,
                       const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    const PointSpec spec = parsePoint(body, PointSpec{});
    const bool async = jsonBoolOr(body, "async", false);
    const bool withStats = jsonBoolOr(body, "stats", false);
    const bool useCache = jsonBoolOr(body, "cache", true);
    const unsigned deadlineMs = static_cast<unsigned>(
        jsonUintOr(body, "deadline_ms", opts.defaultDeadlineMs));

    JobQueue::Work work = [this, spec, withStats, useCache]() -> Json {
        harness::Sweep sweep(1);
        sweep.setSharedPool(&corePool);
        Config cfg = harness::baseConfig(spec.mode);
        for (const auto &[key, value] : spec.overrides)
            cfg.set(key, value);
        if (useCache && !opts.cacheDir.empty())
            cfg.set("sweep.cache", opts.cacheDir);
        sweep.add(spec.name, spec.workload, std::move(cfg), spec.scale,
                  spec.maxInsts);
        const auto results = sweep.run(&stopping);
        rollupPoint(results[0]);
        return pointJson(results[0], withStats);
    };
    return dispatchJob("simulate", request_id, async, deadlineMs,
                       std::move(work));
}

HttpResponse
Server::handleSweep(const HttpRequest &req, const std::string &request_id)
{
    const Json body = Json::parse(req.body);
    fatal_if(!body.isObject(), "request: body must be a JSON object");
    // Note: `"stream": true` is honoured on the socket path before
    // route() is ever called; here (socket-free tests, or any future
    // non-stream transport) it falls back to this buffered response.
    std::vector<PointSpec> specs = parseSweepSpecs(body);

    const bool async = jsonBoolOr(body, "async", false);
    const bool useCache = jsonBoolOr(body, "cache", true);
    const unsigned deadlineMs = static_cast<unsigned>(
        jsonUintOr(body, "deadline_ms", opts.defaultDeadlineMs));

    JobQueue::Work work = [this, specs, useCache]() -> Json {
        harness::Sweep sweep(opts.sweepJobs);
        sweep.setSharedPool(&corePool);
        for (const PointSpec &spec : specs) {
            Config cfg = harness::baseConfig(spec.mode);
            for (const auto &[key, value] : spec.overrides)
                cfg.set(key, value);
            if (useCache && !opts.cacheDir.empty())
                cfg.set("sweep.cache", opts.cacheDir);
            sweep.add(spec.name, spec.workload, std::move(cfg),
                      spec.scale, spec.maxInsts);
        }
        const auto results = sweep.run(&stopping);

        Json out = Json::object();
        Json points = Json::array();
        std::uint64_t cached = 0;
        std::uint64_t cancelled = 0;
        for (const harness::SweepResult &r : results) {
            rollupPoint(r);
            cached += r.fromCache ? 1 : 0;
            cancelled +=
                r.status == harness::PointStatus::Cancelled ? 1 : 0;
            points.push(harness::resultJson(r));
        }
        out.set("total", static_cast<std::uint64_t>(results.size()));
        out.set("cached", cached);
        out.set("cancelled", cancelled);
        out.set("points", std::move(points));
        return out;
    };
    return dispatchJob("sweep", request_id, async, deadlineMs,
                       std::move(work));
}

HttpResponse
Server::dispatchJob(const char *kind, const std::string &request_id,
                    bool async, unsigned deadline_ms,
                    JobQueue::Work work)
{
    const JobQueue::Ticket ticket =
        jobQueue->submit(kind, request_id, std::move(work));
    if (!ticket.accepted) {
        metricsRegistry.count("dieirb_jobs_rejected_total",
                              ticket.closed ? "reason=\"draining\""
                                            : "reason=\"queue_full\"");
        if (ticket.closed)
            return errorResponse(503, "server is draining");
        HttpResponse r = errorResponse(
            429, "job queue full (" +
                     std::to_string(jobQueue->capacity()) +
                     " outstanding); retry later");
        r.set("Retry-After", "1");
        return r;
    }

    if (async) {
        Json j = Json::object();
        j.set("job", ticket.id);
        j.set("state", "queued");
        return HttpResponse(202, j.dump(2) + "\n");
    }

    JobRecord rec;
    const bool finished = jobQueue->wait(
        ticket.id, std::chrono::milliseconds(deadline_ms), rec);
    Json j = Json::object();
    j.set("job", ticket.id);
    j.set("state", jobStateName(rec.state));
    if (!finished) {
        // The job keeps running; the client polls /v1/jobs/<id>.
        j.set("deadline_exceeded", true);
        return HttpResponse(202, j.dump(2) + "\n");
    }
    if (rec.state == JobState::Failed) {
        j.set("error", rec.error);
        return HttpResponse(500, j.dump(2) + "\n");
    }
    j.set("result", rec.result);
    j.set("run_seconds", rec.runSeconds);
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleJobGet(const std::string &path)
{
    const std::string tail = path.substr(std::strlen("/v1/jobs/"));
    fatal_if(tail.empty() ||
                 tail.find_first_not_of("0123456789") !=
                     std::string::npos,
             "request: job id must be a decimal integer");
    const std::uint64_t id = std::strtoull(tail.c_str(), nullptr, 10);

    JobRecord rec;
    if (!jobQueue->lookup(id, rec))
        return errorResponse(404, "no such job " + tail);
    Json j = Json::object();
    j.set("job", rec.id);
    j.set("kind", rec.kind);
    j.set("request_id", rec.requestId);
    j.set("state", jobStateName(rec.state));
    if (rec.state == JobState::Failed)
        j.set("error", rec.error);
    if (rec.state == JobState::Done) {
        j.set("result", rec.result);
        j.set("run_seconds", rec.runSeconds);
    }
    return HttpResponse(200, j.dump(2) + "\n");
}

HttpResponse
Server::handleJobList(const HttpRequest &req)
{
    std::size_t limit = 50;
    const std::size_t q = req.target.find('?');
    if (q != std::string::npos) {
        // Only ?limit=N is recognised; anything else is ignored so
        // probes with stray parameters still get an answer.
        std::string query = req.target.substr(q + 1);
        for (std::size_t pos = 0; pos < query.size();) {
            std::size_t amp = query.find('&', pos);
            if (amp == std::string::npos)
                amp = query.size();
            const std::string param = query.substr(pos, amp - pos);
            pos = amp + 1;
            if (param.rfind("limit=", 0) != 0)
                continue;
            const std::string val = param.substr(std::strlen("limit="));
            fatal_if(val.empty() ||
                         val.find_first_not_of("0123456789") !=
                             std::string::npos,
                     "request: limit must be a decimal integer");
            limit = static_cast<std::size_t>(
                std::strtoull(val.c_str(), nullptr, 10));
        }
    }
    fatal_if(limit < 1 || limit > 1000,
             "request: limit must be in [1, 1000]");

    Json jobs = Json::array();
    for (const JobRecord &rec : jobQueue->list(limit)) {
        // Status only — result payloads stay behind /v1/jobs/<id>, so
        // the listing is cheap even with big sweep results in history.
        Json j = Json::object();
        j.set("job", rec.id);
        j.set("kind", rec.kind);
        j.set("request_id", rec.requestId);
        j.set("state", jobStateName(rec.state));
        if (rec.state == JobState::Failed)
            j.set("error", rec.error);
        if (rec.finished())
            j.set("run_seconds", rec.runSeconds);
        jobs.push(std::move(j));
    }
    Json out = Json::object();
    out.set("count", static_cast<std::uint64_t>(jobs.size()));
    out.set("jobs", std::move(jobs));
    return HttpResponse(200, out.dump(2) + "\n");
}

HttpResponse
Server::handleQuery(const HttpRequest &req)
{
    if (mountedStores.empty()) {
        return errorResponse(404,
                             "no result stores mounted (start with "
                             "--store <artifact>)");
    }
    const auto t0 = Clock::now();
    // parseQuery fatals on malformed requests; route() maps that
    // FatalError to the 400 every other endpoint uses.
    const store::QueryRequest q = store::parseQuery(Json::parse(req.body));
    std::vector<const store::Artifact *> stores;
    stores.reserve(mountedStores.size());
    for (const store::Artifact &a : mountedStores)
        stores.push_back(&a);
    const Json out = store::runQuery(stores, q);
    const std::chrono::duration<double> dt = Clock::now() - t0;
    metricsRegistry.count("dieirb_store_queries_total");
    metricsRegistry.observe("dieirb_store_query_seconds", dt.count());
    return HttpResponse(200, out.dump(2, /*full_precision=*/true) + "\n");
}

harness::Json
Server::healthJson() const
{
    const std::chrono::duration<double> up = Clock::now() - startTime;
    Json j = Json::object();
    j.set("status", draining() ? "draining" : "ok");
    j.set("mode", opts.modeName);
    j.set("version", DIREB_GIT_DESCRIBE);
    j.set("uptime_seconds", started ? up.count() : 0.0);
    j.set("queued", static_cast<std::uint64_t>(jobQueue->queued()));
    j.set("outstanding",
          static_cast<std::uint64_t>(jobQueue->outstanding()));
    j.set("workers", jobQueue->workers());
    j.set("busy", jobQueue->busyWorkers());
    // Only present when stores are mounted, so the established health
    // document shape is unchanged on store-less servers.
    if (!mountedStores.empty()) {
        std::size_t entries = 0;
        for (const store::Artifact &a : mountedStores)
            entries += a.entries.size();
        j.set("stores",
              static_cast<std::uint64_t>(mountedStores.size()));
        j.set("store_entries", static_cast<std::uint64_t>(entries));
    }
    return j;
}

HttpResponse
Server::handleHealth(const HttpRequest &req)
{
    // Legacy HTTP/1.0 probes that ask for plain text (busybox wget,
    // haproxy `option httpchk`) get the two-word body they can match
    // on; everything else gets the JSON health document.
    const std::string *accept = req.header("accept");
    if (req.version == "HTTP/1.0" && accept &&
        accept->find("text/plain") != std::string::npos) {
        HttpResponse r(200, draining() ? "draining\n" : "ok\n");
        r.set("Content-Type", "text/plain; charset=utf-8");
        return r;
    }
    return HttpResponse(200, healthJson().dump(2) + "\n");
}

HttpResponse
Server::handleMetrics()
{
    Metrics &m = metricsRegistry;
    m.gauge("dieirb_queue_depth",
            static_cast<double>(jobQueue->queued()));
    m.gauge("dieirb_queue_capacity",
            static_cast<double>(jobQueue->capacity()));
    m.gauge("dieirb_workers", jobQueue->workers());
    m.gauge("dieirb_workers_busy", jobQueue->busyWorkers());
    m.gauge("dieirb_core_pool_constructions_total",
            static_cast<double>(corePool.constructions()));
    m.gauge("dieirb_core_pool_reuses_total",
            static_cast<double>(corePool.reuses()));
    std::size_t entries = 0, rawFiles = 0;
    for (const store::Artifact &a : mountedStores) {
        entries += a.entries.size();
        rawFiles += a.rawFiles.size();
    }
    m.gauge("dieirb_store_artifacts",
            static_cast<double>(mountedStores.size()));
    m.gauge("dieirb_store_entries", static_cast<double>(entries));
    m.gauge("dieirb_store_raw_files", static_cast<double>(rawFiles));
    // The restore count lives in a process-wide atomic (the harness has
    // no handle on the server); export the delta since the last scrape
    // so the counter stays monotone even with concurrent scrapes.
    const std::uint64_t restores = store::checkpointRestores();
    const std::uint64_t prev = lastCkptRestores.exchange(restores);
    if (restores > prev) {
        m.count("dieirb_store_checkpoint_restores_total", "",
                static_cast<double>(restores - prev));
    } else {
        m.count("dieirb_store_checkpoint_restores_total", "", 0.0);
    }

    HttpResponse r(200, m.render());
    r.set("Content-Type", "text/plain; version=0.0.4; charset=utf-8");
    return r;
}

void
Server::shutdown()
{
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) {
        // Someone else is (or was) draining; nothing further to do
        // beyond not racing them.
        return;
    }

    // 1. New jobs are rejected (503) — but status/metrics/job-polling
    //    requests already parsed still get answered below.
    jobQueue->close();

    // 2. Let the event loop drain: it stops accepting, cancels live
    //    streams' pending remainders, closes idle connections, writes
    //    out every in-flight response and exits once no connection is
    //    left. The eventfd nudge makes it notice `stopping` now.
    if (started) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t r =
            ::write(wakeFd, &one, sizeof(one));
        if (loopThread.joinable())
            loopThread.join();
    }

    // 3. Stop the dispatch pool: queued requests were all answered by
    //    the loop drain (a closed job queue means 503s, not hangs).
    {
        std::lock_guard<std::mutex> lock(dispatchMtx);
        dispatchClosed = true;
    }
    dispatchAvailable.notify_all();
    for (std::thread &t : dispatchers) {
        if (t.joinable())
            t.join();
    }

    // 4. Drain the job queue: accepted jobs finish (in-flight sweeps
    //    cancel their pending remainder via `stopping` or their
    //    connection token), workers join.
    jobQueue->drain();

    if (epollFd >= 0) {
        ::close(epollFd);
        epollFd = -1;
    }
    if (wakeFd >= 0) {
        ::close(wakeFd);
        wakeFd = -1;
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    stopped = true;
}

} // namespace service

} // namespace direb
