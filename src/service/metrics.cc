#include "service/metrics.hh"

#include <cmath>
#include <cstdio>

namespace direb
{

namespace service
{

namespace
{

/**
 * Render a sample value the way Prometheus expects: integers without a
 * fractional part, everything else with enough digits to round-trip.
 */
std::string
sample(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string
withLabels(const std::string &name, const std::string &labels)
{
    if (labels.empty())
        return name;
    return name + "{" + labels + "}";
}

/** Merge a series' labels with a histogram le="..." label. */
std::string
withLe(const std::string &labels, const std::string &le)
{
    if (labels.empty())
        return "le=\"" + le + "\"";
    return labels + ",le=\"" + le + "\"";
}

} // namespace

const std::vector<double> &
Metrics::buckets()
{
    static const std::vector<double> bounds = {
        0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0, 60.0,
    };
    return bounds;
}

Metrics::Family &
Metrics::family(const std::string &name)
{
    return families[name]; // default family: untyped until describe()
}

void
Metrics::describe(const std::string &name, const std::string &type,
                  const std::string &help)
{
    std::lock_guard<std::mutex> lock(mtx);
    Family &fam = family(name);
    fam.type = type;
    fam.help = help;
}

void
Metrics::count(const std::string &name, const std::string &labels,
               double delta)
{
    std::lock_guard<std::mutex> lock(mtx);
    family(name).series[labels] += delta;
}

void
Metrics::gauge(const std::string &name, double value,
               const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mtx);
    family(name).series[labels] = value;
}

void
Metrics::observe(const std::string &name, double value,
                 const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mtx);
    Histogram &h = family(name).histograms[labels];
    if (h.bucketCounts.empty())
        h.bucketCounts.assign(buckets().size(), 0);
    for (std::size_t i = 0; i < buckets().size(); ++i) {
        if (value <= buckets()[i])
            ++h.bucketCounts[i];
    }
    h.sum += value;
    ++h.observations;
}

std::string
Metrics::render() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::string out;
    for (const auto &[name, fam] : families) {
        if (!fam.help.empty())
            out += "# HELP " + name + " " + fam.help + "\n";
        if (!fam.type.empty())
            out += "# TYPE " + name + " " + fam.type + "\n";
        for (const auto &[labels, value] : fam.series)
            out += withLabels(name, labels) + " " + sample(value) + "\n";
        for (const auto &[labels, hist] : fam.histograms) {
            for (std::size_t i = 0; i < buckets().size(); ++i) {
                char le[32];
                std::snprintf(le, sizeof(le), "%g", buckets()[i]);
                out += name + "_bucket{" + withLe(labels, le) + "} " +
                       sample(static_cast<double>(hist.bucketCounts[i])) +
                       "\n";
            }
            out += name + "_bucket{" + withLe(labels, "+Inf") + "} " +
                   sample(static_cast<double>(hist.observations)) + "\n";
            out += withLabels(name + "_sum", labels) + " " +
                   sample(hist.sum) + "\n";
            out += withLabels(name + "_count", labels) + " " +
                   sample(static_cast<double>(hist.observations)) + "\n";
        }
    }
    return out;
}

} // namespace service

} // namespace direb
