#include "service/job_queue.hh"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/logging.hh"

namespace direb
{

namespace service
{

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
    }
    return "?";
}

JobQueue::JobQueue(std::size_t capacity, unsigned workers,
                   std::size_t history)
    : cap(capacity > 0 ? capacity : 1), historyLimit(history)
{
    unsigned n = workers;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw > 0 ? hw : 1;
    }
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back([this] { workerLoop(); });
}

JobQueue::~JobQueue() { drain(); }

JobQueue::Ticket
JobQueue::submit(std::string kind, std::string request_id, Work work)
{
    Ticket ticket;
    std::lock_guard<std::mutex> lock(mtx);
    if (closed) {
        ticket.closed = true;
        ++numRejected;
        return ticket;
    }
    if (outstandingJobs >= cap) {
        ++numRejected;
        return ticket;
    }
    ticket.id = nextId++;
    ticket.accepted = true;
    Slot &slot = slots[ticket.id];
    slot.record.id = ticket.id;
    slot.record.kind = std::move(kind);
    slot.record.requestId = std::move(request_id);
    slot.record.state = JobState::Queued;
    slot.work = std::move(work);
    pending.push_back(ticket.id);
    ++outstandingJobs;
    ++numAccepted;
    workAvailable.notify_one();
    return ticket;
}

void
JobQueue::workerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    for (;;) {
        workAvailable.wait(lock,
                           [this] { return !pending.empty() || closed; });
        if (pending.empty()) {
            if (closed)
                return; // drained: nothing queued, never will be
            continue;
        }
        const std::uint64_t id = pending.front();
        pending.pop_front();
        // std::map nodes are stable, so the Slot reference survives the
        // unlocked region while other threads submit/lookup.
        Slot &slot = slots[id];
        slot.record.state = JobState::Running;
        Work work = std::move(slot.work);
        ++busy;
        lock.unlock();

        harness::Json result;
        std::string error;
        bool ok = true;
        const auto start = std::chrono::steady_clock::now();
        try {
            result = work();
        } catch (const std::exception &e) {
            ok = false;
            error = e.what();
        } catch (...) {
            ok = false;
            error = "unknown exception";
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        lock.lock();
        --busy;
        --outstandingJobs;
        slot.record.state = ok ? JobState::Done : JobState::Failed;
        slot.record.result = std::move(result);
        slot.record.error = std::move(error);
        slot.record.runSeconds = elapsed.count();
        ++(ok ? numCompleted : numFailed);
        finishedOrder.push_back(id);
        trimHistoryLocked();
        jobFinished.notify_all();
    }
}

void
JobQueue::trimHistoryLocked()
{
    while (finishedOrder.size() > historyLimit) {
        slots.erase(finishedOrder.front());
        finishedOrder.pop_front();
    }
}

std::vector<JobRecord>
JobQueue::list(std::size_t limit) const
{
    std::vector<JobRecord> out;
    std::lock_guard<std::mutex> lock(mtx);
    out.reserve(std::min(limit, slots.size()));
    // slots is keyed by monotonically assigned id, so reverse map order
    // IS newest-first.
    for (auto it = slots.rbegin();
         it != slots.rend() && out.size() < limit; ++it) {
        out.push_back(it->second.record);
    }
    return out;
}

bool
JobQueue::lookup(std::uint64_t id, JobRecord &out) const
{
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = slots.find(id);
    if (it == slots.end())
        return false;
    out = it->second.record;
    return true;
}

bool
JobQueue::wait(std::uint64_t id, std::chrono::milliseconds deadline,
               JobRecord &out) const
{
    std::unique_lock<std::mutex> lock(mtx);
    const auto finished = [this, id, &out] {
        const auto it = slots.find(id);
        if (it == slots.end())
            return true; // unknown or already trimmed: stop waiting
        out = it->second.record;
        return out.finished();
    };
    jobFinished.wait_for(lock, deadline, finished);
    const auto it = slots.find(id);
    if (it == slots.end())
        return false;
    out = it->second.record;
    return out.finished();
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(mtx);
    closed = true;
    workAvailable.notify_all();
}

void
JobQueue::drain()
{
    close();
    {
        // Workers exit once the queue is closed AND empty, after
        // finishing whatever they are running — join() is the drain.
        std::lock_guard<std::mutex> lock(mtx);
        if (joined)
            return;
        joined = true;
    }
    for (std::thread &t : pool) {
        if (t.joinable())
            t.join();
    }
}

std::size_t
JobQueue::queued() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return pending.size();
}

std::size_t
JobQueue::outstanding() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return outstandingJobs;
}

unsigned
JobQueue::workers() const
{
    return static_cast<unsigned>(pool.size());
}

unsigned
JobQueue::busyWorkers() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return busy;
}

std::uint64_t
JobQueue::acceptedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return numAccepted;
}

std::uint64_t
JobQueue::rejectedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return numRejected;
}

std::uint64_t
JobQueue::completedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return numCompleted;
}

std::uint64_t
JobQueue::failedCount() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return numFailed;
}

} // namespace service

} // namespace direb
