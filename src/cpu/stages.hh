/**
 * @file
 * Pipeline stage components. Each stage is a stateless object operating
 * on the shared CoreContext: all mutable machine state lives in
 * PipelineState, all mode-specific behaviour is delegated to the
 * RedundancyPolicy, and all scheduling bookkeeping flows through the
 * SchedulerBackend hooks — the stage code itself contains no execution-
 * mode branches.
 */

#ifndef DIREB_CPU_STAGES_HH
#define DIREB_CPU_STAGES_HH

#include "cpu/core_context.hh"

namespace direb
{

/**
 * Fetch: instruction-cache timing, branch prediction, and the
 * fault-rewind replay path.
 */
struct FetchStage
{
    void run(CoreContext &cx);
};

/**
 * Dispatch: in-order functional execution (SimpleScalar style),
 * misprediction detection, RUU/LSQ allocation, duplication into two
 * adjacent entries (via the policy), dependence linking through the
 * per-stream create vectors, and the forwarding-fault injection points
 * of §3.4.
 */
struct DispatchStage
{
    void run(CoreContext &cx);

  private:
    void dispatchOne(CoreContext &cx, const FetchedInst &fi,
                     unsigned &width_left);
    void linkSources(CoreContext &cx, int idx, unsigned stream);
    void maybeInjectForwardFault(CoreContext &cx, int prim, int dup);
};

/**
 * Commit: in-order retirement, the "Check & Retire" pair comparison,
 * branch-predictor training, store performance at commit, the policy's
 * commit-time hooks (IRB update), and the checker-triggered instruction
 * rewind.
 */
struct CommitStage
{
    void run(CoreContext &cx);

  private:
    void retireEntry(CoreContext &cx, int idx);
    void faultRewind(CoreContext &cx, std::size_t pair_offset);
};

} // namespace direb

#endif // DIREB_CPU_STAGES_HH
