/**
 * @file
 * Scheduler backends: the back-end pipeline stages (writeback/wakeup,
 * LSQ memory issue, select/issue) plus the wakeup/recovery machinery they
 * share, behind one interface with two bit-identical implementations.
 *
 * "scan" (ScanScheduler) re-walks the whole RUU every cycle and
 * re-derives what is actionable — the original implementation, kept as
 * the differential-testing reference. "ready_list" (ReadyListScheduler,
 * core.scheduler default) maintains the same information incrementally:
 * a completion-event heap for writeback, an operand-ready list for
 * select/issue, a pending-load list plus an ordered store-address index
 * for the memory stage, and a pending-reuse-test list for the IRB
 * pre-pass. Both are cycle-accurate and bit-identical in timing and
 * statistics (proven per-workload by test_scheduler_diff).
 *
 * The front-end stages report scheduling events through the hook methods
 * (onDispatched, onRetiredStore, ...) which are no-ops for the scan
 * backend — the scan re-discovers everything by walking.
 */

#ifndef DIREB_CPU_SCHEDULER_HH
#define DIREB_CPU_SCHEDULER_HH

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cpu/core_context.hh"

namespace direb
{

/**
 * Flat (seq, RUU index) set ordered by seq — the hot-loop alternative to
 * a node-based ordered map. Producers append (no per-node allocation);
 * the single consuming stage calls normalize() once per cycle, which
 * sorts the appended tail and merges it into the sorted prefix, then
 * walks the items oldest-first and compacts the survivors in place. The
 * stages never insert into the list they are currently walking, so an
 * iteration only ever sees the normalized snapshot.
 */
struct SeqList
{
    std::vector<std::pair<InstSeq, int>> items;
    std::size_t sorted = 0; //!< items[0..sorted) are sorted by seq

    void push(InstSeq seq, int idx) { items.emplace_back(seq, idx); }

    void
    clear()
    {
        items.clear();
        sorted = 0;
    }

    void
    normalize()
    {
        if (sorted == items.size())
            return;
        std::sort(items.begin() + sorted, items.end());
        std::inplace_merge(items.begin(), items.begin() + sorted,
                           items.end());
        sorted = items.size();
    }

    /** End a compacting walk that kept the first @p kept items. */
    void
    compact(std::size_t kept)
    {
        items.resize(kept);
        sorted = kept;
    }
};

/**
 * One back-end scheduler. Owns whatever incremental state its
 * implementation needs; everything else (RUU, stats, components) is
 * reached through the shared CoreContext.
 */
class SchedulerBackend
{
  public:
    explicit SchedulerBackend(CoreContext &context) : cx(context) {}
    virtual ~SchedulerBackend() = default;

    SchedulerBackend(const SchedulerBackend &) = delete;
    SchedulerBackend &operator=(const SchedulerBackend &) = delete;

    /** The three back-end stages, called once per tick. @{ */
    virtual void writeback() = 0;
    virtual void memory() = 0;
    void issue(); //!< issueImpl() plus the shared cycle-blame attribution
    /** @} */

    /**
     * Dispatch allocated entry @p idx (primary) / duplicate @p idx and
     * finished linking its sources. @{
     */
    virtual void onDispatched(int idx) { (void)idx; }
    virtual void onDispatchedDup(int idx) { (void)idx; }
    /** @} */

    /** Commit retired primary store @p e (its forwarding window closed). */
    virtual void onRetiredStore(const RuuEntry &e) { (void)e; }

    /** A fault rewind emptied the RUU: drop every in-flight reference. */
    virtual void reset() {}

  protected:
    /** Issue/select pass; sets cycFuDenied / cycIrbDeferred. */
    virtual void issueImpl() = 0;

    /** Entry @p idx saw its last pending operand arrive. */
    virtual void onWokenReady(int idx) { (void)idx; }

    /** Entry @p idx will complete at cycle @p at. */
    virtual void scheduleCompletion(int idx, Cycle at)
    {
        (void)idx;
        (void)at;
    }

    /** Entry @p idx just completed (runs after wakeup/recovery). */
    virtual void onCompleted(int idx) { (void)idx; }

    /** Entry @p e is being squashed (still valid; seq cleared after). */
    virtual void onSquashEntry(const RuuEntry &e) { (void)e; }

    /** Shared machinery (bodies in scheduler.cc). @{ */
    void completeEntry(int idx);
    void wakeDependents(int idx);
    void tryReuseTest(int idx);
    void handleMispredictRecovery(int idx);
    void squashYoungerThan(std::size_t keep_count);
    /** @} */

    CoreContext &cx;
    /** Cycle-local issue-blame inputs, reset by issue(). @{ */
    unsigned cycFuDenied = 0;
    unsigned cycIrbDeferred = 0;
    /** @} */
};

/** Reference backend: full-RUU walks every cycle. */
class ScanScheduler final : public SchedulerBackend
{
  public:
    explicit ScanScheduler(CoreContext &context)
        : SchedulerBackend(context)
    {
    }

    void writeback() override;
    void memory() override;

  protected:
    void issueImpl() override;

  private:
    bool olderStoreBlocks(std::size_t load_offset, bool &forwarded) const;
};

/** Incremental backend: event heap + ready/pending sets + store index. */
class ReadyListScheduler final : public SchedulerBackend
{
  public:
    explicit ReadyListScheduler(CoreContext &context)
        : SchedulerBackend(context)
    {
    }

    void writeback() override;
    void memory() override;
    void onDispatched(int idx) override;
    void onDispatchedDup(int idx) override;
    void onRetiredStore(const RuuEntry &e) override;
    void reset() override;

  protected:
    void issueImpl() override;
    void onWokenReady(int idx) override;
    void scheduleCompletion(int idx, Cycle at) override;
    void onCompleted(int idx) override;
    void onSquashEntry(const RuuEntry &e) override;

  private:
    /** A scheduled completion: entry (idx, seq) finishes at cycle at. */
    struct WbEvent
    {
        Cycle at;
        InstSeq seq;
        int idx;
    };

    /** Min-heap order: earliest cycle first, oldest instruction first. */
    struct WbEventAfter
    {
        bool
        operator()(const WbEvent &a, const WbEvent &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    void processWriteback(int idx);
    void dropStoreIndex(const RuuEntry &e);
    bool loadBlockedByStore(const RuuEntry &load, bool &forwarded) const;

    // All sets are keyed by seq, so iteration order equals the scan's
    // oldest-first RUU order and references left dangling by a squash
    // (the slot may already hold a younger instruction) are detected by
    // a seq mismatch and dropped lazily.
    std::priority_queue<WbEvent, std::vector<WbEvent>, WbEventAfter>
        wbEvents;
    SeqList readyList;    //!< operand-ready, not yet issued
    SeqList pendingMem;   //!< loads awaiting a D-cache port
    SeqList pendingReuse; //!< dups with pending reuse test
    /** Primary stores pre addr-gen; appended in dispatch (= seq) order. */
    std::vector<InstSeq> unresolvedStores;
    /** Resolved primary stores by 8-byte block (effAddr>>3), oldest first. */
    std::unordered_map<Addr, std::vector<InstSeq>> storeBlocks;
};

/** Build the backend selected by core.scheduler. */
std::unique_ptr<SchedulerBackend> makeScheduler(bool ready_list,
                                                CoreContext &context);

} // namespace direb

#endif // DIREB_CPU_SCHEDULER_HH
