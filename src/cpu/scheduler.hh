/**
 * @file
 * Scheduler backends: the back-end pipeline stages (writeback/wakeup,
 * LSQ memory issue, select/issue) plus the wakeup/recovery machinery they
 * share, behind one interface with two bit-identical implementations.
 *
 * "scan" (ScanScheduler) re-walks the whole RUU every cycle and
 * re-derives what is actionable — the original implementation, kept as
 * the differential-testing reference. "ready_list" (ReadyListScheduler,
 * core.scheduler default) maintains the same information incrementally:
 * a completion-event heap for writeback, an operand-ready list for
 * select/issue, a pending-load list plus an ordered store-address index
 * for the memory stage, and a pending-reuse-test list for the IRB
 * pre-pass. Both are cycle-accurate and bit-identical in timing and
 * statistics (proven per-workload by test_scheduler_diff).
 *
 * The front-end stages report scheduling events through the hook methods
 * (onDispatched, onRetiredStore, ...) which are no-ops for the scan
 * backend — the scan re-discovers everything by walking.
 *
 * All incremental containers draw their storage from a SchedStorage
 * arena owned by the core (CoreContext::schedMem). OooCore::reset()
 * rebuilds the scheduler object, but the arena survives, so a pooled
 * core reuses every buffer's high-water capacity and the steady-state
 * scheduling path performs no heap allocation.
 */

#ifndef DIREB_CPU_SCHEDULER_HH
#define DIREB_CPU_SCHEDULER_HH

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "cpu/core_context.hh"

namespace direb
{

/**
 * Flat (seq, RUU index) set ordered by seq — the hot-loop alternative to
 * a node-based ordered map. Producers append (no per-node allocation);
 * the single consuming stage calls normalize() once per cycle, which
 * sorts the appended tail and merges it into the sorted prefix, then
 * walks the items oldest-first and compacts the survivors in place. The
 * stages never insert into the list they are currently walking, so an
 * iteration only ever sees the normalized snapshot. The item vector is
 * borrowed from the core's SchedStorage so capacity survives reset.
 */
struct SeqList
{
    SeqList(std::vector<std::pair<InstSeq, int>> &storage,
            std::vector<std::pair<InstSeq, int>> &merge_scratch)
        : items(storage), scratch(merge_scratch)
    {
        clear();
    }

    std::vector<std::pair<InstSeq, int>> &items;
    /**
     * Shared tail-merge buffer (SchedStorage::seqScratch). Safe to share
     * between lists: each stage normalizes exactly one list before
     * walking it, never two at once.
     */
    std::vector<std::pair<InstSeq, int>> &scratch;
    std::size_t sorted = 0; //!< items[0..sorted) are sorted by seq

    void push(InstSeq seq, int idx) { items.emplace_back(seq, idx); }

    void
    clear()
    {
        items.clear();
        sorted = 0;
    }

    void
    normalize()
    {
        if (sorted == items.size())
            return;
        std::sort(items.begin() + sorted, items.end());
        // Merge the sorted tail into the sorted prefix back-to-front
        // through the recycled scratch buffer. std::inplace_merge would
        // do the same job but grabs a temporary heap buffer on every
        // call, which is exactly the per-cycle allocation this pass
        // eliminates (test_alloc_steady pins it down). Ties take the
        // prefix element first, matching inplace_merge's stability.
        scratch.assign(items.begin() + sorted, items.end());
        auto out = items.end();
        auto a = items.begin() + sorted;
        const auto a0 = items.begin();
        auto b = scratch.end();
        const auto b0 = scratch.begin();
        while (b != b0) {
            if (a != a0 && *(a - 1) > *(b - 1))
                *--out = *--a;
            else
                *--out = *--b;
        }
        sorted = items.size();
    }

    /** End a compacting walk that kept the first @p kept items. */
    void
    compact(std::size_t kept)
    {
        items.resize(kept);
        sorted = kept;
    }
};

/** A scheduled completion: entry (idx, seq) finishes at cycle at. */
struct WbEvent
{
    Cycle at;
    InstSeq seq;
    int idx;
};

/**
 * Recycled storage for the incremental scheduler: owned by OooCore
 * (outliving every scheduler rebuild), borrowed by ReadyListScheduler.
 * resetAll() restores the logical empty state in O(1) per container
 * while keeping all capacity.
 */
struct SchedStorage
{
    std::vector<std::pair<InstSeq, int>> readyItems;
    std::vector<std::pair<InstSeq, int>> pendingMemItems;
    std::vector<std::pair<InstSeq, int>> pendingReuseItems;
    std::vector<std::pair<InstSeq, int>> seqScratch; //!< SeqList tail merge
    std::vector<WbEvent> wbHeap;    //!< binary min-heap (see WbEventAfter)
    std::vector<WbEvent> wbBatch;   //!< per-cycle writeback drain scratch
    std::vector<InstSeq> unresolvedStores;
    /**
     * Resolved primary stores as (effAddr>>3, seq) pairs, sorted — the
     * flat replacement for a map of per-block vectors: equal_range by
     * block yields the block's stores oldest-first.
     */
    std::vector<std::pair<Addr, InstSeq>> resolvedStores;

    void
    resetAll()
    {
        readyItems.clear();
        pendingMemItems.clear();
        pendingReuseItems.clear();
        seqScratch.clear();
        wbHeap.clear();
        wbBatch.clear();
        unresolvedStores.clear();
        resolvedStores.clear();
    }
};

/**
 * One back-end scheduler. Owns whatever incremental state its
 * implementation needs; everything else (RUU, stats, components) is
 * reached through the shared CoreContext.
 */
class SchedulerBackend
{
  public:
    explicit SchedulerBackend(CoreContext &context) : cx(context) {}
    virtual ~SchedulerBackend() = default;

    SchedulerBackend(const SchedulerBackend &) = delete;
    SchedulerBackend &operator=(const SchedulerBackend &) = delete;

    /** The three back-end stages, called once per tick. @{ */
    virtual void writeback() = 0;
    virtual void memory() = 0;
    void issue(); //!< issueImpl() plus the shared cycle-blame attribution
    /** @} */

    /**
     * Dispatch allocated entry @p idx (primary) / duplicate @p idx and
     * finished linking its sources. @{
     */
    virtual void onDispatched(int idx) { (void)idx; }
    virtual void onDispatchedDup(int idx) { (void)idx; }
    /** @} */

    /** Commit is retiring primary store slot @p idx (window closed). */
    virtual void onRetiredStore(int idx) { (void)idx; }

    /** A fault rewind emptied the RUU: drop every in-flight reference. */
    virtual void reset() {}

  protected:
    /** Issue/select pass; sets cycFuDenied / cycIrbDeferred. */
    virtual void issueImpl() = 0;

    /** Entry @p idx saw its last pending operand arrive. */
    virtual void onWokenReady(int idx) { (void)idx; }

    /** Entry @p idx will complete at cycle @p at. */
    virtual void scheduleCompletion(int idx, Cycle at)
    {
        (void)idx;
        (void)at;
    }

    /** Entry @p idx just completed (runs after wakeup/recovery). */
    virtual void onCompleted(int idx) { (void)idx; }

    /** Slot @p idx is being squashed (still valid; seq cleared after). */
    virtual void onSquashEntry(int idx) { (void)idx; }

    /** Shared machinery (bodies in scheduler.cc). @{ */
    void completeEntry(int idx);
    void wakeDependents(int idx);
    void tryReuseTest(int idx);
    void handleMispredictRecovery(int idx);
    void squashYoungerThan(std::size_t keep_count);
    /** @} */

    CoreContext &cx;
    /** Cycle-local issue-blame inputs, reset by issue(). @{ */
    unsigned cycFuDenied = 0;
    unsigned cycIrbDeferred = 0;
    /** @} */
};

/** Reference backend: full-RUU walks every cycle. */
class ScanScheduler final : public SchedulerBackend
{
  public:
    explicit ScanScheduler(CoreContext &context)
        : SchedulerBackend(context)
    {
    }

    void writeback() override;
    void memory() override;

  protected:
    void issueImpl() override;

  private:
    bool olderStoreBlocks(std::size_t load_offset, bool &forwarded) const;
};

/** Incremental backend: event heap + ready/pending sets + store index. */
class ReadyListScheduler final : public SchedulerBackend
{
  public:
    explicit ReadyListScheduler(CoreContext &context);

    void writeback() override;
    void memory() override;
    void onDispatched(int idx) override;
    void onDispatchedDup(int idx) override;
    void onRetiredStore(int idx) override;
    void reset() override;

  protected:
    void issueImpl() override;
    void onWokenReady(int idx) override;
    void scheduleCompletion(int idx, Cycle at) override;
    void onCompleted(int idx) override;
    void onSquashEntry(int idx) override;

  private:
    /** Min-heap order: earliest cycle first, oldest instruction first. */
    struct WbEventAfter
    {
        bool
        operator()(const WbEvent &a, const WbEvent &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    void processWriteback(int idx);
    void dropStoreIndex(Addr eff_addr, InstSeq seq);
    bool loadBlockedByStore(int idx, bool &forwarded) const;

    // All sets are keyed by seq, so iteration order equals the scan's
    // oldest-first RUU order and references left dangling by a squash
    // (the slot may already hold a younger instruction) are detected by
    // a seq mismatch and dropped lazily. The backing vectors live in the
    // core-owned SchedStorage arena (cx.schedMem).
    SchedStorage &mem;
    SeqList readyList;    //!< operand-ready, not yet issued
    SeqList pendingMem;   //!< loads awaiting a D-cache port
    SeqList pendingReuse; //!< dups with pending reuse test
};

/** Build the backend selected by core.scheduler. */
std::unique_ptr<SchedulerBackend> makeScheduler(bool ready_list,
                                                CoreContext &context);

} // namespace direb

#endif // DIREB_CPU_SCHEDULER_HH
