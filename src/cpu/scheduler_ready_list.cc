/**
 * @file
 * The "ready_list" scheduler backend (core.scheduler default): the scan's
 * per-cycle RUU walks replaced by incremental structures fed from the
 * dispatch/commit hooks — a completion-event min-heap for writeback, an
 * operand-ready SeqList for select/issue, a pending-load SeqList plus an
 * ordered store-address index for the memory stage, and a pending-reuse
 * SeqList for the IRB pre-pass. Bit-identical to the scan backend in
 * timing and statistics.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"

namespace direb
{

void
ReadyListScheduler::onWokenReady(int idx)
{
    readyList.push(cx.st->ruu[idx].seq, idx);
}

void
ReadyListScheduler::scheduleCompletion(int idx, Cycle at)
{
    wbEvents.push({at, cx.st->ruu[idx].seq, idx});
}

void
ReadyListScheduler::onCompleted(int idx)
{
    // A duplicate load's register copy arrives with the primary's single
    // memory access, so the primary's completion is what makes an
    // address-done duplicate actionable. The scan finds the duplicate on
    // its own (it sits right behind the primary, so it is visited next
    // within the same cycle); here the primary completes it directly.
    PipelineState &st = *cx.st;
    RuuEntry &e = st.ruu[idx];
    if (!e.isDup && e.pairIdx >= 0) {
        RuuEntry &d = st.ruu[e.pairIdx];
        if (d.isDup && d.pairIdx == idx && !d.completed && d.addrDone &&
            isLoad(d.inst.op)) {
            completeEntry(e.pairIdx);
        }
    }
}

void
ReadyListScheduler::onDispatched(int idx)
{
    const RuuEntry &e = cx.st->ruu[idx];
    if (e.srcPending == 0)
        readyList.push(e.seq, idx);
    // Dispatch allocates seqs in increasing order, so appending here
    // keeps the unresolved-store list sorted.
    if (isStore(e.inst.op))
        unresolvedStores.push_back(e.seq);
}

void
ReadyListScheduler::onDispatchedDup(int idx)
{
    const RuuEntry &d = cx.st->ruu[idx];
    if (d.srcPending == 0)
        readyList.push(d.seq, idx);
    if (d.irbCandidate && !cx.p.irbConsumesIssueSlot)
        pendingReuse.push(d.seq, idx);
}

void
ReadyListScheduler::onRetiredStore(const RuuEntry &e)
{
    // A retired store leaves the RUU and must stop forwarding to younger
    // loads (the scan only ever sees in-flight entries).
    if (!e.isDup)
        dropStoreIndex(e);
}

void
ReadyListScheduler::onSquashEntry(const RuuEntry &e)
{
    // The store-address index is queried through its ordered ends, so
    // squashed stores must leave eagerly (the other scheduler sets drop
    // stale references lazily, by seq mismatch).
    if (!e.isDup && isStore(e.inst.op))
        dropStoreIndex(e);
}

void
ReadyListScheduler::reset()
{
    wbEvents = {};
    readyList.clear();
    pendingMem.clear();
    pendingReuse.clear();
    unresolvedStores.clear();
    storeBlocks.clear();
}

void
ReadyListScheduler::dropStoreIndex(const RuuEntry &e)
{
    const auto us = std::lower_bound(unresolvedStores.begin(),
                                     unresolvedStores.end(), e.seq);
    if (us != unresolvedStores.end() && *us == e.seq)
        unresolvedStores.erase(us);
    const auto it = storeBlocks.find(e.outcome.effAddr >> 3);
    if (it != storeBlocks.end()) {
        std::vector<InstSeq> &seqs = it->second;
        const auto sb = std::lower_bound(seqs.begin(), seqs.end(), e.seq);
        if (sb != seqs.end() && *sb == e.seq)
            seqs.erase(sb);
        if (seqs.empty())
            storeBlocks.erase(it);
    }
}

void
ReadyListScheduler::processWriteback(int idx)
{
    // One entry's worth of the scan's writeback body, reached via the
    // event heap instead of a full-RUU walk.
    PipelineState &st = *cx.st;
    RuuEntry &e = st.ruu[idx];
    if (e.completed)
        return;
    if (e.isDup && isLoad(e.inst.op) && e.addrDone) {
        if (st.ruu[e.pairIdx].completed)
            completeEntry(idx);
        return;
    }
    if (!e.issued || e.completeAt > st.now)
        return;
    if (e.needsMemAccess && e.addrDone && !e.memStarted)
        return;
    if (e.addrGenPending) {
        e.addrGenPending = false;
        e.addrDone = true;
        if (!e.isDup && isStore(e.inst.op)) {
            // The store's address is now known: move it from the
            // conservative "blocks every younger load" set into the
            // 8-byte-granular forwarding index.
            const auto us = std::lower_bound(unresolvedStores.begin(),
                                             unresolvedStores.end(), e.seq);
            if (us != unresolvedStores.end() && *us == e.seq)
                unresolvedStores.erase(us);
            std::vector<InstSeq> &seqs =
                storeBlocks[e.outcome.effAddr >> 3];
            seqs.insert(std::upper_bound(seqs.begin(), seqs.end(), e.seq),
                        e.seq);
        }
        if (e.needsMemAccess) {
            pendingMem.push(e.seq, idx);
            return; // primary load: wait for the memory stage
        }
        if (e.isDup && isLoad(e.inst.op)) {
            if (st.ruu[e.pairIdx].completed)
                completeEntry(idx);
            return; // else: completed by the primary's completion hook
        }
    }
    completeEntry(idx);
}

void
ReadyListScheduler::writeback()
{
    PipelineState &st = *cx.st;
    while (!wbEvents.empty() && wbEvents.top().at <= st.now) {
        const WbEvent ev = wbEvents.top();
        wbEvents.pop();
        if (st.ruu[ev.idx].seq != ev.seq)
            continue; // squashed; slot may be reused
        processWriteback(ev.idx);
    }
}

bool
ReadyListScheduler::loadBlockedByStore(const RuuEntry &load,
                                       bool &forwarded) const
{
    forwarded = false;
    // Any older primary store without a generated address blocks the
    // load; since the sets are seq-ordered, "any older" is just a
    // comparison against the oldest unresolved store.
    if (!unresolvedStores.empty() && unresolvedStores.front() < load.seq)
        return true; // conservative disambiguation
    const auto it = storeBlocks.find(load.outcome.effAddr >> 3);
    forwarded = it != storeBlocks.end() && it->second.front() < load.seq;
    return false;
}

void
ReadyListScheduler::memory()
{
    PipelineState &st = *cx.st;
    pendingMem.normalize();
    auto &pm = pendingMem.items;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pm.size(); ++i) {
        const auto [seq, idx] = pm[i];
        RuuEntry &e = st.ruu[idx];
        if (e.seq != seq || e.memStarted || e.completed)
            continue; // stale: drop
        bool forwarded = false;
        if (loadBlockedByStore(e, forwarded)) {
            ++cx.stats->numLoadsBlocked;
            pm[kept++] = pm[i]; // retry next cycle
            continue;
        }
        if (forwarded) {
            e.memStarted = true;
            e.completeAt = st.now + 1;
            scheduleCompletion(idx, e.completeAt);
            ++cx.stats->numLoadsForwarded;
            continue;
        }
        if (!cx.fus->tryMemPort(st.now)) {
            pm[kept++] = pm[i]; // retry next cycle
            continue;
        }
        e.memStarted = true;
        e.completeAt =
            st.now + cx.memHier->dataAccess(e.outcome.effAddr, false);
        scheduleCompletion(idx, e.completeAt);
    }
    pendingMem.compact(kept);
}

void
ReadyListScheduler::issueImpl()
{
    PipelineState &st = *cx.st;
    cx.fus->beginCycle(st.now);

    // Reuse-test pre-pass over the pending tests only (same oldest-first
    // order as the scan; non-candidates were never added).
    if (cx.policy->irb() && !cx.p.irbConsumesIssueSlot) {
        pendingReuse.normalize();
        auto &pr = pendingReuse.items;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < pr.size(); ++i) {
            const auto [seq, idx] = pr[i];
            RuuEntry &e = st.ruu[idx];
            if (e.seq != seq || e.reuseTested || e.issued || e.completed)
                continue; // stale or already resolved: drop
            tryReuseTest(idx);
            if (!e.reuseTested)
                pr[kept++] = pr[i]; // IRB data still in flight
        }
        pendingReuse.compact(kept);
    }

    readyList.normalize();
    auto &rl = readyList.items;
    std::size_t kept = 0;
    std::size_t i = 0;
    unsigned slots = cx.p.issueWidth;
    for (; i < rl.size() && slots > 0; ++i) {
        const auto [seq, idx] = rl[i];
        RuuEntry &e = st.ruu[idx];
        if (e.seq != seq || e.issued || e.completed)
            continue; // stale: drop
        panic_if(e.srcPending > 0, "unready entry on the ready list "
                 "(seq %llu)",
                 static_cast<unsigned long long>(e.seq));
        if (e.irbCandidate && !e.reuseTested) {
            if (!cx.p.irbConsumesIssueSlot) {
                ++cycIrbDeferred;
                rl[kept++] = rl[i];
                continue;
            }
            tryReuseTest(idx);
            if (!e.reuseTested) {
                ++cycIrbDeferred;
                rl[kept++] = rl[i];
                continue; // IRB data still in flight
            }
            if (e.reuseHit) {
                --slots; // ablation: the hit occupies issue bandwidth
                cx.stalls->busy(trace::StallStage::Issue);
                continue;
            }
        }
        Cycle lat = 1;
        if (!cx.fus->tryIssue(e.cls, st.now, lat)) {
            ++cx.stats->numIssueStallFu;
            ++cycFuDenied;
            rl[kept++] = rl[i];
            continue; // other ready instructions may still find a unit
        }
        e.issued = true;
        e.completeAt = st.now + lat;
        if (e.isMemOp)
            e.addrGenPending = true; // first completion = address ready
        scheduleCompletion(idx, e.completeAt);
        --slots;
        ++cx.stats->numIssuedTotal;
        cx.stalls->busy(trace::StallStage::Issue);
        cx.stats->issueDelay.sample(
            static_cast<double>(st.now - e.dispatchedAt));
        DIREB_TRACE(cx.tracer, trace::Kind::Issue, e.seq, e.pc, e.isDup,
                    e.inst);
    }
    for (; i < rl.size(); ++i)
        rl[kept++] = rl[i]; // issue bandwidth exhausted: keep the rest
    readyList.compact(kept);
}

} // namespace direb
