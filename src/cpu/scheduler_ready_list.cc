/**
 * @file
 * The "ready_list" scheduler backend (core.scheduler default): the scan's
 * per-cycle RUU walks replaced by incremental structures fed from the
 * dispatch/commit hooks — a completion-event min-heap for writeback
 * (drained in one batch per cycle), an operand-ready SeqList for
 * select/issue, a pending-load SeqList plus a flat sorted store-address
 * index for the memory stage, and a pending-reuse SeqList for the IRB
 * pre-pass. Bit-identical to the scan backend in timing and statistics.
 * All container storage lives in the core-owned SchedStorage arena, so
 * rebuilding the scheduler on OooCore::reset() keeps every buffer's
 * capacity and the steady state allocates nothing.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"

namespace direb
{

ReadyListScheduler::ReadyListScheduler(CoreContext &context)
    : SchedulerBackend(context), mem(*context.schedMem),
      readyList(mem.readyItems, mem.seqScratch),
      pendingMem(mem.pendingMemItems, mem.seqScratch),
      pendingReuse(mem.pendingReuseItems, mem.seqScratch)
{
    mem.wbHeap.clear();
    mem.wbBatch.clear();
    mem.unresolvedStores.clear();
    mem.resolvedStores.clear();
}

void
ReadyListScheduler::onWokenReady(int idx)
{
    readyList.push(cx.st->eSeq[idx], idx);
}

void
ReadyListScheduler::scheduleCompletion(int idx, Cycle at)
{
    mem.wbHeap.push_back({at, cx.st->eSeq[idx], idx});
    std::push_heap(mem.wbHeap.begin(), mem.wbHeap.end(), WbEventAfter{});
}

void
ReadyListScheduler::onCompleted(int idx)
{
    // A duplicate load's register copy arrives with the primary's single
    // memory access, so the primary's completion is what makes an
    // address-done duplicate actionable. The scan finds the duplicate on
    // its own (it sits right behind the primary, so it is visited next
    // within the same cycle); here the primary completes it directly.
    PipelineState &st = *cx.st;
    const std::int32_t pair = st.ePair[idx];
    if (!st.any(idx, ruuf::IsDup) && pair >= 0) {
        constexpr std::uint32_t actionable = ruuf::IsDup | ruuf::IsLoad |
                                             ruuf::AddrDone |
                                             ruuf::Completed;
        constexpr std::uint32_t want =
            ruuf::IsDup | ruuf::IsLoad | ruuf::AddrDone;
        if ((st.eFlags[pair] & actionable) == want &&
            st.ePair[pair] == idx) {
            completeEntry(pair);
        }
    }
}

void
ReadyListScheduler::onDispatched(int idx)
{
    const PipelineState &st = *cx.st;
    if (st.eSrcPending[idx] == 0)
        readyList.push(st.eSeq[idx], idx);
    // Dispatch allocates seqs in increasing order, so appending here
    // keeps the unresolved-store list sorted.
    if (st.any(idx, ruuf::IsStore))
        mem.unresolvedStores.push_back(st.eSeq[idx]);
}

void
ReadyListScheduler::onDispatchedDup(int idx)
{
    const PipelineState &st = *cx.st;
    if (st.eSrcPending[idx] == 0)
        readyList.push(st.eSeq[idx], idx);
    if (st.any(idx, ruuf::IrbCandidate) && !cx.p.irbConsumesIssueSlot)
        pendingReuse.push(st.eSeq[idx], idx);
}

void
ReadyListScheduler::onRetiredStore(int idx)
{
    // A retired store leaves the RUU and must stop forwarding to younger
    // loads (the scan only ever sees in-flight entries).
    const PipelineState &st = *cx.st;
    if (!st.any(idx, ruuf::IsDup))
        dropStoreIndex(st.cold[idx].outcome.effAddr, st.eSeq[idx]);
}

void
ReadyListScheduler::onSquashEntry(int idx)
{
    // The store-address index is queried through its ordered ends, so
    // squashed stores must leave eagerly (the other scheduler sets drop
    // stale references lazily, by seq mismatch).
    const PipelineState &st = *cx.st;
    if ((st.eFlags[idx] & (ruuf::IsStore | ruuf::IsDup)) == ruuf::IsStore)
        dropStoreIndex(st.cold[idx].outcome.effAddr, st.eSeq[idx]);
}

void
ReadyListScheduler::reset()
{
    mem.wbHeap.clear();
    readyList.clear();
    pendingMem.clear();
    pendingReuse.clear();
    mem.unresolvedStores.clear();
    mem.resolvedStores.clear();
}

void
ReadyListScheduler::dropStoreIndex(Addr eff_addr, InstSeq seq)
{
    auto &us = mem.unresolvedStores;
    const auto uit = std::lower_bound(us.begin(), us.end(), seq);
    if (uit != us.end() && *uit == seq)
        us.erase(uit);
    auto &rs = mem.resolvedStores;
    const std::pair<Addr, InstSeq> key{eff_addr >> 3, seq};
    const auto rit = std::lower_bound(rs.begin(), rs.end(), key);
    if (rit != rs.end() && *rit == key)
        rs.erase(rit);
}

void
ReadyListScheduler::processWriteback(int idx)
{
    // One entry's worth of the scan's writeback body, reached via the
    // event heap instead of a full-RUU walk.
    PipelineState &st = *cx.st;
    const std::uint32_t f = st.eFlags[idx];
    if (f & ruuf::Completed)
        return;
    constexpr std::uint32_t dup_load_done =
        ruuf::IsDup | ruuf::IsLoad | ruuf::AddrDone;
    if ((f & dup_load_done) == dup_load_done) {
        if (st.any(st.ePair[idx], ruuf::Completed))
            completeEntry(idx);
        return;
    }
    if (!(f & ruuf::Issued) || st.eCompleteAt[idx] > st.now)
        return;
    constexpr std::uint32_t load_waiting =
        ruuf::NeedsMemAccess | ruuf::AddrDone | ruuf::MemStarted;
    if ((f & load_waiting) == (ruuf::NeedsMemAccess | ruuf::AddrDone))
        return;
    if (f & ruuf::AddrGenPending) {
        st.clear(idx, ruuf::AddrGenPending);
        st.set(idx, ruuf::AddrDone);
        if ((f & (ruuf::IsStore | ruuf::IsDup)) == ruuf::IsStore) {
            // The store's address is now known: move it from the
            // conservative "blocks every younger load" set into the
            // 8-byte-granular forwarding index.
            const InstSeq seq = st.eSeq[idx];
            auto &us = mem.unresolvedStores;
            const auto uit = std::lower_bound(us.begin(), us.end(), seq);
            if (uit != us.end() && *uit == seq)
                us.erase(uit);
            auto &rs = mem.resolvedStores;
            const std::pair<Addr, InstSeq> key{
                st.cold[idx].outcome.effAddr >> 3, seq};
            rs.insert(std::upper_bound(rs.begin(), rs.end(), key), key);
        }
        if (f & ruuf::NeedsMemAccess) {
            pendingMem.push(st.eSeq[idx], idx);
            return; // primary load: wait for the memory stage
        }
        if ((f & (ruuf::IsDup | ruuf::IsLoad)) ==
            (ruuf::IsDup | ruuf::IsLoad)) {
            if (st.any(st.ePair[idx], ruuf::Completed))
                completeEntry(idx);
            return; // else: completed by the primary's completion hook
        }
    }
    completeEntry(idx);
}

void
ReadyListScheduler::writeback()
{
    PipelineState &st = *cx.st;
    auto &heap = mem.wbHeap;
    auto &batch = mem.wbBatch;
    // Batch-drain: pop every event due this cycle into the scratch
    // vector (heap pops deliver (at, seq) order), then process without
    // touching the heap again. The outer loop re-checks in case a
    // processed event scheduled another same-cycle completion.
    while (!heap.empty() && heap.front().at <= st.now) {
        batch.clear();
        do {
            std::pop_heap(heap.begin(), heap.end(), WbEventAfter{});
            batch.push_back(heap.back());
            heap.pop_back();
        } while (!heap.empty() && heap.front().at <= st.now);
        for (const WbEvent &ev : batch) {
            if (st.eSeq[ev.idx] != ev.seq)
                continue; // squashed; slot may be reused
            processWriteback(ev.idx);
        }
    }
}

bool
ReadyListScheduler::loadBlockedByStore(int idx, bool &forwarded) const
{
    const PipelineState &st = *cx.st;
    const InstSeq load_seq = st.eSeq[idx];
    forwarded = false;
    // Any older primary store without a generated address blocks the
    // load; since the sets are seq-ordered, "any older" is just a
    // comparison against the oldest unresolved store.
    const auto &us = mem.unresolvedStores;
    if (!us.empty() && us.front() < load_seq)
        return true; // conservative disambiguation
    // Oldest resolved store in the load's 8-byte block, if any: the
    // first index entry at or above (block, 0).
    const auto &rs = mem.resolvedStores;
    const Addr block = st.cold[idx].outcome.effAddr >> 3;
    const auto rit = std::lower_bound(
        rs.begin(), rs.end(), std::pair<Addr, InstSeq>{block, 0});
    forwarded =
        rit != rs.end() && rit->first == block && rit->second < load_seq;
    return false;
}

void
ReadyListScheduler::memory()
{
    PipelineState &st = *cx.st;
    pendingMem.normalize();
    auto &pm = pendingMem.items;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pm.size(); ++i) {
        const auto [seq, idx] = pm[i];
        if (st.eSeq[idx] != seq ||
            st.any(idx, ruuf::MemStarted | ruuf::Completed)) {
            continue; // stale: drop
        }
        bool forwarded = false;
        if (loadBlockedByStore(idx, forwarded)) {
            ++cx.stats->numLoadsBlocked;
            pm[kept++] = pm[i]; // retry next cycle
            continue;
        }
        if (forwarded) {
            st.set(idx, ruuf::MemStarted);
            st.eCompleteAt[idx] = st.now + 1;
            scheduleCompletion(idx, st.eCompleteAt[idx]);
            ++cx.stats->numLoadsForwarded;
            continue;
        }
        if (!cx.fus->tryMemPort(st.now)) {
            pm[kept++] = pm[i]; // retry next cycle
            continue;
        }
        st.set(idx, ruuf::MemStarted);
        st.eCompleteAt[idx] =
            st.now +
            cx.memPort->load(st.cold[idx].outcome.effAddr, st.now).latency;
        scheduleCompletion(idx, st.eCompleteAt[idx]);
    }
    pendingMem.compact(kept);
}

void
ReadyListScheduler::issueImpl()
{
    PipelineState &st = *cx.st;
    cx.fus->beginCycle(st.now);

    // Reuse-test pre-pass over the pending tests only (same oldest-first
    // order as the scan; non-candidates were never added).
    if (cx.policy->irb() && !cx.p.irbConsumesIssueSlot) {
        pendingReuse.normalize();
        auto &pr = pendingReuse.items;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < pr.size(); ++i) {
            const auto [seq, idx] = pr[i];
            if (st.eSeq[idx] != seq ||
                st.any(idx, ruuf::ReuseTested | ruuf::Issued |
                                ruuf::Completed)) {
                continue; // stale or already resolved: drop
            }
            tryReuseTest(idx);
            if (!st.any(idx, ruuf::ReuseTested))
                pr[kept++] = pr[i]; // IRB data still in flight
        }
        pendingReuse.compact(kept);
    }

    readyList.normalize();
    auto &rl = readyList.items;
    std::size_t kept = 0;
    std::size_t i = 0;
    unsigned slots = cx.p.issueWidth;
    for (; i < rl.size() && slots > 0; ++i) {
        const auto [seq, idx] = rl[i];
        if (st.eSeq[idx] != seq ||
            st.any(idx, ruuf::Issued | ruuf::Completed)) {
            continue; // stale: drop
        }
        panic_if(st.eSrcPending[idx] > 0,
                 "unready entry on the ready list (seq %llu)",
                 static_cast<unsigned long long>(seq));
        if ((st.eFlags[idx] & (ruuf::IrbCandidate | ruuf::ReuseTested)) ==
            ruuf::IrbCandidate) {
            if (!cx.p.irbConsumesIssueSlot) {
                ++cycIrbDeferred;
                rl[kept++] = rl[i];
                continue;
            }
            tryReuseTest(idx);
            if (!st.any(idx, ruuf::ReuseTested)) {
                ++cycIrbDeferred;
                rl[kept++] = rl[i];
                continue; // IRB data still in flight
            }
            if (st.any(idx, ruuf::ReuseHit)) {
                --slots; // ablation: the hit occupies issue bandwidth
                cx.stalls->busy(trace::StallStage::Issue);
                continue;
            }
        }
        Cycle lat = 1;
        if (!cx.fus->tryIssue(st.eCls[idx], st.now, lat)) {
            ++cx.stats->numIssueStallFu;
            ++cycFuDenied;
            rl[kept++] = rl[i];
            continue; // other ready instructions may still find a unit
        }
        st.set(idx, ruuf::Issued);
        st.eCompleteAt[idx] = st.now + lat;
        if (st.any(idx, ruuf::IsMemOp))
            st.set(idx, ruuf::AddrGenPending); // first completion =
                                               // address ready
        scheduleCompletion(idx, st.eCompleteAt[idx]);
        --slots;
        ++cx.stats->numIssuedTotal;
        cx.stalls->busy(trace::StallStage::Issue);
        cx.stats->issueDelay.sample(
            static_cast<double>(st.now - st.eDispatchedAt[idx]));
        DIREB_TRACE(cx.tracer, trace::Kind::Issue, st.eSeq[idx],
                    st.cold[idx].pc, st.any(idx, ruuf::IsDup),
                    st.cold[idx].inst);
    }
    for (; i < rl.size(); ++i)
        rl[kept++] = rl[i]; // issue bandwidth exhausted: keep the rest
    readyList.compact(kept);
}

} // namespace direb
