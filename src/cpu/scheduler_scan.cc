/**
 * @file
 * The "scan" scheduler backend: every back-end stage re-walks the whole
 * RUU each cycle and re-derives what is actionable. Kept verbatim as the
 * differential-testing reference for the ready_list backend.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"

namespace direb
{

void
ScanScheduler::writeback()
{
    PipelineState &st = *cx.st;
    // Oldest-first scan; a recovery squash inside completeEntry() shrinks
    // ruuCount, which the loop condition re-checks every iteration.
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        const int idx =
            static_cast<int>((st.ruuHead + off) % st.ruu.size());
        RuuEntry &e = st.ruu[idx];
        if (e.completed)
            continue;
        // Duplicate loads: address generation may be done, but the
        // register copy only arrives when the single (primary) memory
        // access returns — the duplicate stream must not see a faster
        // memory than the primary one.
        if (e.isDup && isLoad(e.inst.op) && e.addrDone) {
            if (st.ruu[e.pairIdx].completed)
                completeEntry(idx);
            continue;
        }
        if (!e.issued || e.completeAt > st.now)
            continue;
        if (e.needsMemAccess && e.addrDone && !e.memStarted)
            continue; // load waiting for a memory port / disambiguation
        if (e.addrGenPending) {
            e.addrGenPending = false;
            e.addrDone = true;
            if (e.needsMemAccess)
                continue; // primary load: wait for the memory stage
            if (e.isDup && isLoad(e.inst.op)) {
                // Re-checked above next cycle (or now if the primary is
                // already done).
                if (st.ruu[e.pairIdx].completed)
                    completeEntry(idx);
                continue;
            }
            // Stores and address-only ops are done after address
            // generation (the access happens once, at primary commit).
        }
        completeEntry(idx);
    }
}

bool
ScanScheduler::olderStoreBlocks(std::size_t load_offset,
                                bool &forwarded) const
{
    const PipelineState &st = *cx.st;
    const RuuEntry &load = st.entryAt(load_offset);
    forwarded = false;
    for (std::size_t off = 0; off < load_offset; ++off) {
        const RuuEntry &e = st.entryAt(off);
        if (!isStore(e.inst.op) || e.isDup)
            continue;
        if (!e.addrDone)
            return true; // conservative disambiguation
        // 8-byte-granular overlap check; latest matching store wins.
        if ((e.outcome.effAddr >> 3) == (load.outcome.effAddr >> 3))
            forwarded = true;
    }
    return false;
}

void
ScanScheduler::memory()
{
    PipelineState &st = *cx.st;
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        RuuEntry &e = st.entryAt(off);
        if (!e.needsMemAccess || !e.addrDone || e.memStarted || e.completed)
            continue;
        bool forwarded = false;
        if (olderStoreBlocks(off, forwarded)) {
            ++cx.stats->numLoadsBlocked;
            continue;
        }
        if (forwarded) {
            e.memStarted = true;
            e.completeAt = st.now + 1;
            ++cx.stats->numLoadsForwarded;
            continue;
        }
        if (!cx.fus->tryMemPort(st.now))
            continue;
        e.memStarted = true;
        e.completeAt =
            st.now + cx.memHier->dataAccess(e.outcome.effAddr, false);
    }
}

void
ScanScheduler::issueImpl()
{
    PipelineState &st = *cx.st;
    cx.fus->beginCycle(st.now);

    // Reuse-test pre-pass: the paper performs the operand comparison as
    // part of wakeup, so reuse hits never compete for issue bandwidth.
    // The irb.consumes_issue_slot ablation instead treats the IRB like a
    // functional unit (pre-[12] designs): hits are tested in the issue
    // loop and burn an issue slot.
    if (cx.policy->irb() && !cx.p.irbConsumesIssueSlot) {
        for (std::size_t off = 0; off < st.ruuCount; ++off)
            tryReuseTest(
                static_cast<int>((st.ruuHead + off) % st.ruu.size()));
    }

    unsigned slots = cx.p.issueWidth;
    for (std::size_t off = 0; off < st.ruuCount && slots > 0; ++off) {
        RuuEntry &e = st.entryAt(off);
        if (e.issued || e.completed || e.srcPending > 0)
            continue;
        // Rdy2L/Rdy2R semantics (paper Figure 5): a duplicate with a
        // pending reuse test is not schedulable until the test resolves.
        if (e.irbCandidate && !e.reuseTested) {
            if (!cx.p.irbConsumesIssueSlot) {
                ++cycIrbDeferred;
                continue;
            }
            tryReuseTest(
                static_cast<int>((st.ruuHead + off) % st.ruu.size()));
            if (!e.reuseTested) {
                ++cycIrbDeferred;
                continue; // IRB data still in flight
            }
            if (e.reuseHit) {
                --slots; // ablation: the hit occupies issue bandwidth
                cx.stalls->busy(trace::StallStage::Issue);
                continue;
            }
        }
        Cycle lat = 1;
        if (!cx.fus->tryIssue(e.cls, st.now, lat)) {
            ++cx.stats->numIssueStallFu;
            ++cycFuDenied;
            continue; // other ready instructions may still find a unit
        }
        e.issued = true;
        e.completeAt = st.now + lat;
        if (e.isMemOp)
            e.addrGenPending = true; // first completion = address ready
        --slots;
        ++cx.stats->numIssuedTotal;
        cx.stalls->busy(trace::StallStage::Issue);
        cx.stats->issueDelay.sample(
            static_cast<double>(st.now - e.dispatchedAt));
        DIREB_TRACE(cx.tracer, trace::Kind::Issue, e.seq, e.pc, e.isDup,
                    e.inst);
    }
}

} // namespace direb
