/**
 * @file
 * The "scan" scheduler backend: every back-end stage re-walks the whole
 * RUU each cycle and re-derives what is actionable. Kept verbatim as the
 * differential-testing reference for the ready_list backend.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"

namespace direb
{

void
ScanScheduler::writeback()
{
    PipelineState &st = *cx.st;
    // Oldest-first scan; a recovery squash inside completeEntry() shrinks
    // ruuCount, which the loop condition re-checks every iteration.
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        const int idx = st.slotAt(off);
        const std::uint32_t f = st.eFlags[idx];
        if (f & ruuf::Completed)
            continue;
        // Duplicate loads: address generation may be done, but the
        // register copy only arrives when the single (primary) memory
        // access returns — the duplicate stream must not see a faster
        // memory than the primary one.
        constexpr std::uint32_t dup_load_done =
            ruuf::IsDup | ruuf::IsLoad | ruuf::AddrDone;
        if ((f & dup_load_done) == dup_load_done) {
            if (st.any(st.ePair[idx], ruuf::Completed))
                completeEntry(idx);
            continue;
        }
        if (!(f & ruuf::Issued) || st.eCompleteAt[idx] > st.now)
            continue;
        constexpr std::uint32_t load_waiting =
            ruuf::NeedsMemAccess | ruuf::AddrDone | ruuf::MemStarted;
        if ((f & load_waiting) == (ruuf::NeedsMemAccess | ruuf::AddrDone))
            continue; // load waiting for a memory port / disambiguation
        if (f & ruuf::AddrGenPending) {
            st.clear(idx, ruuf::AddrGenPending);
            st.set(idx, ruuf::AddrDone);
            if (f & ruuf::NeedsMemAccess)
                continue; // primary load: wait for the memory stage
            if ((f & (ruuf::IsDup | ruuf::IsLoad)) ==
                (ruuf::IsDup | ruuf::IsLoad)) {
                // Re-checked above next cycle (or now if the primary is
                // already done).
                if (st.any(st.ePair[idx], ruuf::Completed))
                    completeEntry(idx);
                continue;
            }
            // Stores and address-only ops are done after address
            // generation (the access happens once, at primary commit).
        }
        completeEntry(idx);
    }
}

bool
ScanScheduler::olderStoreBlocks(std::size_t load_offset,
                                bool &forwarded) const
{
    const PipelineState &st = *cx.st;
    const Addr load_block =
        st.cold[st.slotAt(load_offset)].outcome.effAddr >> 3;
    forwarded = false;
    for (std::size_t off = 0; off < load_offset; ++off) {
        const int idx = st.slotAt(off);
        if ((st.eFlags[idx] & (ruuf::IsStore | ruuf::IsDup)) !=
            ruuf::IsStore) {
            continue;
        }
        if (!st.any(idx, ruuf::AddrDone))
            return true; // conservative disambiguation
        // 8-byte-granular overlap check; latest matching store wins.
        if ((st.cold[idx].outcome.effAddr >> 3) == load_block)
            forwarded = true;
    }
    return false;
}

void
ScanScheduler::memory()
{
    PipelineState &st = *cx.st;
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        const int idx = st.slotAt(off);
        constexpr std::uint32_t care = ruuf::NeedsMemAccess |
                                       ruuf::AddrDone | ruuf::MemStarted |
                                       ruuf::Completed;
        constexpr std::uint32_t want =
            ruuf::NeedsMemAccess | ruuf::AddrDone;
        if ((st.eFlags[idx] & care) != want)
            continue;
        bool forwarded = false;
        if (olderStoreBlocks(off, forwarded)) {
            ++cx.stats->numLoadsBlocked;
            continue;
        }
        if (forwarded) {
            st.set(idx, ruuf::MemStarted);
            st.eCompleteAt[idx] = st.now + 1;
            ++cx.stats->numLoadsForwarded;
            continue;
        }
        if (!cx.fus->tryMemPort(st.now))
            continue;
        st.set(idx, ruuf::MemStarted);
        st.eCompleteAt[idx] =
            st.now +
            cx.memPort->load(st.cold[idx].outcome.effAddr, st.now).latency;
    }
}

void
ScanScheduler::issueImpl()
{
    PipelineState &st = *cx.st;
    cx.fus->beginCycle(st.now);

    // Reuse-test pre-pass: the paper performs the operand comparison as
    // part of wakeup, so reuse hits never compete for issue bandwidth.
    // The irb.consumes_issue_slot ablation instead treats the IRB like a
    // functional unit (pre-[12] designs): hits are tested in the issue
    // loop and burn an issue slot.
    if (cx.policy->irb() && !cx.p.irbConsumesIssueSlot) {
        for (std::size_t off = 0; off < st.ruuCount; ++off)
            tryReuseTest(st.slotAt(off));
    }

    unsigned slots = cx.p.issueWidth;
    for (std::size_t off = 0; off < st.ruuCount && slots > 0; ++off) {
        const int idx = st.slotAt(off);
        if (st.any(idx, ruuf::Issued | ruuf::Completed) ||
            st.eSrcPending[idx] > 0) {
            continue;
        }
        // Rdy2L/Rdy2R semantics (paper Figure 5): a duplicate with a
        // pending reuse test is not schedulable until the test resolves.
        if ((st.eFlags[idx] & (ruuf::IrbCandidate | ruuf::ReuseTested)) ==
            ruuf::IrbCandidate) {
            if (!cx.p.irbConsumesIssueSlot) {
                ++cycIrbDeferred;
                continue;
            }
            tryReuseTest(idx);
            if (!st.any(idx, ruuf::ReuseTested)) {
                ++cycIrbDeferred;
                continue; // IRB data still in flight
            }
            if (st.any(idx, ruuf::ReuseHit)) {
                --slots; // ablation: the hit occupies issue bandwidth
                cx.stalls->busy(trace::StallStage::Issue);
                continue;
            }
        }
        Cycle lat = 1;
        if (!cx.fus->tryIssue(st.eCls[idx], st.now, lat)) {
            ++cx.stats->numIssueStallFu;
            ++cycFuDenied;
            continue; // other ready instructions may still find a unit
        }
        st.set(idx, ruuf::Issued);
        st.eCompleteAt[idx] = st.now + lat;
        if (st.any(idx, ruuf::IsMemOp))
            st.set(idx, ruuf::AddrGenPending); // first completion =
                                               // address ready
        --slots;
        ++cx.stats->numIssuedTotal;
        cx.stalls->busy(trace::StallStage::Issue);
        cx.stats->issueDelay.sample(
            static_cast<double>(st.now - st.eDispatchedAt[idx]));
        DIREB_TRACE(cx.tracer, trace::Kind::Issue, st.eSeq[idx],
                    st.cold[idx].pc, st.any(idx, ruuf::IsDup),
                    st.cold[idx].inst);
    }
}

} // namespace direb
