/**
 * @file
 * OooCore construction, reset/rebind, and the main run loop. The heavy
 * lifting lives in the stage components (stages.hh), the scheduler
 * backends (scheduler.hh) and the redundancy policies (core/policy.hh);
 * this file only builds the components, wires the CoreContext, and keeps
 * the stat-group child order stable across resets so text reports from a
 * reused core are byte-identical to a fresh one.
 */

#include "cpu/ooo_core.hh"

#include "common/logging.hh"
#include "vm/checkpoint.hh"

namespace direb
{

CoreParams
CoreParams::fromConfig(const Config &config)
{
    CoreParams p;
    p.mode = execModeFromName(config.getString(
        "core.mode", "sie", "execution mode: sie, die or die-irb"));
    const std::string sched = config.getString(
        "core.scheduler", "ready_list",
        "back-end scheduler implementation: ready_list or scan");
    if (sched == "ready_list")
        p.readyListScheduler = true;
    else if (sched == "scan")
        p.readyListScheduler = false;
    else
        fatal("unknown core.scheduler '%s' (expected scan or ready_list)",
              sched.c_str());
    p.fetchWidth = static_cast<unsigned>(config.getUint(
        "width.fetch", 8, "instructions fetched per cycle"));
    p.decodeWidth = static_cast<unsigned>(config.getUint(
        "width.decode", 8, "RUU entries dispatched per cycle"));
    p.issueWidth = static_cast<unsigned>(config.getUint(
        "width.issue", 8, "instructions selected for issue per cycle"));
    p.commitWidth = static_cast<unsigned>(config.getUint(
        "width.commit", 8, "RUU entries retired per cycle"));
    p.ruuSize = config.getUint("ruu.size", 128,
                               "unified ROB+issue-window entries");
    p.lsqSize = config.getUint("lsq.size", 64,
                               "load/store queue entries");
    p.ifqSize = config.getUint("ifq.size", 2 * p.fetchWidth,
                               "fetch/decode queue entries");
    p.redirectPenalty = config.getUint(
        "redirect.penalty", 2, "front-end bubble cycles after a squash");
    p.dupOwnDataflow = config.getBool(
        "dieirb.dup_own_dataflow", false,
        "ablation: DIE-IRB duplicates wait on duplicate-stream producers");
    p.irbConsumesIssueSlot = config.getBool(
        "irb.consumes_issue_slot", false,
        "ablation: IRB reuse hits burn an issue slot");

    fatal_if(p.fetchWidth == 0 || p.decodeWidth == 0 || p.issueWidth == 0 ||
                 p.commitWidth == 0,
             "pipeline widths must be positive");
    fatal_if(p.ruuSize < 4, "ruu.size too small");
    fatal_if(p.mode != ExecMode::Sie && p.ruuSize % 2 != 0,
             "DIE modes need an even ruu.size");
    return p;
}

OooCore::OooCore(const Program &program, const Config &config,
                 mem::MemPort external_port)
    : arch(mem), specCtx(arch), extPort(external_port)
{
    // The core's own counters are registered once; configure() zeroes
    // them on every later rebind.
    cstats.registerIn(group);
    configure(program, config, true);
}

OooCore::~OooCore() = default;

void
OooCore::reset(const Program &program, const Config &config)
{
    configure(program, config, false);
}

void
OooCore::applyArchCheckpoint(const ArchCheckpoint &ck)
{
    // Restoring into a part-run core would mix two executions' state;
    // this is a harness sequencing bug, not a user error.
    panic_if(st.now != 0 || cstats.numArchInsts.value() != 0,
             "applyArchCheckpoint needs a freshly configured core");
    fatal_if(ck.programFnv != programImageFnv(*prog),
             "checkpoint image hash %016llx does not match program '%s' "
             "(%016llx) — it was captured from a different program",
             static_cast<unsigned long long>(ck.programFnv),
             prog->name.c_str(),
             static_cast<unsigned long long>(programImageFnv(*prog)));
    fatal_if(!prog->inText(ck.pc),
             "checkpoint pc %llx is outside the program text",
             static_cast<unsigned long long>(ck.pc));
    applyCheckpoint(ck, arch, mem);
    st.fetchPc = ck.pc;
}

void
OooCore::configure(const Program &program, const Config &config,
                   bool first)
{
    p = CoreParams::fromConfig(config);
    prog = &program;

    if (!first) {
        // Zero every statistic — including the components about to be
        // destroyed, whose groups are still attached — then detach the
        // re-creatable children so the replacements can re-attach in the
        // original order (the text report is child-order dependent).
        group.reset();
        group.removeChild(&bp->statGroup());
        group.removeChild(&port.system().coreStatGroup(port.core()));
        group.removeChild(&fus->statGroup());
        group.removeChild(&injector->statGroup());
        group.removeChild(&pairChecker.statGroup());
        policy->unregisterStats(group);
        if (tracer_)
            group.removeChild(&tracer_->statGroup());
    }

    bp = std::make_unique<BranchPredictor>(config);
    if (extPort.valid()) {
        // Chip-attached: the shared hierarchy outlives the core and is
        // never rebuilt here (the Chip constructs it per simulation).
        ownMem.reset();
        port = extPort;
    } else {
        ownMem = std::make_unique<mem::MemorySystem>(config, 1);
        port = ownMem->port(0);
    }
    fus = std::make_unique<FuPool>(config);
    injector = std::make_unique<FaultInjector>(config);
    policy = makeRedundancyPolicy(p.mode, p.dupOwnDataflow, config);

    // Both trace keys are read unconditionally so Config::checkUnused()
    // accepts a run that sets trace.limit with tracing off.
    const bool trace_enabled = config.getBool(
        "trace.enabled", false, "record pipeline events for export");
    const std::uint64_t trace_limit = config.getUint(
        "trace.limit", std::uint64_t(1) << 20,
        "event-ring capacity; oldest events are overwritten when full");
    tracer_.reset();
    if (trace_enabled) {
        if (!trace::compiledIn()) {
            warn("trace.enabled is set but the tracing hooks are compiled "
                 "out (DIREB_TRACING=OFF): no events will be recorded");
        }
        tracer_ = std::make_unique<trace::Tracer>(trace_limit);
        policy->setTracer(tracer_.get());
    }

    mem.clear();
    arch.reset();
    specCtx.exitSpec();
    st.reset(p.ruuSize, p.ifqSize);

    loadProgram(*prog, mem, arch);
    st.fetchPc = prog->entry;

    cstats.ruuOccupancy.init(0, static_cast<double>(p.ruuSize) + 1, 16);
    cstats.issueDelay.init(0, 64, 16);

    stalls.init(p.fetchWidth, p.decodeWidth, p.issueWidth, p.commitWidth);
    if (first)
        stalls.registerStats(group); // stage groups stay attached forever

    group.addChild(&bp->statGroup());
    group.addChild(&port.system().coreStatGroup(port.core()));
    group.addChild(&fus->statGroup());
    group.addChild(&injector->statGroup());
    if (first)
        pairChecker.registerStats(group);
    else
        group.addChild(&pairChecker.statGroup());
    policy->registerStats(group);
    if (tracer_)
        group.addChild(&tracer_->statGroup());

    cx.p = p;
    cx.prog = prog;
    cx.st = &st;
    cx.stats = &cstats;
    cx.policy = policy.get();
    cx.bp = bp.get();
    cx.memPort = &port;
    cx.fus = fus.get();
    cx.injector = injector.get();
    cx.checker = &pairChecker;
    cx.spec = &specCtx;
    cx.tracer = tracer_.get();
    cx.stalls = &stalls;
    cx.schedMem = &schedMem;
    schedMem.resetAll();
    sched = makeScheduler(p.readyListScheduler, cx);
    cx.sched = sched.get();
}

void
OooCore::tick()
{
    cx.policy->beginCycle();
#if DIREB_TRACING_ENABLED
    if (tracer_)
        tracer_->beginCycle(st.now);
#endif
    stalls.beginCycle();

    commitStage_.run(cx);
    if (!st.running)
        return;
    sched->writeback();
    sched->memory();
    sched->issue();
    dispatchStage_.run(cx);
    fetchStage_.run(cx);

    cstats.ruuOccupancy.sample(static_cast<double>(st.ruuCount));
    stalls.endCycle();
    ++st.now;
    ++cstats.numCycles;

    // Deadlock detector: the pipeline must retire something eventually.
    panic_if(st.ruuCount > 0 && st.now - st.lastCommitCycle > 200'000,
             "pipeline deadlock at cycle %llu (pc %#llx, %zu in RUU)",
             static_cast<unsigned long long>(st.now),
             static_cast<unsigned long long>(st.cold[st.ruuHead].pc),
             st.ruuCount);
}

CoreResult
OooCore::run(std::uint64_t max_insts, Cycle max_cycles)
{
    st.maxArchInsts = max_insts;
    while (st.running && st.now < max_cycles)
        tick();
    if (st.running)
        st.finish(StopReason::InstLimit);

    CoreResult r;
    r.stop = st.stopReason;
    r.cycles = st.now;
    r.archInsts = cstats.numArchInsts.value();
    r.ruuEntriesCommitted = cstats.numEntriesCommitted.value();
    r.ipc = r.cycles ? static_cast<double>(r.archInsts) / r.cycles : 0.0;
    return r;
}

} // namespace direb
