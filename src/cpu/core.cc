/**
 * @file
 * OooCore construction, the main run loop, RUU bookkeeping, and the squash
 * machinery shared by branch-misprediction recovery and fault rewinds.
 */

#include "cpu/ooo_core.hh"

#include "common/logging.hh"

namespace direb
{

ExecMode
execModeFromName(const std::string &name)
{
    if (name == "sie")
        return ExecMode::Sie;
    if (name == "die")
        return ExecMode::Die;
    if (name == "die-irb" || name == "dieirb")
        return ExecMode::DieIrb;
    fatal("unknown execution mode '%s'", name.c_str());
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Sie: return "sie";
      case ExecMode::Die: return "die";
      case ExecMode::DieIrb: return "die-irb";
    }
    return "?";
}

CoreParams
CoreParams::fromConfig(const Config &config)
{
    CoreParams p;
    p.mode = execModeFromName(config.getString("core.mode", "sie"));
    const std::string sched =
        config.getString("core.scheduler", "ready_list");
    if (sched == "ready_list")
        p.readyListScheduler = true;
    else if (sched == "scan")
        p.readyListScheduler = false;
    else
        fatal("unknown core.scheduler '%s' (expected scan or ready_list)",
              sched.c_str());
    p.fetchWidth =
        static_cast<unsigned>(config.getUint("width.fetch", 8));
    p.decodeWidth =
        static_cast<unsigned>(config.getUint("width.decode", 8));
    p.issueWidth = static_cast<unsigned>(config.getUint("width.issue", 8));
    p.commitWidth =
        static_cast<unsigned>(config.getUint("width.commit", 8));
    p.ruuSize = config.getUint("ruu.size", 128);
    p.lsqSize = config.getUint("lsq.size", 64);
    p.ifqSize = config.getUint("ifq.size", 2 * p.fetchWidth);
    p.redirectPenalty = config.getUint("redirect.penalty", 2);
    p.dupOwnDataflow = config.getBool("dieirb.dup_own_dataflow", false);
    p.irbConsumesIssueSlot =
        config.getBool("irb.consumes_issue_slot", false);

    fatal_if(p.fetchWidth == 0 || p.decodeWidth == 0 || p.issueWidth == 0 ||
                 p.commitWidth == 0,
             "pipeline widths must be positive");
    fatal_if(p.ruuSize < 4, "ruu.size too small");
    fatal_if(p.mode != ExecMode::Sie && p.ruuSize % 2 != 0,
             "DIE modes need an even ruu.size");
    return p;
}

OooCore::OooCore(const Program &program, const Config &config)
    : p(CoreParams::fromConfig(config)), prog(program), arch(mem),
      specCtx(arch)
{
    bp = std::make_unique<BranchPredictor>(config);
    memHier = std::make_unique<MemHierarchy>(config);
    fus = std::make_unique<FuPool>(config);
    injector = std::make_unique<FaultInjector>(config);
    if (p.mode == ExecMode::DieIrb)
        reuseBuffer = std::make_unique<Irb>(config);

    // Both trace keys are read unconditionally so Config::checkUnused()
    // accepts a run that sets trace.limit with tracing off.
    const bool trace_enabled = config.getBool("trace.enabled", false);
    const std::uint64_t trace_limit =
        config.getUint("trace.limit", std::uint64_t(1) << 20);
    if (trace_enabled) {
        tracer_ = std::make_unique<trace::Tracer>(trace_limit);
        if (reuseBuffer)
            reuseBuffer->setTracer(tracer_.get());
    }

    ruu.resize(p.ruuSize);
    createVec[0].assign(numArchRegs, Producer{});
    createVec[1].assign(numArchRegs, Producer{});

    loadProgram(prog, mem, arch);
    fetchPc = prog.entry;

    group.addScalar(&numCycles, "cycles", "simulated cycles");
    group.addScalar(&numArchInsts, "arch_insts",
                    "architectural instructions committed");
    group.addScalar(&numEntriesCommitted, "entries_committed",
                    "RUU entries retired (2x arch insts under DIE)");
    group.addScalar(&numDispatched, "dispatched", "RUU entries dispatched");
    group.addScalar(&numWrongPathDispatched, "wrong_path",
                    "wrong-path RUU entries dispatched");
    group.addScalar(&numIssuedTotal, "issued",
                    "RUU entries issued to functional units");
    group.addScalar(&numBypassedAlu, "bypassed_alu",
                    "duplicates that skipped the ALUs via IRB reuse");
    group.addScalar(&numRecoveries, "recoveries",
                    "branch misprediction recoveries");
    group.addScalar(&numRewinds, "rewinds", "checker-triggered rewinds");
    group.addScalar(&numDispatchStallRuu, "dispatch_stall_ruu",
                    "dispatch cycles stalled: RUU full");
    group.addScalar(&numDispatchStallLsq, "dispatch_stall_lsq",
                    "dispatch cycles stalled: LSQ full");
    group.addScalar(&numIssueStallFu, "issue_stall_fu",
                    "ready instructions denied a functional unit");
    group.addScalar(&numLoadsForwarded, "loads_forwarded",
                    "loads served by store-to-load forwarding");
    group.addScalar(&numLoadsBlocked, "loads_blocked",
                    "load-issue attempts blocked by unresolved stores");
    ipcFormula = stats::Formula(&numArchInsts, &numCycles);
    group.addFormula(&ipcFormula, "ipc", "architectural IPC");

    ruuOccupancy.init(0, static_cast<double>(p.ruuSize) + 1, 16);
    group.addDistribution(&ruuOccupancy, "ruu_occupancy",
                          "RUU entries live, sampled each cycle");
    issueDelay.init(0, 64, 16);
    group.addDistribution(&issueDelay, "issue_delay",
                          "cycles an entry waits from dispatch to issue");

    stalls.init(p.fetchWidth, p.decodeWidth, p.issueWidth, p.commitWidth);
    stalls.registerStats(group);

    group.addChild(&bp->statGroup());
    group.addChild(&memHier->statGroup());
    group.addChild(&fus->statGroup());
    group.addChild(&injector->statGroup());
    pairChecker.registerStats(group);
    if (reuseBuffer)
        group.addChild(&reuseBuffer->statGroup());
    if (tracer_)
        group.addChild(&tracer_->statGroup());
}

OooCore::~OooCore() = default;

OooCore::RuuEntry &
OooCore::entryAt(std::size_t offset)
{
    panic_if(offset >= ruuCount, "RUU offset %zu out of range (count %zu)",
             offset, ruuCount);
    return ruu[(ruuHead + offset) % p.ruuSize];
}

const OooCore::RuuEntry &
OooCore::entryAt(std::size_t offset) const
{
    return const_cast<OooCore *>(this)->entryAt(offset);
}

int
OooCore::allocEntry()
{
    panic_if(ruuCount >= p.ruuSize, "RUU overflow");
    const int idx = static_cast<int>((ruuHead + ruuCount) % p.ruuSize);
    ++ruuCount;
    ruu[idx] = RuuEntry{};
    ruu[idx].seq = nextSeq++;
    return idx;
}

bool
OooCore::ruuFull(unsigned needed) const
{
    return ruuCount + needed > p.ruuSize;
}

void
OooCore::rebuildCreateVectors()
{
    createVec[0].assign(numArchRegs, Producer{});
    createVec[1].assign(numArchRegs, Producer{});
    for (std::size_t off = 0; off < ruuCount; ++off) {
        const int idx = static_cast<int>((ruuHead + off) % p.ruuSize);
        const RuuEntry &e = ruu[idx];
        const RegId dst = e.inst.dstReg();
        if (dst == noReg)
            continue;
        const bool own_dataflow =
            p.mode == ExecMode::Die ||
            (p.mode == ExecMode::DieIrb && p.dupOwnDataflow);
        if (!e.isDup)
            createVec[0][dst] = {idx, e.seq};
        else if (own_dataflow)
            createVec[1][dst] = {idx, e.seq};
    }
}

void
OooCore::squashYoungerThan(std::size_t keep_count)
{
    panic_if(keep_count > ruuCount, "bad squash point");
    for (std::size_t off = keep_count; off < ruuCount; ++off) {
        RuuEntry &e = entryAt(off);
        DIREB_TRACE(tracer_, trace::Kind::Squash, e.seq, e.pc, e.isDup,
                    e.inst);
        if (e.holdsLsqSlot) {
            panic_if(lsqUsed == 0, "LSQ accounting underflow");
            --lsqUsed;
        }
        if (e.faulted)
            injector->recordSquashed();
        // The store-address index is queried through its ordered ends, so
        // squashed stores must leave eagerly (the other scheduler sets
        // drop stale references lazily, by seq mismatch).
        if (p.readyListScheduler && !e.isDup && isStore(e.inst.op))
            dropStoreIndex(e);
        e.seq = invalidSeq; // invalidate dangling dependence edges
    }
    ruuCount = keep_count;
    rebuildCreateVectors();
}

void
OooCore::finishRun(StopReason reason)
{
    running = false;
    stopReason = reason;
}

void
OooCore::tick()
{
    if (reuseBuffer)
        reuseBuffer->beginCycle();
#if DIREB_TRACING_ENABLED
    if (tracer_)
        tracer_->beginCycle(now);
#endif
    stalls.beginCycle();

    commitStage();
    if (!running)
        return;
    writebackStage();
    memoryStage();
    issueStage();
    dispatchStage();
    fetchStage();

    ruuOccupancy.sample(static_cast<double>(ruuCount));
    stalls.endCycle();
    ++now;
    ++numCycles;

    // Deadlock detector: the pipeline must retire something eventually.
    panic_if(ruuCount > 0 && now - lastCommitCycle > 200'000,
             "pipeline deadlock at cycle %llu (pc %#llx, %zu in RUU)",
             static_cast<unsigned long long>(now),
             static_cast<unsigned long long>(entryAt(0).pc), ruuCount);
}

CoreResult
OooCore::run(std::uint64_t max_insts, Cycle max_cycles)
{
    maxArchInsts = max_insts;
    while (running && now < max_cycles)
        tick();
    if (running)
        finishRun(StopReason::InstLimit);

    CoreResult r;
    r.stop = stopReason;
    r.cycles = now;
    r.archInsts = numArchInsts.value();
    r.ruuEntriesCommitted = numEntriesCommitted.value();
    r.ipc = r.cycles ? static_cast<double>(r.archInsts) / r.cycles : 0.0;
    return r;
}

} // namespace direb
