/**
 * @file
 * Speculation-aware execution context for the out-of-order core.
 *
 * The core executes instructions functionally at dispatch (SimpleScalar
 * style). Correct-path instructions update the architectural state
 * directly; once a branch misprediction is dispatched past, the core
 * enters "spec mode" and all younger (wrong-path) instructions execute
 * against a shadow register file and a byte-granular memory overlay that
 * are discarded on recovery. Wrong-path program output is dropped.
 */

#ifndef DIREB_CPU_SPEC_STATE_HH
#define DIREB_CPU_SPEC_STATE_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "vm/arch_state.hh"

namespace direb
{

/** ExecContext that overlays speculative state on an ArchState. */
class SpecExecContext : public ExecContext
{
  public:
    explicit SpecExecContext(ArchState &arch_state) : arch(arch_state) {}

    /** Enter wrong-path execution (idempotent). */
    void
    enterSpec()
    {
        spec = true;
    }

    /** Discard all speculative state and return to the committed view. */
    void
    exitSpec()
    {
        spec = false;
        intValid = 0;
        fpValid = 0;
        specMem.clear();
    }

    bool inSpec() const { return spec; }

    RegVal
    readIntReg(unsigned idx) const override
    {
        idx &= 31;
        if (idx == 0)
            return 0;
        if (spec && (intValid & (1u << idx)))
            return intShadow[idx];
        return arch.readIntReg(idx);
    }

    void
    writeIntReg(unsigned idx, RegVal val) override
    {
        idx &= 31;
        if (idx == 0)
            return;
        if (spec) {
            intShadow[idx] = val;
            intValid |= 1u << idx;
        } else {
            arch.writeIntReg(idx, val);
        }
    }

    RegVal
    readFpReg(unsigned idx) const override
    {
        idx &= 31;
        if (spec && (fpValid & (1u << idx)))
            return fpShadow[idx];
        return arch.readFpReg(idx);
    }

    void
    writeFpReg(unsigned idx, RegVal val) override
    {
        idx &= 31;
        if (spec) {
            fpShadow[idx] = val;
            fpValid |= 1u << idx;
        } else {
            arch.writeFpReg(idx, val);
        }
    }

    std::uint64_t
    memRead(Addr addr, unsigned size) override
    {
        if (!spec || specMem.empty())
            return spec ? readSpecBytes(addr, size)
                        : arch.memRead(addr, size);
        return readSpecBytes(addr, size);
    }

    void
    memWrite(Addr addr, std::uint64_t val, unsigned size) override
    {
        if (spec) {
            for (unsigned i = 0; i < size; ++i) {
                specMem[addr + i] =
                    static_cast<std::uint8_t>(val >> (8 * i));
            }
        } else {
            arch.memWrite(addr, val, size);
        }
    }

    void
    output(const char *text) override
    {
        if (!spec)
            arch.output(text);
    }

  private:
    std::uint64_t
    readSpecBytes(Addr addr, unsigned size)
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i) {
            const auto it = specMem.find(addr + i);
            const std::uint8_t b = it != specMem.end()
                ? it->second
                : static_cast<std::uint8_t>(arch.memRead(addr + i, 1));
            v |= static_cast<std::uint64_t>(b) << (8 * i);
        }
        return v;
    }

    ArchState &arch;
    bool spec = false;
    std::array<RegVal, numIntRegs> intShadow{};
    std::array<RegVal, numFpRegs> fpShadow{};
    std::uint32_t intValid = 0;
    std::uint32_t fpValid = 0;
    std::unordered_map<Addr, std::uint8_t> specMem;
};

} // namespace direb

#endif // DIREB_CPU_SPEC_STATE_HH
