/**
 * @file
 * Dispatch stage: in-order functional execution (SimpleScalar style),
 * misprediction detection, RUU/LSQ allocation, DIE duplication into two
 * adjacent entries, dependence linking through the per-stream create
 * vectors, and the forwarding-fault injection points of §3.4. All
 * mode-specific decisions (whether to duplicate, which stream feeds the
 * duplicate, the IRB lookup) come from the RedundancyPolicy.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"
#include "cpu/stages.hh"

namespace direb
{

void
DispatchStage::linkSources(CoreContext &cx, RuuEntry &e, int idx,
                           unsigned stream)
{
    PipelineState &st = *cx.st;
    const RegId srcs[2] = {e.inst.srcReg1(), e.inst.srcReg2()};
    for (const RegId src : srcs) {
        if (src == noReg)
            continue;
        const Producer &prod = st.createVec[stream][src];
        if (prod.idx < 0)
            continue;
        RuuEntry &pe = st.ruu[prod.idx];
        if (pe.seq != prod.seq || pe.completed)
            continue; // producer retired/squashed/done: operand is ready
        pe.dependents.push_back({idx, e.seq});
        ++e.srcPending;
    }
}

void
DispatchStage::maybeInjectForwardFault(CoreContext &cx, RuuEntry &prim,
                                       RuuEntry &dup)
{
    const FaultSite site = cx.injector->site();
    if (site != FaultSite::FwdOne && site != FaultSite::FwdBoth)
        return;
    // A forwarding fault needs a forwarded operand to ride on.
    if (dup.srcPending == 0 && prim.srcPending == 0)
        return;
    if (!cx.injector->strike())
        return;
    const RegVal flip = RegVal(1) << cx.injector->bitToFlip();
    if (site == FaultSite::FwdBoth && cx.policy->sharedForwardingBus()) {
        // DIE-IRB forwards primary results to BOTH streams on one bus: a
        // strike there corrupts both copies identically -> undetectable.
        prim.checkValue ^= flip;
        dup.checkValue ^= flip;
        prim.faulted = dup.faulted = true;
    } else {
        // Plain DIE keeps per-stream dataflow, so any single forwarding
        // strike lands on one stream's copy only.
        dup.checkValue ^= flip;
        dup.faulted = true;
    }
}

void
DispatchStage::dispatchOne(CoreContext &cx, const FetchedInst &fi,
                           unsigned &width_left)
{
    PipelineState &st = *cx.st;
    const bool dual = cx.policy->duplicates();
    const bool was_spec = cx.spec->inSpec();

    ExecOutcome outcome;
    bool synthesized_halt = false;
    if (fi.hasOutcome) {
        outcome = fi.savedOutcome;
    } else if (!was_spec && !cx.prog->inText(fi.pc)) {
        // The committed path left the text segment: end the program.
        outcome.nextPc = fi.pc + 4;
        outcome.halted = true;
        synthesized_halt = true;
        st.badPcSeen = true;
    } else {
        outcome = execute(fi.inst, fi.pc, *cx.spec);
    }

    // Misprediction detection: the branch itself is correct-path; younger
    // instructions execute on shadow state until it resolves.
    bool mispredicted = false;
    if (!was_spec && !fi.hasOutcome && outcome.nextPc != fi.predNextPc) {
        mispredicted = true;
        cx.spec->enterSpec();
    }

    if (!was_spec && outcome.halted)
        st.haltSeen = true;

    const int idx = st.allocEntry();
    RuuEntry &e = st.ruu[idx];
    e.inst = fi.inst;
    e.pc = fi.pc;
    e.outcome = outcome;
    e.cls = opClassOf(fi.inst.op);
    e.wrongPath = was_spec;
    e.dispatchedAt = st.now;
    e.predTaken = fi.predTaken;
    e.predNextPc = fi.predNextPc;
    e.histAtFetch = fi.histAtFetch;
    e.hasPrediction = fi.hasPrediction;
    e.mispredicted = mispredicted;
    e.isMemOp = isMem(fi.inst.op);
    e.needsMemAccess = isLoad(fi.inst.op);
    e.checkValue = outcome.result;
    e.isHalt = outcome.halted; // covers HALT, synthesized, and replayed
    if (synthesized_halt) {
        e.cls = OpClass::Nop;
        e.isMemOp = false;
        e.needsMemAccess = false;
    }

    linkSources(cx, e, idx, 0);

    cx.sched->onDispatched(idx);

    if (e.isMemOp) {
        e.holdsLsqSlot = true;
        ++st.lsqUsed;
    }

    const RegId dst = e.inst.dstReg();

    // The fetch event is back-dated: an instruction only gains a seq here,
    // so the fetch stage cannot record it itself.
    DIREB_TRACE_AT(cx.tracer, fi.fetchCycle, trace::Kind::Fetch, e.seq,
                   e.pc, false, e.inst);
    DIREB_TRACE(cx.tracer, trace::Kind::Dispatch, e.seq, e.pc, false,
                e.inst);

    ++cx.stats->numDispatched;
    if (e.wrongPath)
        ++cx.stats->numWrongPathDispatched;
    width_left -= 1;
    cx.stalls->busy(trace::StallStage::Dispatch);

    if (!dual) {
        if (dst != noReg)
            st.createVec[0][dst] = {idx, e.seq};
        return;
    }

    // Duplicate-stream entry, adjacent in the RUU (paper Figure 1).
    const int didx = st.allocEntry();
    RuuEntry &d = st.ruu[didx];
    RuuEntry &prim = st.ruu[idx]; // re-reference: allocEntry may not move,
                                  // but be explicit about aliasing
    d.inst = prim.inst;
    d.pc = prim.pc;
    d.outcome = prim.outcome;
    d.cls = prim.cls;
    d.isDup = true;
    d.wrongPath = prim.wrongPath;
    d.dispatchedAt = st.now;
    d.predTaken = prim.predTaken;
    d.predNextPc = prim.predNextPc;
    d.mispredicted = prim.mispredicted;
    d.isMemOp = prim.isMemOp;
    d.needsMemAccess = false; // memory accessed once, by the primary
    d.checkValue = prim.outcome.result;
    d.isHalt = prim.isHalt;
    if (synthesized_halt)
        d.cls = OpClass::Nop;

    prim.pairIdx = didx;
    d.pairIdx = idx;

    // Dataflow: plain DIE keeps the duplicate stream independent
    // (createVec[1]); DIE-IRB forwards primary results to both streams —
    // unless the dup_own_dataflow ablation keeps the streams independent
    // even with the IRB. The duplicate links its sources BEFORE the
    // primary registers as a producer, so an instruction like
    // "addi s0, s0, 1" reads the previous producer of s0 in both streams,
    // not its own primary.
    const bool own_dataflow = cx.policy->dupOwnDataflow();
    linkSources(cx, d, didx, own_dataflow ? 1 : 0);
    if (dst != noReg) {
        st.createVec[0][dst] = {idx, prim.seq};
        if (own_dataflow)
            st.createVec[1][dst] = {didx, d.seq};
    }

    cx.policy->prepareDuplicate(d, st.now, cx.tracer);

    cx.sched->onDispatchedDup(didx);

    maybeInjectForwardFault(cx, prim, d);

    DIREB_TRACE_AT(cx.tracer, fi.fetchCycle, trace::Kind::Fetch, d.seq,
                   d.pc, true, d.inst);
    DIREB_TRACE(cx.tracer, trace::Kind::Dispatch, d.seq, d.pc, true,
                d.inst);

    ++cx.stats->numDispatched;
    if (d.wrongPath)
        ++cx.stats->numWrongPathDispatched;
    width_left -= 1;
    cx.stalls->busy(trace::StallStage::Dispatch);
}

void
DispatchStage::run(CoreContext &cx)
{
    using trace::StallReason;
    using trace::StallStage;

    PipelineState &st = *cx.st;
    const unsigned units_per_inst = cx.policy->unitsPerInst();
    unsigned budget = cx.p.decodeWidth;

    while (budget >= units_per_inst && !st.ifq.empty()) {
        if (st.haltSeen) {
            cx.stalls->blame(StallStage::Dispatch, StallReason::Drained);
            return;
        }
        const FetchedInst &fi = st.ifq.front();

        if (st.ruuFull(units_per_inst)) {
            ++cx.stats->numDispatchStallRuu;
            cx.stalls->blame(StallStage::Dispatch, StallReason::WindowFull);
            return;
        }
        if (isMem(fi.inst.op) && st.lsqUsed >= cx.p.lsqSize) {
            ++cx.stats->numDispatchStallLsq;
            cx.stalls->blame(StallStage::Dispatch, StallReason::LsqFull);
            return;
        }

        const FetchedInst taken = fi;
        st.ifq.pop_front();
        dispatchOne(cx, taken, budget);
    }
    if (budget == 0)
        return; // full width used: nothing left to blame
    if (st.ifq.empty())
        cx.stalls->blame(StallStage::Dispatch,
                         st.haltSeen ? StallReason::Drained
                                     : StallReason::FetchStarved);
    else
        cx.stalls->blame(StallStage::Dispatch, StallReason::PairAlign);
}

} // namespace direb
