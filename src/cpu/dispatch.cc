/**
 * @file
 * Dispatch stage: in-order functional execution (SimpleScalar style),
 * misprediction detection, RUU/LSQ allocation, DIE duplication into two
 * adjacent entries, dependence linking through the per-stream create
 * vectors, and the forwarding-fault injection points of §3.4. All
 * mode-specific decisions (whether to duplicate, which stream feeds the
 * duplicate, the IRB lookup) come from the RedundancyPolicy.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"
#include "cpu/stages.hh"

namespace direb
{

void
DispatchStage::linkSources(CoreContext &cx, int idx, unsigned stream)
{
    PipelineState &st = *cx.st;
    const Inst &inst = st.cold[idx].inst;
    const RegId srcs[2] = {inst.srcReg1(), inst.srcReg2()};
    for (const RegId src : srcs) {
        if (src == noReg)
            continue;
        const Producer &prod = st.createVec[stream][src];
        if (prod.idx < 0)
            continue;
        if (st.eSeq[prod.idx] != prod.seq ||
            st.any(prod.idx, ruuf::Completed)) {
            continue; // producer retired/squashed/done: operand is ready
        }
        st.pushDep(prod.idx, {idx, st.eSeq[idx]});
        ++st.eSrcPending[idx];
    }
}

void
DispatchStage::maybeInjectForwardFault(CoreContext &cx, int prim, int dup)
{
    PipelineState &st = *cx.st;
    const FaultSite site = cx.injector->site();
    if (site != FaultSite::FwdOne && site != FaultSite::FwdBoth)
        return;
    // A forwarding fault needs a forwarded operand to ride on.
    if (st.eSrcPending[dup] == 0 && st.eSrcPending[prim] == 0)
        return;
    if (!cx.injector->strike())
        return;
    const RegVal flip = RegVal(1) << cx.injector->bitToFlip();
    if (site == FaultSite::FwdBoth && cx.policy->sharedForwardingBus()) {
        // DIE-IRB forwards primary results to BOTH streams on one bus: a
        // strike there corrupts both copies identically -> undetectable.
        st.cold[prim].checkValue ^= flip;
        st.cold[dup].checkValue ^= flip;
        st.set(prim, ruuf::Faulted);
        st.set(dup, ruuf::Faulted);
    } else {
        // Plain DIE keeps per-stream dataflow, so any single forwarding
        // strike lands on one stream's copy only.
        st.cold[dup].checkValue ^= flip;
        st.set(dup, ruuf::Faulted);
    }
}

void
DispatchStage::dispatchOne(CoreContext &cx, const FetchedInst &fi,
                           unsigned &width_left)
{
    PipelineState &st = *cx.st;
    const bool dual = cx.policy->duplicates();
    const bool was_spec = cx.spec->inSpec();

    ExecOutcome outcome;
    bool synthesized_halt = false;
    if (fi.hasOutcome) {
        outcome = fi.savedOutcome;
    } else if (!was_spec && !cx.prog->inText(fi.pc)) {
        // The committed path left the text segment: end the program.
        outcome.nextPc = fi.pc + 4;
        outcome.halted = true;
        synthesized_halt = true;
        st.badPcSeen = true;
    } else {
        outcome = execute(fi.inst, fi.pc, *cx.spec);
    }

    // Misprediction detection: the branch itself is correct-path; younger
    // instructions execute on shadow state until it resolves.
    bool mispredicted = false;
    if (!was_spec && !fi.hasOutcome && outcome.nextPc != fi.predNextPc) {
        mispredicted = true;
        cx.spec->enterSpec();
    }

    if (!was_spec && outcome.halted)
        st.haltSeen = true;

    const int idx = st.allocEntry();
    RuuCold &c = st.cold[idx];
    c.inst = fi.inst;
    c.pc = fi.pc;
    c.outcome = outcome;
    c.predNextPc = fi.predNextPc;
    c.histAtFetch = fi.histAtFetch;
    c.checkValue = outcome.result;
    st.eCls[idx] = opClassOf(fi.inst.op);
    st.eDispatchedAt[idx] = st.now;
    st.eDst[idx] = fi.inst.dstReg();

    std::uint32_t f = 0;
    if (was_spec)
        f |= ruuf::WrongPath;
    if (fi.predTaken)
        f |= ruuf::PredTaken;
    if (fi.hasPrediction)
        f |= ruuf::HasPrediction;
    if (mispredicted)
        f |= ruuf::Mispredicted;
    // The raw-opcode mirror bits follow inst.op unconditionally (the
    // synthesized-halt special case below only clears the memory state
    // machine, exactly as the AoS layout derived isLoad/isStore from the
    // opcode at every use site).
    if (isLoad(fi.inst.op))
        f |= ruuf::IsLoad;
    if (isStore(fi.inst.op))
        f |= ruuf::IsStore;
    if (isMem(fi.inst.op))
        f |= ruuf::IsMemOp | (isLoad(fi.inst.op) ? ruuf::NeedsMemAccess : 0);
    if (outcome.halted)
        f |= ruuf::IsHalt; // covers HALT, synthesized, and replayed
    if (synthesized_halt) {
        st.eCls[idx] = OpClass::Nop;
        f &= ~(ruuf::IsMemOp | ruuf::NeedsMemAccess);
    }
    st.eFlags[idx] = f;

    linkSources(cx, idx, 0);

    cx.sched->onDispatched(idx);

    if (st.any(idx, ruuf::IsMemOp)) {
        st.set(idx, ruuf::HoldsLsqSlot);
        ++st.lsqUsed;
    }

    const RegId dst = fi.inst.dstReg();

    // The fetch event is back-dated: an instruction only gains a seq here,
    // so the fetch stage cannot record it itself.
    DIREB_TRACE_AT(cx.tracer, fi.fetchCycle, trace::Kind::Fetch,
                   st.eSeq[idx], c.pc, false, c.inst);
    DIREB_TRACE(cx.tracer, trace::Kind::Dispatch, st.eSeq[idx], c.pc,
                false, c.inst);

    ++cx.stats->numDispatched;
    if (was_spec)
        ++cx.stats->numWrongPathDispatched;
    width_left -= 1;
    cx.stalls->busy(trace::StallStage::Dispatch);

    if (!dual) {
        if (dst != noReg)
            st.createVec[0][dst] = {idx, st.eSeq[idx]};
        return;
    }

    // Duplicate-stream entry, adjacent in the RUU (paper Figure 1).
    const int didx = st.allocEntry();
    st.cold[didx] = c; // histAtFetch copied but dead: no HasPrediction
    st.eCls[didx] = st.eCls[idx];
    st.eDispatchedAt[didx] = st.now;
    st.eDst[didx] = dst;
    // The duplicate's memory access happens once, by the primary: the
    // dup keeps the opcode-mirror and control bits but never
    // NeedsMemAccess (and never a prediction/LSQ slot of its own).
    st.eFlags[didx] =
        ruuf::IsDup |
        (f & (ruuf::WrongPath | ruuf::PredTaken | ruuf::Mispredicted |
              ruuf::IsMemOp | ruuf::IsLoad | ruuf::IsStore | ruuf::IsHalt));

    st.ePair[idx] = didx;
    st.ePair[didx] = idx;

    // Dataflow: plain DIE keeps the duplicate stream independent
    // (createVec[1]); DIE-IRB forwards primary results to both streams —
    // unless the dup_own_dataflow ablation keeps the streams independent
    // even with the IRB. The duplicate links its sources BEFORE the
    // primary registers as a producer, so an instruction like
    // "addi s0, s0, 1" reads the previous producer of s0 in both streams,
    // not its own primary.
    const bool own_dataflow = cx.policy->dupOwnDataflow();
    linkSources(cx, didx, own_dataflow ? 1 : 0);
    if (dst != noReg) {
        st.createVec[0][dst] = {idx, st.eSeq[idx]};
        if (own_dataflow)
            st.createVec[1][dst] = {didx, st.eSeq[didx]};
    }

    cx.policy->prepareDuplicate(st, didx, st.now, cx.tracer);

    cx.sched->onDispatchedDup(didx);

    maybeInjectForwardFault(cx, idx, didx);

    DIREB_TRACE_AT(cx.tracer, fi.fetchCycle, trace::Kind::Fetch,
                   st.eSeq[didx], st.cold[didx].pc, true,
                   st.cold[didx].inst);
    DIREB_TRACE(cx.tracer, trace::Kind::Dispatch, st.eSeq[didx],
                st.cold[didx].pc, true, st.cold[didx].inst);

    ++cx.stats->numDispatched;
    if (st.any(didx, ruuf::WrongPath))
        ++cx.stats->numWrongPathDispatched;
    width_left -= 1;
    cx.stalls->busy(trace::StallStage::Dispatch);
}

void
DispatchStage::run(CoreContext &cx)
{
    using trace::StallReason;
    using trace::StallStage;

    PipelineState &st = *cx.st;
    const unsigned units_per_inst = cx.policy->unitsPerInst();
    unsigned budget = cx.p.decodeWidth;

    while (budget >= units_per_inst && !st.ifq.empty()) {
        if (st.haltSeen) {
            cx.stalls->blame(StallStage::Dispatch, StallReason::Drained);
            return;
        }
        const FetchedInst &fi = st.ifq.front();

        if (st.ruuFull(units_per_inst)) {
            ++cx.stats->numDispatchStallRuu;
            cx.stalls->blame(StallStage::Dispatch, StallReason::WindowFull);
            return;
        }
        if (isMem(fi.inst.op) && st.lsqUsed >= cx.p.lsqSize) {
            ++cx.stats->numDispatchStallLsq;
            cx.stalls->blame(StallStage::Dispatch, StallReason::LsqFull);
            return;
        }

        const FetchedInst taken = fi;
        st.ifq.pop_front();
        dispatchOne(cx, taken, budget);
    }
    if (budget == 0)
        return; // full width used: nothing left to blame
    if (st.ifq.empty())
        cx.stalls->blame(StallStage::Dispatch,
                         st.haltSeen ? StallReason::Drained
                                     : StallReason::FetchStarved);
    else
        cx.stalls->blame(StallStage::Dispatch, StallReason::PairAlign);
}

} // namespace direb
