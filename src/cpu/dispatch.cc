/**
 * @file
 * Dispatch stage: in-order functional execution (SimpleScalar style),
 * misprediction detection, RUU/LSQ allocation, DIE duplication into two
 * adjacent entries, dependence linking through the per-stream create
 * vectors, and the forwarding-fault injection points of §3.4.
 */

#include "common/logging.hh"
#include "cpu/ooo_core.hh"

namespace direb
{

void
OooCore::linkSources(RuuEntry &e, int idx, unsigned stream)
{
    const RegId srcs[2] = {e.inst.srcReg1(), e.inst.srcReg2()};
    for (const RegId src : srcs) {
        if (src == noReg)
            continue;
        const Producer &prod = createVec[stream][src];
        if (prod.idx < 0)
            continue;
        RuuEntry &pe = ruu[prod.idx];
        if (pe.seq != prod.seq || pe.completed)
            continue; // producer retired/squashed/done: operand is ready
        pe.dependents.push_back({idx, e.seq});
        ++e.srcPending;
    }
}

void
OooCore::setupIrbFields(RuuEntry &dup, const FetchedInst &fi)
{
    // The 3-stage pipelined lookup (Figure 3) starts at fetch and is
    // complete by the time the instruction reaches the issue window; it
    // is port-arbitrated here, at window entry, which paces lookups at
    // the DIE dispatch rate (<= width/2 per cycle) — the basis of the
    // paper's 4R/2W/2RW sufficiency argument. The result becomes usable
    // one cycle later, i.e. at the duplicate's first issue opportunity.
    // Loads/stores participate for address generation only; outputs and
    // NOP/HALT produce nothing worth reusing.
    const bool eligible =
        dup.cls != OpClass::Nop && !isOutput(dup.inst.op);
    if (!eligible)
        return;
    dup.irb = reuseBuffer->lookup(dup.pc);
    dup.irbReadyAt = now + 1;
    dup.irbCandidate = dup.irb.pcHit;
    DIREB_TRACE(tracer_, trace::Kind::IrbLookup, dup.seq, dup.pc, true,
                dup.inst,
                (dup.irb.pcHit ? 1u : 0u) | (dup.irb.portDrop ? 2u : 0u));
}

void
OooCore::maybeInjectForwardFault(RuuEntry &prim, RuuEntry &dup)
{
    const FaultSite site = injector->site();
    if (site != FaultSite::FwdOne && site != FaultSite::FwdBoth)
        return;
    // A forwarding fault needs a forwarded operand to ride on.
    if (dup.srcPending == 0 && prim.srcPending == 0)
        return;
    if (!injector->strike())
        return;
    const RegVal flip = RegVal(1) << injector->bitToFlip();
    if (site == FaultSite::FwdBoth && p.mode == ExecMode::DieIrb) {
        // DIE-IRB forwards primary results to BOTH streams on one bus: a
        // strike there corrupts both copies identically -> undetectable.
        prim.checkValue ^= flip;
        dup.checkValue ^= flip;
        prim.faulted = dup.faulted = true;
    } else {
        // Plain DIE keeps per-stream dataflow, so any single forwarding
        // strike lands on one stream's copy only.
        dup.checkValue ^= flip;
        dup.faulted = true;
    }
}

void
OooCore::dispatchOne(const FetchedInst &fi, unsigned &width_left)
{
    const bool dual = p.mode != ExecMode::Sie;
    const bool was_spec = specCtx.inSpec();

    ExecOutcome outcome;
    bool synthesized_halt = false;
    if (fi.hasOutcome) {
        outcome = fi.savedOutcome;
    } else if (!was_spec && !prog.inText(fi.pc)) {
        // The committed path left the text segment: end the program.
        outcome.nextPc = fi.pc + 4;
        outcome.halted = true;
        synthesized_halt = true;
        badPcSeen = true;
    } else {
        outcome = execute(fi.inst, fi.pc, specCtx);
    }

    // Misprediction detection: the branch itself is correct-path; younger
    // instructions execute on shadow state until it resolves.
    bool mispredicted = false;
    if (!was_spec && !fi.hasOutcome && outcome.nextPc != fi.predNextPc) {
        mispredicted = true;
        specCtx.enterSpec();
    }

    if (!was_spec && outcome.halted)
        haltSeen = true;

    const int idx = allocEntry();
    RuuEntry &e = ruu[idx];
    e.inst = fi.inst;
    e.pc = fi.pc;
    e.outcome = outcome;
    e.cls = opClassOf(fi.inst.op);
    e.wrongPath = was_spec;
    e.dispatchedAt = now;
    e.predTaken = fi.predTaken;
    e.predNextPc = fi.predNextPc;
    e.histAtFetch = fi.histAtFetch;
    e.hasPrediction = fi.hasPrediction;
    e.mispredicted = mispredicted;
    e.isMemOp = isMem(fi.inst.op);
    e.needsMemAccess = isLoad(fi.inst.op);
    e.checkValue = outcome.result;
    e.isHalt = outcome.halted; // covers HALT, synthesized, and replayed
    if (synthesized_halt) {
        e.cls = OpClass::Nop;
        e.isMemOp = false;
        e.needsMemAccess = false;
    }

    linkSources(e, idx, 0);

    if (p.readyListScheduler) {
        if (e.srcPending == 0)
            readyList.push(e.seq, idx);
        // Dispatch allocates seqs in increasing order, so appending here
        // keeps the unresolved-store list sorted.
        if (isStore(e.inst.op))
            unresolvedStores.push_back(e.seq);
    }

    if (e.isMemOp) {
        e.holdsLsqSlot = true;
        ++lsqUsed;
    }

    const RegId dst = e.inst.dstReg();

    // The fetch event is back-dated: an instruction only gains a seq here,
    // so the fetch stage cannot record it itself.
    DIREB_TRACE_AT(tracer_, fi.fetchCycle, trace::Kind::Fetch, e.seq, e.pc,
                   false, e.inst);
    DIREB_TRACE(tracer_, trace::Kind::Dispatch, e.seq, e.pc, false, e.inst);

    ++numDispatched;
    if (e.wrongPath)
        ++numWrongPathDispatched;
    width_left -= 1;
    stalls.busy(trace::StallStage::Dispatch);

    if (!dual) {
        if (dst != noReg)
            createVec[0][dst] = {idx, e.seq};
        return;
    }

    // Duplicate-stream entry, adjacent in the RUU (paper Figure 1).
    const int didx = allocEntry();
    RuuEntry &d = ruu[didx];
    RuuEntry &prim = ruu[idx]; // re-reference: allocEntry may not move,
                               // but be explicit about aliasing
    d.inst = prim.inst;
    d.pc = prim.pc;
    d.outcome = prim.outcome;
    d.cls = prim.cls;
    d.isDup = true;
    d.wrongPath = prim.wrongPath;
    d.dispatchedAt = now;
    d.predTaken = prim.predTaken;
    d.predNextPc = prim.predNextPc;
    d.mispredicted = prim.mispredicted;
    d.isMemOp = prim.isMemOp;
    d.needsMemAccess = false; // memory accessed once, by the primary
    d.checkValue = prim.outcome.result;
    d.isHalt = prim.isHalt;
    if (synthesized_halt)
        d.cls = OpClass::Nop;

    prim.pairIdx = didx;
    d.pairIdx = idx;

    // Dataflow: plain DIE keeps the duplicate stream independent
    // (createVec[1]); DIE-IRB forwards primary results to both streams —
    // unless the dup_own_dataflow ablation keeps the streams independent
    // even with the IRB. The duplicate links its sources BEFORE the
    // primary registers as a producer, so an instruction like
    // "addi s0, s0, 1" reads the previous producer of s0 in both streams,
    // not its own primary.
    const bool own_dataflow =
        p.mode == ExecMode::Die ||
        (p.mode == ExecMode::DieIrb && p.dupOwnDataflow);
    linkSources(d, didx, own_dataflow ? 1 : 0);
    if (dst != noReg) {
        createVec[0][dst] = {idx, prim.seq};
        if (own_dataflow)
            createVec[1][dst] = {didx, d.seq};
    }

    if (p.mode == ExecMode::DieIrb)
        setupIrbFields(d, fi);

    if (p.readyListScheduler) {
        if (d.srcPending == 0)
            readyList.push(d.seq, didx);
        if (d.irbCandidate && !p.irbConsumesIssueSlot)
            pendingReuse.push(d.seq, didx);
    }

    maybeInjectForwardFault(prim, d);

    DIREB_TRACE_AT(tracer_, fi.fetchCycle, trace::Kind::Fetch, d.seq, d.pc,
                   true, d.inst);
    DIREB_TRACE(tracer_, trace::Kind::Dispatch, d.seq, d.pc, true, d.inst);

    ++numDispatched;
    if (d.wrongPath)
        ++numWrongPathDispatched;
    width_left -= 1;
    stalls.busy(trace::StallStage::Dispatch);
}

void
OooCore::dispatchStage()
{
    using trace::StallReason;
    using trace::StallStage;

    const unsigned units_per_inst = p.mode == ExecMode::Sie ? 1 : 2;
    unsigned budget = p.decodeWidth;

    while (budget >= units_per_inst && !ifq.empty()) {
        if (haltSeen) {
            stalls.blame(StallStage::Dispatch, StallReason::Drained);
            return;
        }
        const FetchedInst &fi = ifq.front();

        if (ruuFull(units_per_inst)) {
            ++numDispatchStallRuu;
            stalls.blame(StallStage::Dispatch, StallReason::WindowFull);
            return;
        }
        if (isMem(fi.inst.op) && lsqUsed >= p.lsqSize) {
            ++numDispatchStallLsq;
            stalls.blame(StallStage::Dispatch, StallReason::LsqFull);
            return;
        }

        const FetchedInst taken = fi;
        ifq.pop_front();
        dispatchOne(taken, budget);
    }
    if (budget == 0)
        return; // full width used: nothing left to blame
    if (ifq.empty())
        stalls.blame(StallStage::Dispatch, haltSeen
                                               ? StallReason::Drained
                                               : StallReason::FetchStarved);
    else
        stalls.blame(StallStage::Dispatch, StallReason::PairAlign);
}

} // namespace direb
