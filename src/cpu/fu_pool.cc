#include "cpu/fu_pool.hh"

#include "common/logging.hh"

namespace direb
{

FuPool::FuPool(const Config &config)
{
    const auto count = [&](const char *key, unsigned def,
                           const char *desc) {
        const auto n = config.getUint(key, def, desc);
        fatal_if(n == 0, "%s must be positive", key);
        return static_cast<std::size_t>(n);
    };
    intAlu.units.resize(count("fu.intalu", 4, "integer ALU count"));
    intMulDiv.units.resize(
        count("fu.intmul", 2, "integer multiply/divide unit count"));
    fpAdd.units.resize(count("fu.fpadd", 2, "FP adder count"));
    fpMulDiv.units.resize(
        count("fu.fpmul", 1, "FP multiply/divide unit count"));
    memPorts.resize(count("fu.memport", 2, "data-cache port count"));

    const auto tim = [&](OpClass cls, const char *key, Cycle op_def,
                         Cycle iss_def) {
        auto &t = timings[static_cast<unsigned>(cls)];
        t.opLatency = config.getUint(
            std::string("lat.") + key, op_def,
            (std::string(key) + " operation latency in cycles").c_str());
        t.issueLatency = config.getUint(
            std::string("lat.") + key + "_issue", iss_def,
            (std::string(key) +
             " issue (initiation) interval in cycles").c_str());
    };
    tim(OpClass::IntAlu, "intalu", 1, 1);
    tim(OpClass::IntMul, "intmul", 3, 1);
    tim(OpClass::IntDiv, "intdiv", 20, 19);
    tim(OpClass::FpAdd, "fpadd", 2, 1);
    tim(OpClass::FpMul, "fpmul", 4, 1);
    tim(OpClass::FpDiv, "fpdiv", 12, 12);
    tim(OpClass::FpSqrt, "fpsqrt", 24, 24);
    // Memory ops charge an IntAlu for address generation.
    timings[static_cast<unsigned>(OpClass::MemRead)] =
        timings[static_cast<unsigned>(OpClass::IntAlu)];
    timings[static_cast<unsigned>(OpClass::MemWrite)] =
        timings[static_cast<unsigned>(OpClass::IntAlu)];
    timings[static_cast<unsigned>(OpClass::Nop)] = {1, 1};

    group.addScalar(&numIssued, "issued", "operations issued to units");
    group.addScalar(&numFuBusy, "fu_busy",
                    "issue attempts rejected: all units busy");
    group.addScalar(&numMemPortBusy, "memport_busy",
                    "memory accesses delayed: all ports busy");
}

FuPool::Group_ *
FuPool::groupFor(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::MemRead:  // address generation
      case OpClass::MemWrite: // address generation
        return &intAlu;
      case OpClass::IntMul:
      case OpClass::IntDiv:
        return &intMulDiv;
      case OpClass::FpAdd:
        return &fpAdd;
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        return &fpMulDiv;
      case OpClass::Nop:
        return nullptr;
    }
    return nullptr;
}

const FuPool::Group_ *
FuPool::groupFor(OpClass cls) const
{
    return const_cast<FuPool *>(this)->groupFor(cls);
}

const OpTiming &
FuPool::timing(OpClass cls) const
{
    return timings[static_cast<unsigned>(cls)];
}

unsigned
FuPool::unitCount(OpClass cls) const
{
    const Group_ *g = groupFor(cls);
    return g ? static_cast<unsigned>(g->units.size()) : 0;
}

bool
FuPool::canIssue(OpClass cls, Cycle now) const
{
    const Group_ *g = groupFor(cls);
    if (!g)
        return true; // Nop class needs no unit
    for (const auto &u : g->units) {
        if (u.freeAt <= now)
            return true;
    }
    return false;
}

bool
FuPool::tryIssue(OpClass cls, Cycle now, Cycle &op_latency)
{
    const OpTiming &t = timing(cls);
    Group_ *g = groupFor(cls);
    if (!g) {
        op_latency = 1;
        return true;
    }
    for (auto &u : g->units) {
        if (u.freeAt <= now) {
            u.freeAt = now + t.issueLatency;
            op_latency = t.opLatency;
            ++numIssued;
            return true;
        }
    }
    ++numFuBusy;
    return false;
}

bool
FuPool::tryMemPort(Cycle now)
{
    for (auto &u : memPorts) {
        if (u.freeAt <= now) {
            u.freeAt = now + 1;
            return true;
        }
    }
    ++numMemPortBusy;
    return false;
}

} // namespace direb
