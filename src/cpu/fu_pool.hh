/**
 * @file
 * Functional-unit pool with SimpleScalar-style latency / issue-rate
 * semantics.
 *
 * Units come in four physical kinds, each serving a set of operation
 * classes: integer ALUs (IntAlu — also branches and address generation),
 * integer multiplier/dividers (IntMul, IntDiv), FP adders (FpAdd — also
 * compares/converts), and FP multiplier/divider/sqrt units (FpMul, FpDiv,
 * FpSqrt). Memory ports are modelled separately. An operation occupies its
 * unit for issueLatency cycles (non-pipelined ops block the unit) and
 * produces its result after opLatency cycles.
 */

#ifndef DIREB_CPU_FU_POOL_HH
#define DIREB_CPU_FU_POOL_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"

namespace direb
{

/** Latency descriptor for one operation class. */
struct OpTiming
{
    Cycle opLatency = 1;     //!< cycles until result available
    Cycle issueLatency = 1;  //!< cycles the unit is blocked
};

/**
 * Pool of functional units + memory ports.
 *
 * Config keys (defaults): fu.intalu=4, fu.intmul=2, fu.fpadd=2, fu.fpmul=1,
 * fu.memport=2; lat.intmul=3, lat.intdiv=20/19, lat.fpadd=2, lat.fpmul=4,
 * lat.fpdiv=12/12, lat.fpsqrt=24/24 (op/issue).
 */
class FuPool
{
  public:
    explicit FuPool(const Config &config);

    /** Per-cycle bookkeeping: nothing to do (units track freeAt), kept for
     * symmetry and future port models. */
    void beginCycle(Cycle now) {}

    /**
     * Try to claim a unit for @p cls at cycle @p now.
     * @return true and set @p op_latency on success; false if all busy.
     */
    bool tryIssue(OpClass cls, Cycle now, Cycle &op_latency);

    /** Would tryIssue succeed (no state change)? */
    bool canIssue(OpClass cls, Cycle now) const;

    /** Try to claim a cache port for a memory access at @p now. */
    bool tryMemPort(Cycle now);

    /** Timing of @p cls. */
    const OpTiming &timing(OpClass cls) const;

    /** Number of units able to execute @p cls. */
    unsigned unitCount(OpClass cls) const;

    stats::Group &statGroup() { return group; }

    /** Count of issue attempts that failed because all units were busy. */
    std::uint64_t structuralStalls() const { return numFuBusy.value(); }

  private:
    /** One physical unit: busy until freeAt. */
    struct Unit
    {
        Cycle freeAt = 0;
    };

    /** Unit group serving a set of op classes. */
    struct Group_
    {
        std::vector<Unit> units;
    };

    Group_ *groupFor(OpClass cls);
    const Group_ *groupFor(OpClass cls) const;

    Group_ intAlu;
    Group_ intMulDiv;
    Group_ fpAdd;
    Group_ fpMulDiv;
    std::vector<Unit> memPorts;

    OpTiming timings[16];

    stats::Group group{"fu"};
    stats::Scalar numIssued;
    stats::Scalar numFuBusy;
    stats::Scalar numMemPortBusy;
};

} // namespace direb

#endif // DIREB_CPU_FU_POOL_HH
