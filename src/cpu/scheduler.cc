/**
 * @file
 * Scheduler machinery shared by both backends: completion/wakeup, the
 * IRB reuse test (folded into wakeup, paper Figure 5), branch
 * misprediction recovery, the squash walk, and the per-cycle issue-blame
 * attribution.
 */

#include "cpu/scheduler.hh"

#include "common/logging.hh"

namespace direb
{

void
SchedulerBackend::issue()
{
    cycFuDenied = 0;
    cycIrbDeferred = 0;
    issueImpl();

    // Cycle blame from aggregates both scheduler implementations compute
    // identically: an FU denial means ready work existed and lost ALU
    // bandwidth; failing that, a pending reuse test held duplicates back;
    // otherwise occupied-but-unready entries were waiting on operands.
    using trace::StallReason;
    using trace::StallStage;
    if (cx.st->ruuCount == 0)
        cx.stalls->blame(StallStage::Issue, StallReason::Empty);
    else if (cycFuDenied > 0)
        cx.stalls->blame(StallStage::Issue, StallReason::FuContention);
    else if (cycIrbDeferred > 0)
        cx.stalls->blame(StallStage::Issue, StallReason::IrbDeferral);
    else
        cx.stalls->blame(StallStage::Issue, StallReason::OperandWait);
}

void
SchedulerBackend::wakeDependents(int idx)
{
    PipelineState &st = *cx.st;
    RuuEntry &e = st.ruu[idx];
    for (const DepEdge &dep : e.dependents) {
        RuuEntry &c = st.ruu[dep.idx];
        if (c.seq != dep.seq)
            continue; // consumer was squashed; slot may be reused
        panic_if(c.srcPending == 0, "wakeup underflow (seq %llu)",
                 static_cast<unsigned long long>(c.seq));
        --c.srcPending;
        if (c.srcPending == 0) {
            DIREB_TRACE(cx.tracer, trace::Kind::Wakeup, c.seq, c.pc,
                        c.isDup, c.inst);
            onWokenReady(dep.idx);
        }
    }
    e.dependents.clear();
}

void
SchedulerBackend::completeEntry(int idx)
{
    RuuEntry &e = cx.st->ruu[idx];
    e.completed = true;
    DIREB_TRACE(cx.tracer, trace::Kind::Complete, e.seq, e.pc, e.isDup,
                e.inst);

    // Fault site "fu": a transient strikes the unit producing this value.
    if (cx.injector->site() == FaultSite::Fu && e.cls != OpClass::Nop &&
        !e.bypassedAlu && cx.injector->strike()) {
        e.checkValue ^= RegVal(1) << cx.injector->bitToFlip();
        e.faulted = true;
    }

    // In DIE-IRB only primary results are forwarded; duplicate completions
    // wake nobody (their dependents list is empty by construction).
    wakeDependents(idx);

    if (e.mispredicted && !e.wrongPath && !e.recoveryDone)
        handleMispredictRecovery(idx);

    onCompleted(idx);
}

void
SchedulerBackend::tryReuseTest(int idx)
{
    PipelineState &st = *cx.st;
    RuuEntry &e = st.ruu[idx];
    if (!e.isDup || !e.irbCandidate || e.reuseTested || e.issued ||
        e.completed || e.srcPending > 0 || st.now < e.irbReadyAt) {
        return;
    }
    e.reuseTested = true;
    // A corrupted forwarded operand (fault injection) cannot match the
    // stored operand values: the reuse test fails and the duplicate
    // executes with the corrupted input — exactly the §3.4 behaviour.
    const bool pass = !e.faulted && e.irb.op1 == e.outcome.op1Val &&
                      e.irb.op2 == e.outcome.op2Val;
    cx.policy->irb()->recordReuseTest(pass);
    DIREB_TRACE(cx.tracer,
                pass ? trace::Kind::IrbReuseHit : trace::Kind::IrbReuseMiss,
                e.seq, e.pc, true, e.inst);
    if (!pass)
        return;

    // Reuse hit: pick up the stored result and skip the ALUs entirely —
    // no issue slot, no functional unit, no result forwarding.
    e.reuseHit = true;
    e.bypassedAlu = true;
    e.issued = true;
    e.completeAt = st.now + 1;
    e.checkValue = e.irb.result;
    scheduleCompletion(idx, e.completeAt);
    ++cx.stats->numBypassedAlu;
}

void
SchedulerBackend::squashYoungerThan(std::size_t keep_count)
{
    PipelineState &st = *cx.st;
    panic_if(keep_count > st.ruuCount, "bad squash point");
    for (std::size_t off = keep_count; off < st.ruuCount; ++off) {
        RuuEntry &e = st.entryAt(off);
        DIREB_TRACE(cx.tracer, trace::Kind::Squash, e.seq, e.pc, e.isDup,
                    e.inst);
        if (e.holdsLsqSlot) {
            panic_if(st.lsqUsed == 0, "LSQ accounting underflow");
            --st.lsqUsed;
        }
        if (e.faulted)
            cx.injector->recordSquashed();
        onSquashEntry(e);
        e.seq = invalidSeq; // invalidate dangling dependence edges
    }
    st.ruuCount = keep_count;
    st.rebuildCreateVectors(cx.policy->dupOwnDataflow());
}

void
SchedulerBackend::handleMispredictRecovery(int idx)
{
    PipelineState &st = *cx.st;
    RuuEntry &e = st.ruu[idx];
    panic_if(!st.replayQueue.empty(), "recovery during fault replay");
    DIREB_TRACE(cx.tracer, trace::Kind::Recovery, e.seq, e.pc, e.isDup,
                e.inst);

    // Keep everything up to and including the branch's pair.
    const std::size_t own_off = st.offsetOf(idx);
    std::size_t keep = own_off + 1;
    if (e.pairIdx >= 0) {
        const std::size_t pair_off = st.offsetOf(e.pairIdx);
        keep = std::max(keep, pair_off + 1);
        st.ruu[e.pairIdx].recoveryDone = true;
    }
    e.recoveryDone = true;

    squashYoungerThan(keep);
    cx.spec->exitSpec();
    st.ifq.clear();

    st.fetchPc = e.outcome.nextPc;
    st.fetchStallUntil = st.now + cx.p.redirectPenalty;
    st.lastFetchBlock = invalidAddr;
    // Repair the speculative global history to this branch's fetch-time
    // checkpoint, shifted by its now-known actual direction.
    if (e.hasPrediction) {
        cx.bp->recoverHistory(isBranch(e.inst.op)
                                  ? (e.histAtFetch << 1) |
                                        (e.outcome.taken ? 1 : 0)
                                  : e.histAtFetch);
    }
    ++cx.stats->numRecoveries;
}

std::unique_ptr<SchedulerBackend>
makeScheduler(bool ready_list, CoreContext &context)
{
    if (ready_list)
        return std::make_unique<ReadyListScheduler>(context);
    return std::make_unique<ScanScheduler>(context);
}

} // namespace direb
