/**
 * @file
 * Scheduler machinery shared by both backends: completion/wakeup, the
 * IRB reuse test (folded into wakeup, paper Figure 5), branch
 * misprediction recovery, the squash walk, and the per-cycle issue-blame
 * attribution.
 */

#include "cpu/scheduler.hh"

#include "common/logging.hh"

namespace direb
{

void
SchedulerBackend::issue()
{
    cycFuDenied = 0;
    cycIrbDeferred = 0;
    issueImpl();

    // Cycle blame from aggregates both scheduler implementations compute
    // identically: an FU denial means ready work existed and lost ALU
    // bandwidth; failing that, a pending reuse test held duplicates back;
    // otherwise occupied-but-unready entries were waiting on operands.
    using trace::StallReason;
    using trace::StallStage;
    if (cx.st->ruuCount == 0)
        cx.stalls->blame(StallStage::Issue, StallReason::Empty);
    else if (cycFuDenied > 0)
        cx.stalls->blame(StallStage::Issue, StallReason::FuContention);
    else if (cycIrbDeferred > 0)
        cx.stalls->blame(StallStage::Issue, StallReason::IrbDeferral);
    else
        cx.stalls->blame(StallStage::Issue, StallReason::OperandWait);
}

void
SchedulerBackend::wakeDependents(int idx)
{
    PipelineState &st = *cx.st;
    // Walk the producer's edge chain over the packed seq/pending arrays.
    // The liveness test and the pending decrement are branch-free; only
    // a consumer actually becoming ready takes a branch.
    for (std::int32_t n = st.depHead[idx]; n >= 0;
         n = st.depNodes[n].next) {
        const DepEdge dep = st.depNodes[n].edge;
        const bool live = st.eSeq[dep.idx] == dep.seq;
        panic_if(live && st.eSrcPending[dep.idx] == 0,
                 "wakeup underflow (seq %llu)",
                 static_cast<unsigned long long>(dep.seq));
        st.eSrcPending[dep.idx] -=
            static_cast<std::uint8_t>(live); // squashed: no-op
        if (live && st.eSrcPending[dep.idx] == 0) {
            DIREB_TRACE(cx.tracer, trace::Kind::Wakeup, st.eSeq[dep.idx],
                        st.cold[dep.idx].pc, st.any(dep.idx, ruuf::IsDup),
                        st.cold[dep.idx].inst);
            onWokenReady(dep.idx);
        }
    }
    st.freeDeps(idx);
}

void
SchedulerBackend::completeEntry(int idx)
{
    PipelineState &st = *cx.st;
    st.set(idx, ruuf::Completed);
    DIREB_TRACE(cx.tracer, trace::Kind::Complete, st.eSeq[idx],
                st.cold[idx].pc, st.any(idx, ruuf::IsDup),
                st.cold[idx].inst);

    // Fault site "fu": a transient strikes the unit producing this value.
    if (cx.injector->site() == FaultSite::Fu &&
        st.eCls[idx] != OpClass::Nop && !st.any(idx, ruuf::BypassedAlu) &&
        cx.injector->strike()) {
        st.cold[idx].checkValue ^= RegVal(1) << cx.injector->bitToFlip();
        st.set(idx, ruuf::Faulted);
    }

    // In DIE-IRB only primary results are forwarded; duplicate completions
    // wake nobody (their dependents list is empty by construction).
    wakeDependents(idx);

    if ((st.eFlags[idx] &
         (ruuf::Mispredicted | ruuf::WrongPath | ruuf::RecoveryDone)) ==
        ruuf::Mispredicted) {
        handleMispredictRecovery(idx);
    }

    onCompleted(idx);
}

void
SchedulerBackend::tryReuseTest(int idx)
{
    PipelineState &st = *cx.st;
    // Rdy2L/Rdy2R preconditions in one mask test: a pending, unissued
    // duplicate with an armed candidate lookup.
    constexpr std::uint32_t care = ruuf::IsDup | ruuf::IrbCandidate |
                                   ruuf::ReuseTested | ruuf::Issued |
                                   ruuf::Completed;
    constexpr std::uint32_t want = ruuf::IsDup | ruuf::IrbCandidate;
    if ((st.eFlags[idx] & care) != want || st.eSrcPending[idx] > 0 ||
        st.now < st.cold[idx].irbReadyAt) {
        return;
    }
    st.set(idx, ruuf::ReuseTested);
    RuuCold &c = st.cold[idx];
    // A corrupted forwarded operand (fault injection) cannot match the
    // stored operand values: the reuse test fails and the duplicate
    // executes with the corrupted input — exactly the §3.4 behaviour.
    const bool pass = !st.any(idx, ruuf::Faulted) &&
                      c.irb.op1 == c.outcome.op1Val &&
                      c.irb.op2 == c.outcome.op2Val;
    cx.policy->irb()->recordReuseTest(pass);
    DIREB_TRACE(cx.tracer,
                pass ? trace::Kind::IrbReuseHit : trace::Kind::IrbReuseMiss,
                st.eSeq[idx], c.pc, true, c.inst);
    if (!pass)
        return;

    // Reuse hit: pick up the stored result and skip the ALUs entirely —
    // no issue slot, no functional unit, no result forwarding.
    st.set(idx, ruuf::ReuseHit | ruuf::BypassedAlu | ruuf::Issued);
    st.eCompleteAt[idx] = st.now + 1;
    c.checkValue = c.irb.result;
    scheduleCompletion(idx, st.eCompleteAt[idx]);
    ++cx.stats->numBypassedAlu;
}

void
SchedulerBackend::squashYoungerThan(std::size_t keep_count)
{
    PipelineState &st = *cx.st;
    panic_if(keep_count > st.ruuCount, "bad squash point");
    for (std::size_t off = keep_count; off < st.ruuCount; ++off) {
        const int idx = st.slotAt(off);
        DIREB_TRACE(cx.tracer, trace::Kind::Squash, st.eSeq[idx],
                    st.cold[idx].pc, st.any(idx, ruuf::IsDup),
                    st.cold[idx].inst);
        if (st.any(idx, ruuf::HoldsLsqSlot)) {
            panic_if(st.lsqUsed == 0, "LSQ accounting underflow");
            --st.lsqUsed;
        }
        if (st.any(idx, ruuf::Faulted))
            cx.injector->recordSquashed();
        onSquashEntry(idx);
        st.eSeq[idx] = invalidSeq; // invalidate dangling dependence edges
        st.freeDeps(idx);          // recycle the slot's wakeup chain
    }
    st.ruuCount = keep_count;
    st.rebuildCreateVectors(cx.policy->dupOwnDataflow());
}

void
SchedulerBackend::handleMispredictRecovery(int idx)
{
    PipelineState &st = *cx.st;
    RuuCold &c = st.cold[idx];
    panic_if(!st.replayQueue.empty(), "recovery during fault replay");
    DIREB_TRACE(cx.tracer, trace::Kind::Recovery, st.eSeq[idx], c.pc,
                st.any(idx, ruuf::IsDup), c.inst);

    // Keep everything up to and including the branch's pair.
    const std::size_t own_off = st.offsetOf(idx);
    std::size_t keep = own_off + 1;
    const std::int32_t pair = st.ePair[idx];
    if (pair >= 0) {
        const std::size_t pair_off = st.offsetOf(pair);
        keep = std::max(keep, pair_off + 1);
        st.set(pair, ruuf::RecoveryDone);
    }
    st.set(idx, ruuf::RecoveryDone);

    squashYoungerThan(keep);
    cx.spec->exitSpec();
    st.ifq.clear();

    st.fetchPc = c.outcome.nextPc;
    st.fetchStallUntil = st.now + cx.p.redirectPenalty;
    st.lastFetchBlock = invalidAddr;
    // Repair the speculative global history to this branch's fetch-time
    // checkpoint, shifted by its now-known actual direction.
    if (st.any(idx, ruuf::HasPrediction)) {
        cx.bp->recoverHistory(isBranch(c.inst.op)
                                  ? (c.histAtFetch << 1) |
                                        (c.outcome.taken ? 1 : 0)
                                  : c.histAtFetch);
    }
    ++cx.stats->numRecoveries;
}

std::unique_ptr<SchedulerBackend>
makeScheduler(bool ready_list, CoreContext &context)
{
    if (ready_list)
        return std::make_unique<ReadyListScheduler>(context);
    return std::make_unique<ScanScheduler>(context);
}

} // namespace direb
