/**
 * @file
 * Commit stage: in-order retirement, the DIE "Check & Retire" pair
 * comparison, branch-predictor training, store performance at commit,
 * the policy's commit-time hooks (IRB updates through the IRB's write
 * ports), and the checker-triggered instruction rewind.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"
#include "cpu/stages.hh"

namespace direb
{

void
CommitStage::retireEntry(CoreContext &cx, RuuEntry &e)
{
    panic_if(e.wrongPath, "retiring a wrong-path entry (pc %#llx)",
             static_cast<unsigned long long>(e.pc));

    if (isControl(e.inst.op))
        cx.bp->update(e.pc, e.inst, e.outcome.taken, e.outcome.target);

    if (isStore(e.inst.op)) {
        // The store performs its single (primary) cache access at commit.
        cx.fus->tryMemPort(cx.st->now); // consume a port if one is free
        cx.memHier->dataAccess(e.outcome.effAddr, true);
        cx.sched->onRetiredStore(e);
    }

    if (e.holdsLsqSlot) {
        panic_if(cx.st->lsqUsed == 0, "LSQ accounting underflow at commit");
        --cx.st->lsqUsed;
    }
}

void
CommitStage::faultRewind(CoreContext &cx, std::size_t pair_offset)
{
    panic_if(pair_offset != 0, "rewind only defined at the RUU head");

    PipelineState &st = *cx.st;

    // Rebuild the replay stream in strict program order: first the
    // correct-path RUU contents (the faulting pair included), then any
    // replay records already re-fetched into the IFQ but not dispatched,
    // then whatever was still pending from an earlier rewind. Track the
    // youngest history checkpoint so the speculative global history can
    // be repaired past everything being replayed.
    std::deque<ReplayRecord> records;
    std::uint64_t rewind_hist = cx.bp->committedHistory();
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        RuuEntry &e = st.entryAt(off);
        if (e.wrongPath || e.isDup)
            continue;
        if (e.hasPrediction) {
            rewind_hist = isBranch(e.inst.op)
                ? (e.histAtFetch << 1) | (e.outcome.taken ? 1 : 0)
                : e.histAtFetch;
        }
        records.push_back({e.inst, e.pc, e.outcome});
    }
    for (const FetchedInst &fi : st.ifq) {
        if (fi.hasOutcome)
            records.push_back({fi.inst, fi.pc, fi.savedOutcome});
    }
    records.insert(records.end(), st.replayQueue.begin(),
                   st.replayQueue.end());
    st.replayQueue = std::move(records);
    panic_if(st.replayQueue.empty(), "rewind with nothing to replay");
    DIREB_TRACE(cx.tracer, trace::Kind::Rewind, invalidSeq,
                st.replayQueue.front().pc, false, Inst{},
                st.replayQueue.size());

    // Faults pending in younger entries never reach the checker; also
    // invalidate every squashed entry's seq so dangling dependence edges
    // and create-vector slots cannot match reused slots.
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        RuuEntry &e = st.entryAt(off);
        if (off >= 2 && e.faulted)
            cx.injector->recordSquashed();
        e.seq = invalidSeq;
    }

    st.ruuCount = 0;
    st.lsqUsed = 0;
    st.rebuildCreateVectors(cx.policy->dupOwnDataflow());
    cx.sched->reset(); // every in-flight reference died with the RUU
    cx.spec->exitSpec();
    st.ifq.clear();

    st.haltSeen = false; // a pending HALT re-arrives through the replay
    st.fetchPc = st.replayQueue.back().outcome.nextPc;
    st.fetchStallUntil = st.now + cx.p.redirectPenalty;
    st.lastFetchBlock = invalidAddr;
    cx.bp->recoverHistory(rewind_hist);
    ++cx.stats->numRewinds;
}

void
CommitStage::run(CoreContext &cx)
{
    using trace::StallReason;
    using trace::StallStage;

    PipelineState &st = *cx.st;
    unsigned budget = cx.p.commitWidth;
    const bool dual = cx.policy->duplicates();

    while (budget > 0 && st.ruuCount > 0 && st.running) {
        RuuEntry &head = st.ruu[st.ruuHead];
        if (!head.completed) {
            cx.stalls->blame(StallStage::Commit, StallReason::ExecWait);
            break;
        }

        if (!dual) {
            retireEntry(cx, head);
            DIREB_TRACE(cx.tracer, trace::Kind::Commit, head.seq, head.pc,
                        false, head.inst);
            cx.stalls->busy(StallStage::Commit);
            st.ruuHead = (st.ruuHead + 1) % st.ruu.size();
            --st.ruuCount;
            --budget;
            ++cx.stats->numEntriesCommitted;
            ++cx.stats->numArchInsts;
            st.lastCommitCycle = st.now;

            if (head.isHalt) {
                st.finish(st.badPcSeen ? StopReason::BadPc
                                       : StopReason::Halted);
                return;
            }
            if (cx.stats->numArchInsts.value() >= st.maxArchInsts) {
                st.finish(StopReason::InstLimit);
                return;
            }
            continue;
        }

        // DIE modes: the pair occupies two adjacent entries and retires
        // (and counts against commit width) as two entries.
        if (budget < 2) {
            cx.stalls->blame(StallStage::Commit, StallReason::PairAlign);
            break;
        }
        panic_if(st.ruuCount < 2, "primary without duplicate at commit");
        RuuEntry &dup = st.ruu[(st.ruuHead + 1) % st.ruu.size()];
        panic_if(!dup.isDup || dup.pairIdx != static_cast<int>(st.ruuHead),
                 "RUU head is not a well-formed pair");
        if (!dup.completed) {
            cx.stalls->blame(StallStage::Commit, StallReason::ExecWait);
            break;
        }

        const bool ok =
            cx.checker->check(head.checkValue, dup.checkValue);
        if (!ok) {
            // Without injection enabled a mismatch can only be a
            // simulator bug: fail loudly.
            panic_if(!cx.injector->enabled(),
                     "checker mismatch without injected fault at pc %#llx "
                     "(simulator bug)",
                     static_cast<unsigned long long>(head.pc));
            cx.injector->recordDetected();
            DIREB_TRACE(cx.tracer, trace::Kind::FaultDetect, head.seq,
                        head.pc, false, head.inst);
            cx.stalls->blame(StallStage::Commit, StallReason::Rewind);
            // A failing check invalidates the IRB entry for this PC, so
            // the replayed duplicate cannot pick the bad value up again.
            cx.policy->onCheckFailed(head.pc);
            faultRewind(cx, 0);
            return;
        }
        if (head.faulted || dup.faulted) {
            // A corrupted pair slipped through (identical corruption on
            // both copies — the FwdBoth scenario of Figure 6(c)).
            cx.injector->recordEscaped();
        }

        retireEntry(cx, head);

        cx.policy->onPairCommitted(head, dup, *cx.injector, cx.tracer);

        DIREB_TRACE(cx.tracer, trace::Kind::Commit, head.seq, head.pc,
                    false, head.inst);
        DIREB_TRACE(cx.tracer, trace::Kind::Commit, dup.seq, dup.pc, true,
                    dup.inst);
        cx.stalls->busy(StallStage::Commit, 2);

        const bool was_halt = head.isHalt;
        st.ruuHead = (st.ruuHead + 2) % st.ruu.size();
        st.ruuCount -= 2;
        budget -= 2;
        cx.stats->numEntriesCommitted += 2;
        ++cx.stats->numArchInsts;
        st.lastCommitCycle = st.now;

        if (was_halt) {
            st.finish(st.badPcSeen ? StopReason::BadPc : StopReason::Halted);
            return;
        }
        if (cx.stats->numArchInsts.value() >= st.maxArchInsts) {
            st.finish(StopReason::InstLimit);
            return;
        }
    }

    if (budget > 0 && st.ruuCount == 0)
        cx.stalls->blame(StallStage::Commit, StallReason::Empty);
}

} // namespace direb
