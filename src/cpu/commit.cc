/**
 * @file
 * Commit stage: in-order retirement, the DIE "Check & Retire" pair
 * comparison, branch-predictor training, store performance at commit,
 * the policy's commit-time hooks (IRB updates through the IRB's write
 * ports), and the checker-triggered instruction rewind.
 */

#include "common/logging.hh"
#include "cpu/scheduler.hh"
#include "cpu/stages.hh"

namespace direb
{

void
CommitStage::retireEntry(CoreContext &cx, int idx)
{
    PipelineState &st = *cx.st;
    const RuuCold &c = st.cold[idx];
    panic_if(st.any(idx, ruuf::WrongPath),
             "retiring a wrong-path entry (pc %#llx)",
             static_cast<unsigned long long>(c.pc));

    if (isControl(c.inst.op))
        cx.bp->update(c.pc, c.inst, c.outcome.taken, c.outcome.target);

    if (st.any(idx, ruuf::IsStore)) {
        // The store performs its single (primary) cache access at commit.
        cx.fus->tryMemPort(st.now); // consume a port if one is free
        cx.memPort->store(c.outcome.effAddr, st.now);
        cx.sched->onRetiredStore(idx);
    }

    if (st.any(idx, ruuf::HoldsLsqSlot)) {
        panic_if(st.lsqUsed == 0, "LSQ accounting underflow at commit");
        --st.lsqUsed;
    }
}

void
CommitStage::faultRewind(CoreContext &cx, std::size_t pair_offset)
{
    panic_if(pair_offset != 0, "rewind only defined at the RUU head");

    PipelineState &st = *cx.st;

    // Rebuild the replay stream in strict program order: first the
    // correct-path RUU contents (the faulting pair included), then any
    // replay records already re-fetched into the IFQ but not dispatched,
    // then whatever was still pending from an earlier rewind. Track the
    // youngest history checkpoint so the speculative global history can
    // be repaired past everything being replayed.
    std::deque<ReplayRecord> records;
    std::uint64_t rewind_hist = cx.bp->committedHistory();
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        const int idx = st.slotAt(off);
        if (st.any(idx, ruuf::WrongPath | ruuf::IsDup))
            continue;
        const RuuCold &c = st.cold[idx];
        if (st.any(idx, ruuf::HasPrediction)) {
            rewind_hist = isBranch(c.inst.op)
                ? (c.histAtFetch << 1) | (c.outcome.taken ? 1 : 0)
                : c.histAtFetch;
        }
        records.push_back({c.inst, c.pc, c.outcome});
    }
    for (std::size_t i = 0; i < st.ifq.size(); ++i) {
        const FetchedInst &fi = st.ifq.at(i);
        if (fi.hasOutcome)
            records.push_back({fi.inst, fi.pc, fi.savedOutcome});
    }
    records.insert(records.end(), st.replayQueue.begin(),
                   st.replayQueue.end());
    st.replayQueue = std::move(records);
    panic_if(st.replayQueue.empty(), "rewind with nothing to replay");
    DIREB_TRACE(cx.tracer, trace::Kind::Rewind, invalidSeq,
                st.replayQueue.front().pc, false, Inst{},
                st.replayQueue.size());

    // Faults pending in younger entries never reach the checker; also
    // invalidate every squashed entry's seq so dangling dependence edges
    // and create-vector slots cannot match reused slots, and return every
    // wakeup chain to the arena so the slots are clean for reuse.
    for (std::size_t off = 0; off < st.ruuCount; ++off) {
        const int idx = st.slotAt(off);
        if (off >= 2 && st.any(idx, ruuf::Faulted))
            cx.injector->recordSquashed();
        st.eSeq[idx] = invalidSeq;
        st.freeDeps(idx);
    }

    st.ruuCount = 0;
    st.lsqUsed = 0;
    st.rebuildCreateVectors(cx.policy->dupOwnDataflow());
    cx.sched->reset(); // every in-flight reference died with the RUU
    cx.spec->exitSpec();
    st.ifq.clear();

    st.haltSeen = false; // a pending HALT re-arrives through the replay
    st.fetchPc = st.replayQueue.back().outcome.nextPc;
    st.fetchStallUntil = st.now + cx.p.redirectPenalty;
    st.lastFetchBlock = invalidAddr;
    cx.bp->recoverHistory(rewind_hist);
    ++cx.stats->numRewinds;
}

void
CommitStage::run(CoreContext &cx)
{
    using trace::StallReason;
    using trace::StallStage;

    PipelineState &st = *cx.st;
    unsigned budget = cx.p.commitWidth;
    const bool dual = cx.policy->duplicates();

    while (budget > 0 && st.ruuCount > 0 && st.running) {
        const int hidx = st.slotAt(0);
        if (!st.any(hidx, ruuf::Completed)) {
            cx.stalls->blame(StallStage::Commit, StallReason::ExecWait);
            break;
        }

        if (!dual) {
            const bool was_halt = st.any(hidx, ruuf::IsHalt);
            retireEntry(cx, hidx);
            DIREB_TRACE(cx.tracer, trace::Kind::Commit, st.eSeq[hidx],
                        st.cold[hidx].pc, false, st.cold[hidx].inst);
            cx.stalls->busy(StallStage::Commit);
            st.advanceHead(1);
            --budget;
            ++cx.stats->numEntriesCommitted;
            ++cx.stats->numArchInsts;
            st.lastCommitCycle = st.now;

            if (was_halt) {
                st.finish(st.badPcSeen ? StopReason::BadPc
                                       : StopReason::Halted);
                return;
            }
            if (cx.stats->numArchInsts.value() >= st.maxArchInsts) {
                st.finish(StopReason::InstLimit);
                return;
            }
            continue;
        }

        // DIE modes: the pair occupies two adjacent entries and retires
        // (and counts against commit width) as two entries.
        if (budget < 2) {
            cx.stalls->blame(StallStage::Commit, StallReason::PairAlign);
            break;
        }
        panic_if(st.ruuCount < 2, "primary without duplicate at commit");
        const int didx = st.slotAt(1);
        panic_if(!st.any(didx, ruuf::IsDup) || st.ePair[didx] != hidx,
                 "RUU head is not a well-formed pair");
        if (!st.any(didx, ruuf::Completed)) {
            cx.stalls->blame(StallStage::Commit, StallReason::ExecWait);
            break;
        }

        const bool ok = cx.checker->check(st.cold[hidx].checkValue,
                                          st.cold[didx].checkValue);
        if (!ok) {
            // Without injection enabled a mismatch can only be a
            // simulator bug: fail loudly.
            panic_if(!cx.injector->enabled(),
                     "checker mismatch without injected fault at pc %#llx "
                     "(simulator bug)",
                     static_cast<unsigned long long>(st.cold[hidx].pc));
            cx.injector->recordDetected();
            DIREB_TRACE(cx.tracer, trace::Kind::FaultDetect, st.eSeq[hidx],
                        st.cold[hidx].pc, false, st.cold[hidx].inst);
            cx.stalls->blame(StallStage::Commit, StallReason::Rewind);
            // A failing check invalidates the IRB entry for this PC, so
            // the replayed duplicate cannot pick the bad value up again.
            cx.policy->onCheckFailed(st.cold[hidx].pc);
            faultRewind(cx, 0);
            return;
        }
        if (st.any(hidx, ruuf::Faulted) || st.any(didx, ruuf::Faulted)) {
            // A corrupted pair slipped through (identical corruption on
            // both copies — the FwdBoth scenario of Figure 6(c)).
            cx.injector->recordEscaped();
        }

        retireEntry(cx, hidx);

        cx.policy->onPairCommitted(st, hidx, didx, *cx.injector,
                                   cx.tracer);

        DIREB_TRACE(cx.tracer, trace::Kind::Commit, st.eSeq[hidx],
                    st.cold[hidx].pc, false, st.cold[hidx].inst);
        DIREB_TRACE(cx.tracer, trace::Kind::Commit, st.eSeq[didx],
                    st.cold[didx].pc, true, st.cold[didx].inst);
        cx.stalls->busy(StallStage::Commit, 2);

        const bool was_halt = st.any(hidx, ruuf::IsHalt);
        st.advanceHead(2);
        budget -= 2;
        cx.stats->numEntriesCommitted += 2;
        ++cx.stats->numArchInsts;
        st.lastCommitCycle = st.now;

        if (was_halt) {
            st.finish(st.badPcSeen ? StopReason::BadPc : StopReason::Halted);
            return;
        }
        if (cx.stats->numArchInsts.value() >= st.maxArchInsts) {
            st.finish(StopReason::InstLimit);
            return;
        }
    }

    if (budget > 0 && st.ruuCount == 0)
        cx.stalls->blame(StallStage::Commit, StallReason::Empty);
}

} // namespace direb
