/**
 * @file
 * Commit stage: in-order retirement, the DIE "Check & Retire" pair
 * comparison, branch-predictor training, store performance at commit,
 * commit-time IRB updates (through the IRB's write ports), and the
 * checker-triggered instruction rewind.
 */

#include "common/logging.hh"
#include "cpu/ooo_core.hh"

namespace direb
{

void
OooCore::retireEntry(RuuEntry &e)
{
    panic_if(e.wrongPath, "retiring a wrong-path entry (pc %#llx)",
             static_cast<unsigned long long>(e.pc));

    if (isControl(e.inst.op))
        bp->update(e.pc, e.inst, e.outcome.taken, e.outcome.target);

    if (isStore(e.inst.op)) {
        // The store performs its single (primary) cache access at commit.
        fus->tryMemPort(now); // consume a port if one is free
        memHier->dataAccess(e.outcome.effAddr, true);
        // A retired store leaves the RUU and must stop forwarding to
        // younger loads (the scan only ever sees in-flight entries).
        if (p.readyListScheduler && !e.isDup)
            dropStoreIndex(e);
    }

    if (e.holdsLsqSlot) {
        panic_if(lsqUsed == 0, "LSQ accounting underflow at commit");
        --lsqUsed;
    }
}

void
OooCore::faultRewind(std::size_t pair_offset)
{
    panic_if(pair_offset != 0, "rewind only defined at the RUU head");

    // Rebuild the replay stream in strict program order: first the
    // correct-path RUU contents (the faulting pair included), then any
    // replay records already re-fetched into the IFQ but not dispatched,
    // then whatever was still pending from an earlier rewind. Track the
    // youngest history checkpoint so the speculative global history can
    // be repaired past everything being replayed.
    std::deque<ReplayRecord> records;
    std::uint64_t rewind_hist = bp->committedHistory();
    for (std::size_t off = 0; off < ruuCount; ++off) {
        RuuEntry &e = entryAt(off);
        if (e.wrongPath || e.isDup)
            continue;
        if (e.hasPrediction) {
            rewind_hist = isBranch(e.inst.op)
                ? (e.histAtFetch << 1) | (e.outcome.taken ? 1 : 0)
                : e.histAtFetch;
        }
        records.push_back({e.inst, e.pc, e.outcome});
    }
    for (const FetchedInst &fi : ifq) {
        if (fi.hasOutcome)
            records.push_back({fi.inst, fi.pc, fi.savedOutcome});
    }
    records.insert(records.end(), replayQueue.begin(), replayQueue.end());
    replayQueue = std::move(records);
    panic_if(replayQueue.empty(), "rewind with nothing to replay");
    DIREB_TRACE(tracer_, trace::Kind::Rewind, invalidSeq,
                replayQueue.front().pc, false, Inst{},
                replayQueue.size());

    // Faults pending in younger entries never reach the checker; also
    // invalidate every squashed entry's seq so dangling dependence edges
    // and create-vector slots cannot match reused slots.
    for (std::size_t off = 0; off < ruuCount; ++off) {
        RuuEntry &e = entryAt(off);
        if (off >= 2 && e.faulted)
            injector->recordSquashed();
        e.seq = invalidSeq;
    }

    ruuCount = 0;
    lsqUsed = 0;
    rebuildCreateVectors();
    resetScheduler(); // every in-flight reference died with the RUU
    specCtx.exitSpec();
    ifq.clear();

    haltSeen = false; // a pending HALT re-arrives through the replay
    fetchPc = replayQueue.back().outcome.nextPc;
    fetchStallUntil = now + p.redirectPenalty;
    lastFetchBlock = invalidAddr;
    bp->recoverHistory(rewind_hist);
    ++numRewinds;
}

void
OooCore::commitStage()
{
    using trace::StallReason;
    using trace::StallStage;

    unsigned budget = p.commitWidth;
    const bool dual = p.mode != ExecMode::Sie;

    while (budget > 0 && ruuCount > 0 && running) {
        RuuEntry &head = ruu[ruuHead];
        if (!head.completed) {
            stalls.blame(StallStage::Commit, StallReason::ExecWait);
            break;
        }

        if (!dual) {
            retireEntry(head);
            DIREB_TRACE(tracer_, trace::Kind::Commit, head.seq, head.pc,
                        false, head.inst);
            stalls.busy(StallStage::Commit);
            ruuHead = (ruuHead + 1) % p.ruuSize;
            --ruuCount;
            --budget;
            ++numEntriesCommitted;
            ++numArchInsts;
            lastCommitCycle = now;

            if (head.isHalt) {
                finishRun(badPcSeen ? StopReason::BadPc
                                    : StopReason::Halted);
                return;
            }
            if (numArchInsts.value() >= maxArchInsts) {
                finishRun(StopReason::InstLimit);
                return;
            }
            continue;
        }

        // DIE modes: the pair occupies two adjacent entries and retires
        // (and counts against commit width) as two entries.
        if (budget < 2) {
            stalls.blame(StallStage::Commit, StallReason::PairAlign);
            break;
        }
        panic_if(ruuCount < 2, "primary without duplicate at commit");
        RuuEntry &dup = ruu[(ruuHead + 1) % p.ruuSize];
        panic_if(!dup.isDup || dup.pairIdx != static_cast<int>(ruuHead),
                 "RUU head is not a well-formed pair");
        if (!dup.completed) {
            stalls.blame(StallStage::Commit, StallReason::ExecWait);
            break;
        }

        const bool ok = pairChecker.check(head.checkValue, dup.checkValue);
        if (!ok) {
            // Without injection enabled a mismatch can only be a
            // simulator bug: fail loudly.
            panic_if(!injector->enabled(),
                     "checker mismatch without injected fault at pc %#llx "
                     "(simulator bug)",
                     static_cast<unsigned long long>(head.pc));
            injector->recordDetected();
            DIREB_TRACE(tracer_, trace::Kind::FaultDetect, head.seq,
                        head.pc, false, head.inst);
            stalls.blame(StallStage::Commit, StallReason::Rewind);
            // A failing check invalidates the IRB entry for this PC, so
            // the replayed duplicate cannot pick the bad value up again.
            if (reuseBuffer)
                reuseBuffer->invalidate(head.pc);
            faultRewind(0);
            return;
        }
        if (head.faulted || dup.faulted) {
            // A corrupted pair slipped through (identical corruption on
            // both copies — the FwdBoth scenario of Figure 6(c)).
            injector->recordEscaped();
        }

        retireEntry(head);

        // Commit-time IRB update (paper §3.2: off the critical path,
        // through the write/rw ports). A reuse hit needs no rewrite —
        // the stored tuple is bit-identical already.
        if (reuseBuffer && dup.cls != OpClass::Nop &&
            !isOutput(dup.inst.op) && !dup.reuseHit) {
            const bool wrote =
                reuseBuffer->update(head.pc, head.outcome.op1Val,
                                    head.outcome.op2Val,
                                    head.outcome.result);
            DIREB_TRACE(tracer_, trace::Kind::IrbUpdate, head.seq, head.pc,
                        false, head.inst, wrote ? 1 : 0);
        }
        // Fault site "irb": a transient strikes a random live entry; it
        // is caught when (and only when) a duplicate later reuses it.
        if (reuseBuffer && injector->site() == FaultSite::Irb &&
            injector->strike()) {
            reuseBuffer->corruptRandomEntry(injector->randomValue(),
                                            injector->bitToFlip());
        }

        DIREB_TRACE(tracer_, trace::Kind::Commit, head.seq, head.pc, false,
                    head.inst);
        DIREB_TRACE(tracer_, trace::Kind::Commit, dup.seq, dup.pc, true,
                    dup.inst);
        stalls.busy(StallStage::Commit, 2);

        const bool was_halt = head.isHalt;
        ruuHead = (ruuHead + 2) % p.ruuSize;
        ruuCount -= 2;
        budget -= 2;
        numEntriesCommitted += 2;
        ++numArchInsts;
        lastCommitCycle = now;

        if (was_halt) {
            finishRun(badPcSeen ? StopReason::BadPc : StopReason::Halted);
            return;
        }
        if (numArchInsts.value() >= maxArchInsts) {
            finishRun(StopReason::InstLimit);
            return;
        }
    }

    if (budget > 0 && ruuCount == 0)
        stalls.blame(StallStage::Commit, StallReason::Empty);
}

} // namespace direb
