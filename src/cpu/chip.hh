/**
 * @file
 * The chip-multiprocessor layer: N OooCores ticked in lockstep over one
 * shared mem::MemorySystem, rate-mode style (one independent program per
 * core; a core that finishes keeps its caches resident but stops
 * ticking).
 *
 * Determinism contract: cores tick in core-index order within every chip
 * cycle, and every shared-structure interaction (L2 banks, coherence,
 * inclusion) happens synchronously inside MemorySystem calls issued from
 * those ticks — so the same (programs, config) pair always produces
 * bit-identical per-core statistics, regardless of host or thread
 * environment.
 *
 * Statistics: each core's group is renamed "core<i>" and attached under
 * an unnamed root, giving core0.cycles, core0.memhier.l1d.misses, ...;
 * the shared fabric appears as mem.l2.*, mem.l2bus.*, mem.dram.*,
 * mem.coh.* (only with >= 2 cores), and a "cmp" roll-up group carries
 * the chip-level aggregates (cycles, arch_insts, cores, ipc).
 */

#ifndef DIREB_CPU_CHIP_HH
#define DIREB_CPU_CHIP_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "cpu/ooo_core.hh"
#include "mem/mem_system.hh"

namespace direb
{

/** N cores + shared memory hierarchy, run in lockstep. */
class Chip
{
  public:
    /**
     * Build one core per entry of @p programs over a shared hierarchy.
     * The programs (and @p config) must outlive the chip.
     */
    Chip(const std::vector<const Program *> &programs,
         const Config &config);
    ~Chip();

    Chip(const Chip &) = delete;
    Chip &operator=(const Chip &) = delete;

    /** Aggregate results of one chip run. */
    struct Result
    {
        /** BadPc if any core left its text segment, else InstLimit if
         * any core hit a budget, else Halted. */
        StopReason stop = StopReason::Halted;
        Cycle cycles = 0;            //!< chip cycles (max over cores)
        std::uint64_t archInsts = 0; //!< total committed, all cores
        double ipc = 0.0;            //!< aggregate: archInsts / cycles
        std::vector<CoreResult> cores;
    };

    /**
     * Run every core to completion (per-core HALT / instruction budget /
     * chip cycle cap), then assert the per-core stall-attribution
     * invariant and the shared-hierarchy coherence invariants.
     */
    Result run(std::uint64_t max_insts_per_core = 50'000'000,
               Cycle max_cycles = 500'000'000);

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    OooCore &core(unsigned i) { return *cores_[i]; }
    mem::MemorySystem &memorySystem() { return *memSys; }

    /** Root stats group: core<i>.*, mem.* (CMP only), cmp.*. */
    stats::Group &statGroup() { return root; }

    /** Per-core program output, tagged "[core<i>]" per line group. */
    std::string output() const;

  private:
    std::unique_ptr<mem::MemorySystem> memSys;
    std::vector<std::unique_ptr<OooCore>> cores_;

    stats::Group root{""};
    stats::Group cmpGroup{"cmp"};
    stats::Scalar aggCycles;
    stats::Scalar aggArchInsts;
    stats::Scalar coreCount;
    stats::Formula aggIpc;
};

} // namespace direb

#endif // DIREB_CPU_CHIP_HH
