#include "cpu/chip.hh"

#include <algorithm>

#include "common/logging.hh"

namespace direb
{

Chip::Chip(const std::vector<const Program *> &programs,
           const Config &config)
{
    fatal_if(programs.empty(), "Chip needs at least one program");
    const unsigned n = static_cast<unsigned>(programs.size());

    memSys = std::make_unique<mem::MemorySystem>(config, n);
    cores_.reserve(n);
    for (unsigned c = 0; c < n; ++c) {
        cores_.push_back(std::make_unique<OooCore>(*programs[c], config,
                                                   memSys->port(c)));
        // Disambiguate the per-core stat trees: core0.*, core1.*, ...
        cores_[c]->statGroup().setName("core" + std::to_string(c));
        root.addChild(&cores_[c]->statGroup());
    }
    if (memSys->shared())
        root.addChild(&memSys->sharedStatGroup());

    cmpGroup.addScalar(&aggCycles, "cycles",
                       "chip cycles (max over all cores)");
    cmpGroup.addScalar(&aggArchInsts, "arch_insts",
                       "architectural instructions committed, all cores");
    cmpGroup.addScalar(&coreCount, "cores", "cores on the chip");
    aggIpc = stats::Formula(&aggArchInsts, &aggCycles);
    cmpGroup.addFormula(&aggIpc, "ipc",
                        "aggregate IPC: total insts / chip cycles");
    root.addChild(&cmpGroup);

    coreCount += n;
}

Chip::~Chip() = default;

Chip::Result
Chip::run(std::uint64_t max_insts_per_core, Cycle max_cycles)
{
    for (auto &c : cores_)
        c->setMaxArchInsts(max_insts_per_core);

    // Lockstep: each chip cycle ticks every still-running core once, in
    // core-index order (the determinism contract — see file comment).
    Cycle chip_cycle = 0;
    while (chip_cycle < max_cycles) {
        bool any = false;
        for (auto &c : cores_) {
            if (!c->done()) {
                c->tick();
                any = true;
            }
        }
        if (!any)
            break;
        ++chip_cycle;
    }
    for (auto &c : cores_)
        c->forceStop(StopReason::InstLimit); // only still-running cores

    Result r;
    r.cores.reserve(cores_.size());
    for (auto &c : cores_) {
        const CoreResult cr = c->result();
        r.cores.push_back(cr);
        r.cycles = std::max(r.cycles, cr.cycles);
        r.archInsts += cr.archInsts;
        if (cr.stop == StopReason::BadPc)
            r.stop = StopReason::BadPc;
        else if (cr.stop == StopReason::InstLimit &&
                 r.stop != StopReason::BadPc)
            r.stop = StopReason::InstLimit;

        // Satellite invariant: the PR-3 stall accounting must close per
        // core under CMP interleaving too.
        c->stallAccount().audit(cr.cycles);
    }
    aggCycles += r.cycles;
    aggArchInsts += r.archInsts;
    r.ipc = r.cycles ? static_cast<double>(r.archInsts) / r.cycles : 0.0;

    memSys->auditCoherence();
    return r;
}

std::string
Chip::output() const
{
    std::string out;
    for (unsigned c = 0; c < cores_.size(); ++c) {
        out += "[core" + std::to_string(c) + "]\n";
        out += cores_[c]->archState().out;
        if (!out.empty() && out.back() != '\n')
            out += '\n';
    }
    return out;
}

} // namespace direb
