/**
 * @file
 * Execution-driven, cycle-level out-of-order superscalar core with a
 * unified ROB + issue window (a SimpleScalar-style RUU), a load/store
 * queue, a functional-unit pool, branch prediction with wrong-path
 * execution, and the paper's three execution modes:
 *
 *  - SIE     — Single Instruction Execution (plain superscalar baseline);
 *  - DIE     — Dual Instruction Execution: every instruction is duplicated
 *              at dispatch into two adjacent RUU entries, the two streams
 *              have independent dataflow, memory is accessed once, and
 *              pairs are checked at commit (Ray et al. [24]);
 *  - DIE-IRB — DIE + the paper's Instruction Reuse Buffer on the duplicate
 *              stream: duplicates receive operands from *primary*-stream
 *              producers, the reuse test happens at wakeup, and a passing
 *              duplicate bypasses the ALUs (and the issue bandwidth)
 *              entirely.
 *
 * Pipeline per cycle (processed commit-first so results flow one stage per
 * cycle): commit -> writeback/wakeup -> LSQ memory issue -> select/issue
 * -> dispatch (functional execution + duplication) -> fetch (+branch
 * prediction + IRB lookup).
 *
 * The core itself is a thin coordinator: mutable machine state lives in
 * PipelineState, mode-specific behaviour in a RedundancyPolicy
 * (core/policy.hh), the back-end stages in a SchedulerBackend
 * (scheduler.hh), and the front-end/commit stages in stage components
 * (stages.hh), all wired together through a CoreContext. A core is
 * reusable: reset() rebinds it to a new (program, config) pair with
 * state and statistics identical to a freshly constructed core.
 */

#ifndef DIREB_CPU_OOO_CORE_HH
#define DIREB_CPU_OOO_CORE_HH

#include <memory>

#include "branch/predictor.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/irb.hh"
#include "core/policy.hh"
#include "core/redundancy.hh"
#include "cpu/core_context.hh"
#include "cpu/fu_pool.hh"
#include "cpu/pipeline_state.hh"
#include "cpu/scheduler.hh"
#include "cpu/spec_state.hh"
#include "cpu/stages.hh"
#include "mem/mem_system.hh"
#include "trace/stall.hh"
#include "trace/trace.hh"
#include "vm/vm.hh"

namespace direb
{

struct ArchCheckpoint;

/**
 * The out-of-order core. Owns all substrate components; construct one per
 * run, or reuse across runs via reset().
 */
class OooCore
{
  public:
    /**
     * Build a core. With the default (invalid) @p external_port the core
     * owns a private single-core MemorySystem — the legacy standalone
     * configuration. A Chip passes a port into its shared hierarchy
     * instead; the port (and the system behind it) must outlive the core.
     */
    OooCore(const Program &program, const Config &config,
            mem::MemPort external_port = mem::MemPort());
    ~OooCore();

    OooCore(const OooCore &) = delete;
    OooCore &operator=(const OooCore &) = delete;

    /**
     * Rebind the core to a new (program, config) pair. Every component
     * is rebuilt from the config, all statistics are zeroed, and memory /
     * architectural state are reloaded — a subsequent run() is
     * bit-identical (cycles, stats, text report) to one on a freshly
     * constructed core. @p program must outlive the core's use of it.
     */
    void reset(const Program &program, const Config &config);

    /** Run to completion (HALT / limits). */
    CoreResult run(std::uint64_t max_insts = 50'000'000,
                   Cycle max_cycles = 500'000'000);

    /** Advance exactly one cycle (exposed for fine-grained tests). */
    void tick();

    /**
     * Set the commit-side instruction budget without entering run() —
     * tick()-driven tests need this, since the budget defaults to 0 and
     * the first committed instruction would otherwise stop the core.
     */
    void setMaxArchInsts(std::uint64_t n) { st.maxArchInsts = n; }

    /** Committed architectural state (registers/memory/output). */
    const ArchState &archState() const { return arch; }

    /** The program this core is currently bound to. */
    const Program &program() const { return *prog; }

    /**
     * Warm-start from an architectural checkpoint: replace memory,
     * registers, pc and accumulated output with the checkpoint's and
     * point fetch at its pc, so run() continues where the functional
     * prefix left off. Only valid on a freshly constructed/reset() core
     * (panic otherwise) whose bound program matches the checkpoint's
     * image hash (fatal otherwise). Microarchitectural state (caches,
     * predictor, IRB) stays cold — arch results equal a straight run;
     * timing reflects the cold start.
     */
    void applyArchCheckpoint(const ArchCheckpoint &ck);

    /** Components (exposed for stats/bench inspection). @{ */
    stats::Group &statGroup() { return group; }
    BranchPredictor &predictor() { return *bp; }
    mem::MemPort &memPort() { return port; }
    mem::MemorySystem &memorySystem() { return port.system(); }
    FuPool &fuPool() { return *fus; }
    Irb *irb() { return policy->irb(); }
    FaultInjector &faultInjector() { return *injector; }
    Checker &checker() { return pairChecker; }
    const CoreParams &params() const { return p; }
    /** Event tracer, or nullptr when trace.enabled is unset. */
    trace::Tracer *tracer() { return tracer_.get(); }
    /** Per-stage stall attribution (the core.stall.* counters). */
    const trace::StallAccount &stallAccount() const { return stalls; }
    /** @} */

    Cycle cycle() const { return st.now; }
    std::uint64_t committedArchInsts() const
    {
        return cstats.numArchInsts.value();
    }
    bool done() const { return !st.running; }

    /** Stop a still-running core (Chip budget exhaustion). */
    void
    forceStop(StopReason reason)
    {
        if (st.running)
            st.finish(reason);
    }

    /** Results so far — what run() returns, computable at any point. */
    CoreResult
    result() const
    {
        CoreResult r;
        r.stop = st.stopReason;
        r.cycles = st.now;
        r.archInsts = cstats.numArchInsts.value();
        r.ruuEntriesCommitted = cstats.numEntriesCommitted.value();
        r.ipc = r.cycles ? static_cast<double>(r.archInsts) / r.cycles : 0.0;
        return r;
    }

  private:
    /** Shared body of the constructor and reset(). */
    void configure(const Program &program, const Config &config,
                   bool first);

    // ---- configuration & components -----------------------------------------
    CoreParams p;
    const Program *prog = nullptr;

    Memory mem;
    ArchState arch;
    SpecExecContext specCtx;

    std::unique_ptr<BranchPredictor> bp;
    /** Private hierarchy when standalone; null when chip-attached. */
    std::unique_ptr<mem::MemorySystem> ownMem;
    /** The port every stage accesses memory through (cx.memPort). */
    mem::MemPort port;
    /** Chip-provided port, kept so reset() can rebind to it. */
    mem::MemPort extPort;
    std::unique_ptr<FuPool> fus;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<RedundancyPolicy> policy;
    Checker pairChecker;
    std::unique_ptr<trace::Tracer> tracer_; //!< only when trace.enabled

    // ---- machine state / stages ---------------------------------------------
    PipelineState st;
    SchedStorage schedMem; //!< scheduler arena; outlives sched rebuilds
    std::unique_ptr<SchedulerBackend> sched;
    FetchStage fetchStage_;
    DispatchStage dispatchStage_;
    CommitStage commitStage_;
    CoreContext cx;

    // ---- statistics ---------------------------------------------------------
    stats::Group group{"core"};
    CoreStats cstats;

    /**
     * Stall attribution: every counted cycle each stage charges its full
     * width to busy work plus one blamed reason (trace/stall.hh). Charges
     * are folded only when a cycle completes (endCycle() runs just before
     * numCycles increments), so sum(core.stall.<stage>.*) ==
     * core.cycles * width holds exactly; a final tick aborted by
     * finish() drops its partial ledger with the cycle itself.
     */
    trace::StallAccount stalls;
};

} // namespace direb

#endif // DIREB_CPU_OOO_CORE_HH
