/**
 * @file
 * Execution-driven, cycle-level out-of-order superscalar core with a
 * unified ROB + issue window (a SimpleScalar-style RUU), a load/store
 * queue, a functional-unit pool, branch prediction with wrong-path
 * execution, and the paper's three execution modes:
 *
 *  - SIE     — Single Instruction Execution (plain superscalar baseline);
 *  - DIE     — Dual Instruction Execution: every instruction is duplicated
 *              at dispatch into two adjacent RUU entries, the two streams
 *              have independent dataflow, memory is accessed once, and
 *              pairs are checked at commit (Ray et al. [24]);
 *  - DIE-IRB — DIE + the paper's Instruction Reuse Buffer on the duplicate
 *              stream: duplicates receive operands from *primary*-stream
 *              producers, the reuse test happens at wakeup, and a passing
 *              duplicate bypasses the ALUs (and the issue bandwidth)
 *              entirely.
 *
 * Pipeline per cycle (processed commit-first so results flow one stage per
 * cycle): commit -> writeback/wakeup -> LSQ memory issue -> select/issue
 * -> dispatch (functional execution + duplication) -> fetch (+branch
 * prediction + IRB lookup).
 */

#ifndef DIREB_CPU_OOO_CORE_HH
#define DIREB_CPU_OOO_CORE_HH

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/predictor.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/irb.hh"
#include "core/redundancy.hh"
#include "cpu/fu_pool.hh"
#include "cpu/spec_state.hh"
#include "mem/cache.hh"
#include "trace/stall.hh"
#include "trace/trace.hh"
#include "vm/vm.hh"

namespace direb
{

/** Redundancy mode of the core. */
enum class ExecMode : std::uint8_t { Sie, Die, DieIrb };

/** Parse "sie" / "die" / "die-irb". */
ExecMode execModeFromName(const std::string &name);
const char *execModeName(ExecMode mode);

/** Machine-width / capacity parameters (paper §2.2 base configuration). */
struct CoreParams
{
    ExecMode mode = ExecMode::Sie;
    /**
     * Back-end scheduler implementation (core.scheduler=scan|ready_list).
     * Both are cycle-accurate and produce bit-identical timing and
     * statistics; "scan" re-walks the whole RUU every cycle (the original
     * implementation, kept as the differential-testing reference), while
     * "ready_list" maintains incremental ready/pending sets and an
     * indexed store-address map so each stage visits only actionable
     * entries.
     */
    bool readyListScheduler = true;
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;   //!< RUU entries dispatched per cycle
    unsigned issueWidth = 8;    //!< instructions selected per cycle
    unsigned commitWidth = 8;   //!< RUU entries retired per cycle
    std::size_t ruuSize = 128;  //!< unified ROB+window entries
    std::size_t lsqSize = 64;   //!< load/store queue entries
    std::size_t ifqSize = 16;   //!< fetch/decode queue entries
    Cycle redirectPenalty = 2;  //!< front-end bubble after squash

    /**
     * DIE-IRB design ablations (paper §3.3 defaults: primary-fed
     * duplicates, reuse test folded into wakeup).
     * @{
     */
    bool dupOwnDataflow = false;    //!< duplicates wait on dup producers
    bool irbConsumesIssueSlot = false; //!< reuse hits burn issue bandwidth
    /** @} */

    /** Read core.* / width.* / ruu.* / lsq.* keys from @p config. */
    static CoreParams fromConfig(const Config &config);
};

/** Final results of a timing run. */
struct CoreResult
{
    StopReason stop = StopReason::InstLimit;
    Cycle cycles = 0;
    std::uint64_t archInsts = 0;   //!< architectural instructions committed
    std::uint64_t ruuEntriesCommitted = 0;
    double ipc = 0.0;              //!< architectural IPC
};

/**
 * The out-of-order core. Owns all substrate components; construct one per
 * (program, config) run.
 */
class OooCore
{
  public:
    OooCore(const Program &program, const Config &config);
    ~OooCore();

    OooCore(const OooCore &) = delete;
    OooCore &operator=(const OooCore &) = delete;

    /** Run to completion (HALT / limits). */
    CoreResult run(std::uint64_t max_insts = 50'000'000,
                   Cycle max_cycles = 500'000'000);

    /** Advance exactly one cycle (exposed for fine-grained tests). */
    void tick();

    /** Committed architectural state (registers/memory/output). */
    const ArchState &archState() const { return arch; }

    /** Components (exposed for stats/bench inspection). @{ */
    stats::Group &statGroup() { return group; }
    BranchPredictor &predictor() { return *bp; }
    MemHierarchy &memHierarchy() { return *memHier; }
    FuPool &fuPool() { return *fus; }
    Irb *irb() { return reuseBuffer.get(); }
    FaultInjector &faultInjector() { return *injector; }
    Checker &checker() { return pairChecker; }
    const CoreParams &params() const { return p; }
    /** Event tracer, or nullptr when trace.enabled is unset. */
    trace::Tracer *tracer() { return tracer_.get(); }
    /** Per-stage stall attribution (the core.stall.* counters). */
    const trace::StallAccount &stallAccount() const { return stalls; }
    /** @} */

    Cycle cycle() const { return now; }
    std::uint64_t committedArchInsts() const { return numArchInsts.value(); }
    bool done() const { return !running; }

  private:
    // ---- pipeline structures ------------------------------------------------

    /** An instruction waiting in the fetch/decode queue. */
    struct FetchedInst
    {
        Inst inst;
        Addr pc = 0;
        Cycle fetchCycle = 0;
        Addr predNextPc = 0;
        bool predTaken = false;
        std::uint64_t histAtFetch = 0; //!< bp history checkpoint
        bool hasPrediction = false;    //!< false for replay records
        // Fault-rewind replay: outcome already known, skip functional exec.
        bool hasOutcome = false;
        ExecOutcome savedOutcome;
        bool synthesizedHalt = false;
    };

    /** A (consumer, seq) edge used for wakeup; seq guards reallocation. */
    struct DepEdge
    {
        int idx;
        InstSeq seq;
    };

    /** One RUU entry. */
    struct RuuEntry
    {
        Inst inst;
        Addr pc = 0;
        InstSeq seq = invalidSeq;
        ExecOutcome outcome;
        OpClass cls = OpClass::Nop;

        bool isDup = false;
        int pairIdx = -1;        //!< partner entry (DIE modes)
        bool wrongPath = false;  //!< dispatched in spec mode

        unsigned srcPending = 0;
        std::vector<DepEdge> dependents;
        bool issued = false;
        bool completed = false;
        Cycle completeAt = 0;
        Cycle dispatchedAt = 0;

        // memory state machine (primary loads)
        bool isMemOp = false;
        bool needsMemAccess = false; //!< primary load: must access dcache
        bool addrGenPending = false; //!< scheduled completion is addr-gen
        bool addrDone = false;
        bool memStarted = false;
        bool holdsLsqSlot = false;

        // control
        bool predTaken = false;
        Addr predNextPc = 0;
        std::uint64_t histAtFetch = 0;
        bool hasPrediction = false;
        bool mispredicted = false;
        bool recoveryDone = false;

        // IRB (duplicate stream)
        bool irbCandidate = false; //!< PC hit; reuse test pending
        IrbLookup irb;
        Cycle irbReadyAt = 0;
        bool reuseTested = false;
        bool reuseHit = false;
        bool bypassedAlu = false;

        // checker / fault injection
        RegVal checkValue = 0;
        bool faulted = false;

        bool isHalt = false;
    };

    /** Record used to replay committed-path work after a fault rewind. */
    struct ReplayRecord
    {
        Inst inst;
        Addr pc;
        ExecOutcome outcome;
    };

    // ---- pipeline stages (one call each per tick) ---------------------------
    void commitStage();
    void writebackStage();
    void memoryStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // Per-stage implementations: "Scan" walks the RUU (reference), "List"
    // visits only the incremental ready/pending sets.
    void writebackStageScan();
    void writebackStageList();
    void memoryStageScan();
    void memoryStageList();
    void issueStageScan();
    void issueStageList();

    // ---- helpers -------------------------------------------------------------
    RuuEntry &entryAt(std::size_t offset);
    const RuuEntry &entryAt(std::size_t offset) const;
    int allocEntry();
    bool ruuFull(unsigned needed) const;

    void completeEntry(int idx);
    void wakeDependents(int idx);
    void tryReuseTest(int idx);
    void handleMispredictRecovery(int idx);
    void squashYoungerThan(std::size_t keep_count);
    void rebuildCreateVectors();
    void faultRewind(std::size_t pair_offset);
    void retireEntry(RuuEntry &e);
    bool olderStoreBlocks(std::size_t load_offset, bool &forwarded) const;
    bool loadBlockedByStore(const RuuEntry &load, bool &forwarded) const;
    void processWriteback(int idx);
    void scheduleWriteback(int idx, Cycle at);
    void dropStoreIndex(const RuuEntry &e);
    void resetScheduler();
    void dispatchOne(const FetchedInst &fi, unsigned &width_left);
    void linkSources(RuuEntry &e, int idx, unsigned stream);
    void setupIrbFields(RuuEntry &dup, const FetchedInst &fi);
    void maybeInjectForwardFault(RuuEntry &prim, RuuEntry &dup);
    void finishRun(StopReason reason);

    // ---- configuration & components -----------------------------------------
    CoreParams p;
    const Program &prog;

    Memory mem;
    ArchState arch;
    SpecExecContext specCtx;

    std::unique_ptr<BranchPredictor> bp;
    std::unique_ptr<MemHierarchy> memHier;
    std::unique_ptr<FuPool> fus;
    std::unique_ptr<Irb> reuseBuffer;      //!< only in DIE-IRB mode
    std::unique_ptr<FaultInjector> injector;
    Checker pairChecker;
    std::unique_ptr<trace::Tracer> tracer_; //!< only when trace.enabled

    // ---- machine state --------------------------------------------------------
    Cycle now = 0;
    bool running = true;
    StopReason stopReason = StopReason::InstLimit;
    std::uint64_t maxArchInsts = 0;

    std::vector<RuuEntry> ruu;
    std::size_t ruuHead = 0;
    std::size_t ruuCount = 0;
    std::size_t lsqUsed = 0;
    InstSeq nextSeq = 1;

    /** Newest in-flight producer of a register (seq guards slot reuse). */
    struct Producer
    {
        int idx = -1;
        InstSeq seq = invalidSeq;
    };

    /** createVec[stream][reg] = newest in-flight producer. */
    std::vector<Producer> createVec[2];

    // ---- scan-free scheduler state (core.scheduler=ready_list) --------------
    //
    // All sets are keyed by seq, so iteration order equals the scan's
    // oldest-first RUU order and references left dangling by a squash (the
    // slot may already hold a younger instruction) are detected by a seq
    // mismatch and dropped lazily.

    /** A scheduled completion: entry (idx, seq) finishes at cycle at. */
    struct WbEvent
    {
        Cycle at;
        InstSeq seq;
        int idx;
    };

    /** Min-heap order: earliest cycle first, oldest instruction first. */
    struct WbEventAfter
    {
        bool
        operator()(const WbEvent &a, const WbEvent &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    std::priority_queue<WbEvent, std::vector<WbEvent>, WbEventAfter>
        wbEvents;

    /**
     * Flat (seq, RUU index) set ordered by seq — the hot-loop
     * alternative to a node-based ordered map. Producers append (no
     * per-node allocation); the single consuming stage calls normalize()
     * once per cycle, which sorts the appended tail and merges it into
     * the sorted prefix, then walks the items oldest-first and compacts
     * the survivors in place. The stages never insert into the list they
     * are currently walking, so an iteration only ever sees the
     * normalized snapshot.
     */
    struct SeqList
    {
        std::vector<std::pair<InstSeq, int>> items;
        std::size_t sorted = 0; //!< items[0..sorted) are sorted by seq

        void push(InstSeq seq, int idx) { items.emplace_back(seq, idx); }

        void
        clear()
        {
            items.clear();
            sorted = 0;
        }

        void
        normalize()
        {
            if (sorted == items.size())
                return;
            std::sort(items.begin() + sorted, items.end());
            std::inplace_merge(items.begin(), items.begin() + sorted,
                               items.end());
            sorted = items.size();
        }

        /** End a compacting walk that kept the first @p kept items. */
        void
        compact(std::size_t kept)
        {
            items.resize(kept);
            sorted = kept;
        }
    };

    SeqList readyList;    //!< operand-ready, not yet issued
    SeqList pendingMem;   //!< loads awaiting a D-cache port
    SeqList pendingReuse; //!< dups with pending reuse test
    /** Primary stores pre addr-gen; appended in dispatch (= seq) order. */
    std::vector<InstSeq> unresolvedStores;
    /** Resolved primary stores by 8-byte block (effAddr>>3), oldest first. */
    std::unordered_map<Addr, std::vector<InstSeq>> storeBlocks;

    std::deque<FetchedInst> ifq;
    std::deque<ReplayRecord> replayQueue;
    Addr fetchPc = 0;
    Cycle fetchStallUntil = 0;
    Addr lastFetchBlock = invalidAddr;
    bool haltSeen = false;   //!< stop fetching/dispatching new work
    bool badPcSeen = false;

    Cycle lastCommitCycle = 0;

    // ---- statistics ------------------------------------------------------------
    stats::Group group{"core"};
    stats::Scalar numCycles;
    stats::Scalar numArchInsts;
    stats::Scalar numEntriesCommitted;
    stats::Scalar numDispatched;
    stats::Scalar numWrongPathDispatched;
    stats::Scalar numIssuedTotal;
    stats::Scalar numBypassedAlu;
    stats::Scalar numRecoveries;
    stats::Scalar numRewinds;
    stats::Scalar numDispatchStallRuu;
    stats::Scalar numDispatchStallLsq;
    stats::Scalar numIssueStallFu;
    stats::Scalar numLoadsForwarded;
    stats::Scalar numLoadsBlocked;
    stats::Formula ipcFormula;
    stats::Distribution ruuOccupancy; //!< RUU entries live, sampled per cycle
    stats::Distribution issueDelay;   //!< cycles from dispatch to issue

    /**
     * Stall attribution: every counted cycle each stage charges its full
     * width to busy work plus one blamed reason (trace/stall.hh). Charges
     * are folded only when a cycle completes (endCycle() runs just before
     * numCycles increments), so sum(core.stall.<stage>.*) ==
     * core.cycles * width holds exactly; a final tick aborted by
     * finishRun drops its partial ledger with the cycle itself.
     */
    trace::StallAccount stalls;
    /** Cycle-local issue-blame inputs, reset by issueStage(). @{ */
    unsigned cycFuDenied = 0;
    unsigned cycIrbDeferred = 0;
    /** @} */
};

} // namespace direb

#endif // DIREB_CPU_OOO_CORE_HH
