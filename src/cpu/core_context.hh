/**
 * @file
 * Core parameters, results, statistics bundle, and the CoreContext — the
 * explicit wiring record handed to every stage component and scheduler
 * backend in place of OooCore member access. The context holds non-owning
 * pointers; OooCore owns every referenced object and rewires the context
 * on construction and on reset().
 */

#ifndef DIREB_CPU_CORE_CONTEXT_HH
#define DIREB_CPU_CORE_CONTEXT_HH

#include "branch/predictor.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/policy.hh"
#include "core/redundancy.hh"
#include "cpu/fu_pool.hh"
#include "cpu/pipeline_state.hh"
#include "cpu/spec_state.hh"
#include "mem/mem_system.hh"
#include "trace/stall.hh"
#include "trace/trace.hh"
#include "vm/vm.hh"

namespace direb
{

class SchedulerBackend;
struct SchedStorage;

/** Machine-width / capacity parameters (paper §2.2 base configuration). */
struct CoreParams
{
    ExecMode mode = ExecMode::Sie;
    /**
     * Back-end scheduler implementation (core.scheduler=scan|ready_list).
     * Both are cycle-accurate and produce bit-identical timing and
     * statistics; "scan" re-walks the whole RUU every cycle (the original
     * implementation, kept as the differential-testing reference), while
     * "ready_list" maintains incremental ready/pending sets and an
     * indexed store-address map so each stage visits only actionable
     * entries.
     */
    bool readyListScheduler = true;
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;   //!< RUU entries dispatched per cycle
    unsigned issueWidth = 8;    //!< instructions selected per cycle
    unsigned commitWidth = 8;   //!< RUU entries retired per cycle
    std::size_t ruuSize = 128;  //!< unified ROB+window entries
    std::size_t lsqSize = 64;   //!< load/store queue entries
    std::size_t ifqSize = 16;   //!< fetch/decode queue entries
    Cycle redirectPenalty = 2;  //!< front-end bubble after squash

    /**
     * DIE-IRB design ablations (paper §3.3 defaults: primary-fed
     * duplicates, reuse test folded into wakeup).
     * @{
     */
    bool dupOwnDataflow = false;    //!< duplicates wait on dup producers
    bool irbConsumesIssueSlot = false; //!< reuse hits burn issue bandwidth
    /** @} */

    /** Read core.* / width.* / ruu.* / lsq.* keys from @p config. */
    static CoreParams fromConfig(const Config &config);
};

/** Final results of a timing run. */
struct CoreResult
{
    StopReason stop = StopReason::InstLimit;
    Cycle cycles = 0;
    std::uint64_t archInsts = 0;   //!< architectural instructions committed
    std::uint64_t ruuEntriesCommitted = 0;
    double ipc = 0.0;              //!< architectural IPC
};

/**
 * The core's own counters, grouped so stage components can charge them
 * through the context. registerIn() attaches everything to the core's
 * stat group in the fixed text-report order; the distributions are
 * (re)initialized separately because their range depends on CoreParams.
 */
struct CoreStats
{
    stats::Scalar numCycles;
    stats::Scalar numArchInsts;
    stats::Scalar numEntriesCommitted;
    stats::Scalar numDispatched;
    stats::Scalar numWrongPathDispatched;
    stats::Scalar numIssuedTotal;
    stats::Scalar numBypassedAlu;
    stats::Scalar numRecoveries;
    stats::Scalar numRewinds;
    stats::Scalar numDispatchStallRuu;
    stats::Scalar numDispatchStallLsq;
    stats::Scalar numIssueStallFu;
    stats::Scalar numLoadsForwarded;
    stats::Scalar numLoadsBlocked;
    stats::Formula ipcFormula;
    stats::Distribution ruuOccupancy; //!< RUU entries live, sampled per cycle
    stats::Distribution issueDelay;   //!< cycles from dispatch to issue

    /** Register every member under @p group (once per core lifetime). */
    void
    registerIn(stats::Group &group)
    {
        group.addScalar(&numCycles, "cycles", "simulated cycles");
        group.addScalar(&numArchInsts, "arch_insts",
                        "architectural instructions committed");
        group.addScalar(&numEntriesCommitted, "entries_committed",
                        "RUU entries retired (2x arch insts under DIE)");
        group.addScalar(&numDispatched, "dispatched",
                        "RUU entries dispatched");
        group.addScalar(&numWrongPathDispatched, "wrong_path",
                        "wrong-path RUU entries dispatched");
        group.addScalar(&numIssuedTotal, "issued",
                        "RUU entries issued to functional units");
        group.addScalar(&numBypassedAlu, "bypassed_alu",
                        "duplicates that skipped the ALUs via IRB reuse");
        group.addScalar(&numRecoveries, "recoveries",
                        "branch misprediction recoveries");
        group.addScalar(&numRewinds, "rewinds",
                        "checker-triggered rewinds");
        group.addScalar(&numDispatchStallRuu, "dispatch_stall_ruu",
                        "dispatch cycles stalled: RUU full");
        group.addScalar(&numDispatchStallLsq, "dispatch_stall_lsq",
                        "dispatch cycles stalled: LSQ full");
        group.addScalar(&numIssueStallFu, "issue_stall_fu",
                        "ready instructions denied a functional unit");
        group.addScalar(&numLoadsForwarded, "loads_forwarded",
                        "loads served by store-to-load forwarding");
        group.addScalar(&numLoadsBlocked, "loads_blocked",
                        "load-issue attempts blocked by unresolved stores");
        ipcFormula = stats::Formula(&numArchInsts, &numCycles);
        group.addFormula(&ipcFormula, "ipc", "architectural IPC");
        group.addDistribution(&ruuOccupancy, "ruu_occupancy",
                              "RUU entries live, sampled each cycle");
        group.addDistribution(&issueDelay, "issue_delay",
                              "cycles an entry waits from dispatch to issue");
    }
};

/**
 * Non-owning wiring for one core: everything a pipeline stage or a
 * scheduler backend touches, in one place. The tracer pointer may be
 * null (trace.enabled unset); every other pointer is valid whenever a
 * stage runs.
 */
struct CoreContext
{
    CoreParams p;
    const Program *prog = nullptr;
    PipelineState *st = nullptr;
    CoreStats *stats = nullptr;
    RedundancyPolicy *policy = nullptr;
    SchedulerBackend *sched = nullptr;
    BranchPredictor *bp = nullptr;
    /**
     * The core's port into the memory system — its own private
     * MemorySystem when the core runs standalone, or the chip-shared one
     * in CMP mode. Stages are topology-blind: every instruction and data
     * access goes through this request/response interface.
     */
    mem::MemPort *memPort = nullptr;
    FuPool *fus = nullptr;
    FaultInjector *injector = nullptr;
    Checker *checker = nullptr;
    SpecExecContext *spec = nullptr;
    trace::Tracer *tracer = nullptr;
    trace::StallAccount *stalls = nullptr;
    /** Core-owned scheduler storage arena (outlives scheduler rebuilds). */
    SchedStorage *schedMem = nullptr;
};

} // namespace direb

#endif // DIREB_CPU_CORE_CONTEXT_HH
