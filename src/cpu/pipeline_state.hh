/**
 * @file
 * The explicit pipeline state shared by every stage component of the
 * out-of-order core: the unified RUU ring, per-stream create vectors,
 * fetch/decode queue, replay queue, LSQ occupancy, and the run/stop
 * bookkeeping. Extracting this from OooCore lets the stage classes
 * (stages.hh), the scheduler backends (scheduler.hh) and the redundancy
 * policies (core/policy.hh) operate on one plain struct instead of
 * reaching into a god-object.
 */

#ifndef DIREB_CPU_PIPELINE_STATE_HH
#define DIREB_CPU_PIPELINE_STATE_HH

#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/irb.hh"
#include "isa/inst.hh"
#include "isa/opcodes.hh"
#include "vm/executor.hh"
#include "vm/vm.hh"

namespace direb
{

/** An instruction waiting in the fetch/decode queue. */
struct FetchedInst
{
    Inst inst;
    Addr pc = 0;
    Cycle fetchCycle = 0;
    Addr predNextPc = 0;
    bool predTaken = false;
    std::uint64_t histAtFetch = 0; //!< bp history checkpoint
    bool hasPrediction = false;    //!< false for replay records
    // Fault-rewind replay: outcome already known, skip functional exec.
    bool hasOutcome = false;
    ExecOutcome savedOutcome;
};

/** A (consumer, seq) edge used for wakeup; seq guards reallocation. */
struct DepEdge
{
    int idx;
    InstSeq seq;
};

/** One RUU entry. */
struct RuuEntry
{
    Inst inst;
    Addr pc = 0;
    InstSeq seq = invalidSeq;
    ExecOutcome outcome;
    OpClass cls = OpClass::Nop;

    bool isDup = false;
    int pairIdx = -1;        //!< partner entry (DIE modes)
    bool wrongPath = false;  //!< dispatched in spec mode

    unsigned srcPending = 0;
    std::vector<DepEdge> dependents;
    bool issued = false;
    bool completed = false;
    Cycle completeAt = 0;
    Cycle dispatchedAt = 0;

    // memory state machine (primary loads)
    bool isMemOp = false;
    bool needsMemAccess = false; //!< primary load: must access dcache
    bool addrGenPending = false; //!< scheduled completion is addr-gen
    bool addrDone = false;
    bool memStarted = false;
    bool holdsLsqSlot = false;

    // control
    bool predTaken = false;
    Addr predNextPc = 0;
    std::uint64_t histAtFetch = 0;
    bool hasPrediction = false;
    bool mispredicted = false;
    bool recoveryDone = false;

    // IRB (duplicate stream)
    bool irbCandidate = false; //!< PC hit; reuse test pending
    IrbLookup irb;
    Cycle irbReadyAt = 0;
    bool reuseTested = false;
    bool reuseHit = false;
    bool bypassedAlu = false;

    // checker / fault injection
    RegVal checkValue = 0;
    bool faulted = false;

    bool isHalt = false;
};

/** Record used to replay committed-path work after a fault rewind. */
struct ReplayRecord
{
    Inst inst;
    Addr pc;
    ExecOutcome outcome;
};

/** Newest in-flight producer of a register (seq guards slot reuse). */
struct Producer
{
    int idx = -1;
    InstSeq seq = invalidSeq;
};

/**
 * All mutable pipeline state, shared by the stage components through a
 * CoreContext. A PipelineState is fully reusable: reset() restores the
 * freshly-constructed machine for the next program.
 */
struct PipelineState
{
    std::vector<RuuEntry> ruu;
    std::size_t ruuHead = 0;
    std::size_t ruuCount = 0;
    std::size_t lsqUsed = 0;
    InstSeq nextSeq = 1;

    /** createVec[stream][reg] = newest in-flight producer. */
    std::vector<Producer> createVec[2];

    std::deque<FetchedInst> ifq;
    std::deque<ReplayRecord> replayQueue;
    Addr fetchPc = 0;
    Cycle fetchStallUntil = 0;
    Addr lastFetchBlock = invalidAddr;
    bool haltSeen = false;   //!< stop fetching/dispatching new work
    bool badPcSeen = false;

    Cycle now = 0;
    bool running = true;
    StopReason stopReason = StopReason::InstLimit;
    std::uint64_t maxArchInsts = 0;
    Cycle lastCommitCycle = 0;

    RuuEntry &
    entryAt(std::size_t offset)
    {
        panic_if(offset >= ruuCount,
                 "RUU offset %zu out of range (count %zu)", offset,
                 ruuCount);
        return ruu[(ruuHead + offset) % ruu.size()];
    }

    const RuuEntry &
    entryAt(std::size_t offset) const
    {
        return const_cast<PipelineState *>(this)->entryAt(offset);
    }

    int
    allocEntry()
    {
        panic_if(ruuCount >= ruu.size(), "RUU overflow");
        const int idx = static_cast<int>((ruuHead + ruuCount) % ruu.size());
        ++ruuCount;
        ruu[idx] = RuuEntry{};
        ruu[idx].seq = nextSeq++;
        return idx;
    }

    bool ruuFull(unsigned needed) const
    {
        return ruuCount + needed > ruu.size();
    }

    /** RUU offset (age) of the entry at ring index @p idx. */
    std::size_t
    offsetOf(int idx) const
    {
        return (static_cast<std::size_t>(idx) + ruu.size() - ruuHead) %
               ruu.size();
    }

    void
    finish(StopReason reason)
    {
        running = false;
        stopReason = reason;
    }

    /**
     * Rebuild both create vectors from the live RUU contents (after a
     * squash). @p dup_own_dataflow mirrors the dispatch-time linking rule:
     * duplicates register as stream-1 producers only when the duplicate
     * stream has its own dataflow.
     */
    void
    rebuildCreateVectors(bool dup_own_dataflow)
    {
        createVec[0].assign(numArchRegs, Producer{});
        createVec[1].assign(numArchRegs, Producer{});
        for (std::size_t off = 0; off < ruuCount; ++off) {
            const int idx =
                static_cast<int>((ruuHead + off) % ruu.size());
            const RuuEntry &e = ruu[idx];
            const RegId dst = e.inst.dstReg();
            if (dst == noReg)
                continue;
            if (!e.isDup)
                createVec[0][dst] = {idx, e.seq};
            else if (dup_own_dataflow)
                createVec[1][dst] = {idx, e.seq};
        }
    }

    /** Restore the freshly-constructed state for an RUU of @p ruu_size. */
    void
    reset(std::size_t ruu_size)
    {
        ruu.assign(ruu_size, RuuEntry{});
        ruuHead = 0;
        ruuCount = 0;
        lsqUsed = 0;
        nextSeq = 1;
        createVec[0].assign(numArchRegs, Producer{});
        createVec[1].assign(numArchRegs, Producer{});
        ifq.clear();
        replayQueue.clear();
        fetchPc = 0;
        fetchStallUntil = 0;
        lastFetchBlock = invalidAddr;
        haltSeen = false;
        badPcSeen = false;
        now = 0;
        running = true;
        stopReason = StopReason::InstLimit;
        maxArchInsts = 0;
        lastCommitCycle = 0;
    }
};

} // namespace direb

#endif // DIREB_CPU_PIPELINE_STATE_HH
