/**
 * @file
 * The explicit pipeline state shared by every stage component of the
 * out-of-order core: the unified RUU ring, per-stream create vectors,
 * fetch/decode queue, replay queue, LSQ occupancy, and the run/stop
 * bookkeeping. Extracting this from OooCore lets the stage classes
 * (stages.hh), the scheduler backends (scheduler.hh) and the redundancy
 * policies (core/policy.hh) operate on one plain struct instead of
 * reaching into a god-object.
 *
 * Memory layout: the RUU is stored structure-of-arrays. The fields the
 * back-end touches every cycle (seq, completion cycle, the packed status
 * flags, pending-operand counts, op class, pair link, dest tag) live in
 * packed parallel arrays indexed by ring slot, so the wakeup/select/
 * writeback walks stream through a few contiguous cache lines instead of
 * chasing ~200-byte records. The cold per-entry payload (decoded Inst,
 * ExecOutcome, branch-history checkpoint, IRB lookup, checker value)
 * stays in a slim residual struct (RuuCold) touched only at dispatch,
 * recovery and commit. Dependence edges are kept in a per-core slab
 * arena (no per-slot heap vectors), and the ring capacity is rounded to
 * a power of two so every slot computation is a mask, not a modulo.
 *
 * Slot reuse is clear-in-place: allocEntry() reinitializes the hot
 * arrays only. Every RuuCold field is either unconditionally rewritten
 * at dispatch (inst, pc, outcome, predNextPc, checkValue) or guarded by
 * a hot flag that allocEntry() clears (histAtFetch by HasPrediction;
 * irb/irbReadyAt by IrbCandidate), so stale cold state is unreachable
 * and the steady-state dispatch path performs zero heap allocations.
 */

#ifndef DIREB_CPU_PIPELINE_STATE_HH
#define DIREB_CPU_PIPELINE_STATE_HH

#include <bit>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/irb.hh"
#include "isa/inst.hh"
#include "isa/opcodes.hh"
#include "trace/stall.hh"
#include "vm/executor.hh"
#include "vm/vm.hh"

namespace direb
{

/** An instruction waiting in the fetch/decode queue. */
struct FetchedInst
{
    Inst inst;
    Addr pc = 0;
    Cycle fetchCycle = 0;
    Addr predNextPc = 0;
    bool predTaken = false;
    std::uint64_t histAtFetch = 0; //!< bp history checkpoint
    bool hasPrediction = false;    //!< false for replay records
    // Fault-rewind replay: outcome already known, skip functional exec.
    bool hasOutcome = false;
    ExecOutcome savedOutcome;
};

/** A (consumer, seq) edge used for wakeup; seq guards reallocation. */
struct DepEdge
{
    int idx;
    InstSeq seq;
};

/**
 * Packed per-slot status bits, kept in one hot word per RUU slot so the
 * schedulers can test several conditions with a single mask compare.
 */
namespace ruuf
{
constexpr std::uint32_t IsDup = 1u << 0;      //!< duplicate-stream entry
constexpr std::uint32_t WrongPath = 1u << 1;  //!< dispatched in spec mode
constexpr std::uint32_t Issued = 1u << 2;
constexpr std::uint32_t Completed = 1u << 3;
/** Memory state machine (primary loads). @{ */
constexpr std::uint32_t IsMemOp = 1u << 4;
constexpr std::uint32_t NeedsMemAccess = 1u << 5; //!< must access dcache
constexpr std::uint32_t AddrGenPending = 1u << 6; //!< completion = addr-gen
constexpr std::uint32_t AddrDone = 1u << 7;
constexpr std::uint32_t MemStarted = 1u << 8;
constexpr std::uint32_t HoldsLsqSlot = 1u << 9;
/** @} */
/** Raw opcode class, mirrored so hot walks never touch the cold Inst. @{ */
constexpr std::uint32_t IsLoad = 1u << 10;
constexpr std::uint32_t IsStore = 1u << 11;
/** @} */
/** Control. @{ */
constexpr std::uint32_t PredTaken = 1u << 12;
constexpr std::uint32_t HasPrediction = 1u << 13;
constexpr std::uint32_t Mispredicted = 1u << 14;
constexpr std::uint32_t RecoveryDone = 1u << 15;
/** @} */
/** IRB (duplicate stream). @{ */
constexpr std::uint32_t IrbCandidate = 1u << 16; //!< PC hit; test pending
constexpr std::uint32_t ReuseTested = 1u << 17;
constexpr std::uint32_t ReuseHit = 1u << 18;
constexpr std::uint32_t BypassedAlu = 1u << 19;
/** @} */
/** Checker / fault injection. @{ */
constexpr std::uint32_t Faulted = 1u << 20;
/** @} */
constexpr std::uint32_t IsHalt = 1u << 21;
} // namespace ruuf

/**
 * Cold per-entry payload: everything an RUU entry carries that the
 * per-cycle scheduler walks never touch. Written at dispatch, read at
 * recovery/commit (and by the IRB reuse test, which runs at most once
 * per duplicate).
 */
struct RuuCold
{
    Inst inst;
    Addr pc = 0;
    ExecOutcome outcome;
    Addr predNextPc = 0;
    std::uint64_t histAtFetch = 0; //!< valid iff ruuf::HasPrediction
    IrbLookup irb;                 //!< valid iff ruuf::IrbCandidate
    Cycle irbReadyAt = 0;          //!< valid iff ruuf::IrbCandidate
    RegVal checkValue = 0;
};

/** Record used to replay committed-path work after a fault rewind. */
struct ReplayRecord
{
    Inst inst;
    Addr pc;
    ExecOutcome outcome;
};

/** Newest in-flight producer of a register (seq guards slot reuse). */
struct Producer
{
    int idx = -1;
    InstSeq seq = invalidSeq;
};

/**
 * Fixed-capacity ring for the fetch/decode queue. The steady-state
 * push/pop traffic of a std::deque churns block allocations; the ring
 * allocates once per reset and never again.
 */
class FetchQueue
{
  public:
    void
    reset(std::size_t capacity)
    {
        buf.assign(capacity, FetchedInst{});
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    const FetchedInst &front() const { return buf[head]; }

    /** The @p i-th queued instruction, oldest first (replay rebuild). */
    const FetchedInst &
    at(std::size_t i) const
    {
        std::size_t pos = head + i;
        if (pos >= buf.size())
            pos -= buf.size();
        return buf[pos];
    }

    void
    push_back(const FetchedInst &fi)
    {
        panic_if(count >= buf.size(), "IFQ overflow");
        std::size_t pos = head + count;
        if (pos >= buf.size())
            pos -= buf.size();
        buf[pos] = fi;
        ++count;
    }

    void
    pop_front()
    {
        panic_if(count == 0, "IFQ underflow");
        if (++head >= buf.size())
            head = 0;
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::vector<FetchedInst> buf;
    std::size_t head = 0;
    std::size_t count = 0;
};

/**
 * All mutable pipeline state, shared by the stage components through a
 * CoreContext. A PipelineState is fully reusable: reset() restores the
 * freshly-constructed machine for the next program while recycling every
 * buffer's capacity (no deallocation).
 */
struct PipelineState
{
    /**
     * Hot RUU fields, parallel arrays of ringSlots() entries indexed by
     * ring slot. eSeq is invalidSeq for dead slots, so dangling
     * dependence edges and create-vector entries are detected by a seq
     * mismatch exactly as before the SoA split. @{
     */
    std::vector<InstSeq> eSeq;
    std::vector<Cycle> eCompleteAt;
    std::vector<Cycle> eDispatchedAt;
    std::vector<std::int32_t> ePair;  //!< partner slot (DIE modes), -1
    std::vector<std::uint32_t> eFlags; //!< ruuf:: bit union
    std::vector<std::uint8_t> eSrcPending;
    std::vector<OpClass> eCls;
    std::vector<RegId> eDst; //!< dest tag (noReg when none)
    /** @} */
    /** Cold payload, same indexing. */
    std::vector<RuuCold> cold;

    std::size_t ruuHead = 0;
    std::size_t ruuCount = 0;
    std::size_t lsqUsed = 0;
    InstSeq nextSeq = 1;

    /** createVec[stream][reg] = newest in-flight producer. */
    std::vector<Producer> createVec[2];

    FetchQueue ifq;
    std::deque<ReplayRecord> replayQueue;
    Addr fetchPc = 0;
    Cycle fetchStallUntil = 0;
    Addr lastFetchBlock = invalidAddr;
    /**
     * Which stage of the hierarchy the in-flight fetch miss is waiting
     * on — the fetch stage keeps blaming this reason for the stalled
     * cycles until fetchStallUntil passes. Always IcacheMiss on a
     * standalone core (legacy attribution); L2Wait/DramWait under a
     * shared hierarchy.
     */
    trace::StallReason fetchMissBlame = trace::StallReason::IcacheMiss;
    bool haltSeen = false;   //!< stop fetching/dispatching new work
    bool badPcSeen = false;

    Cycle now = 0;
    bool running = true;
    StopReason stopReason = StopReason::InstLimit;
    std::uint64_t maxArchInsts = 0;
    Cycle lastCommitCycle = 0;

    /** Logical RUU capacity (ruu.size; dispatch stalls at this). */
    std::size_t ruuLimit = 0;

    /** Ring capacity: ruuLimit rounded up to a power of two. */
    std::size_t ringSlots() const { return eSeq.size(); }

    /** Flag helpers over the packed status word. @{ */
    bool any(int idx, std::uint32_t mask) const
    {
        return (eFlags[idx] & mask) != 0;
    }
    void set(int idx, std::uint32_t mask) { eFlags[idx] |= mask; }
    void clear(int idx, std::uint32_t mask) { eFlags[idx] &= ~mask; }
    /** @} */

    /** Ring slot of the entry at RUU offset (age) @p offset. */
    int
    slotAt(std::size_t offset) const
    {
        panic_if(offset >= ruuCount,
                 "RUU offset %zu out of range (count %zu)", offset,
                 ruuCount);
        return static_cast<int>((ruuHead + offset) & ringMask);
    }

    /** RUU offset (age) of the entry at ring slot @p idx. */
    std::size_t
    offsetOf(int idx) const
    {
        return (static_cast<std::size_t>(idx) - ruuHead) & ringMask;
    }

    /**
     * Allocate the next ring slot and reinitialize its hot fields in
     * place (cold fields are rewritten or flag-guarded; see the file
     * comment). The slot's dependence chain was returned to the arena
     * when the previous occupant completed, squashed or rewound.
     */
    int
    allocEntry()
    {
        panic_if(ruuCount >= ruuLimit, "RUU overflow");
        const int idx = static_cast<int>((ruuHead + ruuCount) & ringMask);
        ++ruuCount;
        eSeq[idx] = nextSeq++;
        eCompleteAt[idx] = 0;
        eDispatchedAt[idx] = 0;
        ePair[idx] = -1;
        eFlags[idx] = 0;
        eSrcPending[idx] = 0;
        eCls[idx] = OpClass::Nop;
        eDst[idx] = noReg;
        panic_if(depHead[idx] != -1, "leaked dependence chain in slot %d",
                 idx);
        return idx;
    }

    bool ruuFull(unsigned needed) const
    {
        return ruuCount + needed > ruuLimit;
    }

    /** Retire @p n entries: advance the ring head past them. */
    void
    advanceHead(std::size_t n)
    {
        panic_if(n > ruuCount, "retiring past the RUU tail");
        ruuHead = (ruuHead + n) & ringMask;
        ruuCount -= n;
    }

    /** Append a wakeup edge to producer @p idx's chain (slab arena). @{ */
    void
    pushDep(int idx, DepEdge edge)
    {
        std::int32_t node;
        if (depFree >= 0) {
            node = depFree;
            depFree = depNodes[node].next;
            depNodes[node] = {edge, -1};
        } else {
            node = static_cast<std::int32_t>(depNodes.size());
            depNodes.push_back({edge, -1});
        }
        if (depHead[idx] < 0)
            depHead[idx] = node;
        else
            depNodes[depTail[idx]].next = node;
        depTail[idx] = node;
    }

    /** Return slot @p idx's whole chain to the freelist (O(1)). */
    void
    freeDeps(int idx)
    {
        if (depHead[idx] < 0)
            return;
        depNodes[depTail[idx]].next = depFree;
        depFree = depHead[idx];
        depHead[idx] = -1;
        depTail[idx] = -1;
    }
    /** @} */

    /** Dependence-chain arena (insertion order preserved via tail). @{ */
    struct DepNode
    {
        DepEdge edge;
        std::int32_t next;
    };
    std::vector<DepNode> depNodes;
    std::vector<std::int32_t> depHead;
    std::vector<std::int32_t> depTail;
    std::int32_t depFree = -1;
    /** @} */

    void
    finish(StopReason reason)
    {
        running = false;
        stopReason = reason;
    }

    /**
     * Rebuild both create vectors from the live RUU contents (after a
     * squash). @p dup_own_dataflow mirrors the dispatch-time linking rule:
     * duplicates register as stream-1 producers only when the duplicate
     * stream has its own dataflow.
     */
    void
    rebuildCreateVectors(bool dup_own_dataflow)
    {
        createVec[0].assign(numArchRegs, Producer{});
        createVec[1].assign(numArchRegs, Producer{});
        for (std::size_t off = 0; off < ruuCount; ++off) {
            const int idx = static_cast<int>((ruuHead + off) & ringMask);
            const RegId dst = eDst[idx];
            if (dst == noReg)
                continue;
            if (!any(idx, ruuf::IsDup))
                createVec[0][dst] = {idx, eSeq[idx]};
            else if (dup_own_dataflow)
                createVec[1][dst] = {idx, eSeq[idx]};
        }
    }

    /**
     * Restore the freshly-constructed state for an RUU of @p ruu_size
     * logical entries and a fetch queue of @p ifq_size. Every buffer is
     * reinitialized in place; capacity from a previous binding survives.
     */
    void
    reset(std::size_t ruu_size, std::size_t ifq_size)
    {
        ruuLimit = ruu_size;
        const std::size_t slots = std::bit_ceil(ruu_size);
        ringMask = slots - 1;
        eSeq.assign(slots, invalidSeq);
        eCompleteAt.assign(slots, 0);
        eDispatchedAt.assign(slots, 0);
        ePair.assign(slots, -1);
        eFlags.assign(slots, 0);
        eSrcPending.assign(slots, 0);
        eCls.assign(slots, OpClass::Nop);
        eDst.assign(slots, noReg);
        cold.assign(slots, RuuCold{});
        depNodes.clear();
        depHead.assign(slots, -1);
        depTail.assign(slots, -1);
        depFree = -1;
        ruuHead = 0;
        ruuCount = 0;
        lsqUsed = 0;
        nextSeq = 1;
        createVec[0].assign(numArchRegs, Producer{});
        createVec[1].assign(numArchRegs, Producer{});
        ifq.reset(ifq_size);
        replayQueue.clear();
        fetchPc = 0;
        fetchStallUntil = 0;
        lastFetchBlock = invalidAddr;
        fetchMissBlame = trace::StallReason::IcacheMiss;
        haltSeen = false;
        badPcSeen = false;
        now = 0;
        running = true;
        stopReason = StopReason::InstLimit;
        maxArchInsts = 0;
        lastCommitCycle = 0;
    }

  private:
    std::size_t ringMask = 0;
};

} // namespace direb

#endif // DIREB_CPU_PIPELINE_STATE_HH
