/**
 * @file
 * Fetch stage: instruction-cache timing, branch prediction, IRB lookups
 * (issued in parallel with fetch, per Figure 4 of the paper), and the
 * fault-rewind replay path.
 */

#include "common/logging.hh"
#include "cpu/stages.hh"

namespace direb
{

void
FetchStage::run(CoreContext &cx)
{
    using trace::StallReason;
    using trace::StallStage;

    PipelineState &st = *cx.st;
    trace::StallAccount &stalls = *cx.stalls;

    if (st.now < st.fetchStallUntil || st.haltSeen || !st.running) {
        // A redirect/rewind bubble and an in-flight I-cache miss both
        // park the front end via fetchStallUntil; separating them would
        // need extra state, so the miss wins the blame while it lasts.
        stalls.blame(StallStage::Fetch,
                     st.now < st.fetchStallUntil
                         ? (st.lastFetchBlock == invalidAddr
                                ? StallReason::Redirect
                                : st.fetchMissBlame)
                         : StallReason::Drained);
        return;
    }

    unsigned budget = cx.p.fetchWidth;

    // Charge I-cache timing once per block transition. Returns false and
    // stalls the front end on a miss.
    const auto charge_icache = [&](Addr pc) {
        const Addr block_bytes = cx.memPort->l1i().params().blockBytes;
        const Addr block = pc & ~(block_bytes - 1);
        if (block == st.lastFetchBlock)
            return true;
        const mem::MemResp resp = cx.memPort->fetch(pc, st.now);
        st.lastFetchBlock = block;
        if (resp.servedBy != mem::MemResp::Served::L1) {
            st.fetchStallUntil = st.now + resp.latency;
            // Standalone cores keep the legacy icache_miss blame; with a
            // shared hierarchy the serving level refines it so L2/DRAM
            // pressure from the other cores is visible per core.
            st.fetchMissBlame =
                !cx.memPort->shared() ? StallReason::IcacheMiss
                : resp.servedBy == mem::MemResp::Served::L2
                    ? StallReason::L2Wait
                    : StallReason::DramWait;
            stalls.blame(StallStage::Fetch, st.fetchMissBlame);
            DIREB_TRACE(cx.tracer, trace::Kind::FetchStall, invalidSeq, pc,
                        false, Inst{}, resp.latency);
            return false;
        }
        return true;
    };

    // Fault-rewind replay: re-inject the already-executed correct-path
    // instructions with their saved outcomes (perfectly predicted).
    while (!st.replayQueue.empty() && budget > 0 &&
           st.ifq.size() < cx.p.ifqSize) {
        const ReplayRecord &r = st.replayQueue.front();
        if (!charge_icache(r.pc))
            return;
        FetchedInst fi;
        fi.inst = r.inst;
        fi.pc = r.pc;
        fi.fetchCycle = st.now;
        fi.predNextPc = r.outcome.nextPc;
        fi.predTaken = r.outcome.taken;
        fi.hasOutcome = true;
        fi.savedOutcome = r.outcome;
        st.ifq.push_back(fi);
        st.replayQueue.pop_front();
        --budget;
        stalls.busy(StallStage::Fetch);
    }
    if (!st.replayQueue.empty()) {
        if (budget > 0)
            stalls.blame(StallStage::Fetch, StallReason::IfqFull);
        return;
    }

    while (budget > 0 && st.ifq.size() < cx.p.ifqSize) {
        if (!charge_icache(st.fetchPc))
            return;

        FetchedInst fi;
        fi.inst = cx.prog->fetch(st.fetchPc); // NOP outside the text seg
        fi.pc = st.fetchPc;
        fi.fetchCycle = st.now;

        const BranchPrediction pred = cx.bp->predict(st.fetchPc, fi.inst);
        fi.predTaken = pred.taken;
        fi.predNextPc = pred.taken ? pred.target : st.fetchPc + 4;
        fi.histAtFetch = pred.histAtFetch;
        fi.hasPrediction = true;
        st.ifq.push_back(fi);
        --budget;
        stalls.busy(StallStage::Fetch);

        const bool redirect = fi.predNextPc != st.fetchPc + 4;
        st.fetchPc = fi.predNextPc;
        if (redirect) {
            stalls.blame(StallStage::Fetch, StallReason::Redirect);
            break; // taken control transfer ends the fetch group
        }
    }
    if (budget > 0 && st.ifq.size() >= cx.p.ifqSize)
        stalls.blame(StallStage::Fetch, StallReason::IfqFull);
}

} // namespace direb
