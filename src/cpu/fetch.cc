/**
 * @file
 * Fetch stage: instruction-cache timing, branch prediction, IRB lookups
 * (issued in parallel with fetch, per Figure 4 of the paper), and the
 * fault-rewind replay path.
 */

#include "common/logging.hh"
#include "cpu/ooo_core.hh"

namespace direb
{

void
OooCore::fetchStage()
{
    using trace::StallReason;
    using trace::StallStage;

    if (now < fetchStallUntil || haltSeen || !running) {
        // A redirect/rewind bubble and an in-flight I-cache miss both
        // park the front end via fetchStallUntil; separating them would
        // need extra state, so the miss wins the blame while it lasts.
        stalls.blame(StallStage::Fetch, now < fetchStallUntil
                                            ? (lastFetchBlock == invalidAddr
                                                   ? StallReason::Redirect
                                                   : StallReason::IcacheMiss)
                                            : StallReason::Drained);
        return;
    }

    unsigned budget = p.fetchWidth;

    // Charge I-cache timing once per block transition. Returns false and
    // stalls the front end on a miss.
    const auto charge_icache = [&](Addr pc) {
        const Addr block_bytes = memHier->l1i().params().blockBytes;
        const Addr block = pc & ~(block_bytes - 1);
        if (block == lastFetchBlock)
            return true;
        const Cycle lat = memHier->instAccess(pc);
        lastFetchBlock = block;
        if (lat > memHier->l1i().params().hitLatency) {
            fetchStallUntil = now + lat;
            stalls.blame(StallStage::Fetch, StallReason::IcacheMiss);
            DIREB_TRACE(tracer_, trace::Kind::FetchStall, invalidSeq, pc,
                        false, Inst{}, lat);
            return false;
        }
        return true;
    };

    // Fault-rewind replay: re-inject the already-executed correct-path
    // instructions with their saved outcomes (perfectly predicted).
    while (!replayQueue.empty() && budget > 0 && ifq.size() < p.ifqSize) {
        const ReplayRecord &r = replayQueue.front();
        if (!charge_icache(r.pc))
            return;
        FetchedInst fi;
        fi.inst = r.inst;
        fi.pc = r.pc;
        fi.fetchCycle = now;
        fi.predNextPc = r.outcome.nextPc;
        fi.predTaken = r.outcome.taken;
        fi.hasOutcome = true;
        fi.savedOutcome = r.outcome;
        ifq.push_back(fi);
        replayQueue.pop_front();
        --budget;
        stalls.busy(StallStage::Fetch);
    }
    if (!replayQueue.empty()) {
        if (budget > 0)
            stalls.blame(StallStage::Fetch, StallReason::IfqFull);
        return;
    }

    while (budget > 0 && ifq.size() < p.ifqSize) {
        if (!charge_icache(fetchPc))
            return;

        FetchedInst fi;
        fi.inst = prog.fetch(fetchPc); // NOP outside the text segment
        fi.pc = fetchPc;
        fi.fetchCycle = now;

        const BranchPrediction pred = bp->predict(fetchPc, fi.inst);
        fi.predTaken = pred.taken;
        fi.predNextPc = pred.taken ? pred.target : fetchPc + 4;
        fi.histAtFetch = pred.histAtFetch;
        fi.hasPrediction = true;
        ifq.push_back(fi);
        --budget;
        stalls.busy(StallStage::Fetch);

        const bool redirect = fi.predNextPc != fetchPc + 4;
        fetchPc = fi.predNextPc;
        if (redirect) {
            stalls.blame(StallStage::Fetch, StallReason::Redirect);
            break; // taken control transfer ends the fetch group
        }
    }
    if (budget > 0 && ifq.size() >= p.ifqSize)
        stalls.blame(StallStage::Fetch, StallReason::IfqFull);
}

} // namespace direb
