/**
 * @file
 * Back-end stages: writeback/wakeup (including the IRB reuse test, which
 * the paper folds into wakeup via the Rdy2L/Rdy2R flags), load/store
 * queue memory issue with store-to-load forwarding, out-of-order
 * select/issue against the FU pool, and branch-misprediction recovery.
 *
 * Each stage exists twice: the original "scan" implementation re-walks
 * the whole RUU every cycle and re-derives what is actionable, and the
 * "ready_list" implementation (core.scheduler, the default) maintains
 * the same information incrementally — a completion-event heap for
 * writeback, an operand-ready list for select/issue, a pending-load list
 * plus an ordered store-address index for the memory stage, and a
 * pending-reuse-test list for the IRB pre-pass. Both are cycle-accurate
 * and bit-identical in timing and statistics (proven per-workload by
 * test_scheduler_diff); the scan version is kept as the differential
 * reference.
 */

#include "common/logging.hh"
#include "cpu/ooo_core.hh"

namespace direb
{

void
OooCore::wakeDependents(int idx)
{
    RuuEntry &e = ruu[idx];
    for (const DepEdge &dep : e.dependents) {
        RuuEntry &c = ruu[dep.idx];
        if (c.seq != dep.seq)
            continue; // consumer was squashed; slot may be reused
        panic_if(c.srcPending == 0, "wakeup underflow (seq %llu)",
                 static_cast<unsigned long long>(c.seq));
        --c.srcPending;
        if (c.srcPending == 0) {
            DIREB_TRACE(tracer_, trace::Kind::Wakeup, c.seq, c.pc, c.isDup,
                        c.inst);
            if (p.readyListScheduler)
                readyList.push(c.seq, dep.idx);
        }
    }
    e.dependents.clear();
}

void
OooCore::completeEntry(int idx)
{
    RuuEntry &e = ruu[idx];
    e.completed = true;
    DIREB_TRACE(tracer_, trace::Kind::Complete, e.seq, e.pc, e.isDup,
                e.inst);

    // Fault site "fu": a transient strikes the unit producing this value.
    if (injector->site() == FaultSite::Fu && e.cls != OpClass::Nop &&
        !e.bypassedAlu && injector->strike()) {
        e.checkValue ^= RegVal(1) << injector->bitToFlip();
        e.faulted = true;
    }

    // In DIE-IRB only primary results are forwarded; duplicate completions
    // wake nobody (their dependents list is empty by construction).
    wakeDependents(idx);

    if (e.mispredicted && !e.wrongPath && !e.recoveryDone)
        handleMispredictRecovery(idx);

    // Ready-list bookkeeping: a duplicate load's register copy arrives
    // with the primary's single memory access, so the primary's
    // completion is what makes an address-done duplicate actionable. The
    // scan finds the duplicate on its own (it sits right behind the
    // primary, so it is visited next within the same cycle); here the
    // primary completes it directly.
    if (p.readyListScheduler && !e.isDup && e.pairIdx >= 0) {
        RuuEntry &d = ruu[e.pairIdx];
        if (d.isDup && d.pairIdx == idx && !d.completed && d.addrDone &&
            isLoad(d.inst.op)) {
            completeEntry(e.pairIdx);
        }
    }
}

void
OooCore::tryReuseTest(int idx)
{
    RuuEntry &e = ruu[idx];
    if (!e.isDup || !e.irbCandidate || e.reuseTested || e.issued ||
        e.completed || e.srcPending > 0 || now < e.irbReadyAt) {
        return;
    }
    e.reuseTested = true;
    // A corrupted forwarded operand (fault injection) cannot match the
    // stored operand values: the reuse test fails and the duplicate
    // executes with the corrupted input — exactly the §3.4 behaviour.
    const bool pass = !e.faulted && e.irb.op1 == e.outcome.op1Val &&
                      e.irb.op2 == e.outcome.op2Val;
    reuseBuffer->recordReuseTest(pass);
    DIREB_TRACE(tracer_,
                pass ? trace::Kind::IrbReuseHit : trace::Kind::IrbReuseMiss,
                e.seq, e.pc, true, e.inst);
    if (!pass)
        return;

    // Reuse hit: pick up the stored result and skip the ALUs entirely —
    // no issue slot, no functional unit, no result forwarding.
    e.reuseHit = true;
    e.bypassedAlu = true;
    e.issued = true;
    e.completeAt = now + 1;
    e.checkValue = e.irb.result;
    scheduleWriteback(idx, e.completeAt);
    ++numBypassedAlu;
}

void
OooCore::scheduleWriteback(int idx, Cycle at)
{
    if (p.readyListScheduler)
        wbEvents.push({at, ruu[idx].seq, idx});
}

void
OooCore::resetScheduler()
{
    wbEvents = {};
    readyList.clear();
    pendingMem.clear();
    pendingReuse.clear();
    unresolvedStores.clear();
    storeBlocks.clear();
}

void
OooCore::dropStoreIndex(const RuuEntry &e)
{
    const auto us = std::lower_bound(unresolvedStores.begin(),
                                     unresolvedStores.end(), e.seq);
    if (us != unresolvedStores.end() && *us == e.seq)
        unresolvedStores.erase(us);
    const auto it = storeBlocks.find(e.outcome.effAddr >> 3);
    if (it != storeBlocks.end()) {
        std::vector<InstSeq> &seqs = it->second;
        const auto sb = std::lower_bound(seqs.begin(), seqs.end(), e.seq);
        if (sb != seqs.end() && *sb == e.seq)
            seqs.erase(sb);
        if (seqs.empty())
            storeBlocks.erase(it);
    }
}

void
OooCore::writebackStage()
{
    if (p.readyListScheduler)
        writebackStageList();
    else
        writebackStageScan();
}

void
OooCore::writebackStageScan()
{
    // Oldest-first scan; a recovery squash inside completeEntry() shrinks
    // ruuCount, which the loop condition re-checks every iteration.
    for (std::size_t off = 0; off < ruuCount; ++off) {
        const int idx = static_cast<int>((ruuHead + off) % p.ruuSize);
        RuuEntry &e = ruu[idx];
        if (e.completed)
            continue;
        // Duplicate loads: address generation may be done, but the
        // register copy only arrives when the single (primary) memory
        // access returns — the duplicate stream must not see a faster
        // memory than the primary one.
        if (e.isDup && isLoad(e.inst.op) && e.addrDone) {
            if (ruu[e.pairIdx].completed)
                completeEntry(idx);
            continue;
        }
        if (!e.issued || e.completeAt > now)
            continue;
        if (e.needsMemAccess && e.addrDone && !e.memStarted)
            continue; // load waiting for a memory port / disambiguation
        if (e.addrGenPending) {
            e.addrGenPending = false;
            e.addrDone = true;
            if (e.needsMemAccess)
                continue; // primary load: wait for the memory stage
            if (e.isDup && isLoad(e.inst.op)) {
                // Re-checked above next cycle (or now if the primary is
                // already done).
                if (ruu[e.pairIdx].completed)
                    completeEntry(idx);
                continue;
            }
            // Stores and address-only ops are done after address
            // generation (the access happens once, at primary commit).
        }
        completeEntry(idx);
    }
}

void
OooCore::processWriteback(int idx)
{
    // One entry's worth of the scan body above, reached via the event
    // heap instead of a full-RUU walk.
    RuuEntry &e = ruu[idx];
    if (e.completed)
        return;
    if (e.isDup && isLoad(e.inst.op) && e.addrDone) {
        if (ruu[e.pairIdx].completed)
            completeEntry(idx);
        return;
    }
    if (!e.issued || e.completeAt > now)
        return;
    if (e.needsMemAccess && e.addrDone && !e.memStarted)
        return;
    if (e.addrGenPending) {
        e.addrGenPending = false;
        e.addrDone = true;
        if (!e.isDup && isStore(e.inst.op)) {
            // The store's address is now known: move it from the
            // conservative "blocks every younger load" set into the
            // 8-byte-granular forwarding index.
            const auto us = std::lower_bound(unresolvedStores.begin(),
                                             unresolvedStores.end(), e.seq);
            if (us != unresolvedStores.end() && *us == e.seq)
                unresolvedStores.erase(us);
            std::vector<InstSeq> &seqs =
                storeBlocks[e.outcome.effAddr >> 3];
            seqs.insert(std::upper_bound(seqs.begin(), seqs.end(), e.seq),
                        e.seq);
        }
        if (e.needsMemAccess) {
            pendingMem.push(e.seq, idx);
            return; // primary load: wait for the memory stage
        }
        if (e.isDup && isLoad(e.inst.op)) {
            if (ruu[e.pairIdx].completed)
                completeEntry(idx);
            return; // else: completed by the primary's completion hook
        }
    }
    completeEntry(idx);
}

void
OooCore::writebackStageList()
{
    while (!wbEvents.empty() && wbEvents.top().at <= now) {
        const WbEvent ev = wbEvents.top();
        wbEvents.pop();
        if (ruu[ev.idx].seq != ev.seq)
            continue; // squashed; slot may be reused
        processWriteback(ev.idx);
    }
}

bool
OooCore::olderStoreBlocks(std::size_t load_offset, bool &forwarded) const
{
    const RuuEntry &load = entryAt(load_offset);
    forwarded = false;
    for (std::size_t off = 0; off < load_offset; ++off) {
        const RuuEntry &e = entryAt(off);
        if (!isStore(e.inst.op) || e.isDup)
            continue;
        if (!e.addrDone)
            return true; // conservative disambiguation
        // 8-byte-granular overlap check; latest matching store wins.
        if ((e.outcome.effAddr >> 3) == (load.outcome.effAddr >> 3))
            forwarded = true;
    }
    return false;
}

bool
OooCore::loadBlockedByStore(const RuuEntry &load, bool &forwarded) const
{
    forwarded = false;
    // Any older primary store without a generated address blocks the
    // load; since the sets are seq-ordered, "any older" is just a
    // comparison against the oldest unresolved store.
    if (!unresolvedStores.empty() && unresolvedStores.front() < load.seq)
        return true; // conservative disambiguation
    const auto it = storeBlocks.find(load.outcome.effAddr >> 3);
    forwarded = it != storeBlocks.end() && it->second.front() < load.seq;
    return false;
}

void
OooCore::memoryStage()
{
    if (p.readyListScheduler)
        memoryStageList();
    else
        memoryStageScan();
}

void
OooCore::memoryStageScan()
{
    for (std::size_t off = 0; off < ruuCount; ++off) {
        RuuEntry &e = entryAt(off);
        if (!e.needsMemAccess || !e.addrDone || e.memStarted || e.completed)
            continue;
        bool forwarded = false;
        if (olderStoreBlocks(off, forwarded)) {
            ++numLoadsBlocked;
            continue;
        }
        if (forwarded) {
            e.memStarted = true;
            e.completeAt = now + 1;
            ++numLoadsForwarded;
            continue;
        }
        if (!fus->tryMemPort(now))
            continue;
        e.memStarted = true;
        e.completeAt = now + memHier->dataAccess(e.outcome.effAddr, false);
    }
}

void
OooCore::memoryStageList()
{
    pendingMem.normalize();
    auto &pm = pendingMem.items;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pm.size(); ++i) {
        const auto [seq, idx] = pm[i];
        RuuEntry &e = ruu[idx];
        if (e.seq != seq || e.memStarted || e.completed)
            continue; // stale: drop
        bool forwarded = false;
        if (loadBlockedByStore(e, forwarded)) {
            ++numLoadsBlocked;
            pm[kept++] = pm[i]; // retry next cycle
            continue;
        }
        if (forwarded) {
            e.memStarted = true;
            e.completeAt = now + 1;
            scheduleWriteback(idx, e.completeAt);
            ++numLoadsForwarded;
            continue;
        }
        if (!fus->tryMemPort(now)) {
            pm[kept++] = pm[i]; // retry next cycle
            continue;
        }
        e.memStarted = true;
        e.completeAt = now + memHier->dataAccess(e.outcome.effAddr, false);
        scheduleWriteback(idx, e.completeAt);
    }
    pendingMem.compact(kept);
}

void
OooCore::issueStage()
{
    cycFuDenied = 0;
    cycIrbDeferred = 0;
    if (p.readyListScheduler)
        issueStageList();
    else
        issueStageScan();

    // Cycle blame from aggregates both scheduler implementations compute
    // identically: an FU denial means ready work existed and lost ALU
    // bandwidth; failing that, a pending reuse test held duplicates back;
    // otherwise occupied-but-unready entries were waiting on operands.
    using trace::StallReason;
    using trace::StallStage;
    if (ruuCount == 0)
        stalls.blame(StallStage::Issue, StallReason::Empty);
    else if (cycFuDenied > 0)
        stalls.blame(StallStage::Issue, StallReason::FuContention);
    else if (cycIrbDeferred > 0)
        stalls.blame(StallStage::Issue, StallReason::IrbDeferral);
    else
        stalls.blame(StallStage::Issue, StallReason::OperandWait);
}

void
OooCore::issueStageScan()
{
    fus->beginCycle(now);

    // Reuse-test pre-pass: the paper performs the operand comparison as
    // part of wakeup, so reuse hits never compete for issue bandwidth.
    // The irb.consumes_issue_slot ablation instead treats the IRB like a
    // functional unit (pre-[12] designs): hits are tested in the issue
    // loop and burn an issue slot.
    if (reuseBuffer && !p.irbConsumesIssueSlot) {
        for (std::size_t off = 0; off < ruuCount; ++off)
            tryReuseTest(static_cast<int>((ruuHead + off) % p.ruuSize));
    }

    unsigned slots = p.issueWidth;
    for (std::size_t off = 0; off < ruuCount && slots > 0; ++off) {
        RuuEntry &e = entryAt(off);
        if (e.issued || e.completed || e.srcPending > 0)
            continue;
        // Rdy2L/Rdy2R semantics (paper Figure 5): a duplicate with a
        // pending reuse test is not schedulable until the test resolves.
        if (e.irbCandidate && !e.reuseTested) {
            if (!p.irbConsumesIssueSlot) {
                ++cycIrbDeferred;
                continue;
            }
            tryReuseTest(static_cast<int>((ruuHead + off) % p.ruuSize));
            if (!e.reuseTested) {
                ++cycIrbDeferred;
                continue; // IRB data still in flight
            }
            if (e.reuseHit) {
                --slots; // ablation: the hit occupies issue bandwidth
                stalls.busy(trace::StallStage::Issue);
                continue;
            }
        }
        Cycle lat = 1;
        if (!fus->tryIssue(e.cls, now, lat)) {
            ++numIssueStallFu;
            ++cycFuDenied;
            continue; // other ready instructions may still find a unit
        }
        e.issued = true;
        e.completeAt = now + lat;
        if (e.isMemOp)
            e.addrGenPending = true; // first completion = address ready
        --slots;
        ++numIssuedTotal;
        stalls.busy(trace::StallStage::Issue);
        issueDelay.sample(static_cast<double>(now - e.dispatchedAt));
        DIREB_TRACE(tracer_, trace::Kind::Issue, e.seq, e.pc, e.isDup,
                    e.inst);
    }
}

void
OooCore::issueStageList()
{
    fus->beginCycle(now);

    // Reuse-test pre-pass over the pending tests only (same oldest-first
    // order as the scan; non-candidates were never added).
    if (reuseBuffer && !p.irbConsumesIssueSlot) {
        pendingReuse.normalize();
        auto &pr = pendingReuse.items;
        std::size_t kept = 0;
        for (std::size_t i = 0; i < pr.size(); ++i) {
            const auto [seq, idx] = pr[i];
            RuuEntry &e = ruu[idx];
            if (e.seq != seq || e.reuseTested || e.issued || e.completed)
                continue; // stale or already resolved: drop
            tryReuseTest(idx);
            if (!e.reuseTested)
                pr[kept++] = pr[i]; // IRB data still in flight
        }
        pendingReuse.compact(kept);
    }

    readyList.normalize();
    auto &rl = readyList.items;
    std::size_t kept = 0;
    std::size_t i = 0;
    unsigned slots = p.issueWidth;
    for (; i < rl.size() && slots > 0; ++i) {
        const auto [seq, idx] = rl[i];
        RuuEntry &e = ruu[idx];
        if (e.seq != seq || e.issued || e.completed)
            continue; // stale: drop
        panic_if(e.srcPending > 0, "unready entry on the ready list "
                 "(seq %llu)",
                 static_cast<unsigned long long>(e.seq));
        if (e.irbCandidate && !e.reuseTested) {
            if (!p.irbConsumesIssueSlot) {
                ++cycIrbDeferred;
                rl[kept++] = rl[i];
                continue;
            }
            tryReuseTest(idx);
            if (!e.reuseTested) {
                ++cycIrbDeferred;
                rl[kept++] = rl[i];
                continue; // IRB data still in flight
            }
            if (e.reuseHit) {
                --slots; // ablation: the hit occupies issue bandwidth
                stalls.busy(trace::StallStage::Issue);
                continue;
            }
        }
        Cycle lat = 1;
        if (!fus->tryIssue(e.cls, now, lat)) {
            ++numIssueStallFu;
            ++cycFuDenied;
            rl[kept++] = rl[i];
            continue; // other ready instructions may still find a unit
        }
        e.issued = true;
        e.completeAt = now + lat;
        if (e.isMemOp)
            e.addrGenPending = true; // first completion = address ready
        scheduleWriteback(idx, e.completeAt);
        --slots;
        ++numIssuedTotal;
        stalls.busy(trace::StallStage::Issue);
        issueDelay.sample(static_cast<double>(now - e.dispatchedAt));
        DIREB_TRACE(tracer_, trace::Kind::Issue, e.seq, e.pc, e.isDup,
                    e.inst);
    }
    for (; i < rl.size(); ++i)
        rl[kept++] = rl[i]; // issue bandwidth exhausted: keep the rest
    readyList.compact(kept);
}

void
OooCore::handleMispredictRecovery(int idx)
{
    RuuEntry &e = ruu[idx];
    panic_if(!replayQueue.empty(), "recovery during fault replay");
    DIREB_TRACE(tracer_, trace::Kind::Recovery, e.seq, e.pc, e.isDup,
                e.inst);

    // Keep everything up to and including the branch's pair.
    const std::size_t own_off =
        (static_cast<std::size_t>(idx) + p.ruuSize - ruuHead) % p.ruuSize;
    std::size_t keep = own_off + 1;
    if (e.pairIdx >= 0) {
        const std::size_t pair_off =
            (static_cast<std::size_t>(e.pairIdx) + p.ruuSize - ruuHead) %
            p.ruuSize;
        keep = std::max(keep, pair_off + 1);
        ruu[e.pairIdx].recoveryDone = true;
    }
    e.recoveryDone = true;

    squashYoungerThan(keep);
    specCtx.exitSpec();
    ifq.clear();

    fetchPc = e.outcome.nextPc;
    fetchStallUntil = now + p.redirectPenalty;
    lastFetchBlock = invalidAddr;
    // Repair the speculative global history to this branch's fetch-time
    // checkpoint, shifted by its now-known actual direction.
    if (e.hasPrediction) {
        bp->recoverHistory(isBranch(e.inst.op)
                               ? (e.histAtFetch << 1) |
                                     (e.outcome.taken ? 1 : 0)
                               : e.histAtFetch);
    }
    ++numRecoveries;
}

} // namespace direb
