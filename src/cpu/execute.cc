/**
 * @file
 * Back-end stages: writeback/wakeup (including the IRB reuse test, which
 * the paper folds into wakeup via the Rdy2L/Rdy2R flags), load/store
 * queue memory issue with store-to-load forwarding, out-of-order
 * select/issue against the FU pool, and branch-misprediction recovery.
 */

#include "common/logging.hh"
#include "cpu/ooo_core.hh"

namespace direb
{

void
OooCore::wakeDependents(int idx)
{
    RuuEntry &e = ruu[idx];
    for (const DepEdge &dep : e.dependents) {
        RuuEntry &c = ruu[dep.idx];
        if (c.seq != dep.seq)
            continue; // consumer was squashed; slot may be reused
        panic_if(c.srcPending == 0, "wakeup underflow (seq %llu)",
                 static_cast<unsigned long long>(c.seq));
        --c.srcPending;
    }
    e.dependents.clear();
}

void
OooCore::completeEntry(int idx)
{
    RuuEntry &e = ruu[idx];
    e.completed = true;

    // Fault site "fu": a transient strikes the unit producing this value.
    if (injector->site() == FaultSite::Fu && e.cls != OpClass::Nop &&
        !e.bypassedAlu && injector->strike()) {
        e.checkValue ^= RegVal(1) << injector->bitToFlip();
        e.faulted = true;
    }

    // In DIE-IRB only primary results are forwarded; duplicate completions
    // wake nobody (their dependents list is empty by construction).
    wakeDependents(idx);

    if (e.mispredicted && !e.wrongPath && !e.recoveryDone)
        handleMispredictRecovery(idx);
}

void
OooCore::tryReuseTest(RuuEntry &e)
{
    if (!e.isDup || !e.irbCandidate || e.reuseTested || e.issued ||
        e.completed || e.srcPending > 0 || now < e.irbReadyAt) {
        return;
    }
    e.reuseTested = true;
    // A corrupted forwarded operand (fault injection) cannot match the
    // stored operand values: the reuse test fails and the duplicate
    // executes with the corrupted input — exactly the §3.4 behaviour.
    const bool pass = !e.faulted && e.irb.op1 == e.outcome.op1Val &&
                      e.irb.op2 == e.outcome.op2Val;
    reuseBuffer->recordReuseTest(pass);
    if (!pass)
        return;

    // Reuse hit: pick up the stored result and skip the ALUs entirely —
    // no issue slot, no functional unit, no result forwarding.
    e.reuseHit = true;
    e.bypassedAlu = true;
    e.issued = true;
    e.completeAt = now + 1;
    e.checkValue = e.irb.result;
    ++numBypassedAlu;
}

void
OooCore::writebackStage()
{
    // Oldest-first scan; a recovery squash inside completeEntry() shrinks
    // ruuCount, which the loop condition re-checks every iteration.
    for (std::size_t off = 0; off < ruuCount; ++off) {
        const int idx = static_cast<int>((ruuHead + off) % p.ruuSize);
        RuuEntry &e = ruu[idx];
        if (e.completed)
            continue;
        // Duplicate loads: address generation may be done, but the
        // register copy only arrives when the single (primary) memory
        // access returns — the duplicate stream must not see a faster
        // memory than the primary one.
        if (e.isDup && isLoad(e.inst.op) && e.addrDone) {
            if (ruu[e.pairIdx].completed)
                completeEntry(idx);
            continue;
        }
        if (!e.issued || e.completeAt > now)
            continue;
        if (e.needsMemAccess && e.addrDone && !e.memStarted)
            continue; // load waiting for a memory port / disambiguation
        if (e.addrGenPending) {
            e.addrGenPending = false;
            e.addrDone = true;
            if (e.needsMemAccess)
                continue; // primary load: wait for the memory stage
            if (e.isDup && isLoad(e.inst.op)) {
                // Re-checked above next cycle (or now if the primary is
                // already done).
                if (ruu[e.pairIdx].completed)
                    completeEntry(idx);
                continue;
            }
            // Stores and address-only ops are done after address
            // generation (the access happens once, at primary commit).
        }
        completeEntry(idx);
    }
}

bool
OooCore::olderStoreBlocks(std::size_t load_offset, bool &forwarded) const
{
    const RuuEntry &load = entryAt(load_offset);
    forwarded = false;
    for (std::size_t off = 0; off < load_offset; ++off) {
        const RuuEntry &e = entryAt(off);
        if (!isStore(e.inst.op) || e.isDup)
            continue;
        if (!e.addrDone)
            return true; // conservative disambiguation
        // 8-byte-granular overlap check; latest matching store wins.
        if ((e.outcome.effAddr >> 3) == (load.outcome.effAddr >> 3))
            forwarded = true;
    }
    return false;
}

void
OooCore::memoryStage()
{
    for (std::size_t off = 0; off < ruuCount; ++off) {
        RuuEntry &e = entryAt(off);
        if (!e.needsMemAccess || !e.addrDone || e.memStarted || e.completed)
            continue;
        bool forwarded = false;
        if (olderStoreBlocks(off, forwarded)) {
            ++numLoadsBlocked;
            continue;
        }
        if (forwarded) {
            e.memStarted = true;
            e.completeAt = now + 1;
            ++numLoadsForwarded;
            continue;
        }
        if (!fus->tryMemPort(now))
            continue;
        e.memStarted = true;
        e.completeAt = now + memHier->dataAccess(e.outcome.effAddr, false);
    }
}

void
OooCore::issueStage()
{
    fus->beginCycle(now);

    // Reuse-test pre-pass: the paper performs the operand comparison as
    // part of wakeup, so reuse hits never compete for issue bandwidth.
    // The irb.consumes_issue_slot ablation instead treats the IRB like a
    // functional unit (pre-[12] designs): hits are tested in the issue
    // loop and burn an issue slot.
    if (reuseBuffer && !p.irbConsumesIssueSlot) {
        for (std::size_t off = 0; off < ruuCount; ++off)
            tryReuseTest(entryAt(off));
    }

    unsigned slots = p.issueWidth;
    for (std::size_t off = 0; off < ruuCount && slots > 0; ++off) {
        RuuEntry &e = entryAt(off);
        if (e.issued || e.completed || e.srcPending > 0)
            continue;
        // Rdy2L/Rdy2R semantics (paper Figure 5): a duplicate with a
        // pending reuse test is not schedulable until the test resolves.
        if (e.irbCandidate && !e.reuseTested) {
            if (!p.irbConsumesIssueSlot)
                continue;
            tryReuseTest(e);
            if (!e.reuseTested)
                continue; // IRB data still in flight
            if (e.reuseHit) {
                --slots; // ablation: the hit occupies issue bandwidth
                continue;
            }
        }
        Cycle lat = 1;
        if (!fus->tryIssue(e.cls, now, lat)) {
            ++numIssueStallFu;
            continue; // other ready instructions may still find a unit
        }
        e.issued = true;
        e.completeAt = now + lat;
        if (e.isMemOp)
            e.addrGenPending = true; // first completion = address ready
        --slots;
        ++numIssuedTotal;
    }
}

void
OooCore::handleMispredictRecovery(int idx)
{
    RuuEntry &e = ruu[idx];
    panic_if(!replayQueue.empty(), "recovery during fault replay");

    // Keep everything up to and including the branch's pair.
    const std::size_t own_off =
        (static_cast<std::size_t>(idx) + p.ruuSize - ruuHead) % p.ruuSize;
    std::size_t keep = own_off + 1;
    if (e.pairIdx >= 0) {
        const std::size_t pair_off =
            (static_cast<std::size_t>(e.pairIdx) + p.ruuSize - ruuHead) %
            p.ruuSize;
        keep = std::max(keep, pair_off + 1);
        ruu[e.pairIdx].recoveryDone = true;
    }
    e.recoveryDone = true;

    squashYoungerThan(keep);
    specCtx.exitSpec();
    ifq.clear();

    fetchPc = e.outcome.nextPc;
    fetchStallUntil = now + p.redirectPenalty;
    lastFetchBlock = invalidAddr;
    // Repair the speculative global history to this branch's fetch-time
    // checkpoint, shifted by its now-known actual direction.
    if (e.hasPrediction) {
        bp->recoverHistory(isBranch(e.inst.op)
                               ? (e.histAtFetch << 1) |
                                     (e.outcome.taken ? 1 : 0)
                               : e.histAtFetch);
    }
    ++numRecoveries;
}

} // namespace direb
