/**
 * @file
 * Front-end branch prediction: direction predictors (bimodal, gshare,
 * tournament), a branch target buffer, and a return address stack, wrapped
 * in a single BranchPredictor facade the fetch stage talks to.
 *
 * Per the paper's DIE model the PC and prediction structures live OUTSIDE
 * the Sphere of Replication (control-flow errors are caught when the
 * branch resolves), so a single predictor serves both streams.
 */

#ifndef DIREB_BRANCH_PREDICTOR_HH
#define DIREB_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/inst.hh"

namespace direb
{

/** 2-bit saturating counter. */
class SatCounter2
{
  public:
    explicit SatCounter2(std::uint8_t initial = 1) : value(initial) {}

    bool taken() const { return value >= 2; }

    void
    update(bool was_taken)
    {
        if (was_taken && value < 3)
            ++value;
        else if (!was_taken && value > 0)
            --value;
    }

    std::uint8_t raw() const { return value; }

  private:
    std::uint8_t value;
};

/** Direction predictor interface. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;
    /** Predict direction of the branch at @p pc. */
    virtual bool predict(Addr pc) const = 0;
    /** Train with the resolved direction (commit time, in order). */
    virtual void update(Addr pc, bool taken) = 0;
    /**
     * Shift the just-made prediction into the speculative history used
     * for indexing (fetch time). No-op for history-less predictors.
     */
    virtual void notifySpeculative(bool predicted_taken) {}
    /** Speculative-history snapshot taken at fetch (checkpointing). */
    virtual std::uint64_t snapshotHistory() const { return 0; }
    /** Squash repair: restore speculative history to a checkpoint. */
    virtual void restoreHistoryTo(std::uint64_t hist) {}
    /** Committed (retire-order) history. */
    virtual std::uint64_t committedHistorySnapshot() const { return 0; }
    /** Table size in entries (for reporting). */
    virtual std::size_t size() const = 0;
};

/** Classic per-PC 2-bit counter table. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries);
    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    std::size_t size() const override { return table.size(); }

  private:
    std::size_t index(Addr pc) const;
    std::vector<SatCounter2> table;
};

/**
 * Global-history-xor-PC predictor. Predictions index with a speculative
 * history (shifted at fetch by notifySpeculative) so in-flight branches
 * see consistent context; commits maintain the architectural history and
 * retrain; squashes resynchronise the speculative copy.
 */
class GsharePredictor : public DirectionPredictor
{
  public:
    GsharePredictor(std::size_t entries, unsigned history_bits);
    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    void notifySpeculative(bool predicted_taken) override;
    std::uint64_t snapshotHistory() const override { return specGhr; }
    void restoreHistoryTo(std::uint64_t hist) override { specGhr = hist; }
    std::uint64_t committedHistorySnapshot() const override { return ghr; }
    std::size_t size() const override { return table.size(); }

    std::uint64_t history() const { return ghr; }
    std::uint64_t specHistory() const { return specGhr; }

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;
    std::vector<SatCounter2> table;
    unsigned histBits;
    std::uint64_t ghr = 0;     //!< committed history
    std::uint64_t specGhr = 0; //!< fetch-time speculative history
};

/** McFarling-style tournament of bimodal + gshare with a chooser table. */
class TournamentPredictor : public DirectionPredictor
{
  public:
    TournamentPredictor(std::size_t bimodal_entries,
                        std::size_t gshare_entries, unsigned history_bits,
                        std::size_t chooser_entries);
    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;
    void
    notifySpeculative(bool predicted_taken) override
    {
        gshare.notifySpeculative(predicted_taken);
    }
    std::uint64_t
    snapshotHistory() const override
    {
        return gshare.snapshotHistory();
    }
    void
    restoreHistoryTo(std::uint64_t hist) override
    {
        gshare.restoreHistoryTo(hist);
    }
    std::uint64_t
    committedHistorySnapshot() const override
    {
        return gshare.committedHistorySnapshot();
    }
    std::size_t size() const override;

  private:
    BimodalPredictor bimodal;
    GsharePredictor gshare;
    std::vector<SatCounter2> chooser; //!< taken() == trust gshare
};

/** Direct-mapped branch target buffer with tags. */
class Btb
{
  public:
    Btb(std::size_t entries, unsigned tag_bits = 16);

    /** Look up a target for @p pc; returns false on miss. */
    bool lookup(Addr pc, Addr &target) const;

    /** Install / refresh the mapping pc -> target. */
    void update(Addr pc, Addr target);

    std::size_t size() const { return targets.size(); }

  private:
    std::size_t index(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;

    std::vector<Addr> targets;
    std::vector<std::uint32_t> tags;
    std::vector<bool> valid;
    unsigned tagBits;
};

/** Return address stack (with wrap-around overwrite like real hardware). */
class Ras
{
  public:
    explicit Ras(std::size_t entries);

    void push(Addr return_pc);
    /** Pop the predicted return address; 0 if empty. */
    Addr pop();
    Addr top() const;
    bool empty() const { return count == 0; }
    std::size_t capacity() const { return stack.size(); }

  private:
    std::vector<Addr> stack;
    std::size_t tos = 0;
    std::size_t count = 0;
};

/** A complete front-end prediction for one instruction. */
struct BranchPrediction
{
    bool taken = false;     //!< predicted direction (always true for jumps)
    Addr target = 0;        //!< predicted target (valid if taken)
    bool fromRas = false;   //!< target came from the RAS
    bool btbMiss = false;   //!< taken prediction without a target
    /** Speculative-history checkpoint at fetch (for squash repair). */
    std::uint64_t histAtFetch = 0;
};

/**
 * Facade combining direction predictor + BTB + RAS.
 *
 * Config keys (defaults): bp.kind=tournament|gshare|bimodal,
 * bp.bimodal_entries=2048, bp.gshare_entries=4096, bp.history_bits=12,
 * bp.chooser_entries=4096, bp.btb_entries=2048, bp.ras_entries=16.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const Config &config);

    /**
     * Predict the outcome of @p inst at @p pc.
     * JAL/JALR with rd==ra push the RAS; JALR with rs1==ra pops it.
     */
    BranchPrediction predict(Addr pc, const Inst &inst);

    /** Train with the architecturally resolved outcome. */
    void update(Addr pc, const Inst &inst, bool taken, Addr target);

    /** Pipeline squash: restore the speculative history checkpoint. */
    void recoverHistory(std::uint64_t hist);

    /** Committed global history (rewind fallback). */
    std::uint64_t committedHistory() const;

    stats::Group &statGroup() { return group; }

    /** Exposed counters for characterisation tables. @{ */
    std::uint64_t lookups() const { return numLookups.value(); }
    std::uint64_t condLookups() const { return numCondLookups.value(); }
    /** @} */

  private:
    std::unique_ptr<DirectionPredictor> dir;
    Btb btb;
    Ras ras;

    stats::Group group{"bp"};
    stats::Scalar numLookups;
    stats::Scalar numCondLookups;
    stats::Scalar numBtbHits;
    stats::Scalar numRasPops;
};

} // namespace direb

#endif // DIREB_BRANCH_PREDICTOR_HH
