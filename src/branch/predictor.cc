#include "branch/predictor.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "vm/program.hh"

namespace direb
{

// ---------------------------------------------------------------------------
// Bimodal
// ---------------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table(entries, SatCounter2(1))
{
    fatal_if(!isPowerOf2(entries), "bimodal entries must be a power of two");
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table[index(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    table[index(pc)].update(taken);
}

// ---------------------------------------------------------------------------
// Gshare
// ---------------------------------------------------------------------------

GsharePredictor::GsharePredictor(std::size_t entries, unsigned history_bits)
    : table(entries, SatCounter2(1)), histBits(history_bits)
{
    fatal_if(!isPowerOf2(entries), "gshare entries must be a power of two");
    fatal_if(history_bits == 0 || history_bits > 32,
             "gshare history bits out of range");
}

std::size_t
GsharePredictor::index(Addr pc, std::uint64_t hist) const
{
    hist &= (std::uint64_t(1) << histBits) - 1;
    return ((pc >> 2) ^ hist) & (table.size() - 1);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table[index(pc, specGhr)].taken();
}

void
GsharePredictor::notifySpeculative(bool predicted_taken)
{
    specGhr = (specGhr << 1) | (predicted_taken ? 1 : 0);
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    // Train with the committed history — on the correct path with
    // correct predictions this matches the fetch-time index.
    table[index(pc, ghr)].update(taken);
    ghr = (ghr << 1) | (taken ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Tournament
// ---------------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(std::size_t bimodal_entries,
                                         std::size_t gshare_entries,
                                         unsigned history_bits,
                                         std::size_t chooser_entries)
    : bimodal(bimodal_entries), gshare(gshare_entries, history_bits),
      chooser(chooser_entries, SatCounter2(1))
{
    fatal_if(!isPowerOf2(chooser_entries),
             "chooser entries must be a power of two");
}

bool
TournamentPredictor::predict(Addr pc) const
{
    const auto &c = chooser[(pc >> 2) & (chooser.size() - 1)];
    return c.taken() ? gshare.predict(pc) : bimodal.predict(pc);
}

void
TournamentPredictor::update(Addr pc, bool taken)
{
    const bool g = gshare.predict(pc);
    const bool b = bimodal.predict(pc);
    auto &c = chooser[(pc >> 2) & (chooser.size() - 1)];
    if (g != b)
        c.update(g == taken); // reward the component that was right
    gshare.update(pc, taken);
    bimodal.update(pc, taken);
}

std::size_t
TournamentPredictor::size() const
{
    return bimodal.size() + gshare.size() + chooser.size();
}

// ---------------------------------------------------------------------------
// BTB
// ---------------------------------------------------------------------------

Btb::Btb(std::size_t entries, unsigned tag_bits)
    : targets(entries, 0), tags(entries, 0), valid(entries, false),
      tagBits(tag_bits)
{
    fatal_if(!isPowerOf2(entries), "BTB entries must be a power of two");
}

std::size_t
Btb::index(Addr pc) const
{
    return (pc >> 2) & (targets.size() - 1);
}

std::uint32_t
Btb::tagOf(Addr pc) const
{
    const unsigned shift = 2 + floorLog2(targets.size());
    return static_cast<std::uint32_t>(
        bits(pc, shift + tagBits - 1, shift));
}

bool
Btb::lookup(Addr pc, Addr &target) const
{
    const std::size_t i = index(pc);
    if (!valid[i] || tags[i] != tagOf(pc))
        return false;
    target = targets[i];
    return true;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::size_t i = index(pc);
    valid[i] = true;
    tags[i] = tagOf(pc);
    targets[i] = target;
}

// ---------------------------------------------------------------------------
// RAS
// ---------------------------------------------------------------------------

Ras::Ras(std::size_t entries) : stack(entries, 0)
{
    fatal_if(entries == 0, "RAS needs at least one entry");
}

void
Ras::push(Addr return_pc)
{
    tos = (tos + 1) % stack.size();
    stack[tos] = return_pc;
    if (count < stack.size())
        ++count;
}

Addr
Ras::pop()
{
    if (count == 0)
        return 0;
    const Addr a = stack[tos];
    tos = (tos + stack.size() - 1) % stack.size();
    --count;
    return a;
}

Addr
Ras::top() const
{
    return count == 0 ? 0 : stack[tos];
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

BranchPredictor::BranchPredictor(const Config &config)
    : btb(config.getUint("bp.btb_entries", 2048,
                         "branch target buffer entries")),
      ras(config.getUint("bp.ras_entries", 16,
                         "return address stack depth"))
{
    const std::string kind = config.getString(
        "bp.kind", "tournament",
        "direction predictor: bimodal, gshare or tournament");
    const std::size_t bim = config.getUint(
        "bp.bimodal_entries", 2048, "bimodal predictor table entries");
    const std::size_t gsh = config.getUint(
        "bp.gshare_entries", 4096, "gshare predictor table entries");
    const unsigned hist = static_cast<unsigned>(config.getUint(
        "bp.history_bits", 12, "global branch history length in bits"));
    const std::size_t cho = config.getUint(
        "bp.chooser_entries", 4096, "tournament chooser table entries");

    if (kind == "bimodal")
        dir = std::make_unique<BimodalPredictor>(bim);
    else if (kind == "gshare")
        dir = std::make_unique<GsharePredictor>(gsh, hist);
    else if (kind == "tournament")
        dir = std::make_unique<TournamentPredictor>(bim, gsh, hist, cho);
    else
        fatal("unknown predictor kind '%s'", kind.c_str());

    group.addScalar(&numLookups, "lookups", "prediction requests");
    group.addScalar(&numCondLookups, "cond_lookups",
                    "conditional branch predictions");
    group.addScalar(&numBtbHits, "btb_hits", "BTB hits on taken predictions");
    group.addScalar(&numRasPops, "ras_pops", "returns predicted via RAS");
}

BranchPrediction
BranchPredictor::predict(Addr pc, const Inst &inst)
{
    ++numLookups;
    BranchPrediction p;
    p.histAtFetch = dir->snapshotHistory();

    if (isBranch(inst.op)) {
        ++numCondLookups;
        p.taken = dir->predict(pc);
        if (p.taken) {
            // Direct target is encoded in the instruction; a real front end
            // gets it from the BTB before decode, so model BTB coverage.
            Addr t;
            if (btb.lookup(pc, t)) {
                ++numBtbHits;
                p.target = t;
            } else {
                p.btbMiss = true;
                p.taken = false; // can't redirect without a target
            }
        }
        dir->notifySpeculative(p.taken);
        return p;
    }

    if (inst.op == Opcode::JAL) {
        p.taken = true;
        p.target = pc + static_cast<Addr>(inst.imm) * 4;
        if (inst.rd == regRa)
            ras.push(pc + 4);
        return p;
    }

    if (inst.op == Opcode::JALR) {
        p.taken = true;
        if (inst.rs1 == regRa && inst.rd == 0 && !ras.empty()) {
            p.target = ras.pop();
            p.fromRas = true;
            ++numRasPops;
        } else {
            Addr t;
            if (btb.lookup(pc, t)) {
                ++numBtbHits;
                p.target = t;
            } else {
                p.btbMiss = true;
                p.target = pc + 4; // fall through until resolved
            }
            if (inst.rd == regRa)
                ras.push(pc + 4);
        }
        return p;
    }

    return p; // not a control instruction: fall through
}

void
BranchPredictor::recoverHistory(std::uint64_t hist)
{
    dir->restoreHistoryTo(hist);
}

std::uint64_t
BranchPredictor::committedHistory() const
{
    return dir->committedHistorySnapshot();
}

void
BranchPredictor::update(Addr pc, const Inst &inst, bool taken, Addr target)
{
    if (isBranch(inst.op)) {
        dir->update(pc, taken);
        if (taken)
            btb.update(pc, target);
    } else if (inst.op == Opcode::JALR) {
        btb.update(pc, target);
    }
}

} // namespace direb
