/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  — an internal simulator bug; aborts.
 * fatal()  — a user error (bad configuration, bad program); exits cleanly.
 * warn()   — something questionable happened but simulation continues.
 * inform() — plain status output.
 */

#ifndef DIREB_COMMON_LOGGING_HH
#define DIREB_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace direb
{

/** Exception thrown by fatal() so that tests can intercept user errors. */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : message(std::move(msg)) {}
    const char *what() const noexcept override { return message.c_str(); }

  private:
    std::string message;
};

/** Abort with a message: only for genuine simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Raise a FatalError: for user mistakes (bad config, malformed program). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning to stderr. */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr. */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benches to keep tables clean). */
void setQuiet(bool quiet);
bool quiet();

} // namespace direb

#define panic(...) ::direb::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::direb::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::direb::warnImpl(__VA_ARGS__)
#define inform(...) ::direb::informImpl(__VA_ARGS__)

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** fatal() unless @p cond holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // DIREB_COMMON_LOGGING_HH
