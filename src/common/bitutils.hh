/**
 * @file
 * Small bit-manipulation helpers used by the ISA, caches and the IRB.
 */

#ifndef DIREB_COMMON_BITUTILS_HH
#define DIREB_COMMON_BITUTILS_HH

#include <cassert>
#include <cstdint>

namespace direb
{

/** Return true if @p n is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(@p n); @p n must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    assert(n != 0);
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2(@p n); @p n must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** Extract bits [hi:lo] (inclusive) of @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 64);
    const std::uint64_t width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << width) - 1);
    return (val >> lo) & mask;
}

/** Insert @p field into bits [hi:lo] of @p val and return the result. */
constexpr std::uint64_t
insertBits(std::uint64_t val, unsigned hi, unsigned lo, std::uint64_t field)
{
    assert(hi >= lo && hi < 64);
    const std::uint64_t width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t(0) : ((std::uint64_t(1) << width) - 1);
    return (val & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p val to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t val, unsigned width)
{
    assert(width > 0 && width <= 64);
    if (width == 64)
        return static_cast<std::int64_t>(val);
    const std::uint64_t sign = std::uint64_t(1) << (width - 1);
    const std::uint64_t mask = (std::uint64_t(1) << width) - 1;
    val &= mask;
    return static_cast<std::int64_t>((val ^ sign) - sign);
}

/** True if @p val fits in a signed field of @p width bits. */
constexpr bool
fitsSigned(std::int64_t val, unsigned width)
{
    assert(width > 0 && width <= 64);
    if (width == 64)
        return true;
    const std::int64_t lo = -(std::int64_t(1) << (width - 1));
    const std::int64_t hi = (std::int64_t(1) << (width - 1)) - 1;
    return val >= lo && val <= hi;
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t val)
{
    unsigned c = 0;
    while (val) {
        val &= val - 1;
        ++c;
    }
    return c;
}

} // namespace direb

#endif // DIREB_COMMON_BITUTILS_HH
