/**
 * @file
 * Deterministic PRNG (xorshift128+) so that every simulation run and every
 * synthetic workload is exactly reproducible from its seed.
 */

#ifndef DIREB_COMMON_RANDOM_HH
#define DIREB_COMMON_RANDOM_HH

#include <cassert>
#include <cstdint>

namespace direb
{

/**
 * Small, fast, seedable PRNG. Not cryptographic; statistically fine for
 * workload generation and fault injection.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to avoid weak all-zero-ish states.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        for (auto *s : {&s0, &s1}) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            *s = x ^ (x >> 31);
        }
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Uniform double in [0,1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
};

} // namespace direb

#endif // DIREB_COMMON_RANDOM_HH
