#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace direb
{

namespace
{

// Atomic so sweep worker threads can consult it while another thread
// toggles it (benches call setQuiet() once before spawning workers).
std::atomic<bool> quietFlag{false};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(n > 0 ? n + 1 : 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data());
}

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace direb
