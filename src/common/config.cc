#include "common/config.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace direb
{

namespace
{

/**
 * Process-wide registry of every key any getter has seen. Function-local
 * static so registration from component constructors running before main
 * is safe; mutex-guarded because sweeps construct cores concurrently.
 */
struct KeyRegistry
{
    std::mutex mutex;
    std::map<std::string, ConfigKeyInfo> keys;
};

KeyRegistry &
keyRegistry()
{
    static KeyRegistry r;
    return r;
}

} // namespace

void
Config::registerKey(const std::string &key, const char *type,
                    std::string def, const char *desc)
{
    KeyRegistry &r = keyRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto [it, inserted] = r.keys.try_emplace(key);
    ConfigKeyInfo &info = it->second;
    if (inserted) {
        info.key = key;
        info.type = type;
        info.def = std::move(def);
    }
    // First documented call site wins; undescribed reads never erase it.
    if (info.desc.empty() && desc != nullptr)
        info.desc = desc;
}

std::vector<ConfigKeyInfo>
Config::registeredKeys()
{
    KeyRegistry &r = keyRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<ConfigKeyInfo> out;
    out.reserve(r.keys.size());
    for (const auto &[k, info] : r.keys)
        out.push_back(info);
    return out;
}

Config::Config(const Config &other)
{
    std::lock_guard<std::mutex> lock(other.consumedMutex);
    values = other.values;
    consumed = other.consumed;
}

Config &
Config::operator=(const Config &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(consumedMutex, other.consumedMutex);
    values = other.values;
    consumed = other.consumed;
    return *this;
}

void
Config::noteConsumed(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(consumedMutex);
    consumed.insert(key);
}

void
Config::set(const std::string &key, const std::string &value)
{
    fatal_if(key.empty(), "config: empty key");
    values[key] = value;
}

void
Config::setInt(const std::string &key, std::int64_t value)
{
    set(key, std::to_string(value));
}

void
Config::setDouble(const std::string &key, double value)
{
    set(key, std::to_string(value));
}

void
Config::setBool(const std::string &key, bool value)
{
    set(key, value ? "true" : "false");
}

void
Config::parse(const std::string &assignment)
{
    const auto eq = assignment.find('=');
    fatal_if(eq == std::string::npos || eq == 0,
             "config: expected key=value, got '%s'", assignment.c_str());
    set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

void
Config::parseAll(const std::vector<std::string> &assignments)
{
    for (const auto &a : assignments)
        parse(a);
}

std::int64_t
Config::intValue(const std::string &key, std::int64_t def) const
{
    noteConsumed(key);
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config: key '%s' has non-integer value '%s'", key.c_str(),
             it->second.c_str());
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def,
               const char *desc) const
{
    registerKey(key, "int", std::to_string(def), desc);
    return intValue(key, def);
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def,
                const char *desc) const
{
    registerKey(key, "uint", std::to_string(def), desc);
    const std::int64_t v = intValue(key, static_cast<std::int64_t>(def));
    fatal_if(v < 0, "config: key '%s' must be non-negative", key.c_str());
    return static_cast<std::uint64_t>(v);
}

double
Config::getDouble(const std::string &key, double def,
                  const char *desc) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", def);
    registerKey(key, "double", buf, desc);
    noteConsumed(key);
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config: key '%s' has non-numeric value '%s'", key.c_str(),
             it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def, const char *desc) const
{
    registerKey(key, "bool", def ? "true" : "false", desc);
    noteConsumed(key);
    const auto it = values.find(key);
    if (it == values.end())
        return def;
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config: key '%s' has non-boolean value '%s'", key.c_str(),
          s.c_str());
}

std::string
Config::getString(const std::string &key, const std::string &def,
                  const char *desc) const
{
    registerKey(key, "string", def, desc);
    noteConsumed(key);
    const auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::lock_guard<std::mutex> lock(consumedMutex);
    std::vector<std::string> unused;
    for (const auto &[k, v] : values) {
        if (!consumed.count(k))
            unused.push_back(k);
    }
    return unused;
}

void
Config::checkUnused() const
{
    const auto unused = unusedKeys();
    if (!unused.empty()) {
        std::string all;
        for (const auto &k : unused)
            all += (all.empty() ? "" : ", ") + k;
        fatal("config: unknown key(s): %s", all.c_str());
    }
}

std::vector<std::pair<std::string, std::string>>
Config::entries() const
{
    return {values.begin(), values.end()};
}

} // namespace direb
