/**
 * @file
 * Minimal gem5-flavoured statistics package.
 *
 * Components own a StatGroup and register named statistics in it. A Scalar
 * is a counter; an Average tracks mean of samples; a Distribution buckets
 * samples; a Formula is a named ratio of two scalars evaluated at dump time.
 * StatGroup::dump() renders everything as "name value # description" lines,
 * and snapshot() exports name->double for programmatic use by benches.
 */

#ifndef DIREB_COMMON_STATS_HH
#define DIREB_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace direb
{

namespace stats
{

/** Monotonic counter. */
class Scalar
{
  public:
    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(std::uint64_t n) { count += n; return *this; }
    void reset() { count = 0; }
    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        total += v;
        ++samples;
    }

    void reset() { total = 0.0; samples = 0; }
    std::uint64_t count() const { return samples; }
    double mean() const { return samples ? total / samples : 0.0; }

  private:
    double total = 0.0;
    std::uint64_t samples = 0;
};

/** Fixed-bucket histogram over [min, max] with uniform bucket width. */
class Distribution
{
  public:
    Distribution() = default;

    /** Configure buckets; must be called before sampling. */
    void init(double min, double max, unsigned buckets);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return samples; }
    double mean() const { return samples ? total / samples : 0.0; }
    std::uint64_t underflows() const { return underflow; }
    std::uint64_t overflows() const { return overflow; }
    const std::vector<std::uint64_t> &bucketCounts() const { return counts; }
    double bucketLow(unsigned i) const { return lo + i * width; }
    double bucketHigh(unsigned i) const { return lo + (i + 1) * width; }

  private:
    double lo = 0.0;
    double hi = 1.0;
    double width = 1.0;
    double total = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::vector<std::uint64_t> counts;
};

class Group;

/**
 * Deferred ratio of two scalars (e.g. IPC = insts / cycles), evaluated at
 * dump/snapshot time so it always reflects the final counts.
 */
class Formula
{
  public:
    Formula() = default;
    Formula(const Scalar *num, const Scalar *den) : numer(num), denom(den) {}

    double
    value() const
    {
        if (!numer || !denom || denom->value() == 0)
            return 0.0;
        return static_cast<double>(numer->value()) /
               static_cast<double>(denom->value());
    }

  private:
    const Scalar *numer = nullptr;
    const Scalar *denom = nullptr;
};

/**
 * Named collection of statistics. Groups may nest via a name prefix.
 */
class Group
{
  public:
    explicit Group(std::string group_name = "") : name(std::move(group_name))
    {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Register a statistic; the group does NOT take ownership. */
    void addScalar(Scalar *s, const std::string &stat_name,
                   const std::string &desc);
    void addAverage(Average *a, const std::string &stat_name,
                    const std::string &desc);
    void addDistribution(Distribution *d, const std::string &stat_name,
                         const std::string &desc);
    void addFormula(Formula *f, const std::string &stat_name,
                    const std::string &desc);

    /** Attach a child group whose stats appear prefixed under this one. */
    void addChild(Group *child);

    /**
     * Detach a previously attached child group (panics if absent).
     * Needed by resettable owners that destroy and re-create components:
     * the stale child pointer must leave before the replacement re-attaches
     * in the original position-preserving order.
     */
    void removeChild(Group *child);

    /** Reset every registered statistic (recursively). */
    void reset();

    /** Render all stats as text ("name value # desc"). */
    std::string dump() const;

    /** Flatten everything to name -> value (means for avg/dist). */
    std::map<std::string, double> snapshot() const;

    const std::string &groupName() const { return name; }

    /**
     * Rebrand the group's name prefix. Used by owners that instantiate
     * one component template several times (e.g. a Chip renaming each
     * core's "core" group to "core0", "core1", ...) so snapshots and
     * text reports stay unambiguous. Call before the first dump().
     */
    void setName(std::string new_name) { name = std::move(new_name); }

  private:
    template <typename T>
    struct Named
    {
        T *stat;
        std::string name;
        std::string desc;
    };

    void collect(const std::string &prefix,
                 std::map<std::string, double> &out) const;
    void render(const std::string &prefix, std::string &out) const;

    std::string name;
    std::vector<Named<Scalar>> scalars;
    std::vector<Named<Average>> averages;
    std::vector<Named<Distribution>> distributions;
    std::vector<Named<Formula>> formulas;
    std::vector<Group *> children;
};

} // namespace stats

} // namespace direb

#endif // DIREB_COMMON_STATS_HH
