/**
 * @file
 * Core scalar typedefs shared by every module of the simulator.
 */

#ifndef DIREB_COMMON_TYPES_HH
#define DIREB_COMMON_TYPES_HH

#include <cstdint>

namespace direb
{

/** Simulated memory address. */
using Addr = std::uint64_t;

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Architectural register value (int registers; FP stored as bit pattern). */
using RegVal = std::uint64_t;

/** Dynamic instruction sequence number (program order, 1-based). */
using InstSeq = std::uint64_t;

/** Sentinel for "no sequence number". */
constexpr InstSeq invalidSeq = 0;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~Addr(0);

} // namespace direb

#endif // DIREB_COMMON_TYPES_HH
