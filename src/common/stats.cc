#include "common/stats.hh"

#include <cstdio>

#include "common/logging.hh"

namespace direb
{

namespace stats
{

void
Distribution::init(double min, double max, unsigned buckets)
{
    panic_if(buckets == 0, "distribution needs at least one bucket");
    panic_if(max <= min, "distribution range must be non-empty");
    lo = min;
    hi = max;
    width = (max - min) / buckets;
    counts.assign(buckets, 0);
}

void
Distribution::sample(double v)
{
    panic_if(counts.empty(), "distribution sampled before init()");
    total += v;
    ++samples;
    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        ++counts[idx];
    }
}

void
Distribution::reset()
{
    total = 0.0;
    samples = underflow = overflow = 0;
    counts.assign(counts.size(), 0);
}

void
Group::addScalar(Scalar *s, const std::string &stat_name,
                 const std::string &desc)
{
    scalars.push_back({s, stat_name, desc});
}

void
Group::addAverage(Average *a, const std::string &stat_name,
                  const std::string &desc)
{
    averages.push_back({a, stat_name, desc});
}

void
Group::addDistribution(Distribution *d, const std::string &stat_name,
                       const std::string &desc)
{
    distributions.push_back({d, stat_name, desc});
}

void
Group::addFormula(Formula *f, const std::string &stat_name,
                  const std::string &desc)
{
    formulas.push_back({f, stat_name, desc});
}

void
Group::addChild(Group *child)
{
    panic_if(child == nullptr, "null child stat group");
    children.push_back(child);
}

void
Group::removeChild(Group *child)
{
    panic_if(child == nullptr, "null child stat group");
    for (auto it = children.begin(); it != children.end(); ++it) {
        if (*it == child) {
            children.erase(it);
            return;
        }
    }
    panic("removeChild: group '%s' is not a child of '%s'",
          child->groupName().c_str(), name.c_str());
}

void
Group::reset()
{
    for (auto &s : scalars)
        s.stat->reset();
    for (auto &a : averages)
        a.stat->reset();
    for (auto &d : distributions)
        d.stat->reset();
    for (auto *c : children)
        c->reset();
}

void
Group::collect(const std::string &prefix,
               std::map<std::string, double> &out) const
{
    const std::string base =
        name.empty() ? prefix : (prefix.empty() ? name : prefix + "." + name);
    const auto full = [&](const std::string &n) {
        return base.empty() ? n : base + "." + n;
    };
    for (const auto &s : scalars)
        out[full(s.name)] = static_cast<double>(s.stat->value());
    for (const auto &a : averages)
        out[full(a.name)] = a.stat->mean();
    for (const auto &d : distributions) {
        // The bare name stays the mean (the historical snapshot value);
        // the sub-keys carry the full shape so distributions survive into
        // BENCH_*.json instead of being text-dump-only.
        const std::string base_name = full(d.name);
        out[base_name] = d.stat->mean();
        out[base_name + ".mean"] = d.stat->mean();
        out[base_name + ".count"] = static_cast<double>(d.stat->count());
        out[base_name + ".underflows"] =
            static_cast<double>(d.stat->underflows());
        out[base_name + ".overflows"] =
            static_cast<double>(d.stat->overflows());
        const auto &c = d.stat->bucketCounts();
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (c[i] == 0)
                continue;
            char lo[32];
            std::snprintf(lo, sizeof(lo), "%g", d.stat->bucketLow(i));
            out[base_name + ".bucket" + lo] = static_cast<double>(c[i]);
        }
    }
    for (const auto &f : formulas)
        out[full(f.name)] = f.stat->value();
    for (const auto *c : children)
        c->collect(base, out);
}

std::map<std::string, double>
Group::snapshot() const
{
    std::map<std::string, double> out;
    collect("", out);
    return out;
}

void
Group::render(const std::string &prefix, std::string &out) const
{
    const std::string base =
        name.empty() ? prefix : (prefix.empty() ? name : prefix + "." + name);
    const auto full = [&](const std::string &n) {
        return base.empty() ? n : base + "." + n;
    };
    char line[512];
    for (const auto &s : scalars) {
        std::snprintf(line, sizeof(line), "%-44s %16llu  # %s\n",
                      full(s.name).c_str(),
                      static_cast<unsigned long long>(s.stat->value()),
                      s.desc.c_str());
        out += line;
    }
    for (const auto &a : averages) {
        std::snprintf(line, sizeof(line), "%-44s %16.4f  # %s\n",
                      full(a.name).c_str(), a.stat->mean(), a.desc.c_str());
        out += line;
    }
    for (const auto &d : distributions) {
        std::snprintf(line, sizeof(line), "%-44s %16.4f  # %s (mean)\n",
                      full(d.name).c_str(), d.stat->mean(), d.desc.c_str());
        out += line;
        const auto &c = d.stat->bucketCounts();
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (c[i] == 0)
                continue;
            std::snprintf(line, sizeof(line),
                          "%-44s %16llu  #   [%g,%g)\n",
                          (full(d.name) + "." + std::to_string(i)).c_str(),
                          static_cast<unsigned long long>(c[i]),
                          d.stat->bucketLow(i), d.stat->bucketHigh(i));
            out += line;
        }
    }
    for (const auto &f : formulas) {
        std::snprintf(line, sizeof(line), "%-44s %16.4f  # %s\n",
                      full(f.name).c_str(), f.stat->value(), f.desc.c_str());
        out += line;
    }
    for (const auto *c : children)
        c->render(base, out);
}

std::string
Group::dump() const
{
    std::string out;
    render("", out);
    return out;
}

} // namespace stats

} // namespace direb
