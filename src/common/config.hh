/**
 * @file
 * Typed key/value configuration store.
 *
 * Every simulator component declares its parameters against a Config with a
 * default; benches and tests override parameters with "key=value" strings.
 * Unknown keys are rejected at get() time only if never declared, and a
 * consumed-key audit (checkUnused) catches typos in overrides.
 */

#ifndef DIREB_COMMON_CONFIG_HH
#define DIREB_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace direb
{

/**
 * String-backed typed configuration. Values are stored as strings and
 * converted on access; the first get() with a default registers the key.
 *
 * Thread safety: the typed getters, unusedKeys() and checkUnused() may be
 * called concurrently on one shared Config (the consumed-key audit is
 * mutex-guarded). The setters and parse() are setup-phase only and must
 * not race with any other access.
 */
class Config
{
  public:
    Config() = default;
    Config(const Config &other);
    Config &operator=(const Config &other);

    /** Set a raw override, e.g. set("ruu.size", "256"). */
    void set(const std::string &key, const std::string &value);

    /** Convenience setters. */
    void setInt(const std::string &key, std::int64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** Parse a "key=value" override string; fatal() on bad syntax. */
    void parse(const std::string &assignment);

    /** Parse many "key=value" strings (e.g. argv tail). */
    void parseAll(const std::vector<std::string> &assignments);

    /** Typed getters: return the override if present, else @p def. */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** True if the key has an explicit override. */
    bool has(const std::string &key) const;

    /** Keys that were set but never read — typically typos. */
    std::vector<std::string> unusedKeys() const;

    /** fatal() if any override key was never consumed by a component. */
    void checkUnused() const;

    /** All explicitly set key/value pairs, sorted by key. */
    std::vector<std::pair<std::string, std::string>> entries() const;

  private:
    void noteConsumed(const std::string &key) const;

    std::map<std::string, std::string> values;
    /** Keys read so far; guarded by consumedMutex (getters are const). */
    mutable std::set<std::string> consumed;
    mutable std::mutex consumedMutex;
};

} // namespace direb

#endif // DIREB_COMMON_CONFIG_HH
