/**
 * @file
 * Typed key/value configuration store.
 *
 * Every simulator component declares its parameters against a Config with a
 * default; benches and tests override parameters with "key=value" strings.
 * Unknown keys are rejected at get() time only if never declared, and a
 * consumed-key audit (checkUnused) catches typos in overrides.
 */

#ifndef DIREB_COMMON_CONFIG_HH
#define DIREB_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace direb
{

/**
 * One recognized configuration key: its name, value type, default (as the
 * string a user would write) and a one-line description. Collected in a
 * process-wide registry the first time any Config getter reads the key, so
 * tooling (dieirb-sim --list-config) can enumerate every key the code
 * actually recognizes without a hand-maintained list.
 */
struct ConfigKeyInfo
{
    std::string key;
    std::string type; //!< "int", "uint", "double", "bool" or "string"
    std::string def;  //!< default value, rendered as an override string
    std::string desc; //!< one-line description (may be empty)
};

/**
 * String-backed typed configuration. Values are stored as strings and
 * converted on access; the first get() with a default registers the key.
 *
 * Thread safety: the typed getters, unusedKeys() and checkUnused() may be
 * called concurrently on one shared Config (the consumed-key audit is
 * mutex-guarded). The setters and parse() are setup-phase only and must
 * not race with any other access.
 */
class Config
{
  public:
    Config() = default;
    Config(const Config &other);
    Config &operator=(const Config &other);

    /** Set a raw override, e.g. set("ruu.size", "256"). */
    void set(const std::string &key, const std::string &value);

    /** Convenience setters. */
    void setInt(const std::string &key, std::int64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** Parse a "key=value" override string; fatal() on bad syntax. */
    void parse(const std::string &assignment);

    /** Parse many "key=value" strings (e.g. argv tail). */
    void parseAll(const std::vector<std::string> &assignments);

    /**
     * Typed getters: return the override if present, else @p def. The
     * optional @p desc is recorded in the process-wide key registry (first
     * non-null wins) and is purely documentation — it never affects the
     * returned value.
     * @{
     */
    std::int64_t getInt(const std::string &key, std::int64_t def,
                        const char *desc = nullptr) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def,
                          const char *desc = nullptr) const;
    double getDouble(const std::string &key, double def,
                     const char *desc = nullptr) const;
    bool getBool(const std::string &key, bool def,
                 const char *desc = nullptr) const;
    std::string getString(const std::string &key, const std::string &def,
                          const char *desc = nullptr) const;
    /** @} */

    /**
     * Every key any getter has seen so far in this process, sorted by
     * name. Construct the components of interest first (e.g. run a tiny
     * simulation) so their getters populate the registry.
     */
    static std::vector<ConfigKeyInfo> registeredKeys();

    /** True if the key has an explicit override. */
    bool has(const std::string &key) const;

    /** Keys that were set but never read — typically typos. */
    std::vector<std::string> unusedKeys() const;

    /** fatal() if any override key was never consumed by a component. */
    void checkUnused() const;

    /** All explicitly set key/value pairs, sorted by key. */
    std::vector<std::pair<std::string, std::string>> entries() const;

  private:
    void noteConsumed(const std::string &key) const;
    static void registerKey(const std::string &key, const char *type,
                            std::string def, const char *desc);
    std::int64_t intValue(const std::string &key, std::int64_t def) const;

    std::map<std::string, std::string> values;
    /** Keys read so far; guarded by consumedMutex (getters are const). */
    mutable std::set<std::string> consumed;
    mutable std::mutex consumedMutex;
};

} // namespace direb

#endif // DIREB_COMMON_CONFIG_HH
