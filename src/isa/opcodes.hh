/**
 * @file
 * Opcode definitions and static metadata for the mini-ISA.
 *
 * The ISA is a 64-bit RISC with 32 integer registers (x0 hard-wired to
 * zero) and 32 floating-point registers, fixed 32-bit instruction words,
 * and SimpleScalar-style operation classes so the out-of-order core can
 * map every instruction to a functional-unit type and latency.
 */

#ifndef DIREB_ISA_OPCODES_HH
#define DIREB_ISA_OPCODES_HH

#include <cstdint>
#include <string>

namespace direb
{

/**
 * Instruction encoding formats.
 *
 *  R: op[31:24] rd[23:19] rs1[18:14] rs2[13:9]     — register-register
 *  I: op[31:24] rd[23:19] rs1[18:14] imm[13:0]     — register-immediate
 *  U: op[31:24] rd[23:19] imm[18:0]                — upper immediate
 *  B: op[31:24] rs1[23:19] rs2[18:14] off[13:0]    — conditional branch
 *  J: op[31:24] rd[23:19] off[18:0]                — jump-and-link
 *  S: op[31:24] rs2[23:19] rs1[18:14] imm[13:0]    — store (rs2 = data)
 *  N: op[31:24]                                    — no operands
 */
enum class Format : std::uint8_t { R, I, U, B, J, S, N };

/**
 * Functional-unit operation classes (SimpleScalar resource classes).
 * MemRead/MemWrite additionally require an IntAlu slot for address
 * generation and a memory port for the access itself.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   //!< single-cycle integer ops, branches, address generation
    IntMul,   //!< integer multiply
    IntDiv,   //!< integer divide/remainder
    FpAdd,    //!< FP add/sub/compare/convert/min/max/neg/abs/move
    FpMul,    //!< FP multiply
    FpDiv,    //!< FP divide
    FpSqrt,   //!< FP square root
    MemRead,  //!< loads
    MemWrite, //!< stores
    Nop,      //!< no execution resources (NOP, HALT)
};

/** X-macro: mnemonic, format, operation class. */
#define DIREB_OPCODE_LIST(X)                                                  \
    /* integer register-register */                                          \
    X(ADD, R, IntAlu)                                                         \
    X(SUB, R, IntAlu)                                                         \
    X(AND, R, IntAlu)                                                         \
    X(OR, R, IntAlu)                                                          \
    X(XOR, R, IntAlu)                                                         \
    X(SLL, R, IntAlu)                                                         \
    X(SRL, R, IntAlu)                                                         \
    X(SRA, R, IntAlu)                                                         \
    X(SLT, R, IntAlu)                                                         \
    X(SLTU, R, IntAlu)                                                        \
    X(MUL, R, IntMul)                                                         \
    X(MULH, R, IntMul)                                                        \
    X(DIV, R, IntDiv)                                                         \
    X(DIVU, R, IntDiv)                                                        \
    X(REM, R, IntDiv)                                                         \
    X(REMU, R, IntDiv)                                                        \
    /* integer register-immediate */                                          \
    X(ADDI, I, IntAlu)                                                        \
    X(ANDI, I, IntAlu)                                                        \
    X(ORI, I, IntAlu)                                                         \
    X(XORI, I, IntAlu)                                                        \
    X(SLTI, I, IntAlu)                                                        \
    X(SLLI, I, IntAlu)                                                        \
    X(SRLI, I, IntAlu)                                                        \
    X(SRAI, I, IntAlu)                                                        \
    X(LUI, U, IntAlu)                                                         \
    /* control flow */                                                        \
    X(BEQ, B, IntAlu)                                                         \
    X(BNE, B, IntAlu)                                                         \
    X(BLT, B, IntAlu)                                                         \
    X(BGE, B, IntAlu)                                                         \
    X(BLTU, B, IntAlu)                                                        \
    X(BGEU, B, IntAlu)                                                        \
    X(JAL, J, IntAlu)                                                         \
    X(JALR, I, IntAlu)                                                        \
    /* memory */                                                              \
    X(LB, I, MemRead)                                                         \
    X(LBU, I, MemRead)                                                        \
    X(LH, I, MemRead)                                                         \
    X(LHU, I, MemRead)                                                        \
    X(LW, I, MemRead)                                                         \
    X(LWU, I, MemRead)                                                        \
    X(LD, I, MemRead)                                                         \
    X(FLD, I, MemRead)                                                        \
    X(SB, S, MemWrite)                                                        \
    X(SH, S, MemWrite)                                                        \
    X(SW, S, MemWrite)                                                        \
    X(SD, S, MemWrite)                                                        \
    X(FSD, S, MemWrite)                                                       \
    /* floating point */                                                      \
    X(FADD, R, FpAdd)                                                         \
    X(FSUB, R, FpAdd)                                                         \
    X(FMIN, R, FpAdd)                                                         \
    X(FMAX, R, FpAdd)                                                         \
    X(FNEG, R, FpAdd)                                                         \
    X(FABS, R, FpAdd)                                                         \
    X(FMOV, R, FpAdd)                                                         \
    X(FEQ, R, FpAdd)                                                          \
    X(FLT, R, FpAdd)                                                          \
    X(FLE, R, FpAdd)                                                          \
    X(FCVTDL, R, FpAdd)                                                       \
    X(FCVTLD, R, FpAdd)                                                       \
    X(FMUL, R, FpMul)                                                         \
    X(FDIV, R, FpDiv)                                                         \
    X(FSQRT, R, FpSqrt)                                                       \
    /* system */                                                              \
    X(NOP, N, Nop)                                                            \
    X(HALT, N, Nop)                                                           \
    X(PUTC, I, IntAlu)                                                        \
    X(PUTINT, I, IntAlu)

/** All opcodes of the mini-ISA. */
enum class Opcode : std::uint8_t
{
#define DIREB_ENUM(name, fmt, cls) name,
    DIREB_OPCODE_LIST(DIREB_ENUM)
#undef DIREB_ENUM
    NumOpcodes
};

constexpr unsigned numOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Static per-opcode properties. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    OpClass opClass;
};

/** Metadata for @p op. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic string. */
const char *opName(Opcode op);

/** Look up an opcode by (lower-case) mnemonic; returns false on failure. */
bool opFromName(const std::string &mnemonic, Opcode &out);

/** Format of @p op. */
inline Format opFormat(Opcode op) { return opInfo(op).format; }

/** Operation class of @p op. */
inline OpClass opClassOf(Opcode op) { return opInfo(op).opClass; }

/** Classification helpers. */
bool isBranch(Opcode op);       //!< conditional branch
bool isJump(Opcode op);         //!< JAL / JALR
bool isControl(Opcode op);      //!< any control transfer
bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isMem(Opcode op);
bool isFpOp(Opcode op);         //!< executes on an FP unit
bool isHalt(Opcode op);
bool isOutput(Opcode op);       //!< PUTC / PUTINT

/** Does the destination register (if any) live in the FP file? */
bool writesFpReg(Opcode op);
/** Does the instruction write any destination register? */
bool writesReg(Opcode op);
/** Do the source registers live in the FP file? */
bool readsFpRegs(Opcode op);

/** Human-readable op class name (for stats/tables). */
const char *opClassName(OpClass cls);

} // namespace direb

#endif // DIREB_ISA_OPCODES_HH
