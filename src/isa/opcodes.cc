#include "isa/opcodes.hh"

#include <array>
#include <map>

#include "common/logging.hh"

namespace direb
{

namespace
{

constexpr std::array<OpInfo, numOpcodes> infoTable = {{
#define DIREB_INFO(name, fmt, cls) {#name, Format::fmt, OpClass::cls},
    DIREB_OPCODE_LIST(DIREB_INFO)
#undef DIREB_INFO
}};

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static const std::map<std::string, Opcode> m = [] {
        std::map<std::string, Opcode> map;
        for (unsigned i = 0; i < numOpcodes; ++i) {
            const auto op = static_cast<Opcode>(i);
            map[toLower(infoTable[i].mnemonic)] = op;
        }
        return map;
    }();
    return m;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    panic_if(idx >= numOpcodes, "bad opcode %u", idx);
    return infoTable[idx];
}

const char *
opName(Opcode op)
{
    return opInfo(op).mnemonic;
}

bool
opFromName(const std::string &mnemonic, Opcode &out)
{
    const auto &m = mnemonicMap();
    const auto it = m.find(toLower(mnemonic));
    if (it == m.end())
        return false;
    out = it->second;
    return true;
}

bool
isBranch(Opcode op)
{
    return opFormat(op) == Format::B;
}

bool
isJump(Opcode op)
{
    return op == Opcode::JAL || op == Opcode::JALR;
}

bool
isControl(Opcode op)
{
    return isBranch(op) || isJump(op);
}

bool
isLoad(Opcode op)
{
    return opClassOf(op) == OpClass::MemRead;
}

bool
isStore(Opcode op)
{
    return opClassOf(op) == OpClass::MemWrite;
}

bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

bool
isFpOp(Opcode op)
{
    const OpClass c = opClassOf(op);
    return c == OpClass::FpAdd || c == OpClass::FpMul ||
           c == OpClass::FpDiv || c == OpClass::FpSqrt;
}

bool
isHalt(Opcode op)
{
    return op == Opcode::HALT;
}

bool
isOutput(Opcode op)
{
    return op == Opcode::PUTC || op == Opcode::PUTINT;
}

bool
writesFpReg(Opcode op)
{
    switch (op) {
      case Opcode::FLD:
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMIN:
      case Opcode::FMAX:
      case Opcode::FNEG:
      case Opcode::FABS:
      case Opcode::FMOV:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FSQRT:
      case Opcode::FCVTDL:
        return true;
      default:
        return false;
    }
}

bool
writesReg(Opcode op)
{
    switch (opFormat(op)) {
      case Format::R:
      case Format::I:
      case Format::U:
      case Format::J:
        return !isStore(op) && !isOutput(op);
      default:
        return false;
    }
}

bool
readsFpRegs(Opcode op)
{
    switch (op) {
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMIN:
      case Opcode::FMAX:
      case Opcode::FNEG:
      case Opcode::FABS:
      case Opcode::FMOV:
      case Opcode::FEQ:
      case Opcode::FLT:
      case Opcode::FLE:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FSQRT:
      case Opcode::FCVTLD:
        return true;
      default:
        return false;
    }
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAdd: return "FpAdd";
      case OpClass::FpMul: return "FpMul";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::FpSqrt: return "FpSqrt";
      case OpClass::MemRead: return "MemRead";
      case OpClass::MemWrite: return "MemWrite";
      case OpClass::Nop: return "Nop";
    }
    return "?";
}

} // namespace direb
