/**
 * @file
 * Decoded instruction representation: fields, 32-bit encode/decode, operand
 * register identification (unified int+fp numbering for rename/dataflow),
 * and a disassembler.
 */

#ifndef DIREB_ISA_INST_HH
#define DIREB_ISA_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"

namespace direb
{

/** Unified register id: 0-31 integer x-registers, 32-63 FP f-registers. */
using RegId = std::uint8_t;

constexpr unsigned numIntRegs = 32;
constexpr unsigned numFpRegs = 32;
constexpr unsigned numArchRegs = numIntRegs + numFpRegs;

/** Unified id of integer register @p n. */
constexpr RegId intReg(unsigned n) { return static_cast<RegId>(n); }
/** Unified id of FP register @p n. */
constexpr RegId fpReg(unsigned n) { return static_cast<RegId>(numIntRegs + n); }
/** Sentinel "no register". */
constexpr RegId noReg = 0xff;
/** Is @p r the hard-wired integer zero register? */
constexpr bool isZeroReg(RegId r) { return r == 0; }

/** Immediate field widths by format. */
constexpr unsigned immBitsI = 14;  //!< I/B/S formats
constexpr unsigned immBitsU = 19;  //!< U/J formats

/**
 * A decoded instruction. The raw register fields (rd/rs1/rs2) are 5-bit
 * indices into whichever file the opcode addresses; the src1/src2/dst
 * helpers translate them into unified RegIds (and apply per-opcode operand
 * rules like FSQRT's unused rs2).
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;

    Inst() = default;
    Inst(Opcode o, unsigned d, unsigned s1, unsigned s2, std::int32_t i)
        : op(o), rd(static_cast<std::uint8_t>(d)),
          rs1(static_cast<std::uint8_t>(s1)),
          rs2(static_cast<std::uint8_t>(s2)), imm(i)
    {}

    bool operator==(const Inst &other) const = default;

    /** Unified destination register id, or noReg. */
    RegId dstReg() const;
    /** Unified first-source register id, or noReg. */
    RegId srcReg1() const;
    /** Unified second-source register id, or noReg. */
    RegId srcReg2() const;

    /** Does this instruction architecturally read rs2? */
    bool usesRs2() const;

    /** Pack to a 32-bit instruction word. Asserts on out-of-range fields. */
    std::uint32_t encode() const;

    /** Human-readable disassembly. */
    std::string disasm() const;
};

/** Unpack a 32-bit instruction word; fatal() on an undefined opcode byte. */
Inst decode(std::uint32_t word);

/** Render a unified RegId (x5, f3, ...). */
std::string regName(RegId r);

/** Convenience builders used by workload kernels and tests. @{ */
inline Inst
makeR(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    return Inst(op, rd, rs1, rs2, 0);
}

inline Inst
makeI(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm)
{
    return Inst(op, rd, rs1, 0, imm);
}

inline Inst
makeB(Opcode op, unsigned rs1, unsigned rs2, std::int32_t off)
{
    return Inst(op, 0, rs1, rs2, off);
}

inline Inst
makeS(Opcode op, unsigned rs1_base, unsigned rs2_data, std::int32_t imm)
{
    return Inst(op, 0, rs1_base, rs2_data, imm);
}

inline Inst
makeJ(Opcode op, unsigned rd, std::int32_t off)
{
    return Inst(op, rd, 0, 0, off);
}
/** @} */

} // namespace direb

#endif // DIREB_ISA_INST_HH
