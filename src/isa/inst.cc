#include "isa/inst.hh"

#include <cassert>
#include <cstdio>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace direb
{

namespace
{

/** Per-operand register file selection. */
enum class RegClass : std::uint8_t { None, Int, Fp };

struct OperandSpec
{
    RegClass dst;
    RegClass src1;
    RegClass src2;
};

/** Resolve the register classes of dst/src1/src2 for @p op. */
OperandSpec
operands(Opcode op)
{
    // Start from the format defaults, then refine for FP/special cases.
    OperandSpec spec{RegClass::None, RegClass::None, RegClass::None};
    switch (opFormat(op)) {
      case Format::R:
        spec = {RegClass::Int, RegClass::Int, RegClass::Int};
        break;
      case Format::I:
        spec = {RegClass::Int, RegClass::Int, RegClass::None};
        break;
      case Format::U:
      case Format::J:
        spec = {RegClass::Int, RegClass::None, RegClass::None};
        break;
      case Format::B:
        spec = {RegClass::None, RegClass::Int, RegClass::Int};
        break;
      case Format::S:
        spec = {RegClass::None, RegClass::Int, RegClass::Int};
        break;
      case Format::N:
        return spec;
    }

    switch (op) {
      case Opcode::FLD:
        spec.dst = RegClass::Fp;
        break;
      case Opcode::FSD:
        spec.src2 = RegClass::Fp; // store data
        break;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMIN:
      case Opcode::FMAX:
      case Opcode::FMUL:
      case Opcode::FDIV:
        spec = {RegClass::Fp, RegClass::Fp, RegClass::Fp};
        break;
      case Opcode::FNEG:
      case Opcode::FABS:
      case Opcode::FMOV:
      case Opcode::FSQRT:
        spec = {RegClass::Fp, RegClass::Fp, RegClass::None};
        break;
      case Opcode::FEQ:
      case Opcode::FLT:
      case Opcode::FLE:
        spec = {RegClass::Int, RegClass::Fp, RegClass::Fp};
        break;
      case Opcode::FCVTDL: // int -> fp
        spec = {RegClass::Fp, RegClass::Int, RegClass::None};
        break;
      case Opcode::FCVTLD: // fp -> int
        spec = {RegClass::Int, RegClass::Fp, RegClass::None};
        break;
      case Opcode::PUTC:
      case Opcode::PUTINT:
        spec = {RegClass::None, RegClass::Int, RegClass::None};
        break;
      default:
        break;
    }
    return spec;
}

RegId
unify(RegClass cls, unsigned idx)
{
    switch (cls) {
      case RegClass::None:
        return noReg;
      case RegClass::Int:
        return intReg(idx);
      case RegClass::Fp:
        return fpReg(idx);
    }
    return noReg;
}

} // namespace

RegId
Inst::dstReg() const
{
    const RegId r = unify(operands(op).dst, rd);
    // Writes to x0 are architectural no-ops and create no dependency.
    return (r != noReg && isZeroReg(r)) ? noReg : r;
}

RegId
Inst::srcReg1() const
{
    const RegId r = unify(operands(op).src1, rs1);
    return (r != noReg && isZeroReg(r)) ? noReg : r;
}

RegId
Inst::srcReg2() const
{
    const RegId r = unify(operands(op).src2, rs2);
    return (r != noReg && isZeroReg(r)) ? noReg : r;
}

bool
Inst::usesRs2() const
{
    return operands(op).src2 != RegClass::None;
}

std::uint32_t
Inst::encode() const
{
    const auto opfield = static_cast<std::uint32_t>(op);
    assert(opfield < numOpcodes);
    assert(rd < 32 && rs1 < 32 && rs2 < 32);

    std::uint64_t w = 0;
    w = insertBits(w, 31, 24, opfield);
    switch (opFormat(op)) {
      case Format::R:
        w = insertBits(w, 23, 19, rd);
        w = insertBits(w, 18, 14, rs1);
        w = insertBits(w, 13, 9, rs2);
        break;
      case Format::I:
        assert(fitsSigned(imm, immBitsI));
        w = insertBits(w, 23, 19, rd);
        w = insertBits(w, 18, 14, rs1);
        w = insertBits(w, 13, 0, static_cast<std::uint64_t>(imm));
        break;
      case Format::U:
        assert(fitsSigned(imm, immBitsU));
        w = insertBits(w, 23, 19, rd);
        w = insertBits(w, 18, 0, static_cast<std::uint64_t>(imm));
        break;
      case Format::B:
        assert(fitsSigned(imm, immBitsI));
        w = insertBits(w, 23, 19, rs1);
        w = insertBits(w, 18, 14, rs2);
        w = insertBits(w, 13, 0, static_cast<std::uint64_t>(imm));
        break;
      case Format::J:
        assert(fitsSigned(imm, immBitsU));
        w = insertBits(w, 23, 19, rd);
        w = insertBits(w, 18, 0, static_cast<std::uint64_t>(imm));
        break;
      case Format::S:
        assert(fitsSigned(imm, immBitsI));
        w = insertBits(w, 23, 19, rs2);
        w = insertBits(w, 18, 14, rs1);
        w = insertBits(w, 13, 0, static_cast<std::uint64_t>(imm));
        break;
      case Format::N:
        break;
    }
    return static_cast<std::uint32_t>(w);
}

Inst
decode(std::uint32_t word)
{
    const auto opfield = static_cast<unsigned>(bits(word, 31, 24));
    fatal_if(opfield >= numOpcodes, "decode: undefined opcode byte 0x%02x",
             opfield);
    const auto op = static_cast<Opcode>(opfield);

    Inst inst;
    inst.op = op;
    switch (opFormat(op)) {
      case Format::R:
        inst.rd = static_cast<std::uint8_t>(bits(word, 23, 19));
        inst.rs1 = static_cast<std::uint8_t>(bits(word, 18, 14));
        inst.rs2 = static_cast<std::uint8_t>(bits(word, 13, 9));
        break;
      case Format::I:
        inst.rd = static_cast<std::uint8_t>(bits(word, 23, 19));
        inst.rs1 = static_cast<std::uint8_t>(bits(word, 18, 14));
        inst.imm = static_cast<std::int32_t>(sext(bits(word, 13, 0),
                                                  immBitsI));
        break;
      case Format::U:
        inst.rd = static_cast<std::uint8_t>(bits(word, 23, 19));
        inst.imm = static_cast<std::int32_t>(sext(bits(word, 18, 0),
                                                  immBitsU));
        break;
      case Format::B:
        inst.rs1 = static_cast<std::uint8_t>(bits(word, 23, 19));
        inst.rs2 = static_cast<std::uint8_t>(bits(word, 18, 14));
        inst.imm = static_cast<std::int32_t>(sext(bits(word, 13, 0),
                                                  immBitsI));
        break;
      case Format::J:
        inst.rd = static_cast<std::uint8_t>(bits(word, 23, 19));
        inst.imm = static_cast<std::int32_t>(sext(bits(word, 18, 0),
                                                  immBitsU));
        break;
      case Format::S:
        inst.rs2 = static_cast<std::uint8_t>(bits(word, 23, 19));
        inst.rs1 = static_cast<std::uint8_t>(bits(word, 18, 14));
        inst.imm = static_cast<std::int32_t>(sext(bits(word, 13, 0),
                                                  immBitsI));
        break;
      case Format::N:
        break;
    }
    return inst;
}

std::string
regName(RegId r)
{
    if (r == noReg)
        return "-";
    char buf[8];
    if (r < numIntRegs)
        std::snprintf(buf, sizeof(buf), "x%u", r);
    else
        std::snprintf(buf, sizeof(buf), "f%u", r - numIntRegs);
    return buf;
}

std::string
Inst::disasm() const
{
    const bool fp_srcs = readsFpRegs(op);
    const bool fp_dst = writesFpReg(op);
    const char sp = fp_srcs ? 'f' : 'x';
    const char dp = fp_dst ? 'f' : 'x';

    char buf[96];
    switch (opFormat(op)) {
      case Format::R:
        if (usesRs2()) {
            std::snprintf(buf, sizeof(buf), "%-6s %c%u, %c%u, %c%u",
                          opName(op), dp, rd, sp, rs1, sp, rs2);
        } else {
            std::snprintf(buf, sizeof(buf), "%-6s %c%u, %c%u", opName(op),
                          dp, rd, sp, rs1);
        }
        break;
      case Format::I:
        if (isLoad(op)) {
            std::snprintf(buf, sizeof(buf), "%-6s %c%u, %d(x%u)",
                          opName(op), dp, rd, imm, rs1);
        } else if (isOutput(op)) {
            std::snprintf(buf, sizeof(buf), "%-6s x%u", opName(op), rs1);
        } else {
            std::snprintf(buf, sizeof(buf), "%-6s x%u, x%u, %d", opName(op),
                          rd, rs1, imm);
        }
        break;
      case Format::U:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, %d", opName(op), rd, imm);
        break;
      case Format::B:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, x%u, %d", opName(op),
                      rs1, rs2, imm);
        break;
      case Format::J:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, %d", opName(op), rd, imm);
        break;
      case Format::S:
        std::snprintf(buf, sizeof(buf), "%-6s %c%u, %d(x%u)", opName(op),
                      op == Opcode::FSD ? 'f' : 'x', rs2, imm, rs1);
        break;
      case Format::N:
        std::snprintf(buf, sizeof(buf), "%s", opName(op));
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s ?", opName(op));
        break;
    }
    return buf;
}

} // namespace direb
