/**
 * @file
 * Two-pass assembler for the mini-ISA.
 *
 * Supports `.text`/`.data` sections, labels, data directives (.byte,
 * .half, .word, .dword, .double, .space, .asciiz, .align), the full
 * instruction set, RISC-V style register aliases (zero/ra/sp/a0../t0../s0..)
 * and a set of pseudo-instructions (li, la, mv, neg, j, jr, call, ret,
 * beqz/bnez/bltz/bgez/bgtz/blez).
 *
 * Errors raise FatalError with the offending line number, so malformed
 * workloads fail loudly and testably.
 */

#ifndef DIREB_ASM_ASSEMBLER_HH
#define DIREB_ASM_ASSEMBLER_HH

#include <string>

#include "vm/program.hh"

namespace direb
{

/**
 * Assemble @p source into a loadable Program.
 *
 * @param source full assembly text
 * @param name program name recorded in the image
 * @return the assembled program (text at textBase, data at dataBase)
 * @throws FatalError on any syntax or range error
 */
Program assemble(const std::string &source, const std::string &name = "asm");

/**
 * Parse a register operand ("x7", "f3", "sp", "a0", ...).
 * @return unified RegId
 * @throws FatalError if @p token is not a register
 */
RegId parseRegister(const std::string &token);

} // namespace direb

#endif // DIREB_ASM_ASSEMBLER_HH
