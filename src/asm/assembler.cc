#include "asm/assembler.hh"

#include <bit>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace direb
{

namespace
{

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
lower(std::string s)
{
    for (auto &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Strip a '#' or ';' comment (not inside a string literal). */
std::string
stripComment(const std::string &line)
{
    bool in_str = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"')
            in_str = !in_str;
        else if (!in_str && (c == '#' || c == ';'))
            return line.substr(0, i);
    }
    return line;
}

/** Split operands on commas (respecting string literals). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false;
    for (const char c : s) {
        if (c == '"')
            in_str = !in_str;
        if (c == ',' && !in_str) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

const std::map<std::string, RegId> &
regAliases()
{
    static const std::map<std::string, RegId> aliases = [] {
        std::map<std::string, RegId> m;
        m["zero"] = intReg(0);
        m["ra"] = intReg(1);
        m["sp"] = intReg(2);
        m["gp"] = intReg(3);
        m["tp"] = intReg(4);
        m["fp"] = intReg(8);
        for (unsigned i = 0; i < 3; ++i)
            m["t" + std::to_string(i)] = intReg(5 + i);
        for (unsigned i = 3; i < 7; ++i)
            m["t" + std::to_string(i)] = intReg(25 + i); // t3-t6 = x28-x31
        m["s0"] = intReg(8);
        m["s1"] = intReg(9);
        for (unsigned i = 0; i < 8; ++i)
            m["a" + std::to_string(i)] = intReg(10 + i);
        for (unsigned i = 2; i < 12; ++i)
            m["s" + std::to_string(i)] = intReg(16 + i); // s2-s11 = x18-x27
        return m;
    }();
    return aliases;
}

// ---------------------------------------------------------------------------
// Assembler proper
// ---------------------------------------------------------------------------

enum class Section { Text, Data };

struct PendingInst
{
    std::string mnemonic;
    std::vector<std::string> operands;
    int lineNo;
    Addr pc; // assigned in pass 1
};

class Assembler
{
  public:
    Program run(const std::string &source, const std::string &name);

  private:
    [[noreturn]] void err(int line, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)));

    // Pass 1: layout.
    void layoutLine(const std::string &line, int line_no);
    void layoutData(const std::string &directive,
                    const std::vector<std::string> &ops, int line_no);
    unsigned instWords(const std::string &mnemonic,
                       const std::vector<std::string> &ops, int line_no);

    // Pass 2: emission.
    void emitAll();
    void emit(const PendingInst &pi);
    void emitNative(Opcode op, const PendingInst &pi);

    // Operand parsing.
    std::int64_t parseImm(const std::string &tok, int line_no) const;
    std::optional<std::int64_t> tryParseImm(const std::string &tok) const;
    Addr labelAddr(const std::string &label, int line_no) const;
    std::int64_t immOrLabelValue(const std::string &tok, int line_no) const;
    unsigned regNum(const std::string &tok, bool want_fp, int line_no) const;
    void parseMemOperand(const std::string &tok, int line_no,
                         unsigned &base, std::int32_t &off) const;
    std::int32_t branchOffset(const std::string &tok, Addr pc, int line_no,
                              unsigned imm_bits) const;

    void push(const Inst &inst) { out.push(inst); }
    void emitLi(unsigned rd, std::int64_t value, int line_no);

    Section section = Section::Text;
    std::map<std::string, Addr> labels;
    std::vector<PendingInst> pending;
    Addr textPc = textBase;
    Program out;
    std::string entryLabel;
    int entryLine = 0;
};

void
Assembler::err(int line, const char *fmt, ...) const
{
    va_list ap;
    va_start(ap, fmt);
    char msg[256];
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    fatal("asm:%d: %s", line, msg);
}

std::optional<std::int64_t>
Assembler::tryParseImm(const std::string &tok) const
{
    if (tok.empty())
        return std::nullopt;
    // Character literal.
    if (tok.size() >= 3 && tok.front() == '\'' && tok.back() == '\'') {
        if (tok.size() == 3)
            return static_cast<std::int64_t>(tok[1]);
        if (tok.size() == 4 && tok[1] == '\\') {
            switch (tok[2]) {
              case 'n': return '\n';
              case 't': return '\t';
              case '0': return 0;
              case '\\': return '\\';
              default: return std::nullopt;
            }
        }
        return std::nullopt;
    }
    char *end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 0);
    if (end == tok.c_str() || *end != '\0')
        return std::nullopt;
    return v;
}

std::int64_t
Assembler::parseImm(const std::string &tok, int line_no) const
{
    const auto v = tryParseImm(tok);
    if (!v)
        err(line_no, "bad immediate '%s'", tok.c_str());
    return *v;
}

Addr
Assembler::labelAddr(const std::string &label, int line_no) const
{
    const auto it = labels.find(label);
    if (it == labels.end())
        err(line_no, "undefined label '%s'", label.c_str());
    return it->second;
}

std::int64_t
Assembler::immOrLabelValue(const std::string &tok, int line_no) const
{
    if (const auto v = tryParseImm(tok))
        return *v;
    return static_cast<std::int64_t>(labelAddr(tok, line_no));
}

unsigned
Assembler::regNum(const std::string &tok, bool want_fp, int line_no) const
{
    const std::string t = lower(tok);
    RegId id = noReg;
    const auto &aliases = regAliases();
    if (const auto it = aliases.find(t); it != aliases.end()) {
        id = it->second;
    } else if (t.size() >= 2 && (t[0] == 'x' || t[0] == 'f')) {
        char *end = nullptr;
        const long n = std::strtol(t.c_str() + 1, &end, 10);
        if (*end == '\0' && n >= 0 && n < 32)
            id = t[0] == 'x' ? intReg(n) : fpReg(n);
    }
    if (id == noReg)
        err(line_no, "bad register '%s'", tok.c_str());
    const bool is_fp = id >= numIntRegs;
    if (is_fp != want_fp) {
        err(line_no, "register '%s' is in the wrong file (want %s)",
            tok.c_str(), want_fp ? "fp" : "int");
    }
    return is_fp ? id - numIntRegs : id;
}

void
Assembler::parseMemOperand(const std::string &tok, int line_no,
                           unsigned &base, std::int32_t &off) const
{
    // "off(base)" or "(base)".
    const auto open = tok.find('(');
    const auto close = tok.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        err(line_no, "bad memory operand '%s'", tok.c_str());
    }
    const std::string off_s = trim(tok.substr(0, open));
    const std::string base_s =
        trim(tok.substr(open + 1, close - open - 1));
    off = off_s.empty()
        ? 0
        : static_cast<std::int32_t>(parseImm(off_s, line_no));
    base = regNum(base_s, false, line_no);
    if (!fitsSigned(off, immBitsI))
        err(line_no, "memory offset %d out of range", off);
}

std::int32_t
Assembler::branchOffset(const std::string &tok, Addr pc, int line_no,
                        unsigned imm_bits) const
{
    std::int64_t target;
    if (const auto v = tryParseImm(tok))
        target = static_cast<std::int64_t>(pc) + *v * 4;
    else
        target = static_cast<std::int64_t>(labelAddr(tok, line_no));
    const std::int64_t delta = target - static_cast<std::int64_t>(pc);
    if (delta % 4 != 0)
        err(line_no, "misaligned branch target");
    if (!fitsSigned(delta / 4, imm_bits))
        err(line_no, "branch target %lld instructions away exceeds the "
            "%u-bit offset field", (long long)(delta / 4), imm_bits);
    return static_cast<std::int32_t>(delta / 4);
}

unsigned
Assembler::instWords(const std::string &mnemonic,
                     const std::vector<std::string> &ops, int line_no)
{
    const std::string m = lower(mnemonic);
    if (m == "la")
        return 2;
    if (m == "li") {
        if (ops.size() != 2)
            err(line_no, "li needs 2 operands");
        const std::int64_t v = parseImm(ops[1], line_no);
        return fitsSigned(v, immBitsI) ? 1 : 2;
    }
    return 1;
}

void
Assembler::layoutData(const std::string &directive,
                      const std::vector<std::string> &ops, int line_no)
{
    auto &data = out.data;
    const auto put = [&](std::uint64_t v, unsigned size) {
        for (unsigned i = 0; i < size; ++i)
            data.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };

    if (directive == ".byte" || directive == ".half" ||
        directive == ".word" || directive == ".dword" ||
        directive == ".quad") {
        const unsigned size = directive == ".byte" ? 1
                            : directive == ".half" ? 2
                            : directive == ".word" ? 4 : 8;
        for (const auto &o : ops)
            put(static_cast<std::uint64_t>(immOrLabelValue(o, line_no)),
                size);
    } else if (directive == ".double") {
        for (const auto &o : ops) {
            char *end = nullptr;
            const double d = std::strtod(o.c_str(), &end);
            if (end == o.c_str() || *end != '\0')
                err(line_no, "bad double '%s'", o.c_str());
            put(std::bit_cast<std::uint64_t>(d), 8);
        }
    } else if (directive == ".space") {
        if (ops.size() != 1)
            err(line_no, ".space needs one operand");
        const std::int64_t n = parseImm(ops[0], line_no);
        if (n < 0)
            err(line_no, ".space size must be non-negative");
        data.insert(data.end(), static_cast<std::size_t>(n), 0);
    } else if (directive == ".asciiz") {
        if (ops.size() != 1 || ops[0].size() < 2 || ops[0].front() != '"' ||
            ops[0].back() != '"') {
            err(line_no, ".asciiz needs a quoted string");
        }
        const std::string body = ops[0].substr(1, ops[0].size() - 2);
        for (std::size_t i = 0; i < body.size(); ++i) {
            char c = body[i];
            if (c == '\\' && i + 1 < body.size()) {
                ++i;
                c = body[i] == 'n' ? '\n' : body[i] == 't' ? '\t' : body[i];
            }
            data.push_back(static_cast<std::uint8_t>(c));
        }
        data.push_back(0);
    } else if (directive == ".align") {
        if (ops.size() != 1)
            err(line_no, ".align needs one operand");
        const std::int64_t a = parseImm(ops[0], line_no);
        if (a <= 0 || !isPowerOf2(static_cast<std::uint64_t>(a)))
            err(line_no, ".align needs a power of two");
        while (data.size() % static_cast<std::size_t>(a) != 0)
            data.push_back(0);
    } else {
        err(line_no, "unknown directive '%s'", directive.c_str());
    }
}

void
Assembler::layoutLine(const std::string &raw, int line_no)
{
    std::string line = trim(stripComment(raw));

    // Peel off any leading labels.
    while (true) {
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            break;
        const std::string head = trim(line.substr(0, colon));
        bool is_label = !head.empty();
        for (const char c : head) {
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
                c != '.') {
                is_label = false;
                break;
            }
        }
        if (!is_label)
            break;
        if (labels.count(head))
            err(line_no, "duplicate label '%s'", head.c_str());
        labels[head] = section == Section::Text
            ? textPc
            : dataBase + out.data.size();
        line = trim(line.substr(colon + 1));
    }

    if (line.empty())
        return;

    // Directive or instruction?
    std::istringstream iss(line);
    std::string word;
    iss >> word;
    std::string rest;
    std::getline(iss, rest);
    rest = trim(rest);
    const auto ops = splitOperands(rest);

    if (word[0] == '.') {
        const std::string d = lower(word);
        if (d == ".text") {
            section = Section::Text;
        } else if (d == ".data") {
            section = Section::Data;
        } else if (d == ".entry") {
            // resolved in pass 2 (label may be forward); remember it
            if (ops.size() != 1)
                err(line_no, ".entry needs one label");
            entryLabel = ops[0];
            entryLine = line_no;
        } else {
            if (section != Section::Data)
                err(line_no, "data directive outside .data");
            layoutData(d, ops, line_no);
        }
        return;
    }

    if (section != Section::Text)
        err(line_no, "instruction in .data section");

    PendingInst pi{lower(word), ops, line_no, textPc};
    textPc += 4 * instWords(pi.mnemonic, ops, line_no);
    pending.push_back(std::move(pi));
}

void
Assembler::emitLi(unsigned rd, std::int64_t value, int line_no)
{
    if (fitsSigned(value, immBitsI)) {
        push(makeI(Opcode::ADDI, rd, 0, static_cast<std::int32_t>(value)));
        return;
    }
    // lui rd, hi ; ori rd, rd, lo  (ORI zero-extends its 14-bit immediate)
    const std::int64_t hi = value >> immBitsI;
    const std::int64_t lo = value & ((1 << immBitsI) - 1);
    if (!fitsSigned(hi, immBitsU))
        err(line_no, "constant %lld out of li range", (long long)value);
    // Store the ORI field sign-extended (like every I-format immediate)
    // so it stays encodable; execution zero-extends it back.
    push(makeI(Opcode::LUI, rd, 0, static_cast<std::int32_t>(hi)));
    push(makeI(Opcode::ORI, rd, rd,
               static_cast<std::int32_t>(
                   sext(static_cast<std::uint64_t>(lo), immBitsI))));
}

void
Assembler::emitNative(Opcode op, const PendingInst &pi)
{
    const auto &ops = pi.operands;
    const int ln = pi.lineNo;
    const auto need = [&](std::size_t n) {
        if (ops.size() != n)
            err(ln, "%s needs %zu operands, got %zu", opName(op), n,
                ops.size());
    };
    const bool fp_srcs = readsFpRegs(op);
    const bool fp_dst = writesFpReg(op);

    switch (opFormat(op)) {
      case Format::R: {
        const Inst probe(op, 0, 0, 0, 0);
        if (probe.usesRs2()) {
            need(3);
            push(makeR(op, regNum(ops[0], fp_dst, ln),
                       regNum(ops[1], fp_srcs, ln),
                       regNum(ops[2], fp_srcs, ln)));
        } else {
            need(2);
            push(makeR(op, regNum(ops[0], fp_dst, ln),
                       regNum(ops[1], fp_srcs, ln), 0));
        }
        break;
      }
      case Format::I: {
        if (isLoad(op)) {
            need(2);
            unsigned base;
            std::int32_t off;
            parseMemOperand(ops[1], ln, base, off);
            push(makeI(op, regNum(ops[0], fp_dst, ln), base, off));
        } else if (isOutput(op)) {
            need(1);
            push(makeI(op, 0, regNum(ops[0], false, ln), 0));
        } else if (op == Opcode::JALR) {
            // jalr rd, rs1, imm
            need(3);
            const std::int64_t imm = parseImm(ops[2], ln);
            if (!fitsSigned(imm, immBitsI))
                err(ln, "jalr immediate out of range");
            push(makeI(op, regNum(ops[0], false, ln),
                       regNum(ops[1], false, ln),
                       static_cast<std::int32_t>(imm)));
        } else {
            need(3);
            const std::int64_t imm = parseImm(ops[2], ln);
            const bool logical = op == Opcode::ANDI || op == Opcode::ORI ||
                                 op == Opcode::XORI;
            const bool ok = logical
                ? imm >= 0 && imm < (1 << immBitsI)
                : fitsSigned(imm, immBitsI);
            if (!ok)
                err(ln, "immediate %lld out of range", (long long)imm);
            // Logical immediates are zero-extended at execution; store the
            // 14-bit field sign-extended so every I-format Inst.imm is in
            // the encodable range.
            push(makeI(op, regNum(ops[0], false, ln),
                       regNum(ops[1], false, ln),
                       static_cast<std::int32_t>(
                           logical ? sext(static_cast<std::uint64_t>(imm),
                                          immBitsI)
                                   : imm)));
        }
        break;
      }
      case Format::U: {
        need(2);
        const std::int64_t imm = parseImm(ops[1], ln);
        if (!fitsSigned(imm, immBitsU))
            err(ln, "lui immediate out of range");
        push(makeI(op, regNum(ops[0], false, ln), 0,
                   static_cast<std::int32_t>(imm)));
        break;
      }
      case Format::B: {
        need(3);
        push(makeB(op, regNum(ops[0], false, ln), regNum(ops[1], false, ln),
                   branchOffset(ops[2], pi.pc, ln, immBitsI)));
        break;
      }
      case Format::J: {
        need(2);
        push(makeJ(op, regNum(ops[0], false, ln),
                   branchOffset(ops[1], pi.pc, ln, immBitsU)));
        break;
      }
      case Format::S: {
        need(2);
        unsigned base;
        std::int32_t off;
        parseMemOperand(ops[1], ln, base, off);
        push(makeS(op, base, regNum(ops[0], op == Opcode::FSD, ln), off));
        break;
      }
      case Format::N:
        need(0);
        push(Inst(op, 0, 0, 0, 0));
        break;
    }
}

void
Assembler::emit(const PendingInst &pi)
{
    const auto &ops = pi.operands;
    const int ln = pi.lineNo;
    const std::string &m = pi.mnemonic;

    const auto need = [&](std::size_t n) {
        if (ops.size() != n)
            err(ln, "%s needs %zu operands, got %zu", m.c_str(), n,
                ops.size());
    };

    // Pseudo-instructions first.
    if (m == "li") {
        need(2);
        emitLi(regNum(ops[0], false, ln), parseImm(ops[1], ln), ln);
        return;
    }
    if (m == "la") {
        need(2);
        const Addr a = labelAddr(ops[1], ln);
        const unsigned rd = regNum(ops[0], false, ln);
        // Always two words (layout reserved two).
        const std::int64_t hi = static_cast<std::int64_t>(a) >> immBitsI;
        const std::int64_t lo = a & ((1 << immBitsI) - 1);
        push(makeI(Opcode::LUI, rd, 0, static_cast<std::int32_t>(hi)));
        push(makeI(Opcode::ORI, rd, rd,
                   static_cast<std::int32_t>(
                       sext(static_cast<std::uint64_t>(lo), immBitsI))));
        return;
    }
    if (m == "mv") {
        need(2);
        push(makeI(Opcode::ADDI, regNum(ops[0], false, ln),
                   regNum(ops[1], false, ln), 0));
        return;
    }
    if (m == "neg") {
        need(2);
        push(makeR(Opcode::SUB, regNum(ops[0], false, ln), 0,
                   regNum(ops[1], false, ln)));
        return;
    }
    if (m == "j") {
        need(1);
        push(makeJ(Opcode::JAL, 0,
                   branchOffset(ops[0], pi.pc, ln, immBitsU)));
        return;
    }
    if (m == "jr") {
        need(1);
        push(makeI(Opcode::JALR, 0, regNum(ops[0], false, ln), 0));
        return;
    }
    if (m == "call") {
        need(1);
        push(makeJ(Opcode::JAL, regRa,
                   branchOffset(ops[0], pi.pc, ln, immBitsU)));
        return;
    }
    if (m == "ret") {
        need(0);
        push(makeI(Opcode::JALR, 0, regRa, 0));
        return;
    }
    if (m == "beqz" || m == "bnez" || m == "bltz" || m == "bgez" ||
        m == "bgtz" || m == "blez") {
        need(2);
        const unsigned rs = regNum(ops[0], false, ln);
        const std::int32_t off = branchOffset(ops[1], pi.pc, ln, immBitsI);
        if (m == "beqz")
            push(makeB(Opcode::BEQ, rs, 0, off));
        else if (m == "bnez")
            push(makeB(Opcode::BNE, rs, 0, off));
        else if (m == "bltz")
            push(makeB(Opcode::BLT, rs, 0, off));
        else if (m == "bgez")
            push(makeB(Opcode::BGE, rs, 0, off));
        else if (m == "bgtz")
            push(makeB(Opcode::BLT, 0, rs, off));
        else
            push(makeB(Opcode::BGE, 0, rs, off));
        return;
    }

    Opcode op;
    if (!opFromName(m, op))
        err(ln, "unknown mnemonic '%s'", m.c_str());
    emitNative(op, pi);
}

void
Assembler::emitAll()
{
    for (const auto &pi : pending) {
        const std::size_t before = out.text.size();
        emit(pi);
        const std::size_t emitted = out.text.size() - before;
        const unsigned planned =
            static_cast<unsigned>((pi.pc - textBase) / 4);
        panic_if(before != planned,
                 "asm layout drift at line %d: planned word %u, emitting "
                 "at %zu", pi.lineNo, planned, before);
        (void)emitted;
    }
}

Program
Assembler::run(const std::string &source, const std::string &name)
{
    out = Program{};
    out.name = name;

    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        layoutLine(line, line_no);
    }

    emitAll();

    if (!entryLabel.empty())
        out.entry = labelAddr(entryLabel, entryLine);
    else
        out.entry = textBase;
    return out;
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    Assembler as;
    return as.run(source, name);
}

RegId
parseRegister(const std::string &token)
{
    const std::string t = lower(trim(token));
    const auto &aliases = regAliases();
    if (const auto it = aliases.find(t); it != aliases.end())
        return it->second;
    if (t.size() >= 2 && (t[0] == 'x' || t[0] == 'f')) {
        char *end = nullptr;
        const long n = std::strtol(t.c_str() + 1, &end, 10);
        if (*end == '\0' && n >= 0 && n < 32)
            return t[0] == 'x' ? intReg(n) : fpReg(n);
    }
    fatal("bad register '%s'", token.c_str());
}

} // namespace direb
