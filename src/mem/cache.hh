/**
 * @file
 * Generic set-associative cache timing model with true-LRU replacement.
 *
 * This is a latency/occupancy model, not a data store: the functional data
 * lives in vm::Memory. An access returns the latency it would take given
 * current contents, updating tags/LRU as a side effect. Write policy is
 * write-back/write-allocate (dirty-victim writebacks are charged to the
 * next level).
 */

#ifndef DIREB_MEM_CACHE_HH
#define DIREB_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace direb
{

/** Geometry + latency parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    Cycle hitLatency = 1;
};

/** Set-associative LRU cache (tags only). */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access result: hit/miss plus whether a dirty block was evicted
     * (charged as a writeback to the next level).
     */
    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;
        Addr writebackAddr = invalidAddr;
    };

    /** Probe + update state for an access to @p addr. */
    AccessResult access(Addr addr, bool is_write);

    /** Probe only — no state update (used by tests). */
    bool contains(Addr addr) const;

    /** Invalidate everything. */
    void flush();

    const CacheParams &params() const { return p; }
    stats::Group &statGroup() { return group; }

    std::uint64_t hits() const { return numHits.value(); }
    std::uint64_t misses() const { return numMisses.value(); }

    double
    missRate() const
    {
        const auto total = hits() + misses();
        return total ? static_cast<double>(misses()) / total : 0.0;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams p;
    std::size_t numSets;
    std::vector<Line> lines; //!< numSets * assoc, set-major
    std::uint64_t stamp = 0;

    stats::Group group;
    stats::Scalar numHits;
    stats::Scalar numMisses;
    stats::Scalar numWritebacks;
};

/**
 * Two-level hierarchy: split L1 I/D over a unified L2 over DRAM.
 *
 * Config keys (defaults): l1i.size=65536, l1i.assoc=2, l1i.block=32,
 * l1i.lat=1; l1d.* likewise (lat=3); l2.size=1048576, l2.assoc=4,
 * l2.block=64, l2.lat=12; mem.lat=100.
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const Config &config);

    /** Latency of an instruction fetch of the block containing @p addr. */
    Cycle instAccess(Addr addr);

    /** Latency of a data access. */
    Cycle dataAccess(Addr addr, bool is_write);

    Cache &l1i() { return il1; }
    Cache &l1d() { return dl1; }
    Cache &l2() { return ul2; }
    stats::Group &statGroup() { return group; }

  private:
    Cycle l2Fill(Addr addr, bool is_write);

    Cache il1;
    Cache dl1;
    Cache ul2;
    Cycle memLatency;
    stats::Group group{"memhier"};
};

} // namespace direb

#endif // DIREB_MEM_CACHE_HH
