/**
 * @file
 * Generic set-associative cache timing model with true-LRU replacement.
 *
 * This is a latency/occupancy model, not a data store: the functional data
 * lives in vm::Memory. An access returns the latency it would take given
 * current contents, updating tags/LRU as a side effect. Write policy is
 * write-back/write-allocate (dirty-victim writebacks are charged to the
 * next level).
 */

#ifndef DIREB_MEM_CACHE_HH
#define DIREB_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace direb
{

/** Geometry + latency parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    Cycle hitLatency = 1;
};

/** Set-associative LRU cache (tags only). */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access result: hit/miss plus whether a dirty block was evicted
     * (charged as a writeback to the next level). A clean victim is
     * reported too (evicted without writeback) so an inclusive outer
     * level can back-invalidate its inner copies.
     */
    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;
        Addr writebackAddr = invalidAddr;
        bool evicted = false;
        Addr evictedAddr = invalidAddr;
    };

    /** Probe + update state for an access to @p addr. */
    AccessResult access(Addr addr, bool is_write);

    /** Probe only — no state update (used by tests). */
    bool contains(Addr addr) const;

    /** Probe only: true iff the block is present AND dirty. */
    bool containsDirty(Addr addr) const;

    /**
     * Drop the block containing @p addr if present (coherence
     * invalidation / inclusion back-invalidation). Returns true when a
     * line was actually invalidated; when @p was_dirty is non-null it
     * reports whether the dropped copy held unwritten-back data.
     */
    bool invalidate(Addr addr, bool *was_dirty = nullptr);

    /**
     * Downgrade the block containing @p addr from modified to shared
     * (clears the dirty bit; the caller is responsible for merging the
     * data into the next level). No-op when absent or clean.
     */
    void clearDirty(Addr addr);

    /**
     * Visit every valid line as (block base address, dirty). Audit/test
     * helper (inclusion checks) — not for the simulation hot path.
     */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (std::size_t set = 0; set < numSets; ++set) {
            for (unsigned w = 0; w < p.assoc; ++w) {
                const Line &l = lines[set * p.assoc + w];
                if (l.valid)
                    fn(blockAddr(l.tag, set), l.dirty);
            }
        }
    }

    /** Invalidate everything. */
    void flush();

    const CacheParams &params() const { return p; }
    stats::Group &statGroup() { return group; }

    std::uint64_t hits() const { return numHits.value(); }
    std::uint64_t misses() const { return numMisses.value(); }

    double
    missRate() const
    {
        const auto total = hits() + misses();
        return total ? static_cast<double>(misses()) / total : 0.0;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /** Reconstruct a block's base address from its tag + set index. */
    Addr
    blockAddr(Addr tag, std::size_t set) const
    {
        return (tag * numSets + set) * p.blockBytes;
    }

    CacheParams p;
    std::size_t numSets;
    std::vector<Line> lines; //!< numSets * assoc, set-major
    std::uint64_t stamp = 0;

    stats::Group group;
    stats::Scalar numHits;
    stats::Scalar numMisses;
    stats::Scalar numWritebacks;
};

} // namespace direb

#endif // DIREB_MEM_CACHE_HH
