/**
 * @file
 * Shared memory hierarchy for 1..N cores: per-core private split L1s over
 * one shared, banked, inclusive L2 over a fixed-latency DRAM backend.
 *
 * Cores never touch caches directly — each one holds a MemPort (core id +
 * system pointer) and issues request/response transactions through it; the
 * response carries the modelled latency and which level served the access,
 * which the core feeds into its completion heap and stall attribution.
 *
 * Contract (enforced by tests/golden and test_mem_system):
 *
 *  - With one core the latency composition is exactly the legacy
 *    single-core model this subsystem replaced: L1 hit latency, plus
 *    L2 hit latency on an L1 miss, plus mem.lat on an L2 miss; dirty L1
 *    victims write back to the L2 at no modelled latency, dirty L2
 *    victims to DRAM likewise (write-buffer assumption). No coherence,
 *    no inclusion enforcement, no bank arbitration — cycle-identical to
 *    the pre-CMP simulator.
 *
 *  - With more than one core the shared-mode semantics switch on, keyed
 *    on topology (never on ExecMode — redundancy policy purity extends
 *    to the memory system):
 *      * MSI-style single-writer: a store invalidates the block in every
 *        other core's L1D (a dirty remote copy merges into the L2
 *        first); a load downgrades a remote modified copy to shared.
 *      * Inclusion: an L2 victim back-invalidates that block in every
 *        L1 of every core.
 *      * Bank arbitration: the k-th access to an L2 bank in one cycle
 *        pays k * l2.bank_lat extra.
 *    All loops run in core-index order, so a lockstep CMP tick is fully
 *    deterministic.
 */

#ifndef DIREB_MEM_MEM_SYSTEM_HH
#define DIREB_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"

namespace direb
{

namespace mem
{

/** One memory transaction as issued by a core. */
struct MemReq
{
    enum class Kind : std::uint8_t { Fetch, Load, Store };
    Kind kind = Kind::Load;
    Addr addr = invalidAddr;
    Cycle now = 0; //!< issue cycle (bank arbitration granularity)
};

/** The response: modelled latency plus which level supplied the block. */
struct MemResp
{
    enum class Served : std::uint8_t { L1, L2, Dram };
    Cycle latency = 0;
    Served servedBy = Served::L1;
};

class MemorySystem;

/**
 * A core's handle into the shared MemorySystem. Cheap value type: the
 * core id is baked in so the stages never carry topology knowledge.
 */
class MemPort
{
  public:
    MemPort() = default;
    MemPort(MemorySystem *system, unsigned core)
        : sys(system), coreId(core)
    {}

    MemResp request(const MemReq &req);

    /** Convenience wrappers for the three stages. @{ */
    MemResp fetch(Addr addr, Cycle now);
    MemResp load(Addr addr, Cycle now);
    MemResp store(Addr addr, Cycle now);
    /** @} */

    /** This core's private caches (geometry/stat inspection). @{ */
    Cache &l1i();
    Cache &l1d();
    /** @} */

    /** True when the backing system serves more than one core. */
    bool shared() const;

    unsigned core() const { return coreId; }
    MemorySystem &system() { return *sys; }
    bool valid() const { return sys != nullptr; }

  private:
    MemorySystem *sys = nullptr;
    unsigned coreId = 0;
};

/**
 * The hierarchy itself. Construct once per simulation; ports are handed
 * out per core. All state is preallocated in the constructor — the
 * request path performs zero heap allocations (test_alloc_steady).
 *
 * Config keys (defaults): l1i.size=65536, l1i.assoc=2, l1i.block=32,
 * l1i.lat=1; l1d.* likewise (lat=3); l2.size=1048576, l2.assoc=4,
 * l2.block=64, l2.lat=12; mem.lat=100; l2.banks=8, l2.bank_lat=1 (CMP
 * arbitration; inert with one core); dram.lat defaults to mem.lat.
 */
class MemorySystem
{
  public:
    MemorySystem(const Config &config, unsigned num_cores);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /** Latency of an instruction fetch by @p core. */
    MemResp fetchAccess(unsigned core, Addr addr, Cycle now);

    /** Latency of a data access by @p core. */
    MemResp dataAccess(unsigned core, Addr addr, bool is_write, Cycle now);

    MemPort port(unsigned core) { return MemPort(this, core); }

    unsigned numCores() const { return nCores; }
    bool shared() const { return nCores > 1; }

    Cache &l1i(unsigned core) { return cores_[core]->il1; }
    Cache &l1d(unsigned core) { return cores_[core]->dl1; }
    Cache &l2() { return ul2; }

    /**
     * The per-core "memhier" group (l1i + l1d; with one core the L2 is a
     * child too, reproducing the legacy core.memhier.l2.* stat names).
     */
    stats::Group &coreStatGroup(unsigned core)
    {
        return cores_[core]->group;
    }

    /**
     * The shared-fabric group ("mem": l2 + bus/dram/coherence counters).
     * Only meaningful — and only attached by the Chip — in CMP mode.
     */
    stats::Group &sharedStatGroup() { return sharedGroup; }

    /**
     * Panic unless the coherence invariants hold: inclusion (every valid
     * L1 block is present in the L2) and single-writer (no block dirty
     * in more than one L1D). Audit/test helper; shared mode only.
     */
    void auditCoherence() const;

    std::uint64_t bankConflictCount() const { return bankConflicts.value(); }
    std::uint64_t dramAccessCount() const { return dramAccesses.value(); }

  private:
    /** One core's private slice. */
    struct CoreCaches
    {
        CoreCaches(const CacheParams &ip, const CacheParams &dp)
            : il1(ip), dl1(dp)
        {
            group.addChild(&il1.statGroup());
            group.addChild(&dl1.statGroup());
        }

        Cache il1;
        Cache dl1;
        stats::Group group{"memhier"};
    };

    /**
     * Shared-L2 access for a fill on behalf of @p core: bank
     * arbitration + L2 probe + DRAM on miss + inclusion
     * back-invalidation of the L2 victim. Returns the latency beyond
     * the L1 and reports the serving level.
     */
    Cycle l2Fill(Addr addr, bool is_write, Cycle now,
                 MemResp::Served &served);

    /**
     * Non-latency-bearing L2 write (L1 victim writeback / coherence
     * merge): occupies a bank slot and keeps inclusion intact, but the
     * requester is not charged.
     */
    void l2Writeback(Addr addr, Cycle now);

    /** Extra cycles this access pays for its L2 bank this cycle. */
    Cycle bankDelay(Addr addr, Cycle now);

    /** Drop @p block_addr from every L1 (inclusion enforcement). */
    void backInvalidate(Addr block_addr);

    /** MSI pre-pass over the other cores' L1Ds. @{ */
    void storeCoherence(unsigned core, Addr addr, Cycle now);
    void loadCoherence(unsigned core, Addr addr, Cycle now);
    /** @} */

    unsigned nCores;
    std::vector<std::unique_ptr<CoreCaches>> cores_;
    Cache ul2;
    Cycle dramLatency;
    unsigned numBanks;
    Cycle bankLatency;

    /** Per-bank same-cycle access counts (arbitration state). @{ */
    std::vector<Cycle> bankStamp;
    std::vector<unsigned> bankCount;
    /** @} */

    stats::Group sharedGroup{"mem"};
    stats::Group busGroup{"l2bus"};
    stats::Group dramGroup{"dram"};
    stats::Group cohGroup{"coh"};
    stats::Scalar bankConflicts;
    stats::Scalar bankConflictCycles;
    stats::Scalar dramAccesses;
    stats::Scalar cohInvalidations;
    stats::Scalar cohDowngrades;
    stats::Scalar cohBackInvalidations;
};

inline MemResp
MemPort::fetch(Addr addr, Cycle now)
{
    return sys->fetchAccess(coreId, addr, now);
}

inline MemResp
MemPort::load(Addr addr, Cycle now)
{
    return sys->dataAccess(coreId, addr, false, now);
}

inline MemResp
MemPort::store(Addr addr, Cycle now)
{
    return sys->dataAccess(coreId, addr, true, now);
}

inline MemResp
MemPort::request(const MemReq &req)
{
    switch (req.kind) {
      case MemReq::Kind::Fetch: return fetch(req.addr, req.now);
      case MemReq::Kind::Load: return load(req.addr, req.now);
      case MemReq::Kind::Store: return store(req.addr, req.now);
    }
    return MemResp{};
}

inline Cache &MemPort::l1i() { return sys->l1i(coreId); }
inline Cache &MemPort::l1d() { return sys->l1d(coreId); }
inline bool MemPort::shared() const { return sys->shared(); }

} // namespace mem

} // namespace direb

#endif // DIREB_MEM_MEM_SYSTEM_HH
