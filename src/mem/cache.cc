#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace direb
{

Cache::Cache(const CacheParams &params) : p(params), group(params.name)
{
    fatal_if(p.blockBytes == 0 || !isPowerOf2(p.blockBytes),
             "%s: block size must be a power of two", p.name.c_str());
    fatal_if(p.assoc == 0, "%s: associativity must be positive",
             p.name.c_str());
    fatal_if(p.sizeBytes % (p.blockBytes * p.assoc) != 0,
             "%s: size not divisible by block*assoc", p.name.c_str());
    numSets = p.sizeBytes / (p.blockBytes * p.assoc);
    fatal_if(!isPowerOf2(numSets), "%s: set count must be a power of two",
             p.name.c_str());
    lines.resize(numSets * p.assoc);

    group.addScalar(&numHits, "hits", "cache hits");
    group.addScalar(&numMisses, "misses", "cache misses");
    group.addScalar(&numWritebacks, "writebacks", "dirty evictions");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / p.blockBytes) & (numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / p.blockBytes / numSets;
}

bool
Cache::contains(Addr addr) const
{
    const std::size_t base = setIndex(addr) * p.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < p.assoc; ++w) {
        const Line &l = lines[base + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * p.assoc;
    const Addr tag = tagOf(addr);
    ++stamp;

    AccessResult res;
    Line *victim = nullptr;
    for (unsigned w = 0; w < p.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == tag) {
            l.lruStamp = stamp;
            l.dirty = l.dirty || is_write;
            ++numHits;
            res.hit = true;
            return res;
        }
        if (!victim || !l.valid ||
            (victim->valid && l.lruStamp < victim->lruStamp)) {
            if (!victim || victim->valid)
                victim = &l;
        }
    }

    ++numMisses;
    panic_if(victim == nullptr, "no victim line");
    if (victim->valid && victim->dirty) {
        ++numWritebacks;
        res.writeback = true;
        // Reconstruct the victim block address from tag + set.
        res.writebackAddr =
            (victim->tag * numSets + set) * p.blockBytes;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = stamp;
    return res;
}

void
Cache::flush()
{
    for (auto &l : lines)
        l = Line{};
}

namespace
{

CacheParams
paramsFor(const Config &config, const std::string &prefix,
          std::size_t def_size, unsigned def_assoc, unsigned def_block,
          Cycle def_lat)
{
    CacheParams p;
    p.name = prefix;
    const std::string what = prefix == "l1i"   ? "L1 instruction cache"
                             : prefix == "l1d" ? "L1 data cache"
                                               : "unified L2 cache";
    p.sizeBytes = config.getUint(prefix + ".size", def_size,
                                 (what + " capacity in bytes").c_str());
    p.assoc = static_cast<unsigned>(config.getUint(
        prefix + ".assoc", def_assoc, (what + " associativity").c_str()));
    p.blockBytes = static_cast<unsigned>(config.getUint(
        prefix + ".block", def_block,
        (what + " block size in bytes").c_str()));
    p.hitLatency = config.getUint(prefix + ".lat", def_lat,
                                  (what + " hit latency in cycles").c_str());
    return p;
}

} // namespace

MemHierarchy::MemHierarchy(const Config &config)
    : il1(paramsFor(config, "l1i", 64 * 1024, 2, 32, 1)),
      dl1(paramsFor(config, "l1d", 64 * 1024, 2, 32, 3)),
      ul2(paramsFor(config, "l2", 1024 * 1024, 4, 64, 12)),
      memLatency(config.getUint("mem.lat", 100,
                                "main-memory access latency in cycles"))
{
    group.addChild(&il1.statGroup());
    group.addChild(&dl1.statGroup());
    group.addChild(&ul2.statGroup());
}

Cycle
MemHierarchy::l2Fill(Addr addr, bool is_write)
{
    const auto r2 = ul2.access(addr, is_write);
    if (r2.hit)
        return ul2.params().hitLatency;
    // L2 miss: go to memory; dirty L2 victims write back to memory at no
    // extra modelled latency (write buffer assumption).
    return ul2.params().hitLatency + memLatency;
}

Cycle
MemHierarchy::instAccess(Addr addr)
{
    const auto r1 = il1.access(addr, false);
    if (r1.hit)
        return il1.params().hitLatency;
    return il1.params().hitLatency + l2Fill(addr, false);
}

Cycle
MemHierarchy::dataAccess(Addr addr, bool is_write)
{
    const auto r1 = dl1.access(addr, is_write);
    Cycle lat = dl1.params().hitLatency;
    if (!r1.hit)
        lat += l2Fill(addr, false);
    if (r1.writeback)
        ul2.access(r1.writebackAddr, true);
    return lat;
}

} // namespace direb
