#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace direb
{

Cache::Cache(const CacheParams &params) : p(params), group(params.name)
{
    fatal_if(p.blockBytes == 0 || !isPowerOf2(p.blockBytes),
             "%s: block size must be a power of two", p.name.c_str());
    fatal_if(p.assoc == 0, "%s: associativity must be positive",
             p.name.c_str());
    fatal_if(p.sizeBytes % (p.blockBytes * p.assoc) != 0,
             "%s: size not divisible by block*assoc", p.name.c_str());
    numSets = p.sizeBytes / (p.blockBytes * p.assoc);
    fatal_if(!isPowerOf2(numSets), "%s: set count must be a power of two",
             p.name.c_str());
    lines.resize(numSets * p.assoc);

    group.addScalar(&numHits, "hits", "cache hits");
    group.addScalar(&numMisses, "misses", "cache misses");
    group.addScalar(&numWritebacks, "writebacks", "dirty evictions");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / p.blockBytes) & (numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / p.blockBytes / numSets;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const std::size_t base = setIndex(addr) * p.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < p.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == tag)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::containsDirty(Addr addr) const
{
    const Line *l = findLine(addr);
    return l && l->dirty;
}

bool
Cache::invalidate(Addr addr, bool *was_dirty)
{
    Line *l = findLine(addr);
    if (was_dirty)
        *was_dirty = l && l->dirty;
    if (!l)
        return false;
    *l = Line{};
    return true;
}

void
Cache::clearDirty(Addr addr)
{
    if (Line *l = findLine(addr))
        l->dirty = false;
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * p.assoc;
    const Addr tag = tagOf(addr);
    ++stamp;

    AccessResult res;
    Line *victim = nullptr;
    for (unsigned w = 0; w < p.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == tag) {
            l.lruStamp = stamp;
            l.dirty = l.dirty || is_write;
            ++numHits;
            res.hit = true;
            return res;
        }
        if (!victim || !l.valid ||
            (victim->valid && l.lruStamp < victim->lruStamp)) {
            if (!victim || victim->valid)
                victim = &l;
        }
    }

    ++numMisses;
    panic_if(victim == nullptr, "no victim line");
    if (victim->valid) {
        res.evicted = true;
        res.evictedAddr = blockAddr(victim->tag, set);
        if (victim->dirty) {
            ++numWritebacks;
            res.writeback = true;
            res.writebackAddr = res.evictedAddr;
        }
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = stamp;
    return res;
}

void
Cache::flush()
{
    for (auto &l : lines)
        l = Line{};
}

} // namespace direb
