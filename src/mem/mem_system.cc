#include "mem/mem_system.hh"

#include "common/logging.hh"

namespace direb
{

namespace mem
{

namespace
{

CacheParams
paramsFor(const Config &config, const std::string &prefix,
          std::size_t def_size, unsigned def_assoc, unsigned def_block,
          Cycle def_lat)
{
    CacheParams p;
    p.name = prefix;
    const std::string what = prefix == "l1i"   ? "L1 instruction cache"
                             : prefix == "l1d" ? "L1 data cache"
                                               : "unified L2 cache";
    p.sizeBytes = config.getUint(prefix + ".size", def_size,
                                 (what + " capacity in bytes").c_str());
    p.assoc = static_cast<unsigned>(config.getUint(
        prefix + ".assoc", def_assoc, (what + " associativity").c_str()));
    p.blockBytes = static_cast<unsigned>(config.getUint(
        prefix + ".block", def_block,
        (what + " block size in bytes").c_str()));
    p.hitLatency = config.getUint(prefix + ".lat", def_lat,
                                  (what + " hit latency in cycles").c_str());
    return p;
}

} // namespace

MemorySystem::MemorySystem(const Config &config, unsigned num_cores)
    : nCores(num_cores),
      ul2(paramsFor(config, "l2", 1024 * 1024, 4, 64, 12))
{
    fatal_if(nCores == 0, "MemorySystem needs at least one core");

    // L1 geometry is shared by all cores; read the keys once (the legacy
    // single-core key set, same descriptions) and stamp out one private
    // pair per core.
    const CacheParams ip = paramsFor(config, "l1i", 64 * 1024, 2, 32, 1);
    const CacheParams dp = paramsFor(config, "l1d", 64 * 1024, 2, 32, 3);
    const Cycle mem_lat = config.getUint(
        "mem.lat", 100, "main-memory access latency in cycles");

    // CMP-only knobs, read unconditionally so they register for
    // --list-config and count as consumed under Config::checkUnused().
    numBanks = static_cast<unsigned>(config.getUint(
        "l2.banks", 8, "shared-L2 bank count (CMP arbitration)"));
    bankLatency = config.getUint(
        "l2.bank_lat", 1,
        "extra cycles per same-cycle conflicting access to an L2 bank");
    dramLatency = config.getUint(
        "dram.lat", mem_lat,
        "DRAM backend latency in cycles (defaults to mem.lat)");
    fatal_if(numBanks == 0, "l2.banks must be positive");

    cores_.reserve(nCores);
    for (unsigned c = 0; c < nCores; ++c)
        cores_.push_back(std::make_unique<CoreCaches>(ip, dp));

    bankStamp.assign(numBanks, ~Cycle(0));
    bankCount.assign(numBanks, 0);

    if (nCores == 1) {
        // Legacy stat topology: the (nominally shared) L2 appears under
        // the single core's memhier group — core.memhier.l2.*.
        cores_[0]->group.addChild(&ul2.statGroup());
    } else {
        sharedGroup.addChild(&ul2.statGroup());
    }
    busGroup.addScalar(&bankConflicts, "conflicts",
                       "L2 accesses that lost same-cycle bank arbitration");
    busGroup.addScalar(&bankConflictCycles, "conflict_cycles",
                       "total extra cycles paid to L2 bank conflicts");
    dramGroup.addScalar(&dramAccesses, "accesses",
                        "demand fills served by the DRAM backend");
    cohGroup.addScalar(&cohInvalidations, "invalidations",
                       "remote L1D copies invalidated by stores");
    cohGroup.addScalar(&cohDowngrades, "downgrades",
                       "remote modified L1D copies downgraded by loads");
    cohGroup.addScalar(&cohBackInvalidations, "back_invalidations",
                       "L1 copies dropped to keep the L2 inclusive");
    sharedGroup.addChild(&busGroup);
    sharedGroup.addChild(&dramGroup);
    sharedGroup.addChild(&cohGroup);
}

Cycle
MemorySystem::bankDelay(Addr addr, Cycle now)
{
    if (nCores <= 1)
        return 0;
    const std::size_t b =
        static_cast<std::size_t>(addr / ul2.params().blockBytes) % numBanks;
    if (bankStamp[b] != now) {
        bankStamp[b] = now;
        bankCount[b] = 0;
    }
    const unsigned k = bankCount[b]++;
    if (k == 0)
        return 0;
    ++bankConflicts;
    const Cycle extra = k * bankLatency;
    bankConflictCycles += extra;
    return extra;
}

void
MemorySystem::backInvalidate(Addr block_addr)
{
    // An L2 block may span several (smaller) L1 blocks; drop them all.
    const Addr l2_block = ul2.params().blockBytes;
    const Addr l1_block = cores_[0]->dl1.params().blockBytes;
    for (auto &cc : cores_) {
        for (Addr a = block_addr; a < block_addr + l2_block;
             a += l1_block) {
            if (cc->il1.invalidate(a))
                ++cohBackInvalidations;
            if (cc->dl1.invalidate(a))
                ++cohBackInvalidations;
        }
    }
}

Cycle
MemorySystem::l2Fill(Addr addr, bool is_write, Cycle now,
                     MemResp::Served &served)
{
    const Cycle extra = bankDelay(addr, now);
    const auto r2 = ul2.access(addr, is_write);
    Cycle lat = ul2.params().hitLatency + extra;
    if (r2.hit) {
        served = MemResp::Served::L2;
    } else {
        // L2 miss: go to DRAM; dirty L2 victims write back to memory at
        // no extra modelled latency (write-buffer assumption).
        served = MemResp::Served::Dram;
        ++dramAccesses;
        lat += dramLatency;
        if (shared() && r2.evicted)
            backInvalidate(r2.evictedAddr);
    }
    return lat;
}

void
MemorySystem::l2Writeback(Addr addr, Cycle now)
{
    if (shared())
        bankDelay(addr, now); // occupies a bank; requester not charged
    const auto r2 = ul2.access(addr, true);
    if (shared() && !r2.hit && r2.evicted)
        backInvalidate(r2.evictedAddr);
}

void
MemorySystem::storeCoherence(unsigned core, Addr addr, Cycle now)
{
    for (unsigned o = 0; o < nCores; ++o) {
        if (o == core)
            continue;
        bool was_dirty = false;
        if (cores_[o]->dl1.invalidate(addr, &was_dirty)) {
            ++cohInvalidations;
            if (was_dirty)
                l2Writeback(addr, now); // merge the remote modified copy
        }
    }
}

void
MemorySystem::loadCoherence(unsigned core, Addr addr, Cycle now)
{
    for (unsigned o = 0; o < nCores; ++o) {
        if (o == core)
            continue;
        if (cores_[o]->dl1.containsDirty(addr)) {
            cores_[o]->dl1.clearDirty(addr); // M -> S
            ++cohDowngrades;
            l2Writeback(addr, now); // merge so the L2 copy is current
        }
    }
}

MemResp
MemorySystem::fetchAccess(unsigned core, Addr addr, Cycle now)
{
    CoreCaches &cc = *cores_[core];
    const auto r1 = cc.il1.access(addr, false);
    MemResp resp;
    resp.latency = cc.il1.params().hitLatency;
    if (!r1.hit)
        resp.latency += l2Fill(addr, false, now, resp.servedBy);
    return resp;
}

MemResp
MemorySystem::dataAccess(unsigned core, Addr addr, bool is_write, Cycle now)
{
    if (shared()) {
        if (is_write)
            storeCoherence(core, addr, now);
        else
            loadCoherence(core, addr, now);
    }

    CoreCaches &cc = *cores_[core];
    const auto r1 = cc.dl1.access(addr, is_write);
    MemResp resp;
    resp.latency = cc.dl1.params().hitLatency;
    if (!r1.hit)
        resp.latency += l2Fill(addr, false, now, resp.servedBy);
    if (r1.writeback)
        l2Writeback(r1.writebackAddr, now);
    return resp;
}

void
MemorySystem::auditCoherence() const
{
    for (unsigned c = 0; c < nCores; ++c) {
        // Inclusion: every valid L1 block must be resident in the L2.
        const auto check_inclusion = [&](Addr block, bool) {
            panic_if(!ul2.contains(block),
                     "inclusion violated: core %u holds %#llx but the "
                     "shared L2 does not", c,
                     static_cast<unsigned long long>(block));
        };
        if (shared()) {
            cores_[c]->il1.forEachValid(check_inclusion);
            cores_[c]->dl1.forEachValid(check_inclusion);
        }

        // Single-writer: a block dirty here must be absent (or at least
        // clean) in every other core's L1D.
        cores_[c]->dl1.forEachValid([&](Addr block, bool dirty) {
            if (!dirty)
                return;
            for (unsigned o = 0; o < nCores; ++o) {
                panic_if(o != c && cores_[o]->dl1.containsDirty(block),
                         "single-writer violated: %#llx dirty in core %u "
                         "and core %u L1D",
                         static_cast<unsigned long long>(block), c, o);
            }
        });
    }
}

} // namespace mem

} // namespace direb
