/**
 * @file
 * Simulation harness: one-call "run this workload under this config" used
 * by examples, tests and every bench binary, with golden-model
 * cross-checking against the functional VM.
 */

#ifndef DIREB_HARNESS_RUNNER_HH
#define DIREB_HARNESS_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "cpu/ooo_core.hh"
#include "vm/vm.hh"

namespace direb
{

namespace harness
{

/** Everything a bench needs from one simulation. */
struct SimResult
{
    CoreResult core;                     //!< cycles / IPC / stop reason
    std::map<std::string, double> stats; //!< flattened statistics snapshot
    std::string output;                  //!< program PUTC/PUTINT output
    std::string statsText;               //!< rendered statistics dump
    /**
     * Instructions fast-forwarded functionally before the timing run
     * (sweep.warmstart / ckpt.restore); 0 on a straight run. The
     * timing-side counters (core.cycles, core.archInsts, stats) cover
     * only the simulated suffix, so the architectural instruction total
     * of the whole program is core.archInsts + warmstartInsts.
     */
    std::uint64_t warmstartInsts = 0;
    /**
     * Per-core results when the run was a CMP (cmp.cores > 1); empty on
     * the single-core path. `core` then carries the chip aggregate
     * (cycles = max over cores, insts summed, stop = worst) and `stats`
     * uses core<i>.* / mem.* / cmp.* prefixes instead of core.*.
     */
    std::vector<CoreResult> cores;

    double ipc() const { return core.ipc; }

    /** Convenience accessor; 0.0 for unknown names. */
    double
    stat(const std::string &name) const
    {
        const auto it = stats.find(name);
        return it == stats.end() ? 0.0 : it->second;
    }
};

/** Default machine configuration (the paper's base SIE/DIE machine). */
Config baseConfig(const std::string &mode = "sie");

/**
 * Read cmp.cores from @p config (the one documented read site, shared
 * by run()/Sweep/dieirb-sim so the key registers identically
 * everywhere). 1 selects the legacy single-core path.
 */
unsigned cmpCores(const Config &config);

/**
 * Read cmp.bundle: the rate-mode workload mix of a CMP run (a named
 * workloads bundle or a comma-separated kernel list; empty = none).
 * Ignored — but still consumed for the unused-key audit — when
 * cmp.cores is 1.
 */
std::string cmpBundle(const Config &config);

/**
 * Run @p program under @p config — on a single OooCore, or, when
 * cmp.cores > 1, on a Chip of that many cores over a shared memory
 * hierarchy. In CMP mode the per-core programs come from cmp.bundle
 * (a named workloads bundle or comma-separated kernel list, assigned
 * round-robin); with no bundle every core runs @p program.
 *
 * After core construction every valid key has been consumed, so this
 * also audits @p config for typos (fatal on unknown keys).
 */
SimResult run(const Program &program, const Config &config,
              std::uint64_t max_insts = 50'000'000);

/**
 * Run an already-bound core (constructed or reset() against @p config)
 * to completion: run + trace export + consumed-key audit + snapshot.
 * This is run() minus the construction, for callers that reuse cores
 * through a harness::CorePool.
 */
SimResult runWithCore(OooCore &core, const Config &config,
                      std::uint64_t max_insts = 50'000'000);

/** Run a named kernel workload (see workloads::list()). */
SimResult runWorkload(const std::string &workload, const Config &config,
                      unsigned scale = 1,
                      std::uint64_t max_insts = 50'000'000);

/** Outcome of a golden (VM vs timing core) cross-check. */
struct GoldenResult
{
    std::string mismatch; //!< empty when VM and core agree
    SimResult sim;        //!< the timing-core run (stats/output included)

    bool ok() const { return mismatch.empty(); }
};

/**
 * Golden check: run @p program both functionally (VM) and on the timing
 * core, and compare stop reason, committed instruction count, program
 * output and the full architectural register files (FP registers by bit
 * pattern, so NaN payloads and signed zeroes must match exactly).
 *
 * The timing run's SimResult is returned so callers that also want the
 * statistics don't pay for a second full simulation.
 */
GoldenResult goldenRun(const Program &program, const Config &config,
                       std::uint64_t max_insts = 50'000'000);

/** Convenience wrapper: just the mismatch string of goldenRun(). */
std::string goldenCheck(const Program &program, const Config &config,
                        std::uint64_t max_insts = 50'000'000);

} // namespace harness

} // namespace direb

#endif // DIREB_HARNESS_RUNNER_HH
