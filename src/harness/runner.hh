/**
 * @file
 * Simulation harness: one-call "run this workload under this config" used
 * by examples, tests and every bench binary, with golden-model
 * cross-checking against the functional VM.
 */

#ifndef DIREB_HARNESS_RUNNER_HH
#define DIREB_HARNESS_RUNNER_HH

#include <map>
#include <string>

#include "common/config.hh"
#include "cpu/ooo_core.hh"
#include "vm/vm.hh"

namespace direb
{

namespace harness
{

/** Everything a bench needs from one simulation. */
struct SimResult
{
    CoreResult core;                     //!< cycles / IPC / stop reason
    std::map<std::string, double> stats; //!< flattened statistics snapshot
    std::string output;                  //!< program PUTC/PUTINT output
    std::string statsText;               //!< rendered statistics dump

    double ipc() const { return core.ipc; }

    /** Convenience accessor; 0.0 for unknown names. */
    double
    stat(const std::string &name) const
    {
        const auto it = stats.find(name);
        return it == stats.end() ? 0.0 : it->second;
    }
};

/** Default machine configuration (the paper's base SIE/DIE machine). */
Config baseConfig(const std::string &mode = "sie");

/** Run @p program on an OooCore configured by @p config. */
SimResult run(const Program &program, const Config &config,
              std::uint64_t max_insts = 50'000'000);

/** Run a named kernel workload (see workloads::list()). */
SimResult runWorkload(const std::string &workload, const Config &config,
                      unsigned scale = 1,
                      std::uint64_t max_insts = 50'000'000);

/**
 * Golden check: run @p program both functionally (VM) and on the timing
 * core, and compare committed instruction counts and program output.
 * @return empty string on success, else a human-readable mismatch report.
 */
std::string goldenCheck(const Program &program, const Config &config,
                        std::uint64_t max_insts = 50'000'000);

} // namespace harness

} // namespace direb

#endif // DIREB_HARNESS_RUNNER_HH
