/**
 * @file
 * Reusable-core pool for the sweep engine.
 *
 * Constructing an OooCore allocates the RUU ring, caches, predictor
 * tables and the full statistics tree; a sweep of hundreds of points
 * pays that once per point. A CorePool hands out idle cores rebound via
 * OooCore::reset() instead — reset() guarantees a run bit-identical to a
 * freshly constructed core (test_core_reset proves it), so pooling is
 * purely a construction-overhead optimisation with no observable effect
 * on results.
 */

#ifndef DIREB_HARNESS_CORE_POOL_HH
#define DIREB_HARNESS_CORE_POOL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/config.hh"
#include "cpu/ooo_core.hh"

namespace direb
{

namespace harness
{

/**
 * Thread-safe pool of reusable cores. acquire() pops an idle core and
 * reset()s it to the requested (program, config), constructing a new one
 * only when the pool is empty; release() returns a core for reuse. A
 * core whose acquire() threw (bad config) is destroyed, never pooled.
 */
class CorePool
{
  public:
    /**
     * Get a core bound to (@p program, @p config): a reset idle core
     * when one is available, a newly constructed one otherwise.
     * @p program must outlive the returned core's use of it.
     */
    std::unique_ptr<OooCore> acquire(const Program &program,
                                     const Config &config);

    /** Return a core to the idle list for later reuse. */
    void release(std::unique_ptr<OooCore> core);

    /** Cores constructed because no idle core was available. */
    std::uint64_t constructions() const;
    /** Acquisitions served by resetting an idle core. */
    std::uint64_t reuses() const;
    /** Idle cores currently held. */
    std::size_t idleCount() const;

  private:
    mutable std::mutex mtx;
    std::vector<std::unique_ptr<OooCore>> idle;
    std::uint64_t numConstructions = 0;
    std::uint64_t numReuses = 0;
};

} // namespace harness

} // namespace direb

#endif // DIREB_HARNESS_CORE_POOL_HH
