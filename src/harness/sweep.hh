/**
 * @file
 * Parallel sweep engine for the experiment harness.
 *
 * Every figure/table bench replays the same shape of work: a matrix of
 * independent (workload, Config) simulation points. A Sweep collects the
 * named points up front, runs them on a fixed thread pool, and hands the
 * results back in deterministic enqueue order regardless of completion
 * order, so a parallel sweep is bit-identical to a serial one
 * (test_sweep proves it on the Figure-7 matrix).
 *
 * Robustness per point: a run that exhausts its instruction budget is
 * classified as Timeout (partial statistics intact) instead of being
 * mistaken for a result; a FatalError (bad config, unknown workload) is
 * captured as an Error string after one retry, rather than killing the
 * whole sweep.
 *
 * Worker count: explicit constructor argument > --jobs/-j on the command
 * line (jobsFromArgs) > the DIREB_JOBS environment variable > hardware
 * concurrency.
 *
 * Core pooling: by default every worker draws cores from a shared
 * CorePool, rebinding idle cores via OooCore::reset() instead of
 * constructing one per point. reset() is bit-identical to fresh
 * construction (test_core_reset), so pooling only changes construction
 * overhead; setPooling(false) restores one-core-per-point.
 *
 * Result cache: setting sweep.cache=<dir> in a point's Config makes the
 * sweep content-address that point — key = hash of the program image,
 * the instruction budget and every explicit config override — and skip
 * the simulation entirely when <dir> holds a result for the key,
 * restoring status, statistics, program output and the rendered stats
 * text byte-for-byte. Only Ok and Timeout outcomes are cached (both are
 * deterministic); errors always re-run. Trace-file export is a side
 * effect of simulation and is NOT replayed on a cache hit.
 */

#ifndef DIREB_HARNESS_SWEEP_HH
#define DIREB_HARNESS_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "harness/core_pool.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "vm/program.hh"

namespace direb
{

namespace harness
{

/** How one sweep point ended. */
enum class PointStatus : std::uint8_t
{
    Ok,        //!< ran to HALT
    Timeout,   //!< exhausted the instruction/cycle budget (stats partial)
    Error,     //!< failed twice; see SweepResult::error
    Cancelled, //!< never started: the sweep was cancelled first
};

const char *pointStatusName(PointStatus status);

/** Outcome of one sweep point, in enqueue order. */
struct SweepResult
{
    std::string name;                        //!< point name as enqueued
    PointStatus status = PointStatus::Error;
    std::string error;    //!< captured failure/timeout description
    unsigned attempts = 0; //!< 1 normally, 2 after a retry
    bool fromCache = false; //!< restored from sweep.cache, not simulated
    SimResult sim;         //!< valid for Ok and (partially) Timeout

    bool ok() const { return status == PointStatus::Ok; }
};

/**
 * A batch of independent simulation points executed by a thread pool.
 *
 * Determinism contract: every point gets a private Config copy (the
 * consumed-key audit is per copy), a core all its own for the duration
 * of the run (pooled cores are rebound by reset(), which is
 * bit-identical to fresh construction) and its own config-seeded Rng,
 * and results are returned in enqueue order — so run() output does not
 * depend on the worker count, on scheduling or on pooling.
 */
class Sweep
{
  public:
    /** @param jobs worker threads; 0 = DIREB_JOBS or hw concurrency. */
    explicit Sweep(unsigned jobs = 0);

    /** Enqueue a named kernel workload point; returns its index. */
    std::size_t add(std::string name, std::string workload, Config config,
                    unsigned scale = 1,
                    std::uint64_t max_insts = 50'000'000);

    /** Enqueue a prebuilt-program point; returns its index. */
    std::size_t add(std::string name, Program program, Config config,
                    std::uint64_t max_insts = 50'000'000);

    std::size_t size() const { return points.size(); }
    unsigned jobs() const { return jobCount; }

    /** Enable/disable core reuse through the shared pool (default on). */
    void setPooling(bool on) { pooling = on; }
    bool poolingEnabled() const { return pooling; }

    /** The shared core pool (constructions()/reuses() for benches). */
    const CorePool &pool() const
    {
        return sharedPool ? *sharedPool : *corePool;
    }

    /**
     * Draw cores from @p shared instead of this sweep's own pool, so
     * many short-lived sweeps (e.g. one per server request) keep
     * reusing the same warm cores. @p shared must outlive every run();
     * nullptr restores the owned pool. Only honoured while pooling is
     * enabled.
     */
    void setSharedPool(CorePool *shared) { sharedPool = shared; }

    /**
     * Called once per finished point, in strict enqueue order (point i
     * is reported only after points 0..i-1 were), from whichever worker
     * completed the prefix; invocations are serialized under a mutex.
     * Cancelled points are reported too. This is what lets a server
     * stream per-point results while the sweep is still running without
     * giving up the determinism contract.
     */
    using PointCallback =
        std::function<void(const SweepResult &, std::size_t)>;

    /**
     * Run all points (blocking) and return results in enqueue order.
     * The queue is left intact, so run() may be called again.
     *
     * @p cancel, when non-null, is polled between points: once it
     * reads true, workers stop dequeuing and every point that has not
     * started yet comes back as PointStatus::Cancelled (cheaply — no
     * simulation). Points that already ran keep their deterministic
     * results, so a drained sweep's completed prefix is bit-identical
     * to the same points of an uncancelled run.
     *
     * @p on_point, when set, streams finished results in enqueue order
     * while later points are still running; an exception it throws is
     * rethrown to run()'s caller after the workers finish.
     */
    std::vector<SweepResult>
    run(const std::atomic<bool> *cancel = nullptr,
        const PointCallback &on_point = {}) const;

  private:
    struct Point
    {
        std::string name;
        std::string workload; //!< empty => use program
        Program program;
        Config config;
        unsigned scale = 1;
        std::uint64_t maxInsts = 50'000'000;
    };

    SweepResult runPoint(const Point &point) const;

    std::vector<Point> points;
    unsigned jobCount;
    bool pooling = true;
    /** Externally owned pool (setSharedPool); overrides corePool. */
    CorePool *sharedPool = nullptr;
    /** Shared by all workers (thread-safe); behind a unique_ptr so the
     *  pool's mutex does not make Sweep unmovable. */
    mutable std::unique_ptr<CorePool> corePool =
        std::make_unique<CorePool>();
};

/**
 * Content address of one sweep point: FNV-1a 64 over the program image
 * (text words, data bytes, entry point), the instruction budget and
 * every explicit config override except sweep.cache. This is the key
 * the result cache files are named after (pointCacheKeyHex) and the key
 * dieirb-coord consistent-hashes onto its backend ring, so a sweep
 * sharded across backends keeps each point's cache entry on the backend
 * that owns the point. @{
 */
std::uint64_t pointCacheKey(const Program &program, const Config &config,
                            std::uint64_t max_insts);
std::string pointCacheKeyHex(const Program &program, const Config &config,
                             std::uint64_t max_insts);
/** @} */

/**
 * Schema version stamped into every sweep.cache entry file. An entry
 * whose version field differs (older build, foreign file) is treated as
 * a cache miss and re-simulated — a format change can never silently
 * read stale-shaped entries. History: v1 = PR-4 original shape; v2
 * added the warmstart_insts field (checkpoint warm-start prefix).
 */
constexpr unsigned sweepCacheVersion = 2;

/**
 * The canonical serialisation of one Ok/Timeout result as a sweep.cache
 * entry: sweepCacheEntryJson() builds the JSON document,
 * renderSweepCacheEntry() the exact file bytes
 * (dump(2, full_precision) + newline). Exported so the columnar result
 * store (src/store/) can re-render parsed entries byte-identically. @{
 */
Json sweepCacheEntryJson(const SweepResult &result);
std::string renderSweepCacheEntry(const SweepResult &result);
/** @} */

/**
 * Parse @p text as a current-version cache entry into @p result
 * (including the stored point name). Returns false — never throws — on
 * malformed JSON, a version mismatch or a missing/ill-typed field, so
 * callers treat anything unparsable as a miss.
 */
bool parseSweepCacheEntry(const std::string &text, SweepResult &result);

/** Worker count from DIREB_JOBS, else hardware concurrency (>= 1). */
unsigned defaultJobs();

/** Worker count from a --jobs/-j N or --jobs=N argument, else defaultJobs. */
unsigned jobsFromArgs(int argc, char **argv);

/** The SimResult of an Ok point; fatal() with the point's error if not. */
const SimResult &requireOk(const SweepResult &result);

/** Generic JSON for one point: name/status/attempts/cycles/insts/ipc. */
Json resultJson(const SweepResult &result);

} // namespace harness

} // namespace direb

#endif // DIREB_HARNESS_SWEEP_HH
