#include "harness/core_pool.hh"

#include <utility>

namespace direb
{

namespace harness
{

std::unique_ptr<OooCore>
CorePool::acquire(const Program &program, const Config &config)
{
    std::unique_ptr<OooCore> core;
    {
        const std::lock_guard<std::mutex> lock(mtx);
        if (!idle.empty()) {
            core = std::move(idle.back());
            idle.pop_back();
        }
    }
    // Configure outside the lock: reset()/construction is the expensive
    // part and may throw (bad config), in which case the core is simply
    // destroyed here and never returned to the pool.
    if (core) {
        core->reset(program, config);
        const std::lock_guard<std::mutex> lock(mtx);
        ++numReuses;
    } else {
        core = std::make_unique<OooCore>(program, config);
        const std::lock_guard<std::mutex> lock(mtx);
        ++numConstructions;
    }
    return core;
}

void
CorePool::release(std::unique_ptr<OooCore> core)
{
    if (!core)
        return;
    const std::lock_guard<std::mutex> lock(mtx);
    idle.push_back(std::move(core));
}

std::uint64_t
CorePool::constructions() const
{
    const std::lock_guard<std::mutex> lock(mtx);
    return numConstructions;
}

std::uint64_t
CorePool::reuses() const
{
    const std::lock_guard<std::mutex> lock(mtx);
    return numReuses;
}

std::size_t
CorePool::idleCount() const
{
    const std::lock_guard<std::mutex> lock(mtx);
    return idle.size();
}

} // namespace harness

} // namespace direb
