#include "harness/report.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace direb
{

namespace harness
{

Table::Table(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    panic_if(header.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    panic_if(rows.empty(), "cell() before row()");
    rows.back().push_back(text);
    return *this;
}

Table &
Table::num(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return cell(buf);
}

Table &
Table::pct(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return cell(buf);
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    const auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string v = c < cells.size() ? cells[c] : "";
            if (c == 0) {
                line += v + std::string(widths[c] - v.size(), ' ');
            } else {
                line += std::string(widths[c] - v.size(), ' ') + v;
            }
            if (c + 1 < widths.size())
                line += "  ";
        }
        return line + "\n";
    };

    std::string out = render_row(header);
    std::size_t total = 0;
    for (const auto w : widths)
        total += w;
    out += std::string(total + 2 * (widths.size() - 1), '-') + "\n";
    for (const auto &r : rows)
        out += render_row(r);
    return out;
}

void
banner(const std::string &experiment, const std::string &claim)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper: %s\n", claim.c_str());
    std::printf("==================================================="
                "===========================\n\n");
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (const double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (const double v : values) {
        panic_if(v <= 0.0, "geomean needs positive values");
        s += std::log(v);
    }
    return std::exp(s / static_cast<double>(values.size()));
}

} // namespace harness

} // namespace direb
