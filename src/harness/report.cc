#include "harness/report.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace direb
{

namespace harness
{

Table::Table(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    panic_if(header.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    panic_if(rows.empty(), "cell() before row()");
    rows.back().push_back(text);
    return *this;
}

Table &
Table::num(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return cell(buf);
}

Table &
Table::pct(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return cell(buf);
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    const auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string v = c < cells.size() ? cells[c] : "";
            if (c == 0) {
                line += v + std::string(widths[c] - v.size(), ' ');
            } else {
                line += std::string(widths[c] - v.size(), ' ') + v;
            }
            if (c + 1 < widths.size())
                line += "  ";
        }
        // The left-aligned first column pads to full width; drop the
        // trailing spaces that leaves on short rows (and on one-column
        // tables, where every line would otherwise end padded).
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(header);
    std::size_t total = 0;
    for (const auto w : widths)
        total += w;
    out += std::string(total + 2 * (widths.size() - 1), '-') + "\n";
    for (const auto &r : rows)
        out += render_row(r);
    return out;
}

void
banner(const std::string &experiment, const std::string &claim)
{
    std::printf("\n================================================="
                "=============================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper: %s\n", claim.c_str());
    std::printf("==================================================="
                "===========================\n\n");
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (const double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    double s = 0.0;
    std::size_t used = 0;
    for (const double v : values) {
        if (v <= 0.0 || std::isnan(v))
            continue;
        s += std::log(v);
        ++used;
    }
    if (used < values.size()) {
        warn("geomean: skipped %zu non-positive value(s) of %zu",
             values.size() - used, values.size());
    }
    return used == 0 ? 0.0 : std::exp(s / static_cast<double>(used));
}

Json::Json(std::uint64_t v)
    : kind(Kind::Number), number(static_cast<double>(v)), integral(true)
{
    // Clamp to the signed print path; stats never approach the limit.
    panic_if(v > static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max()),
             "json: integer too large");
    integer = static_cast<std::int64_t>(v);
}

Json
Json::object()
{
    Json j;
    j.kind = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind = Kind::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    panic_if(kind != Kind::Object, "json: set() on a non-object");
    for (auto &[k, v] : members) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    panic_if(kind != Kind::Array, "json: push() on a non-array");
    elements.push_back(std::move(value));
    return *this;
}

std::size_t
Json::size() const
{
    switch (kind) {
      case Kind::Object: return members.size();
      case Kind::Array: return elements.size();
      default: return 0;
    }
}

double
Json::asNumber() const
{
    panic_if(kind != Kind::Number, "json: asNumber() on a non-number");
    return number;
}

const std::string &
Json::asString() const
{
    panic_if(kind != Kind::String, "json: asString() on a non-string");
    return text;
}

bool
Json::asBool() const
{
    panic_if(kind != Kind::Bool, "json: asBool() on a non-bool");
    return boolean;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json &
Json::at(std::size_t i) const
{
    panic_if(kind != Kind::Array, "json: at() on a non-array");
    panic_if(i >= elements.size(), "json: index %zu out of range (%zu)", i,
             elements.size());
    return elements[i];
}

const std::string &
Json::memberName(std::size_t i) const
{
    panic_if(kind != Kind::Object, "json: memberName() on a non-object");
    panic_if(i >= members.size(), "json: member %zu out of range (%zu)", i,
             members.size());
    return members[i].first;
}

const Json &
Json::memberValue(std::size_t i) const
{
    panic_if(kind != Kind::Object, "json: memberValue() on a non-object");
    panic_if(i >= members.size(), "json: member %zu out of range (%zu)", i,
             members.size());
    return members[i].second;
}

namespace
{

/**
 * Recursive-descent JSON reader over [pos, text.size()). The server
 * feeds this raw network bytes, so it is hardened for untrusted input:
 * nesting is capped (deep recursion would otherwise exhaust the stack),
 * duplicate object keys are rejected (silent last-wins masks request
 * smuggling), and trailing garbage after the document is an error.
 */
class JsonParser
{
  public:
    /** Deepest object/array nesting accepted; beyond this, fatal(). */
    static constexpr int maxDepth = 64;

    explicit JsonParser(const std::string &text) : src(text) {}

    Json
    parse()
    {
        Json v = value(0);
        skipSpace();
        fatal_if(pos != src.size(), "json: trailing garbage at offset %zu",
                 pos);
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' || src[pos] == '\n' ||
                src[pos] == '\r')) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipSpace();
        fatal_if(pos >= src.size(), "json: unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        fatal_if(peek() != c, "json: expected '%c' at offset %zu", c, pos);
        ++pos;
    }

    bool
    consume(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (src.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    Json
    value(int depth)
    {
        fatal_if(depth >= maxDepth,
                 "json: nesting deeper than %d at offset %zu", maxDepth,
                 pos);
        const char c = peek();
        switch (c) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return Json(string());
          case 't':
            fatal_if(!consume("true"), "json: bad literal at offset %zu",
                     pos);
            return Json(true);
          case 'f':
            fatal_if(!consume("false"), "json: bad literal at offset %zu",
                     pos);
            return Json(false);
          case 'n':
            fatal_if(!consume("null"), "json: bad literal at offset %zu",
                     pos);
            return Json();
          default:
            return number();
        }
    }

    Json
    object(int depth)
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        while (true) {
            fatal_if(peek() != '"', "json: expected key at offset %zu",
                     pos);
            std::string key = string();
            fatal_if(obj.find(key) != nullptr,
                     "json: duplicate object key '%s' at offset %zu",
                     key.c_str(), pos);
            expect(':');
            obj.set(key, value(depth + 1));
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    array(int depth)
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        while (true) {
            arr.push(value(depth + 1));
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            fatal_if(pos >= src.size(), "json: unterminated string");
            const char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            fatal_if(pos >= src.size(), "json: unterminated escape");
            const char esc = src[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                fatal_if(pos + 4 > src.size(), "json: bad \\u escape");
                const unsigned long code =
                    std::strtoul(src.substr(pos, 4).c_str(), nullptr, 16);
                pos += 4;
                // Exporters only escape control characters; anything in
                // the BMP round-trips as UTF-8 well enough for reports.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fatal("json: bad escape '\\%c'", esc);
            }
        }
    }

    Json
    number()
    {
        skipSpace();
        const std::size_t start = pos;
        if (pos < src.size() && (src[pos] == '-' || src[pos] == '+'))
            ++pos;
        bool fractional = false;
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == 'e' || src[pos] == 'E' ||
                src[pos] == '+' || src[pos] == '-')) {
            if (src[pos] == '.' || src[pos] == 'e' || src[pos] == 'E')
                fractional = true;
            ++pos;
        }
        fatal_if(pos == start, "json: expected a value at offset %zu",
                 start);
        const std::string tok = src.substr(start, pos - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        fatal_if(end != tok.c_str() + tok.size(), "json: bad number '%s'",
                 tok.c_str());
        if (!fractional && v >= -9.0e18 && v <= 9.0e18)
            return Json(static_cast<std::int64_t>(v));
        return Json(v);
    }

    const std::string &src;
    std::size_t pos = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return JsonParser(text).parse();
}

namespace
{

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::write(std::string &out, int indent, int depth,
            bool full_precision) const
{
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1),
                          ' ');
    const std::string closePad(static_cast<std::size_t>(indent) * depth,
                               ' ');
    const char *nl = indent > 0 ? "\n" : "";
    switch (kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Number:
        if (!std::isfinite(number)) {
            out += "null"; // JSON has no NaN/Inf
        } else if (integral) {
            out += std::to_string(integer);
        } else if (full_precision) {
            // Shortest representation that round-trips exactly: cached
            // sweep results are restored through parse() and must
            // compare bit-equal to the original doubles.
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.15g", number);
            if (std::strtod(buf, nullptr) != number)
                std::snprintf(buf, sizeof(buf), "%.17g", number);
            out += buf;
        } else {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.12g", number);
            out += buf;
        }
        break;
      case Kind::String:
        writeEscaped(out, text);
        break;
      case Kind::Object:
        if (members.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members.size(); ++i) {
            out += nl;
            out += pad;
            writeEscaped(out, members[i].first);
            out += ": ";
            members[i].second.write(out, indent, depth + 1, full_precision);
            if (i + 1 < members.size())
                out += ',';
        }
        out += nl;
        out += closePad;
        out += '}';
        break;
      case Kind::Array:
        if (elements.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < elements.size(); ++i) {
            out += nl;
            out += pad;
            elements[i].write(out, indent, depth + 1, full_precision);
            if (i + 1 < elements.size())
                out += ',';
        }
        out += nl;
        out += closePad;
        out += ']';
        break;
    }
}

std::string
Json::dump(int indent, bool full_precision) const
{
    std::string out;
    write(out, indent, 0, full_precision);
    return out;
}

void
writeJsonReport(const std::string &path, const Json &root)
{
    const std::string body = root.dump(2) + "\n";
    if (path == "-") {
        std::fwrite(body.data(), 1, body.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    fatal_if(!f, "cannot write %s", path.c_str());
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
}

} // namespace harness

} // namespace direb
