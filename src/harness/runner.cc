#include "harness/runner.hh"

#include <bit>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "cpu/chip.hh"
#include "store/checkpoint.hh"
#include "trace/export.hh"
#include "vm/checkpoint.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace harness
{

Config
baseConfig(const std::string &mode)
{
    Config c;
    c.set("core.mode", mode);
    return c;
}

unsigned
cmpCores(const Config &config)
{
    const unsigned n = static_cast<unsigned>(config.getUint(
        "cmp.cores", 1,
        "cores on the simulated chip (1 = legacy single-core path; >1 "
        "runs a lockstep CMP over a shared L2)"));
    fatal_if(n == 0, "cmp.cores must be positive");
    cmpBundle(config); // consume the companion key on every path
    return n;
}

std::string
cmpBundle(const Config &config)
{
    return config.getString(
        "cmp.bundle", "",
        "rate-mode workload bundle for CMP runs: a named mix "
        "(workloads::bundles()) or a comma-separated kernel list, "
        "assigned to cores round-robin; empty = every core runs the "
        "given program");
}

namespace
{

SimResult
snapshot(OooCore &core, const CoreResult &cr)
{
    SimResult r;
    r.core = cr;
    r.stats = core.statGroup().snapshot();
    r.output = core.archState().out;
    r.statsText = core.statGroup().dump();
    return r;
}

/**
 * Render the finished run's event buffer per trace.path/trace.format.
 * Both keys are read unconditionally (the Config unused-key audit must
 * accept them with tracing off); with no path the buffer stays in-memory
 * only — tests inspect it through OooCore::tracer().
 */
void
exportTraces(OooCore &core, const Config &config)
{
    const std::string path = config.getString(
        "trace.path", "",
        "write the event trace here after the run (empty = keep "
        "in-memory)");
    const std::string format = config.getString(
        "trace.format", "both",
        "trace export format: konata, chrome or both");
    fatal_if(format != "konata" && format != "chrome" && format != "both",
             "unknown trace.format '%s' (expected konata, chrome or both)",
             format.c_str());
    // "-" streams to stdout, where only one exporter can write.
    fatal_if(path == "-" && format == "both",
             "trace.path=- needs trace.format=konata or chrome");
    if (core.tracer() == nullptr || path.empty())
        return;
    if (format == "konata" || format == "both")
        trace::exportKonata(*core.tracer(), path);
    if (format == "chrome" || format == "both") {
        const std::string chrome_path =
            format == "chrome" ? path : path + ".json";
        trace::exportChromeTrace(*core.tracer(), chrome_path);
    }
}

/** A resolved warm-start request: insts == 0 means "cold start". */
struct Warmstart
{
    std::uint64_t insts = 0;
    ArchCheckpoint ck;
};

/** Shared doc strings: these keys are read on every run path. @{ */
constexpr const char *restoreDesc =
    "restore architectural state from this checkpoint file before the "
    "timing run (see dieirb-sim --checkpoint-at/--checkpoint-out)";
constexpr const char *warmstartDesc =
    "fast-forward this many instructions on the functional VM before "
    "the timing run (0 = simulate everything; must be < the budget)";
constexpr const char *warmstartDirDesc =
    "cache directory for warm-start checkpoints, content-addressed by "
    "program image and prefix length (empty = recompute every time)";
/** @} */

/**
 * Read ckpt.restore / sweep.warmstart / sweep.warmstart_dir and produce
 * the checkpoint to apply before the timing run, if any. A warm-start
 * prefix is fast-forwarded on the functional VM (and, when a cache
 * directory is given, persisted under its content address so repeated
 * sweeps reuse it); a corrupt or foreign cache entry is recomputed, not
 * trusted. All three keys are consumed on every call so the unused-key
 * audit accepts them regardless of path taken.
 */
Warmstart
resolveWarmstart(const Program &program, const Config &config,
                 std::uint64_t max_insts)
{
    const std::string restore =
        config.getString("ckpt.restore", "", restoreDesc);
    const std::uint64_t warm =
        config.getUint("sweep.warmstart", 0, warmstartDesc);
    const std::string warm_dir =
        config.getString("sweep.warmstart_dir", "", warmstartDirDesc);

    Warmstart w;
    if (!restore.empty()) {
        fatal_if(warm != 0,
                 "ckpt.restore and sweep.warmstart are mutually "
                 "exclusive");
        w.ck = store::loadCheckpoint(restore);
        fatal_if(w.ck.programFnv != programImageFnv(program),
                 "checkpoint %s was captured from a different program",
                 restore.c_str());
        fatal_if(w.ck.insts >= max_insts,
                 "checkpoint %s is at instruction %llu, past the "
                 "%llu-instruction budget",
                 restore.c_str(),
                 static_cast<unsigned long long>(w.ck.insts),
                 static_cast<unsigned long long>(max_insts));
        w.insts = w.ck.insts;
        return w;
    }
    if (warm == 0)
        return w;
    fatal_if(warm >= max_insts,
             "sweep.warmstart=%llu consumes the whole %llu-instruction "
             "budget",
             static_cast<unsigned long long>(warm),
             static_cast<unsigned long long>(max_insts));

    const std::uint64_t fnv = programImageFnv(program);
    std::string cache_path;
    if (!warm_dir.empty()) {
        cache_path = warm_dir + "/" +
                     store::checkpointKeyHex(fnv, warm) + ".ckpt";
        if (std::filesystem::exists(cache_path)) {
            try {
                w.ck = store::loadCheckpoint(cache_path);
                if (w.ck.programFnv == fnv && w.ck.insts == warm) {
                    w.insts = warm;
                    return w;
                }
                warn("warm-start cache %s holds a different run; "
                     "recomputing",
                     cache_path.c_str());
            } catch (const FatalError &e) {
                warn("warm-start cache %s is unreadable (%s); "
                     "recomputing",
                     cache_path.c_str(), e.what());
            }
        }
    }
    w.ck = fastForward(program, warm);
    w.insts = warm;
    if (!cache_path.empty())
        store::saveCheckpoint(cache_path, w.ck);
    return w;
}

/**
 * Consume the warm-start keys on paths that cannot honour them (CMP
 * runs, the golden cross-check) and reject any explicit request: a
 * silently ignored warm-start would report wrong timing.
 */
void
rejectWarmstart(const Config &config, const char *why)
{
    const std::string restore =
        config.getString("ckpt.restore", "", restoreDesc);
    const std::uint64_t warm =
        config.getUint("sweep.warmstart", 0, warmstartDesc);
    config.getString("sweep.warmstart_dir", "", warmstartDirDesc);
    fatal_if(!restore.empty() || warm != 0,
             "ckpt.restore / sweep.warmstart are not supported %s", why);
}

/**
 * The CMP path of run(): build the per-core programs (cmp.bundle or N
 * copies of @p program), run a Chip to completion, and flatten the chip
 * snapshot into a SimResult.
 */
SimResult
runChip(const Program &program, const Config &config, unsigned n_cores,
        std::uint64_t max_insts)
{
    rejectWarmstart(config, "in CMP mode (cmp.cores > 1)");
    const std::string bundle = cmpBundle(config);

    std::vector<Program> bundle_progs;
    std::vector<const Program *> progs;
    if (!bundle.empty()) {
        bundle_progs = workloads::buildBundle(bundle, n_cores);
        for (const Program &p : bundle_progs)
            progs.push_back(&p);
    } else {
        progs.assign(n_cores, &program);
    }

    Chip chip(progs, config);
    const Chip::Result cr = chip.run(max_insts);

    // The per-core tracers stay in-memory only: consume the export keys
    // (the unused-key audit must still accept them) but warn rather than
    // write N interleaved files.
    const std::string trace_path = config.getString(
        "trace.path", "",
        "write the event trace here after the run (empty = keep "
        "in-memory)");
    config.getString("trace.format", "both",
                     "trace export format: konata, chrome or both");
    if (!trace_path.empty())
        warn("trace.path is ignored in CMP mode (cmp.cores > 1)");
    config.checkUnused();

    SimResult r;
    r.core.stop = cr.stop;
    r.core.cycles = cr.cycles;
    r.core.archInsts = cr.archInsts;
    r.core.ipc = cr.ipc;
    for (const CoreResult &c : cr.cores)
        r.core.ruuEntriesCommitted += c.ruuEntriesCommitted;
    r.cores = cr.cores;
    r.stats = chip.statGroup().snapshot();
    r.output = chip.output();
    r.statsText = chip.statGroup().dump();
    return r;
}

} // namespace

SimResult
run(const Program &program, const Config &config, std::uint64_t max_insts)
{
    const unsigned n_cores = cmpCores(config);
    if (n_cores > 1)
        return runChip(program, config, n_cores, max_insts);
    OooCore core(program, config);
    return runWithCore(core, config, max_insts);
}

SimResult
runWithCore(OooCore &core, const Config &config, std::uint64_t max_insts)
{
    const Warmstart warm =
        resolveWarmstart(core.program(), config, max_insts);
    if (warm.insts) {
        core.applyArchCheckpoint(warm.ck);
        store::noteCheckpointRestore();
    }
    // The timing core simulates only the suffix: its instruction budget
    // shrinks by the prefix so warm and cold runs stop at the same
    // architectural instruction.
    const CoreResult cr = core.run(max_insts - warm.insts);
    exportTraces(core, config);
    config.checkUnused(); // every valid key was consumed by binding
    SimResult r = snapshot(core, cr);
    r.warmstartInsts = warm.insts;
    return r;
}

SimResult
runWorkload(const std::string &workload, const Config &config,
            unsigned scale, std::uint64_t max_insts)
{
    const Program prog = workloads::build(workload, scale);
    return run(prog, config, max_insts);
}

GoldenResult
goldenRun(const Program &program, const Config &config,
          std::uint64_t max_insts)
{
    fatal_if(cmpCores(config) > 1,
             "the golden VM cross-check is single-core only "
             "(cmp.cores=1)");
    // The cross-check compares the VM's full-program run against the
    // core's, so a fast-forwarded prefix would always diverge.
    rejectWarmstart(config, "under the golden VM cross-check");
    Vm vm(program);
    const StopReason vm_stop = vm.run(max_insts);

    OooCore core(program, config);
    const CoreResult tr = core.run(max_insts);
    exportTraces(core, config);
    config.checkUnused();

    GoldenResult res;
    res.sim = snapshot(core, tr);

    char buf[256];
    if (vm_stop != tr.stop) {
        std::snprintf(buf, sizeof(buf),
                      "stop reason mismatch: vm=%d core=%d",
                      static_cast<int>(vm_stop), static_cast<int>(tr.stop));
        res.mismatch = buf;
        return res;
    }
    if (vm.instCount() != tr.archInsts) {
        std::snprintf(buf, sizeof(buf),
                      "instruction count mismatch: vm=%llu core=%llu",
                      static_cast<unsigned long long>(vm.instCount()),
                      static_cast<unsigned long long>(tr.archInsts));
        res.mismatch = buf;
        return res;
    }
    if (vm.state().out != core.archState().out) {
        res.mismatch = "program output mismatch: vm='" + vm.state().out +
                       "' core='" + core.archState().out + "'";
        return res;
    }
    for (unsigned r = 0; r < numIntRegs; ++r) {
        if (vm.state().readIntReg(r) != core.archState().readIntReg(r)) {
            std::snprintf(buf, sizeof(buf),
                          "x%u mismatch: vm=%llx core=%llx", r,
                          static_cast<unsigned long long>(
                              vm.state().readIntReg(r)),
                          static_cast<unsigned long long>(
                              core.archState().readIntReg(r)));
            res.mismatch = buf;
            return res;
        }
    }
    for (unsigned r = 0; r < numFpRegs; ++r) {
        // RegVal holds the raw IEEE-754 bits, so an integer compare is a
        // bit-pattern compare: any-NaN==any-NaN only for identical
        // payloads, and +0.0 vs -0.0 is reported as a divergence.
        const RegVal v = vm.state().readFpReg(r);
        const RegVal c = core.archState().readFpReg(r);
        if (v != c) {
            std::snprintf(buf, sizeof(buf),
                          "f%u mismatch: vm=%016llx (%g) core=%016llx (%g)",
                          r, static_cast<unsigned long long>(v),
                          std::bit_cast<double>(v),
                          static_cast<unsigned long long>(c),
                          std::bit_cast<double>(c));
            res.mismatch = buf;
            return res;
        }
    }
    return res;
}

std::string
goldenCheck(const Program &program, const Config &config,
            std::uint64_t max_insts)
{
    return goldenRun(program, config, max_insts).mismatch;
}

} // namespace harness

} // namespace direb
