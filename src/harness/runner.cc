#include "harness/runner.hh"

#include <bit>
#include <cstdio>

#include "common/logging.hh"
#include "cpu/chip.hh"
#include "trace/export.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace harness
{

Config
baseConfig(const std::string &mode)
{
    Config c;
    c.set("core.mode", mode);
    return c;
}

unsigned
cmpCores(const Config &config)
{
    const unsigned n = static_cast<unsigned>(config.getUint(
        "cmp.cores", 1,
        "cores on the simulated chip (1 = legacy single-core path; >1 "
        "runs a lockstep CMP over a shared L2)"));
    fatal_if(n == 0, "cmp.cores must be positive");
    cmpBundle(config); // consume the companion key on every path
    return n;
}

std::string
cmpBundle(const Config &config)
{
    return config.getString(
        "cmp.bundle", "",
        "rate-mode workload bundle for CMP runs: a named mix "
        "(workloads::bundles()) or a comma-separated kernel list, "
        "assigned to cores round-robin; empty = every core runs the "
        "given program");
}

namespace
{

SimResult
snapshot(OooCore &core, const CoreResult &cr)
{
    SimResult r;
    r.core = cr;
    r.stats = core.statGroup().snapshot();
    r.output = core.archState().out;
    r.statsText = core.statGroup().dump();
    return r;
}

/**
 * Render the finished run's event buffer per trace.path/trace.format.
 * Both keys are read unconditionally (the Config unused-key audit must
 * accept them with tracing off); with no path the buffer stays in-memory
 * only — tests inspect it through OooCore::tracer().
 */
void
exportTraces(OooCore &core, const Config &config)
{
    const std::string path = config.getString(
        "trace.path", "",
        "write the event trace here after the run (empty = keep "
        "in-memory)");
    const std::string format = config.getString(
        "trace.format", "both",
        "trace export format: konata, chrome or both");
    fatal_if(format != "konata" && format != "chrome" && format != "both",
             "unknown trace.format '%s' (expected konata, chrome or both)",
             format.c_str());
    // "-" streams to stdout, where only one exporter can write.
    fatal_if(path == "-" && format == "both",
             "trace.path=- needs trace.format=konata or chrome");
    if (core.tracer() == nullptr || path.empty())
        return;
    if (format == "konata" || format == "both")
        trace::exportKonata(*core.tracer(), path);
    if (format == "chrome" || format == "both") {
        const std::string chrome_path =
            format == "chrome" ? path : path + ".json";
        trace::exportChromeTrace(*core.tracer(), chrome_path);
    }
}

/**
 * The CMP path of run(): build the per-core programs (cmp.bundle or N
 * copies of @p program), run a Chip to completion, and flatten the chip
 * snapshot into a SimResult.
 */
SimResult
runChip(const Program &program, const Config &config, unsigned n_cores,
        std::uint64_t max_insts)
{
    const std::string bundle = cmpBundle(config);

    std::vector<Program> bundle_progs;
    std::vector<const Program *> progs;
    if (!bundle.empty()) {
        bundle_progs = workloads::buildBundle(bundle, n_cores);
        for (const Program &p : bundle_progs)
            progs.push_back(&p);
    } else {
        progs.assign(n_cores, &program);
    }

    Chip chip(progs, config);
    const Chip::Result cr = chip.run(max_insts);

    // The per-core tracers stay in-memory only: consume the export keys
    // (the unused-key audit must still accept them) but warn rather than
    // write N interleaved files.
    const std::string trace_path = config.getString(
        "trace.path", "",
        "write the event trace here after the run (empty = keep "
        "in-memory)");
    config.getString("trace.format", "both",
                     "trace export format: konata, chrome or both");
    if (!trace_path.empty())
        warn("trace.path is ignored in CMP mode (cmp.cores > 1)");
    config.checkUnused();

    SimResult r;
    r.core.stop = cr.stop;
    r.core.cycles = cr.cycles;
    r.core.archInsts = cr.archInsts;
    r.core.ipc = cr.ipc;
    for (const CoreResult &c : cr.cores)
        r.core.ruuEntriesCommitted += c.ruuEntriesCommitted;
    r.cores = cr.cores;
    r.stats = chip.statGroup().snapshot();
    r.output = chip.output();
    r.statsText = chip.statGroup().dump();
    return r;
}

} // namespace

SimResult
run(const Program &program, const Config &config, std::uint64_t max_insts)
{
    const unsigned n_cores = cmpCores(config);
    if (n_cores > 1)
        return runChip(program, config, n_cores, max_insts);
    OooCore core(program, config);
    return runWithCore(core, config, max_insts);
}

SimResult
runWithCore(OooCore &core, const Config &config, std::uint64_t max_insts)
{
    const CoreResult cr = core.run(max_insts);
    exportTraces(core, config);
    config.checkUnused(); // every valid key was consumed by binding
    return snapshot(core, cr);
}

SimResult
runWorkload(const std::string &workload, const Config &config,
            unsigned scale, std::uint64_t max_insts)
{
    const Program prog = workloads::build(workload, scale);
    return run(prog, config, max_insts);
}

GoldenResult
goldenRun(const Program &program, const Config &config,
          std::uint64_t max_insts)
{
    fatal_if(cmpCores(config) > 1,
             "the golden VM cross-check is single-core only "
             "(cmp.cores=1)");
    Vm vm(program);
    const StopReason vm_stop = vm.run(max_insts);

    OooCore core(program, config);
    const CoreResult tr = core.run(max_insts);
    exportTraces(core, config);
    config.checkUnused();

    GoldenResult res;
    res.sim = snapshot(core, tr);

    char buf[256];
    if (vm_stop != tr.stop) {
        std::snprintf(buf, sizeof(buf),
                      "stop reason mismatch: vm=%d core=%d",
                      static_cast<int>(vm_stop), static_cast<int>(tr.stop));
        res.mismatch = buf;
        return res;
    }
    if (vm.instCount() != tr.archInsts) {
        std::snprintf(buf, sizeof(buf),
                      "instruction count mismatch: vm=%llu core=%llu",
                      static_cast<unsigned long long>(vm.instCount()),
                      static_cast<unsigned long long>(tr.archInsts));
        res.mismatch = buf;
        return res;
    }
    if (vm.state().out != core.archState().out) {
        res.mismatch = "program output mismatch: vm='" + vm.state().out +
                       "' core='" + core.archState().out + "'";
        return res;
    }
    for (unsigned r = 0; r < numIntRegs; ++r) {
        if (vm.state().readIntReg(r) != core.archState().readIntReg(r)) {
            std::snprintf(buf, sizeof(buf),
                          "x%u mismatch: vm=%llx core=%llx", r,
                          static_cast<unsigned long long>(
                              vm.state().readIntReg(r)),
                          static_cast<unsigned long long>(
                              core.archState().readIntReg(r)));
            res.mismatch = buf;
            return res;
        }
    }
    for (unsigned r = 0; r < numFpRegs; ++r) {
        // RegVal holds the raw IEEE-754 bits, so an integer compare is a
        // bit-pattern compare: any-NaN==any-NaN only for identical
        // payloads, and +0.0 vs -0.0 is reported as a divergence.
        const RegVal v = vm.state().readFpReg(r);
        const RegVal c = core.archState().readFpReg(r);
        if (v != c) {
            std::snprintf(buf, sizeof(buf),
                          "f%u mismatch: vm=%016llx (%g) core=%016llx (%g)",
                          r, static_cast<unsigned long long>(v),
                          std::bit_cast<double>(v),
                          static_cast<unsigned long long>(c),
                          std::bit_cast<double>(c));
            res.mismatch = buf;
            return res;
        }
    }
    return res;
}

std::string
goldenCheck(const Program &program, const Config &config,
            std::uint64_t max_insts)
{
    return goldenRun(program, config, max_insts).mismatch;
}

} // namespace harness

} // namespace direb
