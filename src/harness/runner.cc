#include "harness/runner.hh"

#include <bit>
#include <cstdio>

#include "common/logging.hh"
#include "trace/export.hh"
#include "workloads/workloads.hh"

namespace direb
{

namespace harness
{

Config
baseConfig(const std::string &mode)
{
    Config c;
    c.set("core.mode", mode);
    return c;
}

namespace
{

SimResult
snapshot(OooCore &core, const CoreResult &cr)
{
    SimResult r;
    r.core = cr;
    r.stats = core.statGroup().snapshot();
    r.output = core.archState().out;
    r.statsText = core.statGroup().dump();
    return r;
}

/**
 * Render the finished run's event buffer per trace.path/trace.format.
 * Both keys are read unconditionally (the Config unused-key audit must
 * accept them with tracing off); with no path the buffer stays in-memory
 * only — tests inspect it through OooCore::tracer().
 */
void
exportTraces(OooCore &core, const Config &config)
{
    const std::string path = config.getString(
        "trace.path", "",
        "write the event trace here after the run (empty = keep "
        "in-memory)");
    const std::string format = config.getString(
        "trace.format", "both",
        "trace export format: konata, chrome or both");
    fatal_if(format != "konata" && format != "chrome" && format != "both",
             "unknown trace.format '%s' (expected konata, chrome or both)",
             format.c_str());
    // "-" streams to stdout, where only one exporter can write.
    fatal_if(path == "-" && format == "both",
             "trace.path=- needs trace.format=konata or chrome");
    if (core.tracer() == nullptr || path.empty())
        return;
    if (format == "konata" || format == "both")
        trace::exportKonata(*core.tracer(), path);
    if (format == "chrome" || format == "both") {
        const std::string chrome_path =
            format == "chrome" ? path : path + ".json";
        trace::exportChromeTrace(*core.tracer(), chrome_path);
    }
}

} // namespace

SimResult
run(const Program &program, const Config &config, std::uint64_t max_insts)
{
    OooCore core(program, config);
    return runWithCore(core, config, max_insts);
}

SimResult
runWithCore(OooCore &core, const Config &config, std::uint64_t max_insts)
{
    const CoreResult cr = core.run(max_insts);
    exportTraces(core, config);
    config.checkUnused(); // every valid key was consumed by binding
    return snapshot(core, cr);
}

SimResult
runWorkload(const std::string &workload, const Config &config,
            unsigned scale, std::uint64_t max_insts)
{
    const Program prog = workloads::build(workload, scale);
    return run(prog, config, max_insts);
}

GoldenResult
goldenRun(const Program &program, const Config &config,
          std::uint64_t max_insts)
{
    Vm vm(program);
    const StopReason vm_stop = vm.run(max_insts);

    OooCore core(program, config);
    const CoreResult tr = core.run(max_insts);
    exportTraces(core, config);
    config.checkUnused();

    GoldenResult res;
    res.sim = snapshot(core, tr);

    char buf[256];
    if (vm_stop != tr.stop) {
        std::snprintf(buf, sizeof(buf),
                      "stop reason mismatch: vm=%d core=%d",
                      static_cast<int>(vm_stop), static_cast<int>(tr.stop));
        res.mismatch = buf;
        return res;
    }
    if (vm.instCount() != tr.archInsts) {
        std::snprintf(buf, sizeof(buf),
                      "instruction count mismatch: vm=%llu core=%llu",
                      static_cast<unsigned long long>(vm.instCount()),
                      static_cast<unsigned long long>(tr.archInsts));
        res.mismatch = buf;
        return res;
    }
    if (vm.state().out != core.archState().out) {
        res.mismatch = "program output mismatch: vm='" + vm.state().out +
                       "' core='" + core.archState().out + "'";
        return res;
    }
    for (unsigned r = 0; r < numIntRegs; ++r) {
        if (vm.state().readIntReg(r) != core.archState().readIntReg(r)) {
            std::snprintf(buf, sizeof(buf),
                          "x%u mismatch: vm=%llx core=%llx", r,
                          static_cast<unsigned long long>(
                              vm.state().readIntReg(r)),
                          static_cast<unsigned long long>(
                              core.archState().readIntReg(r)));
            res.mismatch = buf;
            return res;
        }
    }
    for (unsigned r = 0; r < numFpRegs; ++r) {
        // RegVal holds the raw IEEE-754 bits, so an integer compare is a
        // bit-pattern compare: any-NaN==any-NaN only for identical
        // payloads, and +0.0 vs -0.0 is reported as a divergence.
        const RegVal v = vm.state().readFpReg(r);
        const RegVal c = core.archState().readFpReg(r);
        if (v != c) {
            std::snprintf(buf, sizeof(buf),
                          "f%u mismatch: vm=%016llx (%g) core=%016llx (%g)",
                          r, static_cast<unsigned long long>(v),
                          std::bit_cast<double>(v),
                          static_cast<unsigned long long>(c),
                          std::bit_cast<double>(c));
            res.mismatch = buf;
            return res;
        }
    }
    return res;
}

std::string
goldenCheck(const Program &program, const Config &config,
            std::uint64_t max_insts)
{
    return goldenRun(program, config, max_insts).mismatch;
}

} // namespace harness

} // namespace direb
